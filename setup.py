"""Setup shim for legacy editable installs (offline environments without
the ``wheel`` package cannot run PEP 660 builds)."""

from setuptools import setup

setup()
