"""Packet-level discrete-event network simulator (htsim substitute)."""

from .engine import Engine, Timer
from .failures import FailureInjector
from .link import Cable
from .metrics import RunMetrics, SeriesRecorder
from .network import Network, NetworkConfig
from .packet import CONTROL_PACKET_BYTES, Packet, make_ack, make_nack
from .port import EgressPort, PortStats
from .switch import Host, Node, Switch, ecmp_hash
from .topology import FatTree, TopologyParams
from .transport import FlowReceiver, FlowSender
from .units import MS, NS, PS, SEC, US, tx_time_ps, us_to_ps

__all__ = [
    "Engine", "Timer", "FailureInjector", "Cable", "RunMetrics",
    "SeriesRecorder", "Network", "NetworkConfig", "Packet",
    "CONTROL_PACKET_BYTES", "make_ack", "make_nack", "EgressPort",
    "PortStats", "Host", "Node", "Switch", "ecmp_hash", "FatTree",
    "TopologyParams", "FlowReceiver", "FlowSender",
    "PS", "NS", "US", "MS", "SEC", "tx_time_ps", "us_to_ps",
]
