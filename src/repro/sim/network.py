"""The Network facade: topology + transports + failures + metrics.

This is the main entry point for running simulations:

    >>> from repro.sim import Network, NetworkConfig, TopologyParams
    >>> cfg = NetworkConfig(topo=TopologyParams(n_hosts=8, hosts_per_t0=4),
    ...                     lb="reps")
    >>> net = Network(cfg)
    >>> net.add_flow(0, 4, 256 * 1024)
    0
    >>> metrics = net.run()
    >>> metrics.flows_completed
    1
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from ..core.reps import RepsConfig
from ..lb.base import (
    REPLICATION_FOR_LB,
    SWITCH_MODE_FOR_LB,
    LbContext,
    make_lb,
)
from .cc.base import make_cc
from .engine import Engine
from .failures import FailureInjector
from .metrics import RunMetrics, SeriesRecorder
from .switch import Host
from .topology import FatTree, TopologyParams
from .transport import FlowReceiver, FlowSender, ReplicatedFlow
from .units import US, us_to_ps


@dataclass
class NetworkConfig:
    """Everything one simulation run needs."""

    topo: TopologyParams = field(default_factory=TopologyParams)
    lb: str = "reps"
    cc: str = "dctcp"
    evs_size: int = 65536
    rto_us: float = 70.0
    ack_coalesce: int = 1
    carry_evs: bool = False
    reps: Optional[RepsConfig] = None
    routing_update_delay_us: Optional[float] = None
    seed: int = 1
    init_cwnd_bdp: float = 1.0
    max_cwnd_bdp: float = 2.0
    #: Appendix-A RTT heuristic: classify timeouts and withhold
    #: congestion-looking losses from the LB's failure detection
    rtt_loss_discrimination: bool = False
    #: Sec. 4.5.3 delay-based signal: the LB sees ``rtt > factor * base
    #: RTT`` instead of the ECN bit (for fabrics without ECN)
    delay_signal_factor: Optional[float] = None


class _FlowRecord:
    __slots__ = ("sender", "receiver", "tag", "replica_of")

    def __init__(self, sender: FlowSender, receiver: FlowReceiver,
                 tag: Optional[str],
                 replica_of: Optional[int] = None) -> None:
        self.sender = sender
        self.receiver = receiver
        self.tag = tag
        #: primary flow id when this record is a RepFlow replica copy;
        #: replica traffic counts in the metrics, its completion does not
        self.replica_of = replica_of


class Network:
    """A built network ready to accept flows and run."""

    def __init__(self, config: NetworkConfig) -> None:
        self.config = config
        topo = config.topo
        # switch-side schemes (Adaptive RoCE / Fig-9 oracle) are selected
        # through the default LB name
        mode = SWITCH_MODE_FOR_LB.get(config.lb)
        if mode is not None and topo.switch_mode == "ecmp":
            topo = replace(topo, switch_mode=mode)
        self.engine = Engine()
        self.tree = FatTree(self.engine, topo)
        delay = (us_to_ps(config.routing_update_delay_us)
                 if config.routing_update_delay_us is not None else None)
        self.failures = FailureInjector(self.engine, self.tree, delay)
        self._flows: Dict[int, _FlowRecord] = {}
        self._next_flow_id = 0
        self._added = 0
        self._completed = 0
        self._stop_on_complete = True
        self.recorders: List[SeriesRecorder] = []
        for host in self.tree.hosts:
            host.dispatch = self._make_dispatch(host)

    # ------------------------------------------------------------------
    # flow management
    # ------------------------------------------------------------------
    def add_flow(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        *,
        start_us: float = 0.0,
        lb: Optional[str] = None,
        cc: Optional[str] = None,
        on_complete: Optional[Callable[[FlowSender], None]] = None,
        tag: Optional[str] = None,
    ) -> int:
        """Register a message flow; returns its flow id.

        A flow whose LB name appears in
        :data:`~repro.lb.base.REPLICATION_FOR_LB` (and fits the spec's
        size bound) is built as that many independent sender/receiver
        copies under one :class:`~repro.sim.transport.ReplicatedFlow` —
        first copy to finish wins, the rest are cancelled.  The
        returned id is the primary copy's; replicas occupy their own
        flow ids but count as zero additional logical flows.
        """
        if src == dst:
            raise ValueError("src and dst must differ")
        if not (0 <= src < len(self.tree.hosts)
                and 0 <= dst < len(self.tree.hosts)):
            raise ValueError("host id out of range")
        cfg = self.config
        lb_name = lb or cfg.lb
        replication = REPLICATION_FOR_LB.get(lb_name)
        n_copies = 1
        if replication is not None and (replication.max_bytes is None
                                        or size_bytes
                                        <= replication.max_bytes):
            n_copies = replication.copies
        primary_id = self._next_flow_id
        senders = []
        for copy_idx in range(n_copies):
            flow_id = self._next_flow_id
            self._next_flow_id += 1
            mtu = cfg.topo.mtu_bytes
            bdp = self.tree.bdp_bytes()
            cc_obj = make_cc(
                cc or cfg.cc,
                mtu=mtu,
                init_cwnd=max(mtu, int(bdp * cfg.init_cwnd_bdp)),
                min_cwnd=mtu,
                max_cwnd=max(2 * mtu, int(bdp * cfg.max_cwnd_bdp)),
                rtt_ps=self.tree.rtt_ps(),
            )
            rng = random.Random(
                (cfg.seed * 1_000_003) ^ (flow_id * 7_919) ^ 0xA5)
            ctx = LbContext(
                rng=rng,
                evs_size=cfg.evs_size,
                rtt_ps=self.tree.rtt_ps(),
                flow_id=flow_id,
                src=src,
                dst=dst,
                cwnd_pkts=lambda c=cc_obj: c.cwnd_pkts,
                reps_config=cfg.reps,
            )
            lb_obj = make_lb(lb_name, ctx)
            classifier = None
            if cfg.rtt_loss_discrimination:
                from .loss_discrimination import RttLossClassifier
                classifier = RttLossClassifier(self.tree.rtt_ps())
            delay_threshold = None
            if cfg.delay_signal_factor is not None:
                delay_threshold = int(cfg.delay_signal_factor
                                      * self.tree.rtt_ps())
            sender = FlowSender(
                self.engine, self.tree.hosts[src],
                flow_id=flow_id, dst=dst, size_bytes=size_bytes, mtu=mtu,
                lb=lb_obj, cc=cc_obj, rto_ps=us_to_ps(cfg.rto_us),
                on_complete=(self._make_completion(on_complete)
                             if n_copies == 1 else None),
                loss_classifier=classifier,
                delay_signal_threshold_ps=delay_threshold,
            )
            receiver = FlowReceiver(
                self.engine, self.tree.hosts[dst],
                flow_id=flow_id, src=src, n_pkts=sender.n_pkts,
                coalesce=cfg.ack_coalesce, carry_evs=cfg.carry_evs,
                ack_delay_ps=max(1, self.tree.rtt_ps() // 4),
            )
            self._flows[flow_id] = _FlowRecord(
                sender, receiver, tag,
                replica_of=None if copy_idx == 0 else primary_id)
            senders.append(sender)
        if n_copies > 1:
            ReplicatedFlow(senders,
                           on_complete=self._make_completion(on_complete))
        self._added += 1
        start_ps = max(self.engine.now, us_to_ps(start_us))
        for sender in senders:
            self.engine.at(start_ps, sender.start)
        return primary_id

    def _make_completion(self, user_cb):
        def done(sender: FlowSender) -> None:
            self._completed += 1
            if user_cb is not None:
                user_cb(sender)
            if self._stop_on_complete and self._completed == self._added:
                self.engine.stop()
        return done

    def _make_dispatch(self, host: Host):
        flows = self._flows

        def dispatch(pkt) -> None:
            rec = flows.get(pkt.flow_id)
            if rec is None:
                return
            if pkt.is_ack:
                rec.sender.on_ack(pkt)
            elif pkt.is_nack:
                rec.sender.on_nack(pkt)
            else:
                rec.receiver.on_data(pkt)
        return dispatch

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def record_ports(self, ports, bucket_us: float = 20.0) -> SeriesRecorder:
        """Attach a utilization/queue recorder (Fig. 2-style telemetry)."""
        rec = SeriesRecorder(self.engine, ports,
                             bucket_ps=us_to_ps(bucket_us))
        rec.start()
        self.recorders.append(rec)
        return rec

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, max_us: Optional[float] = None,
            stop_on_complete: bool = True) -> RunMetrics:
        """Run until all flows complete (or ``max_us``); return metrics."""
        if max_us is None and not stop_on_complete:
            raise ValueError("provide max_us when not stopping on completion")
        self._stop_on_complete = stop_on_complete
        until = us_to_ps(max_us) if max_us is not None else None
        self.engine.run(until_ps=until)
        for rec in self.recorders:
            rec.stop()
        return self.metrics()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def flows(self) -> Dict[int, _FlowRecord]:
        return self._flows

    def sender_of(self, flow_id: int) -> FlowSender:
        return self._flows[flow_id].sender

    def metrics(self, tag: Optional[str] = None) -> RunMetrics:
        """Aggregate run metrics; optionally only flows with ``tag``."""
        m = RunMetrics()
        m.sim_time_us = self.engine.now / US
        m.events = self.engine.events_executed
        last_end = 0.0
        for rec in self._flows.values():
            if tag is not None and rec.tag != tag:
                continue
            s = rec.sender
            m.pkts_sent += s.stats.pkts_sent
            m.retransmissions += s.stats.retransmissions
            m.timeouts += s.stats.timeouts
            if rec.replica_of is not None:
                # a RepFlow replica copy: its traffic is real (counted
                # above) but the logical flow's completion/FCT lives on
                # the primary record
                continue
            m.flows_total += 1
            fct = s.fct_ps()
            if fct is not None:
                m.flows_completed += 1
                m.fct_us.append(fct / US)
                m.goodput_gbps.append(s.size_bytes * 8000.0 / fct)
                end_us = (s.complete_time or 0) / US
                last_end = max(last_end, end_us)
        m.makespan_us = last_end
        for cable in self.tree.cables.values():
            for port in (cable.a_port, cable.b_port):
                if port is None:
                    continue
                st = port.stats
                m.drops_overflow += st.drops_overflow
                m.drops_link_down += st.drops_link_down
                m.drops_ber += st.drops_ber
                m.trims += st.trims
                m.ecn_marks += st.ecn_marks
        return m
