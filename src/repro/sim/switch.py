"""Switches: ECMP hashing over entropy values, plus adaptive/oracle modes.

The only switch features REPS requires are ECMP-style header hashing and
ECN marking (Sec. 3).  We additionally implement:

- ``"adaptive"``: per-packet least-queue uplink selection, standing in for
  NVIDIA Adaptive RoCE / DRILL-style in-network adaptive routing (a
  baseline in Fig. 3/5).
- ``"ideal"``: an oracle that sprays over *healthy* uplinks only, used as
  the "Theoretical Best" line in Fig. 9.

Switch traversal latency is folded into the wire latency of the inbound
link (Sec. 4.1 uses a fixed 500 ns per switch), halving event count.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from .packet import Packet
from .port import EgressPort

_M64 = (1 << 64) - 1

#: Switch forwarding modes.
#:
#: - ``ecmp``:     hash (src, dst, EV) over the uplink group (default);
#: - ``adaptive``: DRILL/Adaptive-RoCE power-of-two-choices on queues;
#: - ``ideal``:    the Fig. 9 oracle — least-loaded *healthy end-to-end*
#:                 path, instant global failure knowledge;
#: - ``wcmp``:     weighted ECMP — hash over uplinks weighted by their
#:                 current rate (handles *known* asymmetries, Sec. 4.3.2);
#: - ``source``:   source routing — the EV *is* the path id
#:                 (``ev % n_uplinks``), as in Sec. 3.3's note that REPS
#:                 works when the NIC picks paths directly.
SWITCH_MODES = ("ecmp", "adaptive", "ideal", "wcmp", "source")


def ecmp_hash(src: int, dst: int, ev: int, salt: int) -> int:
    """Deterministic 64-bit mix of the ECMP key fields.

    A splitmix64-style finalizer: uniform enough that distinct EVs spread
    near-uniformly over uplinks, while identical 5-tuples always take the
    same path — both properties Sec. 2.2 relies on.
    """
    x = (src * 0x9E3779B97F4A7C15
         + dst * 0xBF58476D1CE4E5B9
         + ev * 0x94D049BB133111EB
         + salt * 0xD6E8FEB86659FD93) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x


class Node:
    """Anything that can terminate a wire: a switch or a host."""

    __slots__ = ()

    def receive(self, pkt: Packet) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Switch(Node):
    """A single switch in a fat-tree tier.

    Attributes:
        tier:      0 (ToR), 1 (aggregation) or 2 (core).
        up_ports:  uplink egress ports (multipath choice happens here).
        down_route: maps a destination host id to the correct down port.
        mode:      "ecmp" | "adaptive" | "ideal".
    """

    __slots__ = (
        "name", "tier", "salt", "mode", "rng",
        "up_ports", "down_route", "_healthy_cache_dirty",
        "_ecmp_group", "_wcmp_weights",
    )

    def __init__(
        self,
        name: str,
        tier: int,
        *,
        salt: int,
        rng: random.Random,
        mode: str = "ecmp",
    ) -> None:
        if mode not in SWITCH_MODES:
            raise ValueError(f"unknown switch mode {mode!r}")
        self.name = name
        self.tier = tier
        self.salt = salt
        self.mode = mode
        self.rng = rng
        self.up_ports: List[EgressPort] = []
        self.down_route: Dict[int, EgressPort] = {}
        #: set by EgressPort.excluded / .rate_gbps writes (via the port's
        #: ``owner`` backref) so group membership and WCMP weights are
        #: recomputed per *change*, not per packet
        self._healthy_cache_dirty = True
        self._ecmp_group: tuple = ((), 0)
        self._wcmp_weights: tuple = ((), 0)

    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        port = self.down_route.get(pkt.dst)
        if port is None:
            port = self._pick_uplink(pkt)
            if port is None:
                # no usable uplink at all: blackhole the packet
                return
        port.enqueue(pkt)

    def route(self, pkt: Packet) -> Optional[EgressPort]:
        """Pick the egress port for ``pkt``."""
        down = self.down_route.get(pkt.dst)
        if down is not None:
            return down
        return self._pick_uplink(pkt)

    # ------------------------------------------------------------------
    def _rebuild_group_caches(self) -> None:
        """Recompute the ECMP group and WCMP weights after membership or
        rate changes (port exclusion, degradation, recovery)."""
        ports = self.up_ports
        group = ports
        for p in ports:
            if p._excluded:
                group = [q for q in ports if not q._excluded] or ports
                break
        self._ecmp_group = (group, len(group))
        if ports:
            min_rate = min(p._rate_gbps for p in ports)
            weights = [max(1, round(p._rate_gbps / min_rate))
                       for p in ports]
            self._wcmp_weights = (weights, sum(weights))
        self._healthy_cache_dirty = False

    def _pick_uplink(self, pkt: Packet) -> Optional[EgressPort]:
        ports = self.up_ports
        if not ports:
            return None
        if self.mode == "ecmp":
            # hot path: cached group + inlined ecmp_hash (same mix as the
            # public function; keep the two in sync)
            if self._healthy_cache_dirty:
                self._rebuild_group_caches()
            group, n = self._ecmp_group
            x = (pkt.src * 0x9E3779B97F4A7C15
                 + pkt.dst * 0xBF58476D1CE4E5B9
                 + pkt.ev * 0x94D049BB133111EB
                 + self.salt * 0xD6E8FEB86659FD93) & _M64
            x ^= x >> 30
            x = (x * 0xBF58476D1CE4E5B9) & _M64
            x ^= x >> 27
            x = (x * 0x94D049BB133111EB) & _M64
            x ^= x >> 31
            return group[x % n]
        if self.mode == "adaptive":
            # DRILL/Adaptive-RoCE style power-of-two-choices: sample two
            # random uplinks and take the shorter queue.  Real adaptive
            # ASICs work from local, quantized congestion state; an
            # omniscient global-min scan would overstate them.
            a = self.rng.randrange(len(ports))
            b = self.rng.randrange(len(ports))
            pa, pb = ports[a], ports[b]
            return pa if pa.queue_bytes <= pb.queue_bytes else pb
        if self.mode == "ideal":
            healthy = [p for p in ports
                       if self._path_healthy(p, pkt.dst)]
            if healthy:
                return self._least_loaded(healthy)
            # every uplink is dead: fall through to hashing
        if self.mode == "source":
            return ports[pkt.ev % len(ports)]
        if self.mode == "wcmp":
            # WCMP: hash into the group with per-port weights proportional
            # to the current link rate, so a 200G member of a 400G group
            # draws half the flows (Zhou et al., EuroSys '14)
            if self._healthy_cache_dirty:
                self._rebuild_group_caches()
            weights, total = self._wcmp_weights
            slot = ecmp_hash(pkt.src, pkt.dst, pkt.ev, self.salt) % total
            for port, w in zip(ports, weights):
                if slot < w:
                    return port
                slot -= w
            return ports[-1]  # unreachable; guards float quirks
        # ECMP group after an "ideal"-mode fallthrough (every uplink
        # dead): exclude ports the control plane removed from the group
        # (after routing_update_delay), exactly like a real ECMP group
        # shrink.  Until then failed ports still attract traffic.
        if self._healthy_cache_dirty:
            self._rebuild_group_caches()
        group, n = self._ecmp_group
        h = ecmp_hash(pkt.src, pkt.dst, pkt.ev, self.salt)
        return group[h % n]

    @staticmethod
    def _path_healthy(port: EgressPort, dst: int) -> bool:
        """Oracle check: is the whole path through ``port`` to ``dst``
        alive?  Follows the deterministic down-route chain beyond the
        uplink (the up-hops ahead make their own oracle choices).  This
        is what "Theoretical Best" (Fig. 9) means: an idealized balancer
        with instant global failure knowledge — precisely the end-to-end
        view REPS approximates from ACK feedback alone.
        """
        if port.cable is not None and port.cable.down:
            return False
        peer = port.peer
        while isinstance(peer, Switch):
            nxt = peer.down_route.get(dst)
            if nxt is None:
                # needs another (oracle-chosen) up-hop: treat as healthy
                # if that switch still has any live uplink
                return any(p.cable is None or not p.cable.down
                           for p in peer.up_ports)
            if nxt.cable is not None and nxt.cable.down:
                return False
            peer = nxt.peer
        return True

    def _least_loaded(self, ports: List[EgressPort]) -> EgressPort:
        """Least-queue choice; random tiebreak so ties do not synchronize."""
        best = None
        best_q = None
        for p in ports:
            q = p.queue_bytes
            if best_q is None or q < best_q or \
                    (q == best_q and self.rng.random() < 0.5):
                best, best_q = p, q
        assert best is not None
        return best


class Host(Node):
    """An endpoint NIC.  Owns one egress port toward its ToR switch.

    Delivery of packets to transports is delegated to the
    :class:`~repro.sim.network.Network` dispatcher so that hosts stay a
    thin wire-termination object.
    """

    __slots__ = ("host_id", "port", "dispatch")

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self.port: Optional[EgressPort] = None
        self.dispatch: Optional[Callable[[Packet], None]] = None

    def receive(self, pkt: Packet) -> None:
        assert self.dispatch is not None, "host not wired to a network"
        self.dispatch(pkt)

    def send(self, pkt: Packet) -> None:
        """Inject a packet into the fabric through the NIC egress queue."""
        assert self.port is not None, "host not attached to a switch"
        self.port.enqueue(pkt)
