"""Discrete-event simulation engine.

A minimal, fast event scheduler: a binary heap of ``(time, seq, fn, args)``
tuples.  ``seq`` is a monotonically increasing tiebreaker so events
scheduled for the same instant fire in FIFO order, which keeps runs
deterministic for a fixed seed.

This replaces the htsim C++ event loop the paper builds on.

Invariants (everything downstream — the sweep harness's content-keyed
artifact cache, the serial-equals-parallel guarantee, the paper-shape
checks — rests on these):

- **Integer time.**  Timestamps are integer picoseconds; there is no
  floating-point drift and no wall-clock input anywhere in the loop.
- **Total event order.**  Events are ordered by ``(time_ps, seq)``;
  ``seq`` never repeats, so heap order is a total order and two runs
  that schedule the same events observe the same execution sequence.
- **Determinism.**  Given the same initial schedule and the same
  seeded RNGs in the callbacks, every run executes the identical event
  sequence — which is why a ``SweepTask``'s results can be cached by a
  content hash of its parameters alone.
- **Monotonic ``now``.**  Callbacks only ever schedule at
  ``time_ps >= now``; scheduling into the past raises rather than
  silently reordering history.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Engine:
    """Event loop with integer-picosecond timestamps."""

    __slots__ = ("now", "_heap", "_seq", "_stopped", "events_executed")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list = []
        self._seq: int = 0
        self._stopped: bool = False
        self.events_executed: int = 0

    def at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ps} < now={self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time_ps, self._seq, fn, args))

    def after(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay_ps`` picoseconds."""
        self.at(self.now + delay_ps, fn, *args)

    def stop(self) -> None:
        """Stop the loop after the currently executing event returns."""
        self._stopped = True

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, ``until_ps``, or ``stop()``.

        Returns the number of events executed by this call.
        """
        heap = self._heap
        executed = 0
        self._stopped = False
        while heap and not self._stopped:
            if max_events is not None and executed >= max_events:
                break
            time_ps, _, fn, args = heap[0]
            if until_ps is not None and time_ps > until_ps:
                # advance to the horizon, but never rewind: a second
                # run() with an earlier until_ps must not move time
                # backwards under already-scheduled events
                self.now = max(self.now, until_ps)
                break
            heapq.heappop(heap)
            self.now = time_ps
            fn(*args)
            executed += 1
        self.events_executed += executed
        return executed

    def pending(self) -> int:
        """Number of events still queued (including cancelled shells)."""
        return len(self._heap)


class Timer:
    """Re-armable one-shot timer built on generation counters.

    Cancelling a heap entry is O(n); instead each (re)arm bumps a
    generation and stale firings are ignored.  This is the standard
    pattern for RTO timers where nearly every timer is cancelled.
    """

    __slots__ = ("_engine", "_fn", "_gen", "_armed_at")

    def __init__(self, engine: Engine, fn: Callable[[], Any]) -> None:
        self._engine = engine
        self._fn = fn
        self._gen = 0
        self._armed_at: Optional[int] = None

    @property
    def armed(self) -> bool:
        return self._armed_at is not None

    @property
    def deadline(self) -> Optional[int]:
        return self._armed_at

    def arm_at(self, time_ps: int) -> None:
        """(Re)arm to fire at absolute ``time_ps``; replaces prior arming."""
        self._gen += 1
        self._armed_at = time_ps
        self._engine.at(time_ps, self._fire, self._gen)

    def arm_after(self, delay_ps: int) -> None:
        self.arm_at(self._engine.now + delay_ps)

    def cancel(self) -> None:
        self._gen += 1
        self._armed_at = None

    def _fire(self, gen: int) -> None:
        if gen != self._gen:
            return  # stale: re-armed or cancelled since scheduling
        self._armed_at = None
        self._fn()
