"""Discrete-event simulation engine.

A slotted **time-wheel** (calendar queue) scheduler with a heap fallback
for far-future events.  Near-future events — the overwhelming majority in
a packet simulation, where inter-event gaps are serialization times and
hop latencies — land in per-slot buckets indexed by ``time_ps >> 15``
(32.768 ns slots); each bucket is a tiny heap ordered by ``(time_ps,
seq)``.  Events beyond the wheel's ~134 us horizon (RTO backstops,
scheduled failures, run horizons) wait in an overflow heap and are bulk
migrated into the wheel as it turns.  Pop cost is O(1 + bucket depth)
instead of O(log n) on one big heap, which is where the htsim lineage
gets its event-loop throughput.

This replaces the htsim C++ event loop the paper builds on.

Invariants (everything downstream — the sweep harness's content-keyed
artifact cache, the serial-equals-parallel guarantee, the paper-shape
checks — rests on these):

- **Integer time.**  Timestamps are integer picoseconds; there is no
  floating-point drift and no wall-clock input anywhere in the loop.
- **Total event order.**  Events are ordered by ``(time_ps, seq)``;
  ``seq`` never repeats, so the wheel's drain order is a total order and
  two runs that schedule the same events observe the same execution
  sequence.  (Buckets ahead of the cursor are empty, each physical
  bucket holds exactly one logical slot's events, and in-bucket heaps
  restore ``(time_ps, seq)`` order for the rare event clamped into the
  cursor's bucket.)
- **Determinism.**  Given the same initial schedule and the same
  seeded RNGs in the callbacks, every run executes the identical event
  sequence — which is why a ``SweepTask``'s results can be cached by a
  content hash of its parameters alone.
- **Monotonic ``now``.**  Callbacks only ever schedule at
  ``time_ps >= now``; scheduling into the past raises rather than
  silently reordering history.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

#: Wheel geometry: 4096 slots of 2**15 ps (32.768 ns) each — a ~134 us
#: horizon.  Slot width sits just under one MTU serialization time at
#: 400G, so busy-period events cluster a few per bucket while empty-slot
#: scans between sparse events stay short.
_SLOT_BITS = 15
_SLOT_PS = 1 << _SLOT_BITS
_NSLOTS = 4096
_MASK = _NSLOTS - 1


class Engine:
    """Event loop with integer-picosecond timestamps."""

    __slots__ = (
        "now", "_seq", "_stopped", "events_executed",
        "_wheel", "_overflow", "_cursor", "_window_end",
        "_wheel_count", "_stale",
    )

    def __init__(self) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._stopped: bool = False
        self.events_executed: int = 0
        #: per-slot buckets; each bucket is a heap of (time, seq, fn, args)
        self._wheel: list = [[] for _ in range(_NSLOTS)]
        #: events at or beyond the wheel horizon, one big heap
        self._overflow: list = []
        #: absolute slot number currently being drained (monotonic)
        self._cursor: int = 0
        #: absolute time (exclusive) covered by the wheel window
        self._window_end: int = _NSLOTS << _SLOT_BITS
        self._wheel_count: int = 0
        #: cancelled/superseded Timer shells still queued (see Timer)
        self._stale: int = 0

    def at(self, time_ps: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time_ps``."""
        if time_ps < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ps} < now={self.now}"
            )
        seq = self._seq + 1
        self._seq = seq
        # inlined _push: this is the hottest scheduling call in the sim
        if time_ps < self._window_end:
            slot = time_ps >> _SLOT_BITS
            if slot < self._cursor:
                slot = self._cursor
            heapq.heappush(self._wheel[slot & _MASK],
                           (time_ps, seq, fn, args))
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, (time_ps, seq, fn, args))

    def _push(self, time_ps: int, seq: int, fn, args) -> None:
        """Queue an event under an already-allocated sequence number.

        ``Timer`` allocates seq at arm time but queues lazily; keeping
        allocation and queueing separable means a deferred shell lands
        at exactly the ``(time, seq)`` slot an eager push would have
        used, so same-instant tie-breaks are identical either way.
        """
        if time_ps < self._window_end:
            slot = time_ps >> _SLOT_BITS
            if slot < self._cursor:
                # the cursor already passed this slot (it can sit ahead
                # of `now` after an until_ps stop or a window jump):
                # drop into the cursor's bucket, whose heap restores
                # (time, seq) order ahead of that bucket's later events
                slot = self._cursor
            heapq.heappush(self._wheel[slot & _MASK],
                           (time_ps, seq, fn, args))
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, (time_ps, seq, fn, args))

    def after(self, delay_ps: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay_ps`` picoseconds."""
        self.at(self.now + delay_ps, fn, *args)

    def stop(self) -> None:
        """Stop the loop after the currently executing event returns."""
        self._stopped = True

    def _refill(self) -> None:
        """Migrate overflow events that now fall inside the window."""
        overflow = self._overflow
        wheel = self._wheel
        window_end = self._window_end
        cursor = self._cursor
        push, pop = heapq.heappush, heapq.heappop
        moved = 0
        while overflow and overflow[0][0] < window_end:
            ev = pop(overflow)
            slot = ev[0] >> _SLOT_BITS
            if slot < cursor:
                slot = cursor
            push(wheel[slot & _MASK], ev)
            moved += 1
        self._wheel_count += moved

    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until_ps``, or ``stop()``.

        Returns the number of events executed by this call.
        """
        wheel = self._wheel
        overflow = self._overflow
        pop = heapq.heappop
        push = heapq.heappush
        executed = 0
        # sentinels keep the per-event checks branch-cheap: nothing is
        # ever scheduled at or counted to 2**63
        until = (1 << 63) if until_ps is None else until_ps
        limit = (1 << 63) if max_events is None else max_events
        self._stopped = False
        while True:
            if not self._wheel_count:
                if not overflow:
                    break
                # wheel empty: jump the window to the overflow head
                slot = overflow[0][0] >> _SLOT_BITS
                if slot > self._cursor:
                    self._cursor = slot
                self._window_end = (self._cursor + _NSLOTS) << _SLOT_BITS
                self._refill()
                continue
            bucket = wheel[self._cursor & _MASK]
            if not bucket:
                self._cursor += 1
                self._window_end += _SLOT_PS
                if overflow and overflow[0][0] < self._window_end:
                    self._refill()
                continue
            # drain this slot's bucket (callbacks may push into it);
            # _wheel_count is kept exact per event so pending() stays
            # accurate when a probe callback reads it mid-drain
            while bucket:
                if executed >= limit:
                    self.events_executed += executed
                    return executed
                item = pop(bucket)
                time_ps = item[0]
                if time_ps > until:
                    # advance to the horizon, but never rewind: a second
                    # run() with an earlier until_ps must not move time
                    # backwards under already-scheduled events
                    push(bucket, item)
                    if until > self.now:
                        self.now = until
                    self.events_executed += executed
                    return executed
                self._wheel_count -= 1
                self.now = time_ps
                item[2](*item[3])
                executed += 1
                if self._stopped:
                    self.events_executed += executed
                    return executed
        self.events_executed += executed
        return executed

    def pending(self) -> int:
        """Number of events still queued (including cancelled shells)."""
        return self._wheel_count + len(self._overflow)

    def pending_live(self) -> int:
        """Queued events excluding cancelled/superseded Timer shells.

        This is the depth harness probes should report: under RTO-heavy
        runs :meth:`pending` over-reads by the stale shells Timers leave
        behind until the wheel drains them.
        """
        return self._wheel_count + len(self._overflow) - self._stale


class Timer:
    """Re-armable one-shot timer that recycles its queued event.

    Cancelling a queued event is O(n); instead the timer keeps at most
    one *shell* event queued and defers at fire time: re-arming to a
    **later** deadline — the common case for RTO timers, whose deadline
    moves forward with every ACK — just records the new deadline and
    lets the already-queued shell re-queue itself when it fires early.
    Only re-arming *earlier* pushes a new shell (the old one becomes
    stale and is ignored when drained).  The engine's ``_stale`` count
    tracks exactly the queued shells that no longer represent a live
    arming, so ``Engine.pending_live()`` stays accurate.

    Determinism: every ``arm_at`` consumes one engine sequence number —
    whether or not it queues anything — and a deferred shell is queued
    under the seq its arming allocated.  The timer's firing event
    therefore occupies the exact ``(time, seq)`` slot an
    eager-push-per-rearm implementation would give it, so same-instant
    execution order (and with it every downstream RNG draw) is
    bit-identical to the pre-wheel engine.
    """

    __slots__ = ("_engine", "_fn", "_armed_at", "_armed_seq",
                 "_shell_at", "_shell_live", "_shell_id")

    def __init__(self, engine: Engine, fn: Callable[[], Any]) -> None:
        self._engine = engine
        self._fn = fn
        #: deadline the owner asked for (None = unarmed)
        self._armed_at: Optional[int] = None
        #: seq allocated for the current arming's firing event
        self._armed_seq: int = 0
        #: time of the queued shell event (None = no shell queued)
        self._shell_at: Optional[int] = None
        #: does the queued shell represent the current arming?
        self._shell_live: bool = False
        #: id of the newest shell; older shells are stale on arrival
        self._shell_id: int = 0

    @property
    def armed(self) -> bool:
        return self._armed_at is not None

    @property
    def deadline(self) -> Optional[int]:
        return self._armed_at

    def arm_at(self, time_ps: int) -> None:
        """(Re)arm to fire at absolute ``time_ps``; replaces prior arming."""
        engine = self._engine
        if time_ps < engine.now:
            raise ValueError(
                f"cannot schedule in the past: {time_ps} < now={engine.now}"
            )
        engine._seq = seq = engine._seq + 1
        self._armed_at = time_ps
        self._armed_seq = seq
        shell_at = self._shell_at
        if shell_at is not None:
            if shell_at <= time_ps:
                # reuse the queued shell: it fires no later than needed
                # and will defer itself to the recorded deadline
                if not self._shell_live:
                    engine._stale -= 1
                    self._shell_live = True
                return
            if self._shell_live:
                # the queued shell fires too late: supersede it
                engine._stale += 1
        self._shell_id += 1
        self._shell_at = time_ps
        self._shell_live = True
        engine._push(time_ps, seq, self._fire, (self._shell_id,))

    def arm_after(self, delay_ps: int) -> None:
        self.arm_at(self._engine.now + delay_ps)

    def cancel(self) -> None:
        self._armed_at = None
        if self._shell_at is not None and self._shell_live:
            self._engine._stale += 1
            self._shell_live = False

    def _fire(self, shell_id: int) -> None:
        if shell_id != self._shell_id:
            # a superseded shell draining out of the queue
            self._engine._stale -= 1
            return
        if not self._shell_live:
            # cancelled (and not re-armed) since scheduling
            self._engine._stale -= 1
            self._shell_at = None
            return
        self._shell_at = None
        self._shell_live = False
        deadline = self._armed_at
        if deadline is not None and deadline > self._engine.now:
            # armed later than this shell: defer by re-queueing under
            # the seq the arming reserved
            self._shell_id += 1
            self._shell_at = deadline
            self._shell_live = True
            self._engine._push(deadline, self._armed_seq, self._fire,
                               (self._shell_id,))
            return
        self._armed_at = None
        self._fn()
