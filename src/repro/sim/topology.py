"""Fat-tree topology builder (2- and 3-tier Clos, Sec. 4.1).

Terminology follows the paper: ToR switches are **T0**, aggregation **T1**
and core **T2**.  Oversubscription is the ratio of host-facing to uplink
bandwidth at the ToR (1:1 .. 4:1 in the paper's runs).

Each wire's latency includes the 500 ns propagation plus the 500 ns
traversal of the switch it enters, matching the paper's uniform per-hop
cost while halving simulator events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .engine import Engine
from .link import Cable
from .port import EgressPort
from .switch import Host, Node, Switch
from .units import NS, US, gbps_to_bytes_per_us


@dataclass
class TopologyParams:
    """Knobs for a fat-tree build.

    ``hosts_per_t0 / oversubscription`` must be a positive integer — it is
    the number of ToR uplinks.  For 3-tier trees the pod contains
    ``t0s_per_pod`` ToRs and one T1 per ToR uplink; every T1 then has
    ``t2s_per_t1`` core uplinks.
    """

    n_hosts: int = 64
    hosts_per_t0: int = 16
    tiers: int = 2
    oversubscription: int = 1
    link_gbps: float = 400.0
    host_link_gbps: Optional[float] = None
    hop_latency_ns: int = 1000  # 500 ns propagation + 500 ns switch
    mtu_bytes: int = 4096
    queue_capacity_bytes: Optional[int] = None  # default: one BDP
    kmin_fraction: float = 0.2
    kmax_fraction: float = 0.8
    ecn_enabled: bool = True
    trim_enabled: bool = False
    switch_mode: str = "ecmp"
    # 3-tier only:
    t0s_per_pod: int = 2
    t2s_per_t1: int = 2
    seed: int = 1

    def validate(self) -> None:
        if self.n_hosts % self.hosts_per_t0:
            raise ValueError("n_hosts must be a multiple of hosts_per_t0")
        if self.hosts_per_t0 % self.oversubscription:
            raise ValueError(
                "hosts_per_t0 must be divisible by oversubscription")
        if self.tiers not in (2, 3):
            raise ValueError("tiers must be 2 or 3")
        if self.tiers == 3:
            n_t0 = self.n_hosts // self.hosts_per_t0
            if n_t0 % self.t0s_per_pod:
                raise ValueError("n_t0 must be a multiple of t0s_per_pod")

    @property
    def uplinks_per_t0(self) -> int:
        return self.hosts_per_t0 // self.oversubscription


class FatTree:
    """A built fat tree: hosts, switches, cables and wired ports."""

    def __init__(self, engine: Engine, params: TopologyParams) -> None:
        params.validate()
        self.engine = engine
        self.params = params
        self.rng = random.Random(params.seed)
        self.hosts: List[Host] = []
        self.t0s: List[Switch] = []
        self.t1s: List[Switch] = []
        self.t2s: List[Switch] = []
        self.cables: Dict[str, Cable] = {}
        self._build()

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def rtt_ps(self) -> int:
        """Network-wide base RTT (no queueing), ps."""
        one_way_hops = 4 if self.params.tiers == 2 else 6
        prop = 2 * one_way_hops * self.params.hop_latency_ns * NS
        # add serialization of one MTU each way plus the returning ACK
        data_ser = _tx_ps(self.params.mtu_bytes, self._rate())
        return prop + 2 * data_ser

    def bdp_bytes(self) -> int:
        """Bandwidth-delay product of the host link, bytes."""
        rate = self.params.host_link_gbps or self.params.link_gbps
        return int(gbps_to_bytes_per_us(rate) * self.rtt_ps() / US)

    def _rate(self) -> float:
        return self.params.link_gbps

    def queue_capacity(self) -> int:
        if self.params.queue_capacity_bytes is not None:
            return self.params.queue_capacity_bytes
        return max(self.bdp_bytes(), 8 * self.params.mtu_bytes)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _mk_port(self, name: str, rate: float) -> EgressPort:
        cap = self.queue_capacity()
        return EgressPort(
            self.engine, name,
            rate_gbps=rate,
            latency_ps=self.params.hop_latency_ns * NS,
            capacity_bytes=cap,
            kmin_bytes=int(cap * self.params.kmin_fraction),
            kmax_bytes=int(cap * self.params.kmax_fraction),
            rng=self.rng,
            ecn_enabled=self.params.ecn_enabled,
            trim_enabled=self.params.trim_enabled,
        )

    def _wire(self, a: Node, b: Node, a_name: str, b_name: str,
              rate: float, cable_name: str) -> Cable:
        pa = self._mk_port(a_name, rate)
        pb = self._mk_port(b_name, rate)
        pa.peer = b
        pb.peer = a
        cable = Cable(cable_name)
        cable.attach(pa, pb)
        self.cables[cable_name] = cable
        return cable

    def _build(self) -> None:
        p = self.params
        n_t0 = p.n_hosts // p.hosts_per_t0
        host_rate = p.host_link_gbps or p.link_gbps

        self.hosts = [Host(i) for i in range(p.n_hosts)]
        self.t0s = [
            Switch(f"t0_{i}", 0, salt=self.rng.getrandbits(63),
                   rng=self.rng, mode=p.switch_mode)
            for i in range(n_t0)
        ]

        # hosts <-> T0
        for h in self.hosts:
            t0 = self.t0s[h.host_id // p.hosts_per_t0]
            cable = self._wire(
                h, t0, f"h{h.host_id}->{t0.name}", f"{t0.name}->h{h.host_id}",
                host_rate, f"h{h.host_id}<->{t0.name}")
            h.port = cable.a_port
            # The sender's own NIC queue is not a fabric queue: it holds
            # the flow's window while the link serializes, never ECN-marks
            # (a NIC would be marking its own traffic) and never drops.
            h.port.ecn_enabled = False
            h.port.trim_enabled = False
            h.port.capacity_bytes = 1 << 30
            t0.down_route[h.host_id] = cable.b_port

        if p.tiers == 2:
            self._build_tier2(n_t0)
        else:
            self._build_tier3(n_t0)

    def _build_tier2(self, n_t0: int) -> None:
        p = self.params
        n_t1 = p.uplinks_per_t0
        self.t1s = [
            Switch(f"t1_{j}", 1, salt=self.rng.getrandbits(63),
                   rng=self.rng, mode=p.switch_mode)
            for j in range(n_t1)
        ]
        for t0 in self.t0s:
            for t1 in self.t1s:
                cable = self._wire(
                    t0, t1, f"{t0.name}->{t1.name}", f"{t1.name}->{t0.name}",
                    p.link_gbps, f"{t0.name}<->{t1.name}")
                cable.a_port.owner = t0
                t0.up_ports.append(cable.a_port)
                t1_port = cable.b_port
                for h in self._hosts_of_t0(t0):
                    t1.down_route[h] = t1_port

    def _build_tier3(self, n_t0: int) -> None:
        p = self.params
        n_pods = n_t0 // p.t0s_per_pod
        t1s_per_pod = p.uplinks_per_t0
        n_t2 = t1s_per_pod * p.t2s_per_t1

        self.t2s = [
            Switch(f"t2_{c}", 2, salt=self.rng.getrandbits(63),
                   rng=self.rng, mode=p.switch_mode)
            for c in range(n_t2)
        ]
        for pod in range(n_pods):
            pod_t0s = self.t0s[pod * p.t0s_per_pod:(pod + 1) * p.t0s_per_pod]
            pod_hosts = [h for t0 in pod_t0s for h in self._hosts_of_t0(t0)]
            for k in range(t1s_per_pod):
                t1 = Switch(f"t1_{pod}_{k}", 1,
                            salt=self.rng.getrandbits(63),
                            rng=self.rng, mode=p.switch_mode)
                self.t1s.append(t1)
                # T0 <-> T1 inside the pod
                for t0 in pod_t0s:
                    cable = self._wire(
                        t0, t1, f"{t0.name}->{t1.name}",
                        f"{t1.name}->{t0.name}",
                        p.link_gbps, f"{t0.name}<->{t1.name}")
                    cable.a_port.owner = t0
                    t0.up_ports.append(cable.a_port)
                    for h in self._hosts_of_t0(t0):
                        t1.down_route[h] = cable.b_port
                # T1 <-> its T2 group (classic fat-tree striping: T1 #k in
                # every pod shares the same group of cores).
                for u in range(p.t2s_per_t1):
                    t2 = self.t2s[k * p.t2s_per_t1 + u]
                    cable = self._wire(
                        t1, t2, f"{t1.name}->{t2.name}",
                        f"{t2.name}->{t1.name}",
                        p.link_gbps, f"{t1.name}<->{t2.name}")
                    cable.a_port.owner = t1
                    t1.up_ports.append(cable.a_port)
                    for h in pod_hosts:
                        t2.down_route[h] = cable.b_port

    def _hosts_of_t0(self, t0: Switch) -> List[int]:
        i = self.t0s.index(t0)
        hp = self.params.hosts_per_t0
        return list(range(i * hp, (i + 1) * hp))

    # ------------------------------------------------------------------
    # convenience accessors for experiments
    # ------------------------------------------------------------------
    def t0_of_host(self, host_id: int) -> Switch:
        return self.t0s[host_id // self.params.hosts_per_t0]

    def t0_uplink_cables(self) -> List[Cable]:
        """All T0<->T1 cables (the paper's usual failure targets)."""
        out = []
        for name, cable in self.cables.items():
            if name.startswith("t0_") and "<->t1" in name:
                out.append(cable)
        return out

    def core_cables(self) -> List[Cable]:
        """T1<->T2 cables of a 3-tier tree."""
        return [c for n, c in self.cables.items()
                if n.startswith("t1_") and "<->t2" in n]

    def cables_of_switch(self, switch: Switch) -> List[Cable]:
        """Every cable with one end at ``switch`` (for switch failures)."""
        out = []
        for cable in self.cables.values():
            for port in (cable.a_port, cable.b_port):
                if port is not None and port.peer is switch:
                    out.append(cable)
                    break
            else:
                # also match by name prefix (port.peer is the *other* end)
                if f"{switch.name}<->" in cable.name or \
                        f"<->{switch.name}" in cable.name:
                    out.append(cable)
        return out

    def all_switches(self) -> List[Switch]:
        return self.t0s + self.t1s + self.t2s


def _tx_ps(size_bytes: int, gbps: float) -> int:
    from .units import tx_time_ps
    return tx_time_ps(size_bytes, gbps)
