"""Loss-type discrimination (Appendix A).

REPS should enter freezing mode only for *failure* losses, not for
congestion drops.  The paper gives two strategies:

1. **Packet trimming**: congestion drops become trimmed headers + NACKs
   (handled natively by the transport — NACKs never freeze).
2. **RTT heuristic** (no trimming): "analyze the maximum round-trip time
   observed during a period preceding the timeout event.  If the maximum
   RTT immediately before the timeout is high, the packet was likely
   lost due to congestion; if it was low, more likely a failure."

:class:`RttLossClassifier` implements strategy 2: a sliding window of
RTT samples; a timeout is classified as a *failure* when the recent
maximum RTT sits below ``congested_factor`` x base RTT (queues were
short, so the loss cannot be a congestion drop).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class RttLossClassifier:
    """Sliding-window RTT observer that labels timeouts.

    Args:
        base_rtt_ps: the uncongested network RTT.
        window_ps: how far back RTT samples count as "immediately
            before" a timeout.
        congested_factor: recent max RTT above ``factor * base_rtt``
            means queues were deep, i.e. a congestion loss.
    """

    def __init__(self, base_rtt_ps: int, *, window_ps: int = 0,
                 congested_factor: float = 2.0) -> None:
        if base_rtt_ps <= 0:
            raise ValueError("base_rtt_ps must be positive")
        if congested_factor <= 1.0:
            raise ValueError("congested_factor must exceed 1.0")
        self.base_rtt_ps = base_rtt_ps
        self.window_ps = window_ps or 8 * base_rtt_ps
        self.congested_factor = congested_factor
        self._samples: Deque[Tuple[int, int]] = deque()  # (t, rtt)

    def observe(self, now: int, rtt_ps: int) -> None:
        """Record one ACK's measured RTT."""
        self._samples.append((now, rtt_ps))
        self._expire(now)

    def _expire(self, now: int) -> None:
        horizon = now - self.window_ps
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def recent_max_rtt(self, now: int) -> int:
        """Max RTT observed within the window before ``now`` (0 if no
        samples — an idle path tells us nothing about congestion)."""
        self._expire(now)
        return max((r for _, r in self._samples), default=0)

    def classify_timeout(self, now: int) -> str:
        """Label a timeout ``"failure"`` or ``"congestion"``.

        No recent samples also reads as failure: a healthy-but-congested
        path would at least be returning *some* (slow) ACKs.
        """
        max_rtt = self.recent_max_rtt(now)
        threshold = self.congested_factor * self.base_rtt_ps
        return "congestion" if max_rtt >= threshold else "failure"

    @property
    def sample_count(self) -> int:
        return len(self._samples)
