"""Time and bandwidth units for the simulator.

All simulator timestamps are integer **picoseconds**.  Integer time avoids
floating-point event reordering and makes serialization delays exact:
at 400 Gbps one byte takes exactly 20 ps.
"""

from __future__ import annotations

PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

BITS_PER_BYTE = 8


def tx_time_ps(size_bytes: int, gbps: float) -> int:
    """Serialization delay of ``size_bytes`` on a ``gbps`` link, in ps.

    1 Gbps = 1 bit/ns = 8000 ps/byte / gbps.  Rounded up so a transmission
    never takes zero time.
    """
    if gbps <= 0:
        raise ValueError(f"link rate must be positive, got {gbps}")
    ps = size_bytes * BITS_PER_BYTE * 1000 / gbps
    ips = int(ps)
    return ips if ips == ps else ips + 1


def gbps_to_bytes_per_us(gbps: float) -> float:
    """Convert a link rate to bytes per microsecond."""
    return gbps * 1000 / BITS_PER_BYTE


def ps_to_us(ps: int) -> float:
    """Convert picoseconds to (float) microseconds."""
    return ps / US


def us_to_ps(us: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return int(us * US)
