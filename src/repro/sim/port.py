"""Egress port: FIFO queue + transmitter + RED-style ECN marking.

One :class:`EgressPort` models one direction of a link: a bounded FIFO of
data packets, a strict-priority control queue (ACKs, NACKs and trimmed
headers — the NDP/UET discipline), a serializing transmitter, and the wire
propagation to the peer node.

ECN marking follows the paper's setup (Sec. 2.1/4.1): packets are marked
with probability rising linearly from 0 at ``Kmin`` to 1 at ``Kmax`` of
the instantaneous queue occupancy, evaluated at enqueue.
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from .engine import Engine
from .link import Cable
from .packet import Packet
from .units import tx_time_ps

if TYPE_CHECKING:  # pragma: no cover
    from .switch import Node

#: Control queue capacity, bytes.  Control packets are 64 B, so this is
#: deep enough that control loss only occurs under pathological incast.
CONTROL_QUEUE_CAPACITY = 4 * 1024 * 1024


class PortStats:
    """Counters accumulated by one egress port."""

    __slots__ = (
        "bytes_tx", "pkts_tx", "drops_overflow", "drops_link_down",
        "drops_ber", "trims", "ecn_marks", "pkts_enqueued",
    )

    def __init__(self) -> None:
        self.bytes_tx = 0
        self.pkts_tx = 0
        self.drops_overflow = 0
        self.drops_link_down = 0
        self.drops_ber = 0
        self.trims = 0
        self.ecn_marks = 0
        self.pkts_enqueued = 0

    @property
    def total_drops(self) -> int:
        return self.drops_overflow + self.drops_link_down + self.drops_ber


class EgressPort:
    """One direction of a link: queue, transmitter, and wire."""

    __slots__ = (
        "engine", "name", "rate_gbps", "latency_ps", "peer", "cable",
        "capacity_bytes", "kmin_bytes", "kmax_bytes", "ecn_enabled",
        "trim_enabled", "rng", "stats", "excluded",
        "_data_q", "_ctrl_q", "_data_bytes", "_ctrl_bytes", "_busy",
        "on_drop",
    )

    def __init__(
        self,
        engine: Engine,
        name: str,
        *,
        rate_gbps: float,
        latency_ps: int,
        capacity_bytes: int,
        kmin_bytes: int,
        kmax_bytes: int,
        rng: random.Random,
        ecn_enabled: bool = True,
        trim_enabled: bool = False,
    ) -> None:
        self.engine = engine
        self.name = name
        self.rate_gbps = rate_gbps
        self.latency_ps = latency_ps
        self.peer: Optional["Node"] = None
        self.cable: Optional[Cable] = None
        self.capacity_bytes = capacity_bytes
        self.kmin_bytes = kmin_bytes
        self.kmax_bytes = kmax_bytes
        self.ecn_enabled = ecn_enabled
        self.trim_enabled = trim_enabled
        self.rng = rng
        self.stats = PortStats()
        #: set True when the control plane excludes this port from ECMP
        #: groups after a failure (Sec. 3.2's "10 ms to update the group").
        self.excluded = False
        self._data_q: deque = deque()
        self._ctrl_q: deque = deque()
        self._data_bytes = 0
        self._ctrl_bytes = 0
        self._busy = False
        #: optional hook invoked with each dropped data packet (used by the
        #: transport for loss accounting in tests; real senders learn about
        #: loss only via timeouts / NACKs).
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    # queue state
    # ------------------------------------------------------------------
    @property
    def queue_bytes(self) -> int:
        """Bytes of data waiting (excludes the in-flight packet)."""
        return self._data_bytes

    @property
    def total_queue_bytes(self) -> int:
        return self._data_bytes + self._ctrl_bytes

    @property
    def busy(self) -> bool:
        return self._busy

    # ------------------------------------------------------------------
    # enqueue path
    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> None:
        """Accept a packet for transmission (or drop / trim it)."""
        self.stats.pkts_enqueued += 1
        if pkt.is_control:
            if self._ctrl_bytes + pkt.size > CONTROL_QUEUE_CAPACITY:
                self._drop(pkt, "overflow")
                return
            self._ctrl_q.append(pkt)
            self._ctrl_bytes += pkt.size
        else:
            if self._data_bytes + pkt.size > self.capacity_bytes:
                if self.trim_enabled:
                    pkt.trim()
                    self.stats.trims += 1
                    self._ctrl_q.append(pkt)
                    self._ctrl_bytes += pkt.size
                else:
                    self._drop(pkt, "overflow")
                    return
            else:
                if self.ecn_enabled and not pkt.ecn:
                    self._maybe_mark(pkt)
                self._data_q.append(pkt)
                self._data_bytes += pkt.size
        if not self._busy:
            self._start_next()

    def _maybe_mark(self, pkt: Packet) -> None:
        """RED-style linear marking on instantaneous occupancy."""
        q = self._data_bytes
        if q <= self.kmin_bytes:
            return
        if q >= self.kmax_bytes:
            pkt.ecn = True
        else:
            p = (q - self.kmin_bytes) / (self.kmax_bytes - self.kmin_bytes)
            if self.rng.random() < p:
                pkt.ecn = True
        if pkt.ecn:
            self.stats.ecn_marks += 1

    def _drop(self, pkt: Packet, reason: str) -> None:
        if reason == "overflow":
            self.stats.drops_overflow += 1
        elif reason == "link_down":
            self.stats.drops_link_down += 1
        else:
            self.stats.drops_ber += 1
        if self.on_drop is not None:
            self.on_drop(pkt)

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        if self._ctrl_q:
            pkt = self._ctrl_q.popleft()
            self._ctrl_bytes -= pkt.size
        elif self._data_q:
            pkt = self._data_q.popleft()
            self._data_bytes -= pkt.size
        else:
            return
        self._busy = True
        self.engine.after(tx_time_ps(pkt.size, self.rate_gbps),
                          self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self._busy = False
        self.stats.bytes_tx += pkt.size
        self.stats.pkts_tx += 1
        cable = self.cable
        if cable is not None and cable.down:
            self._drop(pkt, "link_down")
        elif cable is not None and cable.ber > 0.0 and \
                self.rng.random() < cable.ber:
            self._drop(pkt, "ber")
        else:
            self.engine.after(self.latency_ps, self._deliver, pkt)
        self._start_next()

    def _deliver(self, pkt: Packet) -> None:
        cable = self.cable
        if cable is not None and cable.down:
            # the cable died while the packet was in flight
            self._drop(pkt, "link_down")
            return
        assert self.peer is not None, f"port {self.name} has no peer"
        self.peer.receive(pkt)
