"""Egress port: FIFO queue + transmitter + RED-style ECN marking.

One :class:`EgressPort` models one direction of a link: a bounded FIFO of
data packets, a strict-priority control queue (ACKs, NACKs and trimmed
headers — the NDP/UET discipline), a serializing transmitter, and the wire
propagation to the peer node.

ECN marking follows the paper's setup (Sec. 2.1/4.1): packets are marked
with probability rising linearly from 0 at ``Kmin`` to 1 at ``Kmax`` of
the instantaneous queue occupancy, evaluated at enqueue.  Degenerate
``Kmin == Kmax`` configs mark as a hard threshold (mark iff
``queue >= Kmax``); ``Kmin > Kmax`` is rejected at construction.

Counters and queue byte-tracking live in one flat ``array('q')`` per
port (htsim-style array-backed state): the transmit/enqueue hot paths
touch a single local array reference instead of a tree of attribute
loads, and :class:`PortStats` is a named view over the same array so
telemetry keeps its attribute API.
"""

from __future__ import annotations

import random
from array import array
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from .engine import Engine
from .link import Cable
from .packet import CONTROL_PACKET_BYTES, Packet
from .units import tx_time_ps

if TYPE_CHECKING:  # pragma: no cover
    from .switch import Node, Switch

#: Control queue capacity, bytes.  Control packets are 64 B, so this is
#: deep enough that control loss only occurs under pathological incast.
CONTROL_QUEUE_CAPACITY = 4 * 1024 * 1024

# Indices into the per-port counter array (shared by EgressPort hot paths
# and the PortStats view).
_BYTES_TX = 0
_PKTS_TX = 1
_DROPS_OVERFLOW = 2
_DROPS_LINK_DOWN = 3
_DROPS_BER = 4
_TRIMS = 5
_ECN_MARKS = 6
_PKTS_ENQUEUED = 7
_DATA_BYTES = 8
_CTRL_BYTES = 9
_N_COUNTERS = 10


def _counter(idx: int) -> property:
    def _get(self) -> int:
        return self._c[idx]

    def _set(self, value: int) -> None:
        self._c[idx] = value

    return property(_get, _set)


class PortStats:
    """Counters accumulated by one egress port.

    A view over the port's flat counter array: attribute reads/writes
    map to array cells, so the port's hot path and its telemetry always
    agree without copying.
    """

    __slots__ = ("_c",)

    def __init__(self, counters: Optional[array] = None) -> None:
        self._c = counters if counters is not None \
            else array("q", [0] * _N_COUNTERS)

    bytes_tx = _counter(_BYTES_TX)
    pkts_tx = _counter(_PKTS_TX)
    drops_overflow = _counter(_DROPS_OVERFLOW)
    drops_link_down = _counter(_DROPS_LINK_DOWN)
    drops_ber = _counter(_DROPS_BER)
    trims = _counter(_TRIMS)
    ecn_marks = _counter(_ECN_MARKS)
    pkts_enqueued = _counter(_PKTS_ENQUEUED)

    @property
    def total_drops(self) -> int:
        c = self._c
        return c[_DROPS_OVERFLOW] + c[_DROPS_LINK_DOWN] + c[_DROPS_BER]


class EgressPort:
    """One direction of a link: queue, transmitter, and wire."""

    __slots__ = (
        "engine", "name", "latency_ps", "peer", "cable",
        "capacity_bytes", "kmin_bytes", "kmax_bytes", "ecn_enabled",
        "trim_enabled", "ctrl_capacity_bytes", "rng", "stats", "owner",
        "_rate_gbps", "_excluded", "_tx_cache", "_c", "_mark_floor",
        "_data_q", "_ctrl_q", "_busy", "on_drop", "_rx",
    )

    def __init__(
        self,
        engine: Engine,
        name: str,
        *,
        rate_gbps: float,
        latency_ps: int,
        capacity_bytes: int,
        kmin_bytes: int,
        kmax_bytes: int,
        rng: random.Random,
        ecn_enabled: bool = True,
        trim_enabled: bool = False,
        ctrl_capacity_bytes: int = CONTROL_QUEUE_CAPACITY,
    ) -> None:
        if not 0 <= kmin_bytes <= kmax_bytes:
            raise ValueError(
                f"ECN thresholds must satisfy 0 <= kmin <= kmax, "
                f"got kmin={kmin_bytes} kmax={kmax_bytes}"
            )
        self.engine = engine
        self.name = name
        self._rate_gbps = rate_gbps
        self.latency_ps = latency_ps
        self.peer: Optional["Node"] = None
        #: the peer's bound ``receive``, cached at first delivery (the
        #: peer is wired once, before any packet can possibly arrive)
        self._rx: Optional[Callable[[Packet], None]] = None
        self.cable: Optional[Cable] = None
        self.capacity_bytes = capacity_bytes
        self.kmin_bytes = kmin_bytes
        self.kmax_bytes = kmax_bytes
        self.ecn_enabled = ecn_enabled
        self.trim_enabled = trim_enabled
        self.ctrl_capacity_bytes = ctrl_capacity_bytes
        #: occupancy at or below which marking can never fire: kmin in
        #: the linear regime, kmax-1 for the degenerate hard threshold
        self._mark_floor = kmin_bytes if kmin_bytes < kmax_bytes \
            else kmax_bytes - 1
        self.rng = rng
        self._c = array("q", [0] * _N_COUNTERS)
        self.stats = PortStats(self._c)
        #: the switch whose uplink group contains this port (None for
        #: host NICs / down ports); lets ``excluded``/``rate_gbps``
        #: writes invalidate that switch's cached ECMP/WCMP groups
        self.owner: Optional["Switch"] = None
        #: set True when the control plane excludes this port from ECMP
        #: groups after a failure (Sec. 3.2's "10 ms to update the group").
        self._excluded = False
        #: per-packet-size serialization times at the current rate
        self._tx_cache: dict = {}
        self._data_q: deque = deque()
        self._ctrl_q: deque = deque()
        self._busy = False
        #: optional hook invoked with each dropped data packet (used by the
        #: transport for loss accounting in tests; real senders learn about
        #: loss only via timeouts / NACKs).
        self.on_drop: Optional[Callable[[Packet], None]] = None

    # ------------------------------------------------------------------
    # cached-state invalidation
    # ------------------------------------------------------------------
    @property
    def rate_gbps(self) -> float:
        return self._rate_gbps

    @rate_gbps.setter
    def rate_gbps(self, gbps: float) -> None:
        self._rate_gbps = gbps
        self._tx_cache.clear()
        owner = self.owner
        if owner is not None:
            owner._healthy_cache_dirty = True

    @property
    def excluded(self) -> bool:
        return self._excluded

    @excluded.setter
    def excluded(self, value: bool) -> None:
        self._excluded = value
        owner = self.owner
        if owner is not None:
            owner._healthy_cache_dirty = True

    # ------------------------------------------------------------------
    # queue state
    # ------------------------------------------------------------------
    @property
    def queue_bytes(self) -> int:
        """Bytes of data waiting (excludes the in-flight packet)."""
        return self._c[_DATA_BYTES]

    @property
    def total_queue_bytes(self) -> int:
        c = self._c
        return c[_DATA_BYTES] + c[_CTRL_BYTES]

    @property
    def busy(self) -> bool:
        return self._busy

    # ------------------------------------------------------------------
    # enqueue path
    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> None:
        """Accept a packet for transmission (or drop / trim it)."""
        c = self._c
        c[_PKTS_ENQUEUED] += 1
        size = pkt.size
        if pkt.is_ack or pkt.is_nack or pkt.trimmed:
            if c[_CTRL_BYTES] + size > self.ctrl_capacity_bytes:
                self._drop(pkt, "overflow")
                return
            self._ctrl_q.append(pkt)
            c[_CTRL_BYTES] += size
        elif c[_DATA_BYTES] + size > self.capacity_bytes:
            if not self.trim_enabled or (
                    c[_CTRL_BYTES] + CONTROL_PACKET_BYTES
                    > self.ctrl_capacity_bytes):
                # no trimming, or the trimmed header would itself overflow
                # the control queue: the packet is lost either way
                self._drop(pkt, "overflow")
                return
            pkt.trim()
            c[_TRIMS] += 1
            self._ctrl_q.append(pkt)
            c[_CTRL_BYTES] += pkt.size
        else:
            if self.ecn_enabled and not pkt.ecn \
                    and c[_DATA_BYTES] > self._mark_floor:
                self._maybe_mark(pkt)
            self._data_q.append(pkt)
            c[_DATA_BYTES] += size
        if not self._busy:
            self._start_next()

    def enqueue_burst(self, pkts) -> None:
        """Enqueue several packets handed over at the same instant.

        Semantically identical to calling :meth:`enqueue` per packet
        (same drop/trim/mark decisions in the same order); exists so a
        sender flushing a window's worth of packets pays the attribute
        lookups once.
        """
        c = self._c
        ctrl_cap = self.ctrl_capacity_bytes
        capacity = self.capacity_bytes
        data_q = self._data_q
        ctrl_q = self._ctrl_q
        ecn_on = self.ecn_enabled
        for pkt in pkts:
            c[_PKTS_ENQUEUED] += 1
            size = pkt.size
            if pkt.is_ack or pkt.is_nack or pkt.trimmed:
                if c[_CTRL_BYTES] + size > ctrl_cap:
                    self._drop(pkt, "overflow")
                    continue
                ctrl_q.append(pkt)
                c[_CTRL_BYTES] += size
            elif c[_DATA_BYTES] + size > capacity:
                if not self.trim_enabled or (
                        c[_CTRL_BYTES] + CONTROL_PACKET_BYTES > ctrl_cap):
                    self._drop(pkt, "overflow")
                    continue
                pkt.trim()
                c[_TRIMS] += 1
                ctrl_q.append(pkt)
                c[_CTRL_BYTES] += pkt.size
            else:
                if ecn_on and not pkt.ecn \
                        and c[_DATA_BYTES] > self._mark_floor:
                    self._maybe_mark(pkt)
                data_q.append(pkt)
                c[_DATA_BYTES] += size
            if not self._busy:
                self._start_next()

    def _maybe_mark(self, pkt: Packet) -> None:
        """RED-style linear marking on instantaneous occupancy."""
        q = self._c[_DATA_BYTES]
        kmin = self.kmin_bytes
        kmax = self.kmax_bytes
        if kmin == kmax:
            # degenerate config: a hard threshold, no linear region
            if q >= kmax:
                pkt.ecn = True
                self._c[_ECN_MARKS] += 1
            return
        if q <= kmin:
            return
        if q >= kmax:
            pkt.ecn = True
        else:
            p = (q - kmin) / (kmax - kmin)
            if self.rng.random() < p:
                pkt.ecn = True
        if pkt.ecn:
            self._c[_ECN_MARKS] += 1

    def _drop(self, pkt: Packet, reason: str) -> None:
        if reason == "overflow":
            self._c[_DROPS_OVERFLOW] += 1
        elif reason == "link_down":
            self._c[_DROPS_LINK_DOWN] += 1
        else:
            self._c[_DROPS_BER] += 1
        if self.on_drop is not None:
            self.on_drop(pkt)

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def _start_next(self) -> None:
        c = self._c
        if self._ctrl_q:
            pkt = self._ctrl_q.popleft()
            c[_CTRL_BYTES] -= pkt.size
        elif self._data_q:
            pkt = self._data_q.popleft()
            c[_DATA_BYTES] -= pkt.size
        else:
            return
        self._busy = True
        size = pkt.size
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = self._tx_cache[size] = tx_time_ps(size, self._rate_gbps)
        engine = self.engine
        engine.at(engine.now + tx, self._tx_done, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        c = self._c
        c[_BYTES_TX] += pkt.size
        c[_PKTS_TX] += 1
        engine = self.engine
        cable = self.cable
        if cable is not None and cable.down:
            self._drop(pkt, "link_down")
        elif cable is not None and cable.ber > 0.0 and \
                self.rng.random() < cable.ber:
            self._drop(pkt, "ber")
        else:
            engine.at(engine.now + self.latency_ps, self._deliver, pkt)
        # _start_next, inlined: this port's transmitter just went idle
        if self._ctrl_q:
            nxt = self._ctrl_q.popleft()
            c[_CTRL_BYTES] -= nxt.size
        elif self._data_q:
            nxt = self._data_q.popleft()
            c[_DATA_BYTES] -= nxt.size
        else:
            self._busy = False
            return
        size = nxt.size
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = self._tx_cache[size] = tx_time_ps(size, self._rate_gbps)
        engine.at(engine.now + tx, self._tx_done, nxt)

    def _deliver(self, pkt: Packet) -> None:
        cable = self.cable
        if cable is not None and cable.down:
            # the cable died while the packet was in flight
            self._drop(pkt, "link_down")
            return
        rx = self._rx
        if rx is None:
            peer = self.peer
            assert peer is not None, f"port {self.name} has no peer"
            rx = self._rx = peer.receive
        rx(pkt)
