"""Congestion-control interface (Sec. 2.1 / 4.5.3).

REPS is CC-agnostic as long as the CC tolerates out-of-order delivery and
reacts to ECN; the three algorithms here mirror the paper's evaluation
set: a DCTCP variant (the MPRDMA tuning used in all simulation baselines),
an EQDS-like fixed-window receiver-driven stand-in, and an "internal"
ECN-fraction AIMD controller standing in for the proprietary CC of the
FPGA testbed.
"""

from __future__ import annotations

from typing import Callable, Dict


class CongestionControl:
    """Window-based congestion control, in bytes."""

    name = "base"

    def __init__(self, *, mtu: int, init_cwnd: int,
                 min_cwnd: int, max_cwnd: int) -> None:
        self.mtu = mtu
        self.min_cwnd = min_cwnd
        self.max_cwnd = max_cwnd
        self.cwnd = float(min(max(init_cwnd, min_cwnd), max_cwnd))

    # ------------------------------------------------------------------
    def on_ack(self, acked_bytes: int, ecn: bool, now: int) -> None:
        """One ACK processed (possibly covering several packets)."""
        return

    def on_nack(self, now: int) -> None:
        """A trimmed-packet NACK: congestion loss."""
        return

    def on_timeout(self, now: int) -> None:
        """An RTO fired: severe loss (congestion or failure)."""
        return

    # ------------------------------------------------------------------
    def _clamp(self) -> None:
        if self.cwnd < self.min_cwnd:
            self.cwnd = float(self.min_cwnd)
        elif self.cwnd > self.max_cwnd:
            self.cwnd = float(self.max_cwnd)

    @property
    def cwnd_pkts(self) -> int:
        return max(1, int(self.cwnd) // self.mtu)


CcFactory = Callable[..., CongestionControl]

_REGISTRY: Dict[str, CcFactory] = {}


def register(name: str):
    def deco(cls):
        if name in _REGISTRY:
            raise ValueError(f"duplicate congestion control {name!r}")
        _REGISTRY[name] = cls
        return cls
    return deco


def make_cc(name: str, *, mtu: int, init_cwnd: int,
            min_cwnd: int, max_cwnd: int, rtt_ps: int) -> CongestionControl:
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown congestion control {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(mtu=mtu, init_cwnd=init_cwnd, min_cwnd=min_cwnd,
               max_cwnd=max_cwnd, rtt_ps=rtt_ps)


def available() -> list:
    return sorted(_REGISTRY)
