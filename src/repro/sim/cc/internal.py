""""Internal" CC: a stand-in for the proprietary FPGA-testbed algorithm.

The paper describes it only as relying on "ECN marking, congestion
notification packets, and per-flow congestion window adjustments"
(Sec. 4.1).  We implement a round-based AIMD on the per-RTT ECN fraction:
once per RTT the window shrinks multiplicatively in proportion to the
fraction of marked ACKs, or grows by one MTU if the round was clean.
This is a *substitution* (documented in DESIGN.md): any reasonable
ECN-window controller demonstrates the Sec. 4.5.3 claim that REPS is
CC-agnostic.
"""

from __future__ import annotations

from .base import CongestionControl, register


@register("internal")
class InternalCc(CongestionControl):
    """Round-based ECN-fraction AIMD."""

    name = "internal"

    #: multiplicative-decrease strength
    beta = 0.5
    #: ECN fraction below which a round counts as clean
    clean_threshold = 0.05

    def __init__(self, *, mtu: int, init_cwnd: int, min_cwnd: int,
                 max_cwnd: int, rtt_ps: int) -> None:
        super().__init__(mtu=mtu, init_cwnd=init_cwnd,
                         min_cwnd=min_cwnd, max_cwnd=max_cwnd)
        self.rtt_ps = rtt_ps
        self._round_start = 0
        self._acks = 0
        self._ecn = 0

    def on_ack(self, acked_bytes: int, ecn: bool, now: int) -> None:
        if self._acks == 0:
            self._round_start = now
        self._acks += 1
        if ecn:
            self._ecn += 1
        if now - self._round_start >= self.rtt_ps:
            frac = self._ecn / self._acks
            if frac > self.clean_threshold:
                self.cwnd *= max(0.3, 1.0 - self.beta * frac)
            else:
                self.cwnd += self.mtu
            self._clamp()
            self._acks = 0
            self._ecn = 0

    def on_nack(self, now: int) -> None:
        self.cwnd -= self.mtu
        self._clamp()

    def on_timeout(self, now: int) -> None:
        self.cwnd *= 0.5
        self._clamp()
