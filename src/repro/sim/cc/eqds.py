"""EQDS-like congestion control (Olteanu et al., NSDI '22).

EQDS moves queues to the edge: senders keep a fixed window of one BDP and
the fabric relies on packet trimming plus receiver pacing to absorb
overload.  We model the sender-visible contract — a fixed BDP window that
never reacts to ECN (trims handle overload) — which is the property that
matters for the Fig. 15 "REPS helps any CC" comparison.
"""

from __future__ import annotations

from .base import CongestionControl, register


@register("eqds")
class EqdsCc(CongestionControl):
    """Fixed one-BDP window; loss recovery is the transport's job."""

    name = "eqds"

    def __init__(self, *, mtu: int, init_cwnd: int, min_cwnd: int,
                 max_cwnd: int, rtt_ps: int = 0) -> None:
        super().__init__(mtu=mtu, init_cwnd=init_cwnd,
                         min_cwnd=min_cwnd, max_cwnd=max_cwnd)
        #: the fixed window EQDS pins the sender to (one BDP)
        self._target = self.cwnd

    def on_timeout(self, now: int) -> None:
        # repeated RTOs (severe failure) halve the window so a blackholed
        # flow cannot keep a full BDP in flight forever
        self.cwnd *= 0.5
        self._clamp()

    def on_ack(self, acked_bytes: int, ecn: bool, now: int) -> None:
        # restore toward the fixed target after timeout-driven shrinking;
        # ECN never moves the window (trims absorb overload in EQDS)
        if self.cwnd < self._target:
            self.cwnd = min(self._target,
                            self.cwnd + self.mtu * self.mtu / self.cwnd)
