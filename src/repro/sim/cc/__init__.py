"""Congestion-control algorithms for the out-of-order transport."""

from .base import CongestionControl, available, make_cc, register
from .dctcp import DctcpCc
from .eqds import EqdsCc
from .internal import InternalCc

__all__ = [
    "CongestionControl", "DctcpCc", "EqdsCc", "InternalCc",
    "available", "make_cc", "register",
]
