"""DCTCP variant used by MPRDMA — the paper's default simulation CC.

Per Sec. 4.1: "It applies per-ACK congestion window updates, allows the
receiver to accept and acknowledge out-of-order packets, and reduces the
congestion window by one MTU in case of packet drops."

Per-ACK behaviour:
- ECN fraction is tracked by the standard DCTCP EWMA (gain 1/16).
- a marked ACK shrinks the window by ``alpha * MTU / 2`` (the per-ACK
  spreading of DCTCP's once-per-window ``cwnd *= 1 - alpha/2``),
- an unmarked ACK grows it additively by ``MTU^2 / cwnd`` (one MTU/RTT).
"""

from __future__ import annotations

from .base import CongestionControl, register

#: DCTCP EWMA gain g
_G = 1.0 / 16.0


@register("dctcp")
class DctcpCc(CongestionControl):
    """Per-ACK DCTCP with one-MTU drop decrease (the MPRDMA tuning)."""

    name = "dctcp"

    def __init__(self, *, mtu: int, init_cwnd: int, min_cwnd: int,
                 max_cwnd: int, rtt_ps: int = 0) -> None:
        super().__init__(mtu=mtu, init_cwnd=init_cwnd,
                         min_cwnd=min_cwnd, max_cwnd=max_cwnd)
        self.alpha = 0.0

    def on_ack(self, acked_bytes: int, ecn: bool, now: int) -> None:
        self.alpha = (1.0 - _G) * self.alpha + _G * (1.0 if ecn else 0.0)
        pkts = max(1, acked_bytes // self.mtu)
        if ecn:
            self.cwnd -= self.alpha * self.mtu / 2.0 * pkts
        else:
            self.cwnd += self.mtu * self.mtu / self.cwnd * pkts
        self._clamp()

    def on_nack(self, now: int) -> None:
        # "reduces the congestion window by one MTU in case of packet drops"
        self.cwnd -= self.mtu
        self._clamp()

    def on_timeout(self, now: int) -> None:
        self.cwnd -= self.mtu
        self._clamp()
