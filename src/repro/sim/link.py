"""Cables: the failure domain shared by both directions of a link.

An :class:`EgressPort` (see ``port.py``) models one *direction* of a link;
the :class:`Cable` is the physical object both directions hang off.  Link
failures, bit-error-rate loss and bandwidth degradation are properties of
the cable, so failing a cable silently kills traffic both ways — exactly
the failure the paper's freezing mode is designed to dodge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .port import EgressPort


class Cable:
    """A bidirectional physical link between two nodes.

    Attributes:
        name: human-readable identifier, e.g. ``"t0_3<->t1_1"``.
        down: when True, every packet touching the cable is dropped (in
            either direction), modelling a cable pull / link flap.
        ber:  Bernoulli per-packet drop probability (bit-error loss).
        a_port, b_port: the two directed egress ports using this cable.
    """

    __slots__ = ("name", "down", "ber", "a_port", "b_port")

    def __init__(self, name: str) -> None:
        self.name = name
        self.down = False
        self.ber = 0.0
        self.a_port: Optional["EgressPort"] = None
        self.b_port: Optional["EgressPort"] = None

    def attach(self, a_port: "EgressPort", b_port: "EgressPort") -> None:
        """Register the two directed ports; each port back-references us."""
        self.a_port = a_port
        self.b_port = b_port
        a_port.cable = self
        b_port.cable = self

    def set_rate(self, gbps: float) -> None:
        """Degrade (or restore) the bandwidth of both directions."""
        if self.a_port is not None:
            self.a_port.rate_gbps = gbps
        if self.b_port is not None:
            self.b_port.rate_gbps = gbps

    def fail(self) -> None:
        self.down = True

    def recover(self) -> None:
        self.down = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "DOWN" if self.down else "up"
        return f"<Cable {self.name} {state} ber={self.ber}>"
