"""Packet representation.

A single slotted class covers data packets, ACKs and trimmed headers.
Slots keep per-packet overhead low — the simulator allocates one object
per packet transmission (retransmissions allocate a fresh packet).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

#: Size of an ACK / NACK / trimmed header on the wire, in bytes.
CONTROL_PACKET_BYTES = 64


class Packet:
    """A network packet (data, ACK, NACK, or trimmed header).

    Attributes:
        src, dst:   endpoint host ids.
        flow_id:    flow this packet belongs to.
        seq:        data sequence number (packet index within the message).
        size:       bytes on the wire.
        ev:         entropy value used for ECMP hashing (set by the sender's
                    load balancer; echoed verbatim in ACKs, per Sec. 3.1).
        ecn:        ECN congestion-experienced bit (set by queues; echoed in
                    ACKs).
        is_ack:     True for acknowledgement packets.
        is_nack:    True for NACKs generated in response to trimmed packets.
        trimmed:    True once a switch trimmed this data packet to a header.
        acked_seqs: sequence numbers acknowledged (coalesced ACKs carry >1).
        ev_echoes:  for Carry-EVs ACK coalescing: list of (ev, ecn) pairs of
                    every data packet covered by this ACK, oldest first.
        send_time:  sender timestamp of the (data) transmission, ps.
        retx:       retransmission count of this seq when it was sent.
    """

    __slots__ = (
        "src", "dst", "flow_id", "seq", "size", "ev", "ecn",
        "is_ack", "is_nack", "trimmed", "acked_seqs", "ev_echoes",
        "send_time", "retx",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        flow_id: int,
        seq: int,
        size: int,
        ev: int,
        *,
        is_ack: bool = False,
        is_nack: bool = False,
        send_time: int = 0,
        retx: int = 0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.seq = seq
        self.size = size
        self.ev = ev
        self.ecn = False
        self.is_ack = is_ack
        self.is_nack = is_nack
        self.trimmed = False
        self.acked_seqs: Optional[List[int]] = None
        self.ev_echoes: Optional[List[Tuple[int, bool]]] = None
        self.send_time = send_time
        self.retx = retx

    @property
    def is_control(self) -> bool:
        """Control packets (ACK/NACK/trimmed) get strict queue priority."""
        return self.is_ack or self.is_nack or self.trimmed

    def trim(self) -> None:
        """Truncate the payload to a header, as a trimming switch would."""
        self.trimmed = True
        self.size = CONTROL_PACKET_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "ACK" if self.is_ack else "NACK" if self.is_nack else (
            "TRIM" if self.trimmed else "DATA")
        return (f"<{kind} flow={self.flow_id} seq={self.seq} ev={self.ev} "
                f"{self.src}->{self.dst} {self.size}B ecn={int(self.ecn)}>")


def make_ack(
    data_pkt: Packet,
    *,
    acked_seqs: Optional[List[int]] = None,
    ev_echoes: Optional[List[Tuple[int, bool]]] = None,
) -> Packet:
    """Build an ACK for ``data_pkt``.

    Per Sec. 3.1 the ACK reuses the data packet's EV for its own header —
    no extra header field is needed and the ACK is hashed consistently.
    """
    ack = Packet(
        src=data_pkt.dst,
        dst=data_pkt.src,
        flow_id=data_pkt.flow_id,
        seq=data_pkt.seq,
        size=CONTROL_PACKET_BYTES,
        ev=data_pkt.ev,
        is_ack=True,
        send_time=data_pkt.send_time,
    )
    ack.ecn = data_pkt.ecn
    ack.acked_seqs = acked_seqs
    ack.ev_echoes = ev_echoes
    return ack


def make_nack(trimmed_pkt: Packet) -> Packet:
    """Build a NACK in response to a trimmed data packet (Appendix A)."""
    nack = Packet(
        src=trimmed_pkt.dst,
        dst=trimmed_pkt.src,
        flow_id=trimmed_pkt.flow_id,
        seq=trimmed_pkt.seq,
        size=CONTROL_PACKET_BYTES,
        ev=trimmed_pkt.ev,
        is_nack=True,
        send_time=trimmed_pkt.send_time,
    )
    return nack
