"""Failure injection (Sec. 4.3.3): cable/switch failures, degradation, BER.

All injections are scheduled on the engine so they fire mid-run, exactly
like the paper's forced worst-case failures.  ECMP routing groups keep
hashing onto failed ports unless a ``routing_update_delay`` is configured,
modelling the slow control-plane reconvergence (Sec. 3.2 assumes ~10 ms to
exclude a failed cable — far longer than REPS's reaction).
"""

from __future__ import annotations

from typing import List, Optional

from .engine import Engine
from .link import Cable
from .switch import Switch
from .topology import FatTree


class FailureInjector:
    """Schedules failures against a built topology."""

    def __init__(self, engine: Engine, tree: FatTree,
                 routing_update_delay_ps: Optional[int] = None) -> None:
        self.engine = engine
        self.tree = tree
        self.routing_update_delay_ps = routing_update_delay_ps
        self.log: List[tuple] = []

    # ------------------------------------------------------------------
    def _resolve_cable(self, cable) -> Cable:
        if isinstance(cable, Cable):
            return cable
        return self.tree.cables[cable]

    def fail_cable(self, cable, at_ps: int,
                   duration_ps: Optional[int] = None) -> None:
        """Take a cable down at ``at_ps``; recover after ``duration_ps``
        (None = permanent for the rest of the run)."""
        c = self._resolve_cable(cable)
        self.engine.at(at_ps, self._do_fail, c)
        if duration_ps is not None:
            self.engine.at(at_ps + duration_ps, self._do_recover, c)
        self.log.append(("cable", c.name, at_ps, duration_ps))

    def fail_switch(self, switch: Switch, at_ps: int,
                    duration_ps: Optional[int] = None) -> None:
        """Fail every cable attached to ``switch`` (switch crash)."""
        for c in self.tree.cables_of_switch(switch):
            self.fail_cable(c, at_ps, duration_ps)
        self.log.append(("switch", switch.name, at_ps, duration_ps))

    def degrade_cable(self, cable, gbps: float, at_ps: int = 0,
                      duration_ps: Optional[int] = None,
                      restore_gbps: Optional[float] = None) -> None:
        """Downgrade a cable's bandwidth (e.g. 400 -> 200 Gbps, Sec. 4.3.2)."""
        c = self._resolve_cable(cable)
        if at_ps <= self.engine.now:
            c.set_rate(gbps)
        else:
            self.engine.at(at_ps, c.set_rate, gbps)
        if duration_ps is not None:
            self.engine.at(at_ps + duration_ps, c.set_rate,
                           restore_gbps or self.tree.params.link_gbps)
        self.log.append(("degrade", c.name, at_ps, gbps))

    def set_ber(self, cable, drop_probability: float,
                at_ps: int = 0) -> None:
        """Bernoulli per-packet loss on a cable (bit-error rate)."""
        c = self._resolve_cable(cable)

        def apply() -> None:
            c.ber = drop_probability

        if at_ps <= self.engine.now:
            apply()
        else:
            self.engine.at(at_ps, apply)
        self.log.append(("ber", c.name, at_ps, drop_probability))

    def set_switch_ber(self, switch: Switch, drop_probability: float,
                       at_ps: int = 0) -> None:
        """BER on every cable of a switch (faulty ASIC / optics shelf)."""
        for c in self.tree.cables_of_switch(switch):
            self.set_ber(c, drop_probability, at_ps)

    # ------------------------------------------------------------------
    def _do_fail(self, cable: Cable) -> None:
        cable.fail()
        if self.routing_update_delay_ps is not None:
            self.engine.after(self.routing_update_delay_ps,
                              self._exclude_ports, cable)

    def _do_recover(self, cable: Cable) -> None:
        cable.recover()
        for port in (cable.a_port, cable.b_port):
            if port is not None:
                port.excluded = False

    def _exclude_ports(self, cable: Cable) -> None:
        """Control plane finally removes the dead ports from ECMP groups."""
        if not cable.down:
            return  # recovered before the update landed
        for port in (cable.a_port, cable.b_port):
            if port is not None:
                port.excluded = True
