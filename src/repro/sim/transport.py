"""Out-of-order message transport (the UET/NDP-like substrate, Sec. 4.1).

One :class:`FlowSender` / :class:`FlowReceiver` pair moves one message.
The receiver accepts packets in any order and acknowledges selectively;
each ACK echoes the data packet's EV and ECN mark back to the sender,
which is all the feedback REPS needs (Sec. 3.1).

Loss handling:

- **RTO**: a per-flow retransmission timer (70 us default, per Sec. 4.1)
  re-queues expired packets and reports a *possible failure* to the load
  balancer (REPS may enter freezing mode).
- **Trimming** (optional): switches truncate overflowing data packets to
  headers; the receiver answers with a NACK, which re-queues the packet
  quickly and reports a *congestion* loss (no freezing) — the Appendix A
  discrimination.

ACK coalescing (Sec. 4.5.1): the receiver may acknowledge every ``n``-th
packet.  A coalesced ACK carries all covered sequence numbers; it echoes
either just the last packet's (EV, ECN) — standard — or the full list —
the *Carry EVs* variant.

Invariants:

- **EV lifecycle.**  Every data packet leaves the sender with exactly
  one entropy value drawn from the load balancer (``lb.next_ev``); the
  receiver echoes that EV (plus the observed ECN mark) on the covering
  ACK, and the sender feeds the echo back through ``lb.on_ack`` — for
  REPS this is the *recycling* step that turns a congestion-free path
  observation into the next packet's EV.  An EV is never rewritten in
  flight; switches only read it.
- **Loss discrimination.**  A trimming NACK re-queues the packet and
  reports a congestion loss (no freezing); only an RTO expiry reports
  a possible failure to the LB — the Appendix-A distinction that keeps
  REPS from freezing on mere queue overflow.
- **Determinism.**  All transport state advances only on engine events;
  retransmission order, coalescing boundaries and EV echoes are pure
  functions of the (seeded) run, never of host timing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from .cc.base import CongestionControl
from .engine import Engine, Timer
from .packet import CONTROL_PACKET_BYTES, Packet, make_ack, make_nack
from .switch import Host


class FlowStats:
    """Per-flow counters."""

    __slots__ = ("pkts_sent", "retransmissions", "timeouts", "nacks",
                 "acks_received", "ecn_acks")

    def __init__(self) -> None:
        self.pkts_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.nacks = 0
        self.acks_received = 0
        self.ecn_acks = 0


class FlowSender:
    """Sends one message of ``size_bytes`` from ``host`` to ``dst``."""

    def __init__(
        self,
        engine: Engine,
        host: Host,
        *,
        flow_id: int,
        dst: int,
        size_bytes: int,
        mtu: int,
        lb,
        cc: CongestionControl,
        rto_ps: int,
        on_complete: Optional[Callable[["FlowSender"], None]] = None,
        loss_classifier=None,
        delay_signal_threshold_ps: Optional[int] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.engine = engine
        self.host = host
        self.flow_id = flow_id
        self.src = host.host_id
        self.dst = dst
        self.size_bytes = size_bytes
        self.mtu = mtu
        self.lb = lb
        self.cc = cc
        self.rto_ps = rto_ps
        self.on_complete = on_complete
        self.n_pkts = (size_bytes + mtu - 1) // mtu
        self._last_pkt_size = size_bytes - (self.n_pkts - 1) * mtu
        self._next_new_seq = 0
        #: seq -> (send_time_ps, size, ev, retx_count)
        self._outstanding: Dict[int, Tuple[int, int, int, int]] = {}
        self._inflight_bytes = 0
        self._retx_q: deque = deque()
        self._retx_counts: Dict[int, int] = {}
        self._acked: set = set()
        self._timer = Timer(engine, self._on_timer)
        self.stats = FlowStats()
        self.start_time: Optional[int] = None
        self.complete_time: Optional[int] = None
        #: a RepFlow loser copy: transmission stopped without completing
        self.cancelled = False
        #: optional Appendix-A RTT heuristic: timeouts classified as
        #: congestion losses are NOT reported to the LB as failures
        self.loss_classifier = loss_classifier
        #: optional delay-as-congestion-signal (Sec. 4.5.3's "version of
        #: REPS that works just with delay if ECN is not supported"):
        #: when set, the LB sees rtt > threshold instead of the ECN bit
        self.delay_signal_threshold_ps = delay_signal_threshold_ps

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.complete_time is not None

    @property
    def inflight_bytes(self) -> int:
        return self._inflight_bytes

    def _pkt_size(self, seq: int) -> int:
        return self._last_pkt_size if seq == self.n_pkts - 1 else self.mtu

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting (idempotent)."""
        if self.start_time is not None:
            return
        self.start_time = self.engine.now
        self._try_send()

    def cancel(self) -> None:
        """Stop transmitting without completing (the losing copy of a
        replicated flow).  Idempotent; late ACKs/NACKs for packets
        still in flight are ignored from here on."""
        if self.cancelled or self.done:
            return
        self.cancelled = True
        self._timer.cancel()
        self._retx_q.clear()

    def _try_send(self) -> None:
        if self.complete_time is not None or self.cancelled:
            return
        now = self.engine.now
        retx_q = self._retx_q
        acked = self._acked
        outstanding = self._outstanding
        stats = self.stats
        next_entropy = self.lb.next_entropy
        n_pkts = self.n_pkts
        mtu = self.mtu
        src, dst, flow_id = self.src, self.dst, self.flow_id
        cwnd = self.cc.cwnd
        inflight = self._inflight_bytes
        burst: List[Packet] = []
        while inflight < cwnd:
            if retx_q:
                seq = retx_q.popleft()
                if seq in acked:
                    continue
                retx = self._retx_counts.get(seq, 0)
            elif self._next_new_seq < n_pkts:
                seq = self._next_new_seq
                self._next_new_seq += 1
                retx = 0
            else:
                break
            size = self._last_pkt_size if seq == n_pkts - 1 else mtu
            ev = next_entropy(now)
            pkt = Packet(src, dst, flow_id, seq, size, ev,
                         send_time=now, retx=retx)
            outstanding[seq] = (now, size, ev, retx)
            inflight += size
            stats.pkts_sent += 1
            if retx:
                stats.retransmissions += 1
            burst.append(pkt)
        self._inflight_bytes = inflight
        if burst:
            # all same-instant: hand the window over in one batch
            port = self.host.port
            assert port is not None, "host not attached to a switch"
            if len(burst) == 1:
                port.enqueue(burst[0])
            else:
                port.enqueue_burst(burst)
        self._rearm_timer()

    # ------------------------------------------------------------------
    def on_ack(self, ack: Packet) -> None:
        """Handle a (possibly coalesced) acknowledgement."""
        if self.done or self.cancelled:
            return
        now = self.engine.now
        self.stats.acks_received += 1
        if ack.ecn:
            self.stats.ecn_acks += 1
        rtt = now - ack.send_time
        if self.loss_classifier is not None:
            self.loss_classifier.observe(now, rtt)
        # feed the load balancer: the Carry-EVs variant echoes every
        # covered packet's (ev, ecn); standard ACKs echo only their own.
        # With a delay threshold configured, the measured RTT substitutes
        # for the ECN bit as the congestion signal.
        if self.delay_signal_threshold_ps is not None:
            signal = rtt > self.delay_signal_threshold_ps
            if ack.ev_echoes is not None:
                for ev, _ in ack.ev_echoes:
                    self.lb.on_ack(ev, signal, now)
            else:
                self.lb.on_ack(ack.ev, signal, now)
        elif ack.ev_echoes is not None:
            for ev, ecn in ack.ev_echoes:
                self.lb.on_ack(ev, ecn, now)
        else:
            self.lb.on_ack(ack.ev, ack.ecn, now)
        acked_bytes = 0
        acked = self._acked
        outstanding = self._outstanding
        last_seq = self.n_pkts - 1
        mtu = self.mtu
        for seq in (ack.acked_seqs if ack.acked_seqs is not None
                    else (ack.seq,)):
            if seq in acked:
                continue
            acked.add(seq)
            entry = outstanding.pop(seq, None)
            if entry is not None:
                self._inflight_bytes -= entry[1]
            acked_bytes += self._last_pkt_size if seq == last_seq else mtu
        if acked_bytes:
            self.cc.on_ack(acked_bytes, ack.ecn, now)
        if len(self._acked) == self.n_pkts:
            self._complete(now)
        else:
            self._try_send()

    def on_nack(self, nack: Packet) -> None:
        """A switch trimmed this packet: fast congestion-loss recovery."""
        if self.done or self.cancelled:
            return
        now = self.engine.now
        self.stats.nacks += 1
        seq = nack.seq
        entry = self._outstanding.pop(seq, None)
        if entry is not None:
            self._inflight_bytes -= entry[1]
            self._queue_retx(seq, front=True)
        self.cc.on_nack(now)
        self.lb.on_nack(nack.ev, now)
        self._try_send()

    # ------------------------------------------------------------------
    def _queue_retx(self, seq: int, front: bool = False) -> None:
        if seq in self._acked:
            return
        self._retx_counts[seq] = self._retx_counts.get(seq, 0) + 1
        if front:
            self._retx_q.appendleft(seq)
        else:
            self._retx_q.append(seq)

    def _on_timer(self) -> None:
        if self.done or self.cancelled:
            return
        now = self.engine.now
        expired = [seq for seq, (t, _, _, _) in self._outstanding.items()
                   if t + self.rto_ps <= now]
        if expired:
            self.stats.timeouts += len(expired)
            # Appendix A: with the RTT heuristic, timeouts that look like
            # congestion drops (deep queues just observed) are kept away
            # from the LB so REPS does not freeze needlessly
            report_failure = True
            if self.loss_classifier is not None:
                report_failure = \
                    self.loss_classifier.classify_timeout(now) == "failure"
            for seq in sorted(expired):
                _, size, ev, _ = self._outstanding.pop(seq)
                self._inflight_bytes -= size
                self._queue_retx(seq)
                if report_failure:
                    self.lb.on_timeout(ev, now)
            self.cc.on_timeout(now)
            self._try_send()
        else:
            self._rearm_timer()

    def _rearm_timer(self) -> None:
        outstanding = self._outstanding
        if not outstanding:
            self._timer.cancel()
            return
        # the dict preserves insertion order and send times are monotone
        # (entries re-inserted after a pop carry the current, larger,
        # send time), so the first value holds the oldest send time —
        # no O(n) min() scan per ACK
        deadline = next(iter(outstanding.values()))[0] + self.rto_ps
        timer = self._timer
        if timer.deadline != deadline:
            now = self.engine.now
            timer.arm_at(deadline if deadline > now else now)

    def _complete(self, now: int) -> None:
        self.complete_time = now
        self._timer.cancel()
        if self.on_complete is not None:
            self.on_complete(self)

    # ------------------------------------------------------------------
    def fct_ps(self) -> Optional[int]:
        """Flow completion time, or None if unfinished."""
        if self.start_time is None or self.complete_time is None:
            return None
        return self.complete_time - self.start_time


class ReplicatedFlow:
    """First-finish-wins replication over independent copies (RepFlow).

    Wraps ``copies`` fully independent :class:`FlowSender`\\ s carrying
    the same logical message.  The first copy to complete defines the
    logical flow completion time; every other copy is cancelled on the
    spot so it stops competing for bandwidth.  The primary copy
    (``copies[0]``) is stamped with the winner's completion time, so
    metrics that read the primary record see exactly one FCT per
    logical flow regardless of which copy won.
    """

    def __init__(self, copies: List[FlowSender],
                 on_complete: Optional[
                     Callable[[FlowSender], None]] = None) -> None:
        if not copies:
            raise ValueError("replicated flow needs at least one copy")
        self.copies = list(copies)
        self.on_complete = on_complete
        self.winner: Optional[FlowSender] = None
        for copy in self.copies:
            copy.on_complete = self._copy_done

    @property
    def done(self) -> bool:
        return self.winner is not None

    def _copy_done(self, sender: FlowSender) -> None:
        if self.winner is not None:
            return
        self.winner = sender
        for copy in self.copies:
            if copy is not sender:
                copy.cancel()
        primary = self.copies[0]
        if primary is not sender:
            # the logical flow completes when its fastest copy does
            primary.complete_time = sender.complete_time
        if self.on_complete is not None:
            self.on_complete(sender)


class FlowReceiver:
    """Receives one message; generates (possibly coalesced) ACKs."""

    def __init__(
        self,
        engine: Engine,
        host: Host,
        *,
        flow_id: int,
        src: int,
        n_pkts: int,
        coalesce: int = 1,
        carry_evs: bool = False,
        ack_delay_ps: int = 2_000_000,
    ) -> None:
        if coalesce < 1:
            raise ValueError("coalesce ratio must be >= 1")
        self.engine = engine
        self.host = host
        self.flow_id = flow_id
        self.src = src
        self.n_pkts = n_pkts
        self.coalesce = coalesce
        self.carry_evs = carry_evs
        self.ack_delay_ps = ack_delay_ps
        self.received: set = set()
        self.bytes_received = 0
        self.first_arrival: Optional[int] = None
        self.last_arrival: Optional[int] = None
        self._pending: List[Packet] = []
        self._flush_timer = Timer(engine, self._flush)

    def on_data(self, pkt: Packet) -> None:
        """Handle an arriving data (or trimmed) packet."""
        if pkt.trimmed:
            # payload was cut by a congested switch: NACK immediately
            self.host.send(make_nack(pkt))
            return
        if self.first_arrival is None:
            self.first_arrival = self.engine.now
        self.last_arrival = self.engine.now
        if pkt.seq not in self.received:
            self.received.add(pkt.seq)
            self.bytes_received += pkt.size
        self._pending.append(pkt)
        if (len(self._pending) >= self.coalesce
                or len(self.received) == self.n_pkts):
            self._flush()
        elif not self._flush_timer.armed:
            # never hold ACKs hostage to the coalescing ratio: a short
            # delayed-ACK timer bounds the feedback delay
            self._flush_timer.arm_after(self.ack_delay_ps)

    def _flush(self) -> None:
        if not self._pending:
            return
        self._flush_timer.cancel()
        last = self._pending[-1]
        acked_seqs = [p.seq for p in self._pending]
        echoes = ([(p.ev, p.ecn) for p in self._pending]
                  if self.carry_evs else None)
        ack = make_ack(last, acked_seqs=acked_seqs, ev_echoes=echoes)
        self._pending.clear()
        self.host.send(ack)

    @property
    def complete(self) -> bool:
        return len(self.received) == self.n_pkts
