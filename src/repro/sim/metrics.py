"""Run metrics and time-series telemetry.

:class:`RunMetrics` aggregates what the paper's figures report — flow
completion times (max/avg/percentiles), drops, trims, retransmissions,
goodput.  :class:`SeriesRecorder` samples per-port utilization and queue
occupancy in fixed buckets, feeding the "microscopic" figures (2, 4, 7,
19, 22).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .engine import Engine
from .port import EgressPort
from .units import US


def nearest_rank(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile ``p`` in [0, 100]; nan when empty.

    The one percentile definition shared by per-run FCT percentiles and
    the harness's across-seed aggregation, so reported tails can't
    silently diverge.  Lives in the sim layer (a leaf) so the harness
    can import it without inverting the package dependency direction.
    """
    if not samples:
        return float("nan")
    data = sorted(samples)
    k = min(len(data) - 1, max(0, int(round(p / 100 * (len(data) - 1)))))
    return data[k]


@dataclass
class RunMetrics:
    """Aggregate results of one simulation run."""

    fct_us: List[float] = field(default_factory=list)
    flows_total: int = 0
    flows_completed: int = 0
    makespan_us: float = 0.0
    sim_time_us: float = 0.0
    drops_overflow: int = 0
    drops_link_down: int = 0
    drops_ber: int = 0
    trims: int = 0
    ecn_marks: int = 0
    pkts_sent: int = 0
    retransmissions: int = 0
    timeouts: int = 0
    goodput_gbps: List[float] = field(default_factory=list)
    events: int = 0

    @property
    def total_drops(self) -> int:
        return self.drops_overflow + self.drops_link_down + self.drops_ber

    @property
    def max_fct_us(self) -> float:
        return max(self.fct_us) if self.fct_us else float("inf")

    @property
    def avg_fct_us(self) -> float:
        return (sum(self.fct_us) / len(self.fct_us)
                if self.fct_us else float("inf"))

    def percentile_fct_us(self, p: float) -> float:
        """FCT percentile ``p`` in [0, 100] (nearest-rank)."""
        if not self.fct_us:
            return float("inf")
        return nearest_rank(self.fct_us, p)

    @property
    def p50_fct_us(self) -> float:
        return self.percentile_fct_us(50)

    @property
    def p99_fct_us(self) -> float:
        return self.percentile_fct_us(99)

    @property
    def avg_goodput_gbps(self) -> float:
        return (sum(self.goodput_gbps) / len(self.goodput_gbps)
                if self.goodput_gbps else 0.0)

    def summary(self) -> str:
        return (f"flows {self.flows_completed}/{self.flows_total} "
                f"maxFCT {self.max_fct_us:.1f}us avgFCT {self.avg_fct_us:.1f}us "
                f"drops {self.total_drops} trims {self.trims} "
                f"retx {self.retransmissions}")


class SeriesRecorder:
    """Fixed-bucket sampler of port throughput and queue occupancy.

    Matches the paper's Fig. 2 telemetry: output-port utilization in
    20 us buckets (left axis) and instantaneous queue size (right axis).
    """

    def __init__(self, engine: Engine, ports: Sequence[EgressPort],
                 bucket_ps: int = 20 * US) -> None:
        self.engine = engine
        self.ports = list(ports)
        self.bucket_ps = bucket_ps
        self.times_us: List[float] = []
        self.util_gbps: Dict[str, List[float]] = {
            p.name: [] for p in self.ports}
        self.queue_kb: Dict[str, List[float]] = {
            p.name: [] for p in self.ports}
        self._last_bytes = {p.name: 0 for p in self.ports}
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._last_bytes = {p.name: p.stats.bytes_tx for p in self.ports}
        self.engine.after(self.bucket_ps, self._sample)

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        self.times_us.append(self.engine.now / US)
        for p in self.ports:
            delta = p.stats.bytes_tx - self._last_bytes[p.name]
            self._last_bytes[p.name] = p.stats.bytes_tx
            # Gbps = bits / ns; bucket_ps/1000 ns per bucket
            self.util_gbps[p.name].append(delta * 8000.0 / self.bucket_ps)
            self.queue_kb[p.name].append(p.total_queue_bytes / 1024.0)
        self.engine.after(self.bucket_ps, self._sample)

    # ------------------------------------------------------------------
    def max_queue_kb(self, lo: float = 0.0, hi: float = 1.0) -> float:
        """Max sampled queue occupancy, optionally over a window of the
        run (``lo``/``hi`` as fractions, like ``utilization_spread``)."""
        n = len(self.times_us)
        if n == 0:
            return 0.0
        start, stop = int(n * lo), max(int(n * hi), int(n * lo) + 1)
        best = 0.0
        for series in self.queue_kb.values():
            window = series[start:min(stop, n)]
            if window:
                best = max(best, max(window))
        return best

    def utilization_spread(self, lo: float = 0.25,
                           hi: float = 0.75) -> float:
        """Mean over steady-state buckets of (max - min) port
        utilization, Gbps.

        Only the middle ``[lo, hi)`` fraction of the run is measured so
        ramp-up and drain transients (where ports legitimately differ)
        do not dominate.  OPS shows a large steady spread (short-term
        collisions, Fig. 2 top); REPS converges to a small one
        (Fig. 2 bottom).
        """
        n = len(self.times_us)
        if n == 0:
            return 0.0
        start, stop = int(n * lo), max(int(n * hi), int(n * lo) + 1)
        spreads = []
        names = list(self.util_gbps)
        for i in range(start, min(stop, n)):
            vals = [self.util_gbps[n_][i] for n_ in names]
            spreads.append(max(vals) - min(vals))
        return sum(spreads) / len(spreads) if spreads else 0.0
