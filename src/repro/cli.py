"""Command-line interface: ``python -m repro <command> ...``.

Nine subcommands cover the common interactive uses:

- ``run``: one simulation (pattern x load balancer) with a metrics line,
- ``compare``: the same workload under several load balancers,
- ``sweep``: a parallel lb x seed x workload campaign with cached
  results and across-seed aggregation,
- ``figures``: the declarative paper-figure registry — ``list`` the
  catalogue, ``run`` any figure's matrix through the sweep harness,
  ``run --all`` to reproduce the whole paper in one campaign that
  renders ``REPRODUCTION.md`` + ``campaign.json``, or ``trend`` to
  diff two ``campaign.json`` records for regressions,
- ``shard``: scale a campaign out over hosts — ``plan`` deterministic
  shard manifests, ``run`` one shard anywhere against a local store,
  ``merge`` the shard stores back into one,
- ``orchestrate``: the elastic whole-campaign version of ``shard`` —
  plan wall-time-balanced shards, fan them out over local (or SSH)
  workers with heartbeats, retry shards whose worker dies, merge each
  shard as it lands, and render the same REPRODUCTION.md +
  campaign.json a single-host run produces,
- ``store``: artifact-store maintenance — ``compact`` a store into one
  columnar segment file (absorbing legacy one-JSON-per-task
  artifacts), ``inspect`` its statistics, ``verify`` its integrity,
- ``docs``: regenerate (or drift-check) the ``docs/figures/`` pages
  from the registry,
- ``footprint``: print the Table-1 memory accounting.

Campaign-scale commands accept ``--backend`` (or ``$REPRO_BACKEND``)
to pick the execution backend: ``serial``, ``process``, ``batched``,
or ``shard`` (see :mod:`repro.harness.backends`).

Examples::

    python -m repro run --lb reps --pattern tornado --hosts 32 --mib 2
    python -m repro compare --lbs ecmp,ops,reps --pattern permutation
    python -m repro sweep --lbs ecmp,ops,reps --pattern tornado \\
        --seeds 1,2,3,4 --workers 4 --name tornado-demo
    python -m repro figures list
    python -m repro figures run fig07 fig08_permutation --workers 4
    python -m repro figures run --all --scale smoke --workers 4 \\
        --backend batched
    python -m repro figures run --all --tag failures --skip fig09
    python -m repro figures trend old-campaign.json campaign.json --strict
    python -m repro shard plan --shards 4 --scale smoke --out plan/
    python -m repro shard run plan/shard-0.json --store stores/shard-0
    python -m repro shard merge --into stores/merged/campaign \\
        stores/shard-0 stores/shard-1
    python -m repro orchestrate --scale smoke --fan-out 4 \\
        --results-dir /tmp/orch --html /tmp/orch/status.html
    python -m repro store compact benchmarks/results/sweeps/campaign
    python -m repro store verify benchmarks/results/sweeps/campaign
    python -m repro docs figures --check
    python -m repro run --lb reps --fail-uplink 0 --fail-at 50 --fail-for 200
    python -m repro footprint --buffer 8 --evs 65536
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from .core.footprint import compute_footprint
from .core.reps import RepsConfig
from .harness.backends import backend_names
from .harness.report import format_sweep_table, format_table
from .harness.sweep import ResultStore, SweepGrid, WorkloadSpec, run_sweep
from .sim.network import Network, NetworkConfig
from .sim.topology import TopologyParams
from .workloads.synthetic import incast, permutation, tornado


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="REPS reproduction (Bonato et al., EuroSys '26)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--hosts", type=int, default=16)
        p.add_argument("--hosts-per-t0", type=int, default=8)
        p.add_argument("--tiers", type=int, default=2, choices=(2, 3))
        p.add_argument("--oversubscription", type=int, default=1)
        p.add_argument("--pattern", default="permutation",
                       choices=("permutation", "tornado", "incast"))
        p.add_argument("--mib", type=float, default=2.0,
                       help="message size in MiB")
        p.add_argument("--fan-in", type=int, default=8,
                       help="incast fan-in")
        p.add_argument("--evs", type=int, default=65536)
        p.add_argument("--cc", default="dctcp",
                       choices=("dctcp", "eqds", "internal"))
        p.add_argument("--ack-coalesce", type=int, default=1)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--max-us", type=float, default=1_000_000.0)
        p.add_argument("--trimming", action="store_true")
        p.add_argument("--fail-uplink", type=int, default=None,
                       metavar="INDEX",
                       help="fail the i-th ToR uplink cable")
        p.add_argument("--fail-at", type=float, default=50.0,
                       help="failure start (us)")
        p.add_argument("--fail-for", type=float, default=None,
                       help="failure duration (us); default permanent")
        p.add_argument("--degrade-uplink", type=int, default=None,
                       metavar="INDEX",
                       help="downgrade the i-th ToR uplink to --degrade-gbps")
        p.add_argument("--degrade-gbps", type=float, default=200.0)

    run_p = sub.add_parser("run", help="run one simulation")
    add_sim_args(run_p)
    run_p.add_argument("--lb", default="reps")

    cmp_p = sub.add_parser("compare", help="compare load balancers")
    add_sim_args(cmp_p)
    cmp_p.add_argument("--lbs", default="ecmp,ops,reps",
                       help="comma-separated load balancer names")

    sw_p = sub.add_parser(
        "sweep", help="parallel multi-seed campaign with cached results")
    sw_p.add_argument("--lbs", default="ecmp,ops,reps",
                      help="comma-separated load balancer names")
    sw_p.add_argument("--pattern", default="permutation",
                      choices=("permutation", "tornado", "incast"))
    sw_p.add_argument("--mib", type=float, default=1.0,
                      help="message size in MiB")
    sw_p.add_argument("--fan-in", type=int, default=8)
    sw_p.add_argument("--hosts", type=int, default=16)
    sw_p.add_argument("--hosts-per-t0", type=int, default=8)
    sw_p.add_argument("--tiers", type=int, default=2, choices=(2, 3))
    sw_p.add_argument("--oversubscription", type=int, default=1)
    sw_p.add_argument("--cc", default="dctcp",
                      choices=("dctcp", "eqds", "internal"))
    sw_p.add_argument("--evs", default="65536",
                      help="comma-separated EVS sizes (extra grid axis)")
    sw_p.add_argument("--seeds", default=None,
                      help="explicit comma-separated seeds; overrides "
                           "--root-seed/--n-seeds")
    sw_p.add_argument("--root-seed", type=int, default=1,
                      help="root seed the per-task seeds are spawned from")
    sw_p.add_argument("--n-seeds", type=int, default=4,
                      help="number of seeds spawned from --root-seed")
    sw_p.add_argument("--workers", type=int, default=1,
                      help="worker processes (1 = serial)")
    sw_p.add_argument("--backend", default=None, choices=backend_names(),
                      help="execution backend (default: $REPRO_BACKEND, "
                           "else serial/process by --workers)")
    sw_p.add_argument("--max-us", type=float, default=2_000_000.0)
    sw_p.add_argument("--metric", default="max_fct_us",
                      help="metric to aggregate across seeds")
    sw_p.add_argument("--name", default="cli",
                      help="campaign name (artifact subdirectory)")
    sw_p.add_argument("--results-dir",
                      default=os.path.join("benchmarks", "results",
                                           "sweeps"),
                      help="artifact store root")
    sw_p.add_argument("--fresh", action="store_true",
                      help="ignore and overwrite cached task results")

    fig_p = sub.add_parser(
        "figures", help="the declarative paper-figure registry")
    fig_sub = fig_p.add_subparsers(dest="figures_command", required=True)
    fig_sub.add_parser("list", help="enumerate the registered figures")
    fr_p = fig_sub.add_parser(
        "run", help="run figures through the sweep harness")
    fr_p.add_argument("ids", nargs="*", metavar="FIG_ID",
                      help="figure ids (see `repro figures list`); "
                           "with --all they act as an --only filter")
    fr_p.add_argument("--all", action="store_true",
                      help="campaign mode: run every registered figure "
                           "against one shared store and render "
                           "REPRODUCTION.md + campaign.json")
    fr_p.add_argument("--only", default=None, metavar="IDS",
                      help="campaign filter: comma-separated figure ids "
                           "to keep")
    fr_p.add_argument("--skip", default=None, metavar="IDS",
                      help="campaign filter: comma-separated figure ids "
                           "to drop")
    fr_p.add_argument("--tag", default=None, metavar="TAGS",
                      help="campaign filter: keep figures carrying any "
                           "of these comma-separated tags")
    fr_p.add_argument("--scale", default=None,
                      choices=("smoke", "quick", "full"),
                      help="set REPRO_BENCH_SCALE for this run")
    fr_p.add_argument("--workers", type=int, default=None,
                      help="worker processes (default: "
                           "$REPRO_BENCH_WORKERS or 1)")
    fr_p.add_argument("--backend", default=None, choices=backend_names(),
                      help="execution backend (default: $REPRO_BACKEND, "
                           "else serial/process by --workers)")
    fr_p.add_argument("--figure-jobs", type=int, default=1,
                      help="campaign mode: figures run concurrently "
                           "(each with its own --workers pool)")
    fr_p.add_argument("--results-dir",
                      default=os.path.join("benchmarks", "results",
                                           "sweeps"),
                      help="artifact store root (one subdir per figure; "
                           "campaign mode shares one 'campaign' subdir)")
    fr_p.add_argument("--report", default="REPRODUCTION.md",
                      help="campaign mode: markdown report path")
    fr_p.add_argument("--json", dest="json_path", default="campaign.json",
                      help="campaign mode: machine-readable record path")
    fr_p.add_argument("--fresh", action="store_true",
                      help="ignore and overwrite cached task results")
    fr_p.add_argument("--no-cache", action="store_true",
                      help="run without any artifact store")
    fr_p.add_argument("--no-check", action="store_true",
                      help="skip the paper-shape assertions")
    fr_p.add_argument("--prune", action="store_true",
                      help="drop store artifacts not part of this "
                           "figure's current matrix")
    fr_p.add_argument("--prune-stale", action="store_true",
                      help="campaign mode: drop store artifacts whose "
                           "simulator hash no longer matches the source")
    fr_p.add_argument("--strict", action="store_true",
                      help="campaign mode: exit non-zero on shape "
                           "divergence, not just on figure errors")
    fr_p.add_argument("--policies", default=None, metavar="LBS",
                      help="campaign mode: also run the cross-policy "
                           "arena — each selected figure's canonical "
                           "cells re-targeted onto these comma-"
                           "separated LB policies (the first one is "
                           "the pivot whose cells define each arena)")
    tr_p = fig_sub.add_parser(
        "trend", help="regression deltas between two campaign.json "
                      "records")
    tr_p.add_argument("old", help="baseline campaign.json")
    tr_p.add_argument("new", help="candidate campaign.json")
    tr_p.add_argument("--tol", type=float, default=0.0,
                      help="relative metric-drift tolerance "
                           "(default 0: byte-exact gate)")
    tr_p.add_argument("--strict", action="store_true",
                      help="exit non-zero on any regression (worse "
                           "badge, metric drift, lost coverage)")

    shard_p = sub.add_parser(
        "shard", help="scale a campaign out: plan / run / merge")
    shard_sub = shard_p.add_subparsers(dest="shard_command",
                                       required=True)
    sp_p = shard_sub.add_parser(
        "plan", help="partition the campaign grid into shard manifests")
    sp_p.add_argument("--shards", type=int, default=2,
                      help="number of shards to plan (default 2)")
    sp_p.add_argument("--out", default="shard-plan",
                      help="directory for shard-<i>.json manifests")
    sp_p.add_argument("--only", default=None, metavar="IDS",
                      help="comma-separated figure ids to keep")
    sp_p.add_argument("--skip", default=None, metavar="IDS",
                      help="comma-separated figure ids to drop")
    sp_p.add_argument("--tag", default=None, metavar="TAGS",
                      help="keep figures carrying any of these tags")
    sp_p.add_argument("--scale", default=None,
                      choices=("smoke", "quick", "full"),
                      help="set REPRO_BENCH_SCALE for the plan (the "
                           "scale is recorded in every manifest)")
    sr_p = shard_sub.add_parser(
        "run", help="execute one shard manifest against a local store")
    sr_p.add_argument("manifest", help="shard-<i>.json from `shard plan`")
    sr_p.add_argument("--store", required=True,
                      help="local artifact-store directory for this "
                           "shard's results")
    sr_p.add_argument("--workers", type=int, default=1,
                      help="worker processes (1 = serial)")
    sr_p.add_argument("--backend", default=None, choices=backend_names(),
                      help="execution backend for this shard's tasks")
    sm_p = shard_sub.add_parser(
        "merge", help="fold shard stores into one campaign store")
    sm_p.add_argument("sources", nargs="+", metavar="STORE",
                      help="shard store directories to merge")
    sm_p.add_argument("--into", required=True,
                      help="destination store (use "
                           "<results-dir>/campaign so `repro figures "
                           "run --all --results-dir <results-dir>` "
                           "finds it)")

    orc_p = sub.add_parser(
        "orchestrate",
        help="elastic campaign: plan balanced shards, fan out "
             "workers, retry dead shards, merge, report")
    orc_p.add_argument("--only", default=None, metavar="IDS",
                       help="comma-separated figure ids to keep")
    orc_p.add_argument("--skip", default=None, metavar="IDS",
                       help="comma-separated figure ids to drop")
    orc_p.add_argument("--tag", default=None, metavar="TAGS",
                       help="keep figures carrying any of these tags")
    orc_p.add_argument("--scale", default=None,
                       choices=("smoke", "quick", "full"),
                       help="campaign scale (scoped to this command; "
                            "the orchestrator's environment is "
                            "restored afterwards)")
    orc_p.add_argument("--policies", default=None, metavar="LBS",
                       help="also run the cross-policy arena (same "
                            "semantics as `figures run --all "
                            "--policies`)")
    orc_p.add_argument("--fan-out", type=int, default=2,
                       help="concurrent worker slots (default 2; "
                            "--runner ssh uses one slot per host)")
    orc_p.add_argument("--shards", type=int, default=None,
                       help="shards to plan (default 2x fan-out: the "
                            "work-stealing margin)")
    orc_p.add_argument("--shard-workers", type=int, default=1,
                       help="sweep processes inside each worker")
    orc_p.add_argument("--backend", default=None,
                       choices=backend_names(),
                       help="execution backend inside each worker")
    orc_p.add_argument("--results-dir",
                       default=os.path.join("benchmarks", "results",
                                            "sweeps"),
                       help="campaign store root (shards merge into "
                            "<results-dir>/campaign)")
    orc_p.add_argument("--work-dir", default=None,
                       help="scratch root for manifests, shard "
                            "stores, heartbeats and worker logs "
                            "(default <results-dir>/orchestrate)")
    orc_p.add_argument("--report", default="REPRODUCTION.md",
                       help="markdown report path")
    orc_p.add_argument("--json", dest="json_path",
                       default="campaign.json",
                       help="machine-readable record path")
    orc_p.add_argument("--html", dest="html_path", default=None,
                       help="live self-refreshing status page "
                            "(rewritten on every state change)")
    orc_p.add_argument("--heartbeat-timeout", type=float, default=60.0,
                       help="seconds of worker silence before the "
                            "shard is declared dead and reassigned")
    orc_p.add_argument("--shard-deadline", type=float, default=None,
                       help="hard per-attempt wall limit in seconds")
    orc_p.add_argument("--max-retries", type=int, default=2,
                       help="re-executions per shard after a worker "
                            "death (default 2)")
    orc_p.add_argument("--runner", default="local",
                       choices=("local", "ssh"),
                       help="worker transport: local process groups, "
                            "or ssh to hosts sharing this filesystem")
    orc_p.add_argument("--ssh-hosts", default=None, metavar="HOSTS",
                       help="comma-separated hosts for --runner ssh "
                            "(repeat a host to run more workers on "
                            "it)")
    orc_p.add_argument("--ssh-python", default="python3",
                       help="python interpreter on the ssh hosts")
    orc_p.add_argument("--fresh", action="store_true",
                       help="ignore and overwrite cached task results")
    orc_p.add_argument("--no-check", action="store_true",
                       help="skip the paper-shape assertions")
    orc_p.add_argument("--strict", action="store_true",
                       help="exit non-zero on shape divergence, not "
                            "just on figure errors")
    orc_p.add_argument("--chaos-kill", type=int, default=0,
                       metavar="N",
                       help="failure drill: SIGKILL N live workers "
                            "mid-shard and require the retry path to "
                            "recover (fails if the drill never fires)")

    store_p = sub.add_parser(
        "store", help="artifact-store maintenance: compact / inspect "
                      "/ verify")
    store_sub = store_p.add_subparsers(dest="store_command",
                                       required=True)
    cp_p = store_sub.add_parser(
        "compact", help="rewrite the store as one columnar segment "
                        "file (absorbs legacy JSON artifacts, drops "
                        "shadowed duplicate records)")
    cp_p.add_argument("root", help="store directory (e.g. "
                                   "<results-dir>/campaign)")
    in_p = store_sub.add_parser("inspect", help="store statistics")
    in_p.add_argument("root", help="store directory")
    vf_p = store_sub.add_parser(
        "verify", help="CRC / decode / content-key integrity check; "
                       "exits non-zero on corruption")
    vf_p.add_argument("root", help="store directory")

    docs_p = sub.add_parser(
        "docs", help="generate documentation from the registry")
    docs_sub = docs_p.add_subparsers(dest="docs_command", required=True)
    df_p = docs_sub.add_parser(
        "figures", help="write docs/figures/ pages from the registry")
    df_p.add_argument("--out", default=os.path.join("docs", "figures"),
                      help="output directory (default docs/figures)")
    df_p.add_argument("--check", action="store_true",
                      help="verify the committed pages match a fresh "
                           "render; exit 1 on drift (CI mode)")

    fp_p = sub.add_parser("footprint", help="Table-1 memory accounting")
    fp_p.add_argument("--buffer", type=int, default=8)
    fp_p.add_argument("--evs", type=int, default=65536)
    fp_p.add_argument("--lifespan", type=int, default=1)

    perf_p = sub.add_parser(
        "perf", help="core perf micro-benchmarks + perf.json gate")
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)
    pr_p = perf_sub.add_parser(
        "run", help="capture a perf record for the current simulator")
    pr_p.add_argument("--scale", type=int, default=None,
                      help="workload multiplier (default: the committed "
                           "quick scale)")
    pr_p.add_argument("--repeats", type=int, default=3,
                      help="runs per scenario; fastest wall wins")
    pr_p.add_argument("--only", default=None, metavar="NAMES",
                      help="comma-separated scenario names to run")
    pr_p.add_argument("--json", dest="json_path", default=None,
                      help="write the record to this path")
    pt_p = perf_sub.add_parser(
        "trend", help="diff a fresh capture against a committed record")
    pt_p.add_argument("old", help="baseline perf.json")
    pt_p.add_argument("new", help="candidate perf.json")
    pt_p.add_argument("--tol", type=float, default=0.25,
                      help="relative throughput tolerance (default 0.25; "
                           "deterministic counters are always exact)")
    pt_p.add_argument("--strict", action="store_true",
                      help="exit non-zero on counter mismatch or "
                           "out-of-band throughput regression")
    return parser


def _simulate(args: argparse.Namespace, lb: str):
    topo = TopologyParams(
        n_hosts=args.hosts, hosts_per_t0=args.hosts_per_t0,
        tiers=args.tiers, oversubscription=args.oversubscription,
        trim_enabled=args.trimming,
    )
    net = Network(NetworkConfig(
        topo=topo, lb=lb, cc=args.cc, evs_size=args.evs,
        ack_coalesce=args.ack_coalesce, seed=args.seed,
    ))
    if args.fail_uplink is not None:
        cables = net.tree.t0_uplink_cables()
        net.failures.fail_cable(
            cables[args.fail_uplink % len(cables)],
            at_ps=int(args.fail_at * 1e6),
            duration_ps=(int(args.fail_for * 1e6)
                         if args.fail_for is not None else None))
    if args.degrade_uplink is not None:
        cables = net.tree.t0_uplink_cables()
        net.failures.degrade_cable(
            cables[args.degrade_uplink % len(cables)], args.degrade_gbps)
    size = int(args.mib * 1024 * 1024)
    if args.pattern == "tornado":
        pairs = tornado(args.hosts)
    elif args.pattern == "incast":
        pairs = incast(args.hosts, args.fan_in)
    else:
        pairs = permutation(args.hosts, seed=args.seed,
                            cross_tor_only=args.hosts > args.hosts_per_t0,
                            hosts_per_t0=args.hosts_per_t0)
    for src, dst in pairs:
        net.add_flow(src, dst, size)
    return net.run(max_us=args.max_us)


def _cmd_run(args: argparse.Namespace) -> int:
    metrics = _simulate(args, args.lb)
    print(f"{args.lb}: {metrics.summary()}")
    return 0 if metrics.flows_completed == metrics.flows_total else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    lbs = [s.strip() for s in args.lbs.split(",") if s.strip()]
    rows = []
    ok = True
    for lb in lbs:
        m = _simulate(args, lb)
        rows.append((lb, round(m.max_fct_us, 1), round(m.avg_fct_us, 1),
                     m.total_drops, m.ecn_marks,
                     f"{m.flows_completed}/{m.flows_total}"))
        ok = ok and m.flows_completed == m.flows_total
    print(format_table(
        f"{args.pattern} {args.mib} MiB on {args.hosts} hosts",
        ["lb", "max_fct_us", "avg_fct_us", "drops", "ecn", "done"], rows))
    return 0 if ok else 1


def _open_store(root: str, **kwargs) -> ResultStore:
    """Open a store under the ``$REPRO_STORE`` format policy, failing
    a command cleanly on a malformed env var."""
    from .harness.store import open_store

    try:
        return open_store(root, **kwargs)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")


def _check_backend_env() -> None:
    """Fail a sweep-running command cleanly on a bad ``$REPRO_BACKEND``
    (``--backend`` is argparse-validated; the env var is not)."""
    from .harness.backends import BACKEND_ENV

    raw = os.environ.get(BACKEND_ENV)
    if raw and raw not in backend_names():
        raise SystemExit(
            f"repro: {BACKEND_ENV}={raw!r} is not a known backend; "
            f"one of {', '.join(backend_names())}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    _check_backend_env()
    workload = WorkloadSpec(
        kind="synthetic", pattern=args.pattern,
        msg_bytes=int(args.mib * 1024 * 1024), fan_in=args.fan_in)
    seeds = ([int(s) for s in args.seeds.split(",") if s.strip()]
             if args.seeds else ())
    evs_sizes = [int(s) for s in args.evs.split(",") if s.strip()]
    grid = SweepGrid(
        lbs=[s.strip() for s in args.lbs.split(",") if s.strip()],
        workloads=[workload],
        topos=[{"n_hosts": args.hosts, "hosts_per_t0": args.hosts_per_t0,
                "tiers": args.tiers,
                "oversubscription": args.oversubscription}],
        seeds=seeds, root_seed=args.root_seed, n_seeds=args.n_seeds,
        scenario_kw={"cc": args.cc, "max_us": args.max_us},
        # always an explicit axis so the content key is canonical: the
        # default EVS cached under `--evs 65536` also hits from a later
        # `--evs 64,65536` run
        axes={"evs_size": evs_sizes},
    )
    store = _open_store(os.path.join(args.results_dir, args.name),
                        fresh=args.fresh)
    results = run_sweep(grid, workers=args.workers, store=store,
                        progress=True, backend=args.backend)
    print(format_sweep_table(
        f"sweep '{args.name}': {args.pattern} {args.mib} MiB on "
        f"{args.hosts} hosts", results, args.metric))
    print(f"tasks: {len(results)} total, {results.executed} executed, "
          f"{results.cached} from cache ({store.root})")
    incomplete = [r for r in results
                  if r.metrics["flows_completed"] !=
                  r.metrics["flows_total"]]
    return 0 if not incomplete else 1


def _split_csv(raw: Optional[str]) -> List[str]:
    return [s.strip() for s in raw.split(",") if s.strip()] if raw else []


def _campaign_specs(prog: str, *, only: List[str] = (),
                    skip: List[str] = (), tags: List[str] = (),
                    policies: List[str] = ()):
    """The figure selection every campaign-scale command shares.

    ``figures run --all``, ``shard plan`` and ``orchestrate`` must
    agree on what a selection means (including the ``--policies``
    arena derivation), or an orchestrated campaign could silently
    cover a different figure set than the single-host run it is
    checked against.  ``prog`` only brands the error messages.
    """
    from .harness.campaign import select_figures

    try:
        specs = select_figures(only=list(only), skip=list(skip),
                               tags=list(tags))
    except KeyError as exc:
        raise SystemExit(f"{prog}: {exc.args[0]}")
    if not specs:
        raise SystemExit(f"{prog}: the --only/--skip/--tag "
                         f"filters selected no figures")
    if policies:
        from .lb import available
        from .scenarios import arena_specs

        unknown = sorted(set(policies) - set(available()))
        if unknown:
            raise SystemExit(
                f"{prog}: unknown polic"
                f"{'y' if len(unknown) == 1 else 'ies'} "
                f"{', '.join(unknown)} in --policies "
                f"(registered: {', '.join(available())})")
        arena = arena_specs(policies, bases=specs, pivot=policies[0])
        if not arena:
            raise SystemExit(
                f"{prog}: --policies derived no arena figures "
                f"(no selected figure has {policies[0]!r} cells)")
        specs = list(specs) + arena
    return specs


def _cmd_figures_campaign(args: argparse.Namespace, workers: int) -> int:
    """``figures run --all``: the whole-paper campaign."""
    from .harness.campaign import (
        STATUSES,
        run_campaign,
        shared_store,
    )
    from .report import write_campaign_report
    from .scenarios import figure_ids

    if args.prune:
        # --prune's keep-set semantics are per-figure; on the shared
        # campaign store it would silently delete other figures'
        # artifacts — the campaign spelling is --prune-stale
        raise SystemExit(
            "repro figures: --prune applies to single-figure runs; "
            "use --prune-stale for campaigns")
    specs = _campaign_specs(
        "repro figures", only=_split_csv(args.only) + list(args.ids),
        skip=_split_csv(args.skip), tags=_split_csv(args.tag),
        policies=_split_csv(args.policies))
    if args.no_cache:
        if args.prune_stale:
            raise SystemExit("repro figures: --prune-stale needs an "
                             "artifact store; drop --no-cache")
        store = None
    else:
        # shared_store owns the campaign store's location and policy;
        # only the env-validation spelling lives here
        try:
            store = shared_store(args.results_dir, fresh=args.fresh)
        except ValueError as exc:
            raise SystemExit(f"repro: {exc}")
    print(f"campaign: {len(specs)} figure(s), workers={workers}, "
          f"figure-jobs={args.figure_jobs}, "
          f"store={store.root if store is not None else 'none'}")
    campaign = run_campaign(
        specs, workers=workers, figure_jobs=args.figure_jobs,
        store=store, check=not args.no_check,
        prune_stale=args.prune_stale, progress=True,
        backend=args.backend)
    if len(specs) < len(figure_ids()) and \
            args.report == "REPRODUCTION.md":
        # the report itself is marked partial, but overwriting the
        # committed whole-paper report deserves a visible heads-up
        print("note: partial campaign overwrites REPRODUCTION.md; "
              "pass --report to write the subset elsewhere")
    report_path, json_path = write_campaign_report(
        campaign, report_path=args.report, json_path=args.json_path)
    counts = campaign.counts()
    print(f"campaign done in {campaign.wall_s:.1f}s: "
          + ", ".join(f"{counts[s]} {s}" for s in STATUSES)
          + f"; {campaign.tasks} tasks ({campaign.executed} executed, "
            f"{campaign.cached} cached)")
    print(f"report: {report_path}; record: {json_path}")
    return 0 if campaign.ok(strict=args.strict) else 1


def _cmd_figures_trend(args: argparse.Namespace) -> int:
    """``figures trend``: diff two campaign.json records."""
    from .report import diff_campaigns, load_record, render_trend

    try:
        old_doc = load_record(args.old)
        new_doc = load_record(args.new)
    except ValueError as exc:
        raise SystemExit(f"repro figures trend: {exc}")
    if args.tol < 0:
        raise SystemExit("repro figures trend: --tol must be >= 0")
    report = diff_campaigns(old_doc, new_doc, tol=args.tol)
    print(render_trend(report))
    return 0 if (report.clean or not args.strict) else 1


def _cmd_figures(args: argparse.Namespace) -> int:
    from .harness.sweep import task_key
    from .scenarios import figure_ids, get_figure, run_figure

    if args.figures_command == "trend":
        return _cmd_figures_trend(args)
    if args.figures_command == "list":
        rows = []
        for fig_id in figure_ids():
            spec = get_figure(fig_id)
            rows.append((fig_id, spec.figure, len(spec.build()),
                         ",".join(spec.tags), spec.title))
        print(format_table("figure registry (`repro figures run <id>`)",
                           ["id", "paper", "tasks", "tags", "title"],
                           rows))
        return 0

    _check_backend_env()
    if args.scale:
        # matrices resolve the scale lazily at build time; workers
        # inherit it through the (forked) environment
        os.environ["REPRO_BENCH_SCALE"] = args.scale
    workers = args.workers
    if workers is None:
        # resolved here, not at parser build, so a malformed env var
        # cannot break unrelated subcommands
        raw = os.environ.get("REPRO_BENCH_WORKERS", "1") or "1"
        try:
            workers = int(raw)
        except ValueError:
            raise SystemExit(
                f"repro figures: REPRO_BENCH_WORKERS must be an "
                f"integer, got {raw!r}")
    if args.all or args.only or args.skip or args.tag:
        return _cmd_figures_campaign(args, workers)
    if not args.ids:
        raise SystemExit("repro figures run: provide FIG_ID(s) or "
                         "--all (see `repro figures list`)")
    # campaign-only flags must not be silent no-ops on the
    # single-figure path — a user scripting report generation would
    # get no file and no error
    ignored = [flag for flag, is_set in (
        ("--report", args.report != "REPRODUCTION.md"),
        ("--json", args.json_path != "campaign.json"),
        ("--figure-jobs", args.figure_jobs != 1),
        ("--prune-stale", args.prune_stale),
        ("--strict", args.strict),
        ("--policies", args.policies is not None),
    ) if is_set]
    if ignored:
        raise SystemExit(
            f"repro figures: {', '.join(ignored)} only appl"
            f"{'ies' if len(ignored) == 1 else 'y'} to campaign mode "
            f"(--all / --only / --skip / --tag)")
    # resolve every id up front: a typo in the last id must not cost
    # the minutes the earlier figures take to simulate
    try:
        specs = [(fig_id, get_figure(fig_id)) for fig_id in args.ids]
    except KeyError as exc:
        raise SystemExit(f"repro figures: {exc.args[0]}")
    ok = True
    for fig_id, spec in specs:
        if args.no_cache:
            store = None
        else:
            store = _open_store(os.path.join(args.results_dir, fig_id),
                                fresh=args.fresh)
        result = run_figure(spec, workers=workers, store=store,
                            progress=True, backend=args.backend)
        headers, rows, notes = result.table_doc()
        print(format_table(spec.title, headers, rows))
        for note in notes:
            print(note)
        print(f"tasks: {len(result.sweep)} total, "
              f"{result.sweep.executed} executed, "
              f"{result.sweep.cached} from cache")
        if args.prune and store is not None:
            keys = [task_key(t) for t in result.tasks.values()]
            removed = store.prune(keep=keys)
            print(f"pruned {len(removed)} stale artifact(s)")
        if not args.no_check and spec.check is not None:
            try:
                result.check()
            except AssertionError as exc:
                detail = f": {exc}" if str(exc) else ""
                print(f"[DIVERGES] {fig_id} shape check failed{detail}")
                ok = False
            else:
                print(f"[OK ] {fig_id} paper-shape checks hold")
    return 0 if ok else 1


def _cmd_shard_plan(args: argparse.Namespace) -> int:
    from .harness.backends import plan_manifests, write_shard_plan
    from .harness.backends.worker import scoped_env
    from .harness.scale import current_scale
    from .harness.sweep import task_key

    if args.shards < 1:
        raise SystemExit("repro shard plan: --shards must be >= 1")
    scale_scope = scoped_env(REPRO_BENCH_SCALE=args.scale) \
        if args.scale else contextlib.nullcontext()
    with scale_scope:
        specs = _campaign_specs("repro shard plan",
                                only=_split_csv(args.only),
                                skip=_split_csv(args.skip),
                                tags=_split_csv(args.tag))
        figures, by_key = [], {}
        for spec in specs:
            # mirror the campaign's fail-soft behaviour: a figure whose
            # matrix cannot build contributes no tasks on any host, so
            # skipping it keeps shards equal to a single-host run
            try:
                tasks = spec.build()
            except Exception as exc:
                print(f"warning: skipping {spec.fig_id}: matrix failed "
                      f"to build ({exc})")
                continue
            figures.append(spec.fig_id)
            for task in tasks.values():
                by_key.setdefault(task_key(task), task)
        manifests = plan_manifests(figures, list(by_key), args.shards,
                                   current_scale().name)
        paths = write_shard_plan(args.out, manifests)
        sizes = ", ".join(str(len(m["keys"])) for m in manifests)
        print(f"planned {len(by_key)} task(s) from {len(figures)} "
              f"figure(s) into {args.shards} shard(s) [{sizes}] "
              f"at scale {current_scale().name}")
        for path in paths:
            print(f"  {path}")
    return 0


def _cmd_shard_run(args: argparse.Namespace) -> int:
    from .harness.backends import (
        expand_figures,
        load_shard_manifest,
        shard_origin,
        tasks_for_manifest,
    )
    from .harness.backends.worker import scoped_env
    from .harness.sweep import simulator_version

    _check_backend_env()
    try:
        manifest = load_shard_manifest(args.manifest)
    except ValueError as exc:
        raise SystemExit(f"repro shard run: {exc}")
    # the scale and shard identity are the *manifest's*, exported only
    # for the duration of this run: matrices resolve REPRO_BENCH_SCALE
    # lazily and provenance reads REPRO_SHARD, but a later in-process
    # run (tests, an orchestrator driving shards) must not inherit a
    # stale shard identity in its provenance header
    with scoped_env(REPRO_BENCH_SCALE=str(manifest["scale"]),
                    REPRO_SHARD=(f"{manifest['shard']}/"
                                 f"{manifest['n_shards']}")):
        if simulator_version() != manifest["sim"]:
            raise SystemExit(
                f"repro shard run: simulator {simulator_version()} "
                f"does not match the plan's {manifest['sim']}; shards "
                f"from different source revisions can never merge — "
                f"check out the planning commit or re-plan")
        try:
            tasks = tasks_for_manifest(
                manifest, expand_figures(manifest["figures"]))
        except (KeyError, ValueError) as exc:
            raise SystemExit(f"repro shard run: {exc}")
        store = _open_store(args.store, origin=shard_origin(manifest))
        if not tasks:
            # still materialize the (empty) store: scripts merge every
            # planned shard, and `shard merge` rejects missing
            # directories
            os.makedirs(store.root, exist_ok=True)
            print(f"{shard_origin(manifest)}: empty shard, nothing "
                  f"to run")
            return 0
        results = run_sweep(tasks, workers=args.workers, store=store,
                            progress=True, backend=args.backend)
        print(f"{shard_origin(manifest)}: {len(results)} task(s) "
              f"({results.executed} executed, {results.cached} cached) "
              f"-> {store.root}")
    return 0


def _looks_like_store(path: str) -> bool:
    """Heuristic pre-flight for ``shard merge`` sources: an empty
    directory is a valid (empty) shard store, and any store carries a
    segment file and/or JSON artifacts/manifest — a directory with
    neither (someone's results dir, a typo'd path) is not a store."""
    from .harness.store import ColumnarStore

    try:
        names = os.listdir(path)
    except OSError:
        return False
    return (not names
            or any(n == ColumnarStore.SEGMENT or n.endswith(".json")
                   for n in names))


def _cmd_shard_merge(args: argparse.Namespace) -> int:
    from .harness.store import ColumnarStore

    dest = _open_store(args.into)
    # validate every source before touching the destination: a typo in
    # source k must not leave the campaign store half-merged
    for src in args.sources:
        if not os.path.isdir(src) or not _looks_like_store(src):
            raise SystemExit(f"repro shard merge: {src} is not a "
                             f"store directory")
    total = 0
    done: List[str] = []
    for src in args.sources:
        # sources always open read-compatible (segment + legacy JSON),
        # whatever $REPRO_STORE says about the destination: a v1 store
        # cannot see segment files, and "merged 0 artifact(s)" from a
        # v2 shard store must not be a silent success
        try:
            merged = dest.merge_from(ColumnarStore(src))
        except Exception as exc:
            # merge_from is idempotent (content-keyed), so the partial
            # merge is safe: fixing the bad source and re-running the
            # same command completes the campaign store
            raise SystemExit(
                f"repro shard merge: merging {src} failed: {exc}\n"
                f"merged {len(done)}/{len(args.sources)} source(s) "
                f"before the failure"
                + (f" ({', '.join(done)})" if done else "")
                + f"; {src} and later sources did not land — re-run "
                  f"the same merge once the source is fixed "
                  f"(already-merged artifacts are skipped)")
        total += len(merged)
        done.append(src)
        print(f"merged {len(merged)} artifact(s) from {src}")
    print(f"store {dest.root}: {len(dest)} artifact(s) "
          f"({total} newly merged)")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    return {
        "plan": _cmd_shard_plan,
        "run": _cmd_shard_run,
        "merge": _cmd_shard_merge,
    }[args.shard_command](args)


def _cmd_orchestrate(args: argparse.Namespace) -> int:
    from .harness.backends.worker import scoped_env
    from .harness.campaign import STATUSES
    from .harness.orchestrate import (
        SHARD_STATES,
        LocalGroupRunner,
        SSHRunner,
        orchestrate_campaign,
    )

    _check_backend_env()
    if args.fan_out < 1:
        raise SystemExit("repro orchestrate: --fan-out must be >= 1")
    if args.shards is not None and args.shards < 1:
        raise SystemExit("repro orchestrate: --shards must be >= 1")
    if args.runner == "ssh":
        hosts = _split_csv(args.ssh_hosts)
        if not hosts:
            raise SystemExit("repro orchestrate: --runner ssh needs "
                             "--ssh-hosts")
        runner = SSHRunner(hosts, python=args.ssh_python)
    else:
        if args.ssh_hosts:
            raise SystemExit("repro orchestrate: --ssh-hosts only "
                             "applies to --runner ssh")
        runner = LocalGroupRunner()
    # the acceptance contract: whatever the run exports for its own
    # planning/final render, the orchestrator's environment is
    # restored afterwards — REPRO_BENCH_SCALE and REPRO_SHARD leak
    # from this process into nothing
    scale = args.scale or os.environ.get("REPRO_BENCH_SCALE")
    with scoped_env(REPRO_BENCH_SCALE=scale,
                    REPRO_SHARD=os.environ.get("REPRO_SHARD")):
        specs = _campaign_specs("repro orchestrate",
                                only=_split_csv(args.only),
                                skip=_split_csv(args.skip),
                                tags=_split_csv(args.tag),
                                policies=_split_csv(args.policies))
        try:
            result = orchestrate_campaign(
                specs, results_dir=args.results_dir,
                work_dir=args.work_dir, fan_out=args.fan_out,
                n_shards=args.shards,
                shard_workers=args.shard_workers,
                backend=args.backend, runner=runner,
                heartbeat_timeout_s=args.heartbeat_timeout,
                shard_deadline_s=args.shard_deadline,
                max_retries=args.max_retries,
                chaos_kills=args.chaos_kill,
                check=not args.no_check, fresh=args.fresh,
                progress=True, report_path=args.report,
                json_path=args.json_path, html_path=args.html_path)
        except ValueError as exc:
            raise SystemExit(f"repro orchestrate: {exc}")
    counts = result.counts()
    print(f"orchestrate done in {result.wall_s:.1f}s: "
          + ", ".join(f"{counts[s]} {s}" for s in SHARD_STATES
                      if counts[s])
          + f"; {result.retries} retr"
            f"{'y' if result.retries == 1 else 'ies'}, "
            f"{result.chaos_killed} chaos kill(s)")
    if result.campaign is not None:
        ccounts = result.campaign.counts()
        print("campaign: "
              + ", ".join(f"{ccounts[s]} {s}" for s in STATUSES)
              + f"; {result.campaign.tasks} tasks "
                f"({result.campaign.executed} executed, "
                f"{result.campaign.cached} cached)")
        print(f"report: {result.report_path}; "
              f"record: {result.json_path}")
    if result.chaos_killed < result.chaos_requested:
        # an un-fired drill is a failed drill: the run proved nothing
        # about recovery, which is what --chaos-kill was asked to prove
        raise SystemExit(
            f"repro orchestrate: --chaos-kill {result.chaos_requested} "
            f"requested but only {result.chaos_killed} worker(s) were "
            f"killed — the campaign finished too fast for the drill; "
            f"slow workers down (REPRO_WORKER_THROTTLE_S) or raise "
            f"the task count")
    if not result.ok():
        return 1
    return 0 if result.campaign.ok(strict=args.strict) else 1


def _cmd_store(args: argparse.Namespace) -> int:
    from .harness.store import STORE_ENV, ColumnarStore

    if not os.path.isdir(args.root):
        raise SystemExit(f"repro store: {args.root} is not a store "
                         f"directory")
    store = ColumnarStore(args.root)
    if args.store_command == "compact":
        if os.environ.get(STORE_ENV, "").strip().lower() in \
                ("json", "v1"):
            # compacting moves everything into the segment file, which
            # a json-pinned pipeline cannot read — the whole cache
            # would silently vanish on the next run
            raise SystemExit(
                f"repro store compact: {STORE_ENV}=json pins the "
                f"legacy format, which cannot read compacted "
                f"segments; unset it first")
        stats = store.compact()
        before, after = stats["before"], stats["after"]
        saved = before["bytes"] - after["bytes"]
        pct = (saved / before["bytes"] * 100) if before["bytes"] else 0.0
        print(f"compacted {args.root}: {stats['records_written']} "
              f"record(s) in {after['blocks']} block(s), "
              f"{stats['json_absorbed']} JSON artifact(s) absorbed")
        print(f"bytes: {before['bytes']:,} -> {after['bytes']:,} "
              f"({pct:+.0f}% saved)")
        return 0
    if args.store_command == "inspect":
        stats = store.stats()
        fmt = stats["format"]
        rows = [["keys", stats["keys"]],
                ["segment records", stats["records"]],
                ["shadowed duplicates", stats["duplicates"]],
                ["segment blocks",
                 f"{stats['blocks']} (v2: {fmt['v2_blocks']}, "
                 f"v3: {fmt['v3_blocks']})"],
                ["segment bytes", f"{stats['segment_bytes']:,}"],
                ["legacy JSON artifacts", stats["legacy_json"]],
                ["legacy JSON bytes", f"{stats['json_bytes']:,}"],
                ["manifest entries", len(store.manifest())]]
        if stats["tasks_timed"]:
            rows.append(["timed tasks",
                         f"{stats['tasks_timed']} "
                         f"({stats['task_wall_s']:.1f}s wall, "
                         f"{stats['task_bytes']:,} payload bytes)"])
        print(format_table(
            f"store {args.root}", ["field", "value"], rows))
        sections = {name: nbytes
                    for name, nbytes in stats["sections"].items()
                    if nbytes}
        if sections:
            print(format_table(
                "compressed sections (header-only scan)",
                ["section", "bytes"],
                [[name, f"{sections[name]:,}"]
                 for name in sorted(sections)]))
        columns = stats["columns"]
        if columns:
            top = sorted(columns, key=lambda k: -columns[k])[:10]
            print(format_table(
                "top columns by encoded bytes", ["column", "bytes"],
                [[name, f"{columns[name]:,}"] for name in top]))
        if stats["tail_dirty"]:
            print("[TORN] the segment has an unreadable tail — the "
                  "counts above cover only the readable prefix; run "
                  "`repro store verify` for details")
        if stats["legacy_json"] or stats["duplicates"]:
            print("hint: `repro store compact` folds legacy JSON "
                  "artifacts into the segment file and drops "
                  "shadowed duplicates")
        return 0
    report = store.verify()
    print(f"store {args.root}: {report['blocks']} block(s), "
          f"{report['records']} record(s), {report['unique_keys']} "
          f"unique key(s), {report['duplicate_records']} shadowed "
          f"duplicate(s), {report['legacy_json']} legacy JSON "
          f"artifact(s)")
    for message in report["errors"]:
        print(f"[CORRUPT] {message}")
    for key in report["key_mismatches"]:
        print(f"[CORRUPT] record {key} embeds a different content key")
    if report["truncated_tail_bytes"]:
        print(f"[TORN] {report['truncated_tail_bytes']} trailing "
              f"byte(s) are not a complete block (dropped on read, "
              f"truncated on the next write)")
    print("store verify: OK" if report["ok"]
          else "store verify: FAILED")
    return 0 if report["ok"] else 1


def _cmd_docs(args: argparse.Namespace) -> int:
    from .report import docs_drift, write_figure_docs

    if args.check:
        drift = docs_drift(args.out)
        if drift:
            for name in sorted(drift):
                print(f"[DRIFT] {os.path.join(args.out, name)}: "
                      f"{drift[name]}")
            print(f"docs drift: {len(drift)} page(s) out of date — "
                  f"run `repro docs figures` and commit the result")
            return 1
        print(f"docs check: {args.out} matches the registry")
        return 0
    written = write_figure_docs(args.out)
    print(f"wrote {len(written)} page(s) under {args.out}")
    return 0


def _cmd_footprint(args: argparse.Namespace) -> int:
    cfg = RepsConfig(buffer_size=args.buffer, evs_size=args.evs,
                     ev_lifespan=args.lifespan)
    fp = compute_footprint(cfg)
    print(format_table(
        "REPS per-connection memory footprint (Table 1)",
        ["component", "bits"], fp.rows()))
    print(f"total: {fp.total_bits} bits ~= {fp.total_bytes} bytes")
    return 0


def _cmd_perf_run(args: argparse.Namespace) -> int:
    import json as _json

    from .harness.perf import QUICK_SCALE, render_record, run_perf

    names = args.only.split(",") if args.only else None
    scale = args.scale if args.scale is not None else QUICK_SCALE
    record = run_perf(scale=scale, repeats=args.repeats, names=names)
    print(render_record(record))
    if args.json_path:
        with open(args.json_path, "w") as fh:
            _json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"record: {args.json_path}")
    return 0


def _cmd_perf_trend(args: argparse.Namespace) -> int:
    from .harness.perf import diff_perf, load_record, render_diff

    try:
        old_doc = load_record(args.old)
        new_doc = load_record(args.new)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro perf trend: {exc}")
    if args.tol < 0:
        raise SystemExit("repro perf trend: --tol must be >= 0")
    diff = diff_perf(old_doc, new_doc, tol=args.tol)
    print(render_diff(diff, args.tol))
    return 0 if (diff.clean or not args.strict) else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.perf_command == "trend":
        return _cmd_perf_trend(args)
    return _cmd_perf_run(args)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "figures": _cmd_figures,
        "shard": _cmd_shard,
        "orchestrate": _cmd_orchestrate,
        "store": _cmd_store,
        "docs": _cmd_docs,
        "footprint": _cmd_footprint,
        "perf": _cmd_perf,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
