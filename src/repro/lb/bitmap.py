"""BitMap load balancer: per-EV congestion statistics (STrack-like).

The Sec. 4.1 baseline "where we keep per EV statistics similarly to
STrack": a bitmap over the whole EVS marks entropies recently observed
congested (ECN / trim / timeout); spraying draws random EVs and rejects
marked ones.  Marks age out after a few RTTs.

This is the memory-hungry strawman Table 1 contrasts against: the bitmap
costs ``evs_size`` bits per connection (64 Kib for a 16-bit EVS) versus
REPS's ~25 bytes.
"""

from __future__ import annotations

from .base import LbContext, SenderLoadBalancer, register

#: how long a congestion mark lasts, in RTTs
_AGE_RTTS = 8
#: rejection-sampling attempts before giving up and clearing the bitmap
_MAX_TRIES = 16
#: per-connection EV table size.  Keeping per-EV statistics forces a small
#: working EVS (the Table-1 memory argument: 64 Kib of state for a 16-bit
#: EVS is infeasible in a NIC), so the bitmap scheme sprays over a reduced
#: EV range where its marks can actually cover paths.
DEFAULT_TABLE_SIZE = 256


@register("bitmap")
class BitmapLb(SenderLoadBalancer):
    """Random spraying that avoids EVs marked congested."""

    name = "bitmap"

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        self._table_size = min(ctx.evs_size, DEFAULT_TABLE_SIZE)
        self._congested = set()
        self._last_age = 0
        self._age_ps = _AGE_RTTS * ctx.rtt_ps

    def _maybe_age(self, now: int) -> None:
        if now - self._last_age >= self._age_ps:
            self._congested.clear()
            self._last_age = now

    def next_entropy(self, now: int) -> int:
        self._maybe_age(now)
        rng = self.ctx.rng
        evs = self._table_size
        if len(self._congested) >= evs:
            self._congested.clear()
        for _ in range(_MAX_TRIES):
            ev = rng.randrange(evs)
            if ev not in self._congested:
                return ev
        # nearly everything is marked: start afresh
        self._congested.clear()
        return rng.randrange(evs)

    def on_ack(self, ev: int, ecn: bool, now: int) -> None:
        if ecn:
            self._congested.add(ev)
        else:
            self._congested.discard(ev)

    def on_nack(self, ev: int, now: int) -> None:
        self._congested.add(ev)

    def on_timeout(self, ev: int, now: int) -> None:
        self._congested.add(ev)
