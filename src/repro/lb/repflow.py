"""RepFlow: transport-level flow replication (Xu & Li, low-latency
flow replication for commodity data centers).

RepFlow attacks tail FCT from above the load balancer: every short
flow (< 100 KB) is sent **twice** as two independent single-path
connections that hash onto different paths, and the copy that finishes
first defines the flow completion time — the other is cancelled.  The
probability that *both* copies meet a long queue or a failed link is
the product of the individual probabilities, which is what collapses
the tail.

The sender half of one copy is plain ECMP (each replica is its own
"connection" with its own five-tuple, i.e. its own static EV); the
replication itself is transport machinery —
:class:`~repro.sim.transport.ReplicatedFlow` wires first-finish-wins
completion and loser cancellation, and ``Network.add_flow`` builds the
copies when the flow's LB name appears in
:data:`~repro.lb.base.REPLICATION_FOR_LB`.
"""

from __future__ import annotations

from .base import (
    ORDERING_PROMISE_FOR_LB,
    REPLICATION_FOR_LB,
    ReplicationSpec,
    register,
)
from .simple import EcmpLb


@register("repflow")
class RepflowCopyLb(EcmpLb):
    """Sender half of one RepFlow copy: a static per-copy EV.

    Each copy draws its EV from its own flow RNG, so the two replicas
    of a message hash independently — almost always onto distinct
    paths, which is the entire point.
    """

    name = "repflow"


#: replicate short flows twice, RepFlow's 100 KB threshold
REPLICATION_FOR_LB["repflow"] = ReplicationSpec(copies=2,
                                                max_bytes=100 * 1024)

# each copy is ECMP-pinned, so per (copy) flow delivery is FIFO
ORDERING_PROMISE_FOR_LB["repflow"] = "flow_fifo"
