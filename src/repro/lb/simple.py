"""The two non-adaptive baselines: ECMP and OPS (Sec. 2.2).

Also the sender halves of the switch-side schemes: Adaptive RoCE and the
Fig. 9 oracle spray randomly at the sender and let the switch decide.
"""

from __future__ import annotations

from .base import (
    ORDERING_PROMISE_FOR_LB,
    LbContext,
    SenderLoadBalancer,
    register,
)


@register("ecmp")
class EcmpLb(SenderLoadBalancer):
    """Classic ECMP: one static EV for the whole flow.

    All packets of the connection hash identically, so the flow is pinned
    to a single path — the hash-collision failure mode of Sec. 2.2.
    """

    name = "ecmp"

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        self._ev = ctx.rng.randrange(ctx.evs_size)

    def next_entropy(self, now: int) -> int:
        return self._ev


@register("ops")
class OpsLb(SenderLoadBalancer):
    """Oblivious Packet Spraying: a fresh random EV per packet."""

    name = "ops"

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        # per-packet path: one bound-method call, no ctx hops
        self._randrange = ctx.rng.randrange
        self._evs_size = ctx.evs_size

    def next_entropy(self, now: int) -> int:
        return self._randrange(self._evs_size)


@register("adaptive_roce")
class AdaptiveRoceSenderLb(OpsLb):
    """Sender half of Adaptive RoCE: spray; switches pick least-queue."""

    name = "adaptive_roce"


@register("ideal")
class IdealSenderLb(OpsLb):
    """Sender half of the Fig. 9 'Theoretical Best' oracle."""

    name = "ideal"


@register("wcmp")
class WcmpSenderLb(EcmpLb):
    """Sender half of WCMP: per-flow static EV; switches weight the
    group by link rate (Sec. 4.3.2's known-asymmetry alternative)."""

    name = "wcmp"


# one static EV = one path = one FIFO queue chain: on a lossless
# fabric these deliver strictly in order (conformance-suite contract)
ORDERING_PROMISE_FOR_LB["ecmp"] = "flow_fifo"
ORDERING_PROMISE_FOR_LB["wcmp"] = "flow_fifo"


def _make_reps_source(ctx):
    """REPS over source routing (Sec. 3.3): the EV is the path id, so a
    modest EVS suffices; the algorithm itself is unchanged."""
    from ..core.reps import RepsConfig, RepsSender
    cfg = ctx.reps_config or RepsConfig(evs_size=ctx.evs_size)
    return RepsSender(cfg, rng=ctx.rng, cwnd_pkts=ctx.cwnd_pkts)


register("reps_source")(_make_reps_source)
