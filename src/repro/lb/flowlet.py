"""Flowlet switching (Vanini et al., "Let It Flow", NSDI '17).

The flow keeps its EV while packets are back-to-back; an idle gap longer
than the flowlet timeout opens a new flowlet on a fresh random EV.  The
paper configures an aggressive timeout of half the RTT (Sec. 4.1).
"""

from __future__ import annotations

from .base import LbContext, SenderLoadBalancer, register


@register("flowlet")
class FlowletLb(SenderLoadBalancer):
    """Flowlet switching with gap = RTT/2."""

    name = "flowlet"

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        self._ev = ctx.rng.randrange(ctx.evs_size)
        self._gap_ps = max(1, ctx.rtt_ps // 2)
        self._last_send: int = -(1 << 62)

    def next_entropy(self, now: int) -> int:
        if now - self._last_send > self._gap_ps:
            self._ev = self.ctx.rng.randrange(self.ctx.evs_size)
        self._last_send = now
        return self._ev

    def on_timeout(self, ev: int, now: int) -> None:
        # a timeout leaves a gap anyway, but repath eagerly like PLB
        self._ev = self.ctx.rng.randrange(self.ctx.evs_size)
