"""Sender-side load balancers: REPS plus the Sec. 4.1 baseline suite.

Importing this package registers every algorithm with the factory:

    >>> from repro.lb import available, make_lb
    >>> sorted(set(available()) & {"reps", "ops", "ecmp"})
    ['ecmp', 'ops', 'reps']
"""

from .base import (
    SWITCH_MODE_FOR_LB,
    LbContext,
    SenderLoadBalancer,
    available,
    make_lb,
    register,
)
from .bitmap import BitmapLb
from .flowlet import FlowletLb
from .mprdma import MprdmaLb
from .mptcp import MptcpLb
from .plb import PlbLb
from .simple import (
    AdaptiveRoceSenderLb,
    EcmpLb,
    IdealSenderLb,
    OpsLb,
    WcmpSenderLb,
)

__all__ = [
    "LbContext", "SenderLoadBalancer", "SWITCH_MODE_FOR_LB",
    "available", "make_lb", "register",
    "BitmapLb", "FlowletLb", "MprdmaLb", "MptcpLb", "PlbLb",
    "AdaptiveRoceSenderLb", "EcmpLb", "IdealSenderLb", "OpsLb",
    "WcmpSenderLb",
]
