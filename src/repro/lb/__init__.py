"""Sender-side load balancers: REPS plus the Sec. 4.1 baseline suite
and the arena competitors (RepFlow, PRIME, Sprinklers).

Importing this package registers every algorithm with the factory:

    >>> from repro.lb import available, make_lb
    >>> sorted(set(available()) & {"reps", "ops", "ecmp"})
    ['ecmp', 'ops', 'reps']
"""

from .base import (
    ORDERING_PROMISE_FOR_LB,
    REPLICATION_FOR_LB,
    SWITCH_MODE_FOR_LB,
    LbContext,
    ReplicationSpec,
    SenderLoadBalancer,
    available,
    make_lb,
    register,
)
from .bitmap import BitmapLb
from .flowlet import FlowletLb
from .mprdma import MprdmaLb
from .mptcp import MptcpLb
from .plb import PlbLb
from .prime import PrimeLb
from .repflow import RepflowCopyLb
from .simple import (
    AdaptiveRoceSenderLb,
    EcmpLb,
    IdealSenderLb,
    OpsLb,
    WcmpSenderLb,
)
from .sprinklers import SprinklersLb

__all__ = [
    "LbContext", "SenderLoadBalancer", "SWITCH_MODE_FOR_LB",
    "ORDERING_PROMISE_FOR_LB", "REPLICATION_FOR_LB", "ReplicationSpec",
    "available", "make_lb", "register",
    "BitmapLb", "FlowletLb", "MprdmaLb", "MptcpLb", "PlbLb",
    "PrimeLb", "RepflowCopyLb", "SprinklersLb",
    "AdaptiveRoceSenderLb", "EcmpLb", "IdealSenderLb", "OpsLb",
    "WcmpSenderLb",
]
