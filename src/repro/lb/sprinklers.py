"""Sprinklers: variable-size striping with a per-stripe hash.

Sprinklers cuts a flow into contiguous *stripes* and sprays stripes —
not packets — across paths: every packet of a stripe carries the same
entropy value, so within a stripe delivery is FIFO (one path, one
queue) and reordering can only appear at stripe boundaries.  Stripe
sizes are drawn at random from ``[MIN_STRIPE, MAX_STRIPE]`` packets so
synchronized flows do not beat against each other, and congestion
feedback shortens the stripe in progress: an ECN mark halves the
remaining budget, a trim or timeout ends the stripe immediately (the
next packet opens a fresh stripe on a fresh hash).

The conformance suite holds the policy to its construction: packets
sharing an EV must arrive in send order (``"stripe_fifo"`` in
:data:`~repro.lb.base.ORDERING_PROMISE_FOR_LB`).
"""

from __future__ import annotations

from .base import (
    ORDERING_PROMISE_FOR_LB,
    LbContext,
    SenderLoadBalancer,
    register,
)


@register("sprinklers")
class SprinklersLb(SenderLoadBalancer):
    """Variable-size striping: one random EV per stripe of packets."""

    name = "sprinklers"

    MIN_STRIPE = 4
    MAX_STRIPE = 64

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        self._rng = ctx.rng
        self._evs_size = ctx.evs_size
        self._ev = 0
        self._left = 0
        self._new_stripe()
        self.stats_stripes = 1

    def _new_stripe(self) -> None:
        self._ev = self._rng.randrange(self._evs_size)
        self._left = self._rng.randint(self.MIN_STRIPE, self.MAX_STRIPE)

    def next_entropy(self, now: int) -> int:
        if self._left <= 0:
            self._new_stripe()
            self.stats_stripes += 1
        self._left -= 1
        return self._ev

    def on_ack(self, ev: int, ecn: bool, now: int) -> None:
        if ecn and ev == self._ev and self._left > 1:
            # the active stripe's path is marking: shorten the stripe
            self._left -= self._left // 2

    def on_nack(self, ev: int, now: int) -> None:
        if ev == self._ev:
            self._left = 0

    def on_timeout(self, ev: int, now: int) -> None:
        if ev == self._ev:
            self._left = 0


ORDERING_PROMISE_FOR_LB["sprinklers"] = "stripe_fifo"
