"""MPTCP-like striping over 8 static subflows (Raiciu et al., 2011).

Per the paper's setup (Sec. 4.1): "we divide each message into 8 subflows
and route each one individually, similarly to using multiple QPs".  Each
subflow owns a static random EV; packets are striped over subflows
weighted by a per-subflow congestion estimate (coupled-CC flavour).  A
subflow that times out is repathed onto a new EV.
"""

from __future__ import annotations

from typing import Dict

from .base import LbContext, SenderLoadBalancer, register

SUBFLOWS = 8


@register("mptcp")
class MptcpLb(SenderLoadBalancer):
    """8-subflow striping with congestion-weighted selection."""

    name = "mptcp"

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        self._evs = [ctx.rng.randrange(ctx.evs_size)
                     for _ in range(SUBFLOWS)]
        self._weights = [1.0] * SUBFLOWS
        self._ev_to_subflow: Dict[int, int] = {
            ev: i for i, ev in enumerate(self._evs)}
        self._deficit = [0.0] * SUBFLOWS

    def next_entropy(self, now: int) -> int:
        # deficit round-robin: serve the subflow with the largest credit
        for i, w in enumerate(self._weights):
            self._deficit[i] += w
        best = max(range(SUBFLOWS), key=lambda i: self._deficit[i])
        self._deficit[best] -= sum(self._weights)
        return self._evs[best]

    def _subflow_of(self, ev: int):
        return self._ev_to_subflow.get(ev)

    def on_ack(self, ev: int, ecn: bool, now: int) -> None:
        i = self._subflow_of(ev)
        if i is None:
            return
        if ecn:
            self._weights[i] = max(0.05, self._weights[i] * 0.7)
        else:
            self._weights[i] = min(1.0, self._weights[i] + 0.02)

    def on_nack(self, ev: int, now: int) -> None:
        i = self._subflow_of(ev)
        if i is not None:
            self._weights[i] = max(0.05, self._weights[i] * 0.5)

    def on_timeout(self, ev: int, now: int) -> None:
        i = self._subflow_of(ev)
        if i is None:
            return
        # repath the subflow, MPTCP-style: new 5-tuple, reset estimate
        del self._ev_to_subflow[self._evs[i]]
        new_ev = self.ctx.rng.randrange(self.ctx.evs_size)
        self._evs[i] = new_ev
        self._ev_to_subflow[new_ev] = i
        self._weights[i] = 0.5
