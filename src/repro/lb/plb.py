"""PLB — Protective Load Balancing (Qureshi et al., SIGCOMM '22).

Flow-granular repathing driven by congestion signals: the flow keeps one
EV and picks a new random one after ``congested_rounds_threshold``
consecutive RTT rounds whose ECN fraction exceeds ``ecn_threshold``.
Timeouts repath immediately.  Per the paper's setup (Sec. 4.1) we use
aggressive FlowBender-like parameters: a single bad round repaths.
"""

from __future__ import annotations

from .base import LbContext, SenderLoadBalancer, register


@register("plb")
class PlbLb(SenderLoadBalancer):
    """PLB with FlowBender-aggressive parameters."""

    name = "plb"

    #: fraction of ECN-marked ACKs in a round that marks it congested
    ecn_threshold = 0.5
    #: consecutive congested rounds before repathing
    congested_rounds_threshold = 1

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        self._ev = ctx.rng.randrange(ctx.evs_size)
        self._round_start = 0
        self._acks = 0
        self._ecn_acks = 0
        self._congested_rounds = 0

    def next_entropy(self, now: int) -> int:
        return self._ev

    def on_ack(self, ev: int, ecn: bool, now: int) -> None:
        if self._acks == 0:
            self._round_start = now
        self._acks += 1
        if ecn:
            self._ecn_acks += 1
        if now - self._round_start >= self.ctx.rtt_ps:
            self._end_round()

    def _end_round(self) -> None:
        if self._acks and self._ecn_acks / self._acks >= self.ecn_threshold:
            self._congested_rounds += 1
        else:
            self._congested_rounds = 0
        if self._congested_rounds >= self.congested_rounds_threshold:
            self._repath()
        self._acks = 0
        self._ecn_acks = 0

    def _repath(self) -> None:
        self._ev = self.ctx.rng.randrange(self.ctx.evs_size)
        self._congested_rounds = 0

    def on_timeout(self, ev: int, now: int) -> None:
        self._repath()

    def on_nack(self, ev: int, now: int) -> None:
        # a trim is a strong congestion signal: count as a full bad round
        self._congested_rounds += 1
        if self._congested_rounds >= self.congested_rounds_threshold:
            self._repath()
