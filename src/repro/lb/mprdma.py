"""MPRDMA-like multi-path selection (Lu et al., NSDI '18).

MPRDMA is ACK-clocked: every non-ECN ACK grants the sender one
transmission on the path (EV) it arrived from; ECN-marked ACKs grant
nothing, so the next packet explores a random EV.  Unlike REPS there is
no buffer of cached entropies (the paper stresses MPRDMA "does not offer
caching of entropies"), so a burst of good ACKs yields at most one
remembered path, and there is no freezing on failures.
"""

from __future__ import annotations

from .base import LbContext, SenderLoadBalancer, register


@register("mprdma")
class MprdmaLb(SenderLoadBalancer):
    """Self-clocked per-packet path selection with a single-EV memory."""

    name = "mprdma"

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        self._granted_ev = None  # at most one credit, no deeper cache

    def next_entropy(self, now: int) -> int:
        if self._granted_ev is not None:
            ev = self._granted_ev
            self._granted_ev = None
            return ev
        return self.ctx.rng.randrange(self.ctx.evs_size)

    def on_ack(self, ev: int, ecn: bool, now: int) -> None:
        if not ecn:
            self._granted_ev = ev
        else:
            self._granted_ev = None
