"""PRIME: multi-part pseudo-random entropy spraying (Sobhani et al.).

PRIME composes each packet's entropy value from two independently
managed parts instead of drawing it whole:

- a **flowlet part** — a random base that stays put while the path set
  behaves, and re-rolls on an idle gap (a new flowlet) or when
  congestion feedback accumulates, steering the whole spray window
  away from a bad region of the entropy space at once;
- a **path part** — a small per-flow random permutation of offsets the
  sender cycles through per packet, spreading consecutive packets
  across ``PATH_PARTS`` distinct hashes like oblivious spraying does,
  but over a *bounded, shuffled* table so the short-term spray is
  collision-free by construction.

The composed EV is ``(flowlet_base + path_offset) % evs_size``.  Unlike
REPS there is no per-EV recycling state: feedback only moves the base.
"""

from __future__ import annotations

from .base import LbContext, SenderLoadBalancer, register


@register("prime")
class PrimeLb(SenderLoadBalancer):
    """Multi-part entropy: shuffled path-offset table over a mobile
    flowlet base."""

    name = "prime"

    #: size of the per-flow path-part permutation (distinct hashes the
    #: short-term spray cycles through)
    PATH_PARTS = 16
    #: accumulated congestion marks that re-roll the flowlet base
    REROLL_MARKS = 8

    def __init__(self, ctx: LbContext) -> None:
        super().__init__(ctx)
        self._rng = ctx.rng
        self._evs_size = ctx.evs_size
        # a gap of half an RTT starts a new flowlet (same criterion as
        # the flowlet-switching baseline)
        self._gap_ps = max(1, ctx.rtt_ps // 2)
        span = min(self.PATH_PARTS, ctx.evs_size)
        self._parts = list(range(span))
        self._rng.shuffle(self._parts)
        self._idx = 0
        self._base = self._rng.randrange(ctx.evs_size)
        self._last_send = None
        self._marks = 0

    def _reroll(self) -> None:
        self._base = self._rng.randrange(self._evs_size)
        self._rng.shuffle(self._parts)
        self._idx = 0
        self._marks = 0

    def next_entropy(self, now: int) -> int:
        last = self._last_send
        if last is not None and now - last > self._gap_ps:
            self._reroll()
        self._last_send = now
        part = self._parts[self._idx]
        self._idx += 1
        if self._idx == len(self._parts):
            self._idx = 0
        return (self._base + part) % self._evs_size

    def on_ack(self, ev: int, ecn: bool, now: int) -> None:
        if ecn:
            self._marks += 1
            if self._marks >= self.REROLL_MARKS:
                self._reroll()
        elif self._marks:
            self._marks -= 1

    def on_nack(self, ev: int, now: int) -> None:
        # a trimmed packet is a stronger signal than an ECN mark
        self._marks += 2
        if self._marks >= self.REROLL_MARKS:
            self._reroll()

    def on_timeout(self, ev: int, now: int) -> None:
        # possible failure in the current spray window: move it now
        self._reroll()
