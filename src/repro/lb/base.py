"""Sender-side load balancer interface and registry (Sec. 4.1 baselines).

Every sender-side algorithm exposes the same four hooks the transport
drives:

- ``next_entropy(now)``  — choose the EV for the next data packet,
- ``on_ack(ev, ecn, now)`` — an ACK returned, echoing EV + ECN mark,
- ``on_nack(ev, now)``   — a trimmed-packet NACK (congestion loss),
- ``on_timeout(ev, now)`` — an RTO fired (possible failure).

Switch-side schemes (Adaptive RoCE, the Fig. 9 oracle) are configured via
the topology's ``switch_mode``; their sender half is plain spraying.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..core.reps import RepsConfig, RepsSender


@dataclass
class LbContext:
    """Everything a load balancer may need about its flow."""

    rng: random.Random
    evs_size: int = 65536
    rtt_ps: int = 8_000_000
    flow_id: int = 0
    src: int = 0
    dst: int = 0
    cwnd_pkts: Callable[[], int] = field(default=lambda: 32)
    reps_config: Optional[RepsConfig] = None


class SenderLoadBalancer:
    """Base class: OPS-like behaviour (random EV, ignore feedback)."""

    name = "base"

    def __init__(self, ctx: LbContext) -> None:
        self.ctx = ctx

    def next_entropy(self, now: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_ack(self, ev: int, ecn: bool, now: int) -> None:
        return

    def on_nack(self, ev: int, now: int) -> None:
        return

    def on_timeout(self, ev: int, now: int) -> None:
        return


LbFactory = Callable[[LbContext], object]

_REGISTRY: Dict[str, LbFactory] = {}

#: LB names that require a non-default switch forwarding mode.
SWITCH_MODE_FOR_LB = {
    "adaptive_roce": "adaptive",
    "ideal": "ideal",
    "wcmp": "wcmp",
    "reps_source": "source",
}


@dataclass(frozen=True)
class ReplicationSpec:
    """Transport-level flow replication (RepFlow-style).

    ``copies`` independent sender/receiver pairs carry the same logical
    message; the first copy to finish defines the flow completion time
    and the rest are cancelled.  ``max_bytes`` limits replication to
    short flows (RepFlow replicates < 100 KB flows only — for long
    flows the bandwidth tax outweighs the tail-latency win); larger
    messages fall back to a single copy.
    """

    copies: int = 2
    max_bytes: Optional[int] = 100 * 1024


#: LB names whose flows the transport replicates.  Policy modules
#: register themselves here at import time (see ``repflow.py``), and
#: ``sim.network.Network.add_flow`` consults it per flow.
REPLICATION_FOR_LB: Dict[str, ReplicationSpec] = {}

#: Delivery-order promises the conformance suite holds policies to
#: (``tests/lb/test_policy_conformance.py``).  Values:
#:
#: - ``"flow_fifo"``   — on a lossless fabric every packet of a flow
#:   arrives in send order (single-path policies: ECMP, WCMP, and each
#:   RepFlow copy),
#: - ``"stripe_fifo"`` — packets sharing an entropy value arrive in
#:   send order (Sprinklers: path changes only at stripe boundaries).
#:
#: Policies absent from this mapping promise nothing about ordering.
ORDERING_PROMISE_FOR_LB: Dict[str, str] = {}


def register(name: str) -> Callable[[LbFactory], LbFactory]:
    def deco(factory: LbFactory) -> LbFactory:
        if name in _REGISTRY:
            raise ValueError(f"duplicate load balancer {name!r}")
        _REGISTRY[name] = factory
        return factory
    return deco


def make_lb(name: str, ctx: LbContext):
    """Instantiate a registered load balancer for one flow."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown load balancer {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(ctx)


def available() -> list:
    return sorted(_REGISTRY)


def _make_reps(ctx: LbContext) -> RepsSender:
    cfg = ctx.reps_config or RepsConfig(evs_size=ctx.evs_size)
    if cfg.evs_size != ctx.evs_size and ctx.reps_config is None:
        cfg.evs_size = ctx.evs_size
    return RepsSender(cfg, rng=ctx.rng, cwnd_pkts=ctx.cwnd_pkts)


register("reps")(_make_reps)
