"""Campaign runner: every registered figure through one shared store.

``repro figures run --all`` reproduces the whole paper in one command.
This module is the engine behind it:

1. :func:`select_figures` filters the registry catalogue
   (``--only/--skip/--tag``) into an ordered campaign plan.
2. :func:`run_campaign` executes each :class:`FigureSpec` through the
   existing sweep harness against **one shared cross-figure**
   :class:`~repro.harness.sweep.ResultStore`.  Task artifacts are
   content-keyed, so figures that share scenarios (e.g. a common
   baseline sweep) simulate once and hit the cache everywhere else —
   and an interrupted campaign resumes where it stopped.
3. Figure-level parallelism (``figure_jobs`` threads) layers over the
   per-figure ``multiprocessing`` pool (``workers``): total worker
   processes approach ``figure_jobs * workers``, so keep the product
   near the core count.  Threaded campaigns start their per-figure
   pools with the ``spawn`` method — forking from a multithreaded
   process can inherit held locks into the children.
4. Execution is **fail-soft**: a figure whose matrix fails to build or
   whose simulation crashes becomes an ``error`` outcome with the
   traceback captured; the campaign always runs every selected figure.

Each outcome carries a fidelity *status* derived from the spec's
paper-shape checks:

- ``pass``  — the shape assertions hold,
- ``fail``  — the assertions diverge from the paper's claim,
- ``warn``  — no check declared (or checks disabled): numbers are
  measured but unverified,
- ``error`` — the figure did not execute.

:mod:`repro.report` turns a :class:`CampaignResult` into
``REPRODUCTION.md`` + ``campaign.json``.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..scenarios import FigureResult, FigureSpec, figure_ids, get_figure
from ..scenarios.registry import run_figure
from .backends import resolve_backend
from .store import open_store
from .sweep import ResultStore

#: subdirectory (under a ``--results-dir``) holding the shared
#: cross-figure artifact store — one flat content-keyed namespace
CAMPAIGN_STORE_DIR = "campaign"

#: every outcome status, in report order
STATUSES = ("pass", "warn", "fail", "error")


def shared_store(results_dir: str, *, fresh: bool = False) -> ResultStore:
    """The campaign's shared cross-figure store under ``results_dir``.

    One flat namespace for every figure: content keys already encode
    the full task identity (parameters + schema + simulator hash), so
    a shared namespace is safe and is what makes cross-figure dedup
    work.  The store format follows :func:`~repro.harness.store.
    open_store` policy — columnar (v2) by default, ``REPRO_STORE=json``
    for the legacy one-JSON-per-task layout; either way legacy
    directories keep serving reads.  ``fresh`` re-runs every task but
    still persists the results.
    """
    return open_store(os.path.join(results_dir, CAMPAIGN_STORE_DIR),
                      fresh=fresh)


def select_figures(only: Sequence[str] = (), skip: Sequence[str] = (),
                   tags: Sequence[str] = ()) -> List[FigureSpec]:
    """The campaign plan: registry order, filtered.

    ``only`` restricts to the given ids (and validates them), ``skip``
    removes ids, ``tags`` keeps specs carrying *any* of the given tags.
    With no filters the plan is the whole catalogue.
    """
    known = figure_ids()
    for fig_id in list(only) + list(skip):
        get_figure(fig_id)  # raises the helpful KeyError on typos
    selected = [fid for fid in known if not only or fid in set(only)]
    selected = [fid for fid in selected if fid not in set(skip)]
    if tags:
        want = set(tags)
        selected = [fid for fid in selected
                    if want & set(get_figure(fid).tags)]
    return [get_figure(fid) for fid in selected]


@dataclass
class FigureOutcome:
    """One figure's campaign result: measured numbers or a captured
    failure, plus the fidelity verdict."""

    spec: FigureSpec
    status: str                      # pass | warn | fail | error
    result: Optional[FigureResult] = None
    error: str = ""                  # divergence message / traceback
    wall_s: float = 0.0

    @property
    def fig_id(self) -> str:
        return self.spec.fig_id

    @property
    def n_tasks(self) -> int:
        return len(self.result.sweep) if self.result is not None else 0

    @property
    def executed(self) -> int:
        return self.result.sweep.executed if self.result is not None \
            else 0

    @property
    def cached(self) -> int:
        return self.result.sweep.cached if self.result is not None else 0

    def badge(self) -> str:
        return f"[{self.status.upper()}]"


class CampaignResult:
    """Every outcome of one ``--all`` run, in registry order."""

    def __init__(self, outcomes: Sequence[FigureOutcome], *,
                 wall_s: float, store: Optional[ResultStore] = None,
                 pruned: Sequence[str] = (),
                 backend: str = "serial") -> None:
        self.outcomes = list(outcomes)
        self.wall_s = wall_s
        self.store = store
        self.pruned = list(pruned)
        #: resolved execution-backend name, recorded in the report's
        #: provenance header
        self.backend = backend

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, fig_id: str) -> FigureOutcome:
        for outcome in self.outcomes:
            if outcome.fig_id == fig_id:
                return outcome
        raise KeyError(fig_id)

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in STATUSES}
        for outcome in self.outcomes:
            out[outcome.status] += 1
        return out

    @property
    def tasks(self) -> int:
        return sum(o.n_tasks for o in self.outcomes)

    @property
    def executed(self) -> int:
        return sum(o.executed for o in self.outcomes)

    @property
    def cached(self) -> int:
        return sum(o.cached for o in self.outcomes)

    def ok(self, strict: bool = False) -> bool:
        """No figure crashed; with ``strict`` also no shape divergence."""
        counts = self.counts()
        if counts["error"]:
            return False
        return not (strict and counts["fail"])


def _run_one(spec: FigureSpec, *, workers: int,
             store: Optional[ResultStore], check: bool,
             mp_context: Optional[str] = None,
             backend=None) -> FigureOutcome:
    """Execute one figure fail-soft and judge its fidelity."""
    start = time.monotonic()
    try:
        result = run_figure(spec, workers=workers, store=store,
                            mp_context=mp_context, backend=backend)
    except Exception:
        return FigureOutcome(spec, "error",
                             error=traceback.format_exc(limit=8),
                             wall_s=time.monotonic() - start)
    wall_s = time.monotonic() - start
    if not check or spec.check is None:
        return FigureOutcome(spec, "warn", result=result, wall_s=wall_s)
    try:
        result.check()
    except AssertionError as exc:
        detail = str(exc) or "shape assertion failed"
        return FigureOutcome(spec, "fail", result=result, error=detail,
                             wall_s=wall_s)
    except Exception:
        return FigureOutcome(spec, "error", result=result,
                             error=traceback.format_exc(limit=8),
                             wall_s=wall_s)
    return FigureOutcome(spec, "pass", result=result, wall_s=wall_s)


def run_campaign(specs: Iterable[FigureSpec], *, workers: int = 1,
                 figure_jobs: int = 1,
                 store: Optional[ResultStore] = None, check: bool = True,
                 prune_stale: bool = False,
                 progress: bool = False,
                 backend=None) -> CampaignResult:
    """Run ``specs`` through the sweep harness, fail-soft, and return
    every outcome.

    ``store`` is shared across figures (see :func:`shared_store`);
    ``figure_jobs > 1`` runs that many figures concurrently in threads,
    each with its own ``workers``-process sweep pool.  ``backend``
    selects the per-figure execution backend (name, instance, or
    ``None`` for ``$REPRO_BACKEND`` / worker-count default) and is
    recorded on the result for report provenance.  With
    ``prune_stale`` the store drops artifacts whose recorded simulator
    hash (or schema) no longer matches the current source tree after
    the campaign finishes.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("empty campaign: no figures selected")
    start = time.monotonic()
    print_lock = threading.Lock()
    done = [0]
    # forking a process pool from a multithreaded parent can inherit
    # held locks into the children (and is deprecated on 3.12+), so
    # figure-level threads force the spawn start method for the
    # per-figure pools
    threaded = figure_jobs > 1 and len(specs) > 1
    mp_context = "spawn" if threaded and workers > 1 else None
    backend_name = resolve_backend(backend, workers=workers,
                                   mp_context=mp_context).name

    def job(spec: FigureSpec) -> FigureOutcome:
        outcome = _run_one(spec, workers=workers, store=store,
                           check=check, mp_context=mp_context,
                           backend=backend)
        if progress:
            with print_lock:
                done[0] += 1
                print(f"[{done[0]}/{len(specs)}] {outcome.badge():7s} "
                      f"{spec.fig_id}: {outcome.n_tasks} tasks "
                      f"({outcome.executed} executed, {outcome.cached} "
                      f"cached) in {outcome.wall_s:.1f}s")
        return outcome

    # pool.map keeps outcomes in plan order regardless of completion
    if threaded:
        with ThreadPoolExecutor(max_workers=figure_jobs) as pool:
            outcomes = list(pool.map(job, specs))
    else:
        outcomes = [job(spec) for spec in specs]

    pruned: List[str] = []
    if store is not None:
        if prune_stale:
            pruned = store.prune()
            if progress and pruned:
                print(f"pruned {len(pruned)} stale artifact(s) from "
                      f"{store.root}")
        # read-repair pass: reconcile the manifest with the artifacts
        # the (possibly concurrent) figure runs just wrote, and persist
        # the repaired index
        store.repair_manifest()
        if progress:
            from ..report.provenance import store_throughput
            thr = store_throughput(store)
            if thr["tasks_timed"]:
                print(f"store accounting: {thr['tasks_timed']} timed "
                      f"task(s), {thr['task_wall_s']:.1f}s task wall "
                      f"({thr['tasks_per_s']:.1f} tasks/s), "
                      f"{thr['task_bytes']:,} payload bytes")
    return CampaignResult(outcomes, wall_s=time.monotonic() - start,
                          store=store, pruned=pruned,
                          backend=backend_name)
