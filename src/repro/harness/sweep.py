"""Parallel campaign runner: grid -> tasks -> worker pool -> artifact store.

The paper (and the spraying literature it sits in — PRIME, Sprinklers)
evaluates load balancers over large ``lb x topology x seed x workload``
grids.  This module turns such a grid into an embarrassingly parallel
campaign:

1. :class:`SweepGrid` (or a hand-built list of :class:`SweepTask`)
   declares the matrix.  Every axis value is plain data — topology
   kwargs, a :class:`WorkloadSpec`, a :class:`FailureSpec` — so tasks
   pickle cleanly and hash stably.
2. :func:`run_sweep` executes the tasks through a pluggable
   *execution backend* (:mod:`repro.harness.backends`): ``serial``,
   ``process`` (pool), ``batched`` (chunked pool with batched store
   writes) or ``shard`` (partition / merge).  Each task carries its
   own seed (listed explicitly or spawned deterministically from a
   root seed via :func:`spawn_seeds`), and the simulator is
   deterministic given a seed, so every backend produces
   byte-identical metrics for the same grid.
3. Results persist as one JSON file per task in a :class:`ResultStore`,
   keyed by a content hash of the task parameters: re-running a
   campaign skips every finished task and recomputes aggregation
   (mean/p99 across seeds) from the store.

Example::

    grid = SweepGrid(lbs=["ecmp", "ops", "reps"],
                     workloads=[WorkloadSpec(kind="synthetic",
                                             pattern="tornado",
                                             msg_bytes=1 << 20)],
                     topos=[{"n_hosts": 16, "hosts_per_t0": 8}],
                     root_seed=7, n_seeds=4)
    results = run_sweep(grid, workers=4,
                        store=ResultStore("benchmarks/results/sweeps/demo"))
    for group, agg in results.aggregate("max_fct_us").items():
        print(group, agg.mean, agg.percentile(99))

Invariants:

- **Content-key semantics.**  :func:`task_key` hashes the *complete*
  identity of a result: the task parameters (with per-kind
  ``WorkloadSpec`` field filtering, so inapplicable fields cannot mint
  distinct keys for byte-identical runs), the artifact
  ``SCHEMA_VERSION``, and :func:`simulator_version` — a content hash
  of the simulator source tree.  Equal key ⟺ byte-identical payload;
  editing the simulator silently invalidates every stored artifact.
  Stores may therefore be shared across campaigns and figures (the
  campaign runner's cross-figure dedup relies on this).
- **Determinism.**  A task's RNG state depends only on the task itself
  (explicit seed, or one spawned from a root via :func:`spawn_seeds`),
  so serial and parallel executions of the same grid produce
  byte-identical metrics, and duplicate tasks in one sweep execute
  exactly once.
- **Probe lifecycle.**  ``SweepTask.probes`` names entries of
  :data:`~repro.harness.runner.RESULT_PROBES`; each probe runs once in
  the worker that simulated the task, immediately after the run, and
  its scalar outputs are persisted in the artifact's ``extra`` mapping
  (probes are part of the content key: adding one re-runs the task).
- **Store writes are atomic** (temp file + ``os.replace``), and the
  ``manifest.json`` index is merged on every put and read-repaired on
  every read, so concurrent campaigns sharing a store converge.
  :meth:`ResultStore.merge_from` folds one store into another under
  the same rules — content keys make the merge idempotent, which is
  what lets independently-executed shards reassemble into one
  campaign store.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import time
from dataclasses import asdict, dataclass, field, replace
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.reps import RepsConfig
from ..sim.metrics import RunMetrics
from ..sim.topology import TopologyParams
from .model_tasks import run_model
from .runner import (
    RESULT_PROBES,
    Scenario,
    ber_hook,
    degrade_cables_hook,
    degrade_fraction_hook,
    fail_cable_schedule_hook,
    fail_cables_hook,
    fail_fraction_hook,
    fail_tor_uplinks_hook,
    force_freeze_hook,
    run_collective,
    run_mixed_traffic,
    run_synthetic,
    run_trace,
)
from .stats import Aggregate

#: bump to invalidate stored artifacts when the result format changes
#: (3: time-series probe outputs ride a dedicated ``series`` section)
SCHEMA_VERSION = 3

KV = Tuple[Tuple[str, object], ...]

#: Scenario fields a sweep task may override (everything picklable)
_SCENARIO_KEYS = frozenset(
    {"cc", "evs_size", "ack_coalesce", "carry_evs", "reps", "rto_us",
     "max_us", "telemetry_bucket_us"})

#: declarative failure kinds -> the runner's hook factories
_FAILURE_HOOKS = {
    "fail_cables": fail_cables_hook,
    "fail_cable_schedule": fail_cable_schedule_hook,
    "fail_tor_uplinks": fail_tor_uplinks_hook,
    "fail_fraction": fail_fraction_hook,
    "degrade_cables": degrade_cables_hook,
    "degrade_fraction": degrade_fraction_hook,
    "ber": ber_hook,
    "force_freeze": force_freeze_hook,
}

#: packages/modules whose source defines simulation results (or the
#: shape of stored artifacts) — hashed into :func:`simulator_version`
#: so stored results go stale when the simulator, the task executors,
#: or the payload format change (not just the task parameters)
_VERSIONED_SOURCES = (
    "core", "sim", "lb", "workloads", "models",
    os.path.join("harness", "runner.py"),
    os.path.join("harness", "model_tasks.py"),
    os.path.join("harness", "sweep.py"),
)

_sim_version_cache: Optional[str] = None


def simulator_version() -> str:
    """Content hash of the simulator source tree (ROADMAP open item).

    A component of every task content key: artifacts produced by an
    older simulator stop hitting the cache the moment any file under
    ``repro/{core,sim,lb,workloads,models}`` (or the runner / model
    executors) changes, without anyone remembering to bump a version.
    """
    global _sim_version_cache
    if _sim_version_cache is not None:
        return _sim_version_cache
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    for entry in _VERSIONED_SOURCES:
        path = os.path.join(pkg_root, entry)
        files = []
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                files += [os.path.join(dirpath, f) for f in filenames
                          if f.endswith(".py")]
        elif os.path.isfile(path):
            files.append(path)
        for fname in sorted(files):
            digest.update(os.path.relpath(fname, pkg_root).encode())
            digest.update(b"\0")
            with open(fname, "rb") as fh:
                digest.update(fh.read())
            digest.update(b"\0")
    _sim_version_cache = digest.hexdigest()[:16]
    return _sim_version_cache


def _deep_tuple(value):
    """Recursively freeze lists/tuples so values stay hashable."""
    if isinstance(value, (list, tuple)):
        return tuple(_deep_tuple(v) for v in value)
    return value


def _kv(mapping: Mapping[str, object]) -> KV:
    """Canonical, hashable key/value form of a mapping."""
    return tuple((k, _deep_tuple(mapping[k])) for k in sorted(mapping))


@dataclass(frozen=True)
class WorkloadSpec:
    """One declarative workload: picklable, hashable, content-keyable.

    ``kind`` selects the runner entry point; ``pattern`` names the
    synthetic pattern, the collective kind, the DC trace, or — for
    ``kind="model"`` — an analytical model from
    :mod:`repro.harness.model_tasks` (parameterized via ``params``).
    ``kind="mixed"`` runs the Fig.-6 split: the task's LB shares the
    fabric with ``background_fraction`` legacy ``background_lb`` flows.
    """

    kind: str = "synthetic"  # synthetic | trace | collective | mixed | model
    pattern: str = "permutation"
    msg_bytes: int = 1 << 20
    fan_in: int = 8                  # synthetic incast only
    load: float = 0.6                # trace only
    duration_us: float = 100.0       # trace only
    n_parallel: int = 8              # AllToAll only
    workload_seed: int = 2           # synthetic/trace only (collectives
    #                                  are fully determined by the net)
    background_lb: str = "ecmp"      # mixed only
    background_fraction: float = 0.1  # mixed only
    params: KV = ()                  # model only

    def label(self) -> str:
        if self.kind == "trace":
            return f"{self.pattern}@{int(self.load * 100)}%"
        if self.kind == "collective":
            return self.pattern
        if self.kind == "model":
            return f"model:{self.pattern}"
        if self.kind == "mixed":
            return (f"{self.pattern}/{self.msg_bytes >> 10}KiB+"
                    f"{int(self.background_fraction * 100)}%"
                    f"{self.background_lb}")
        return f"{self.pattern}/{self.msg_bytes >> 10}KiB"


@dataclass(frozen=True)
class FailureSpec:
    """A named failure hook plus kwargs, in canonical tuple form.

    Besides the single-hook kinds in ``_FAILURE_HOOKS``, the special
    kind ``"compose"`` holds a tuple of sub-specs applied in order —
    the declarative form of Fig. 8's combined cable+switch modes.
    """

    kind: str
    params: KV = ()

    @classmethod
    def make(cls, kind: str, **params) -> "FailureSpec":
        if kind not in _FAILURE_HOOKS:
            raise ValueError(f"unknown failure kind {kind!r}; "
                             f"one of {sorted(_FAILURE_HOOKS)}")
        return cls(kind, _kv(params))

    @classmethod
    def compose(cls, *specs: "FailureSpec") -> "FailureSpec":
        """A spec applying every ``spec`` to the network, in order."""
        if not specs:
            raise ValueError("compose needs at least one FailureSpec")
        if not all(isinstance(s, FailureSpec) for s in specs):
            raise TypeError("compose takes FailureSpec instances")
        return cls("compose", (("specs", tuple(specs)),))

    def hook(self):
        if self.kind == "compose":
            hooks = [s.hook() for s in dict(self.params)["specs"]]

            def composite(net) -> None:
                for h in hooks:
                    h(net)
            return composite
        kwargs = {k: (list(v) if isinstance(v, tuple) else v)
                  for k, v in self.params}
        return _FAILURE_HOOKS[self.kind](**kwargs)


@dataclass(frozen=True)
class SweepTask:
    """One fully specified simulation: an atom of the campaign."""

    lb: str
    topo: KV
    workload: WorkloadSpec
    seed: int
    scenario: KV = ()
    failure: Optional[FailureSpec] = None
    #: named :data:`~repro.harness.runner.RESULT_PROBES` applied to the
    #: finished run; their outputs land in the artifact's ``extra``
    probes: Tuple[str, ...] = ()

    def group(self) -> "SweepTask":
        """The task with its seed erased — the across-seed aggregation
        unit (all other parameters identical)."""
        return SweepTask(self.lb, self.topo, self.workload, -1,
                         self.scenario, self.failure, self.probes)

    def label(self) -> str:
        if self.workload.kind == "model":
            return self.workload.label()
        topo = dict(self.topo)
        bits = [self.lb, self.workload.label(),
                f"{topo.get('n_hosts', '?')}h"]
        bits += [f"{k}={v}" for k, v in self.scenario if k != "max_us"]
        if self.failure is not None:
            bits.append(self.failure.kind)
        return " ".join(str(b) for b in bits)


def make_task(lb: str, topo: Union[TopologyParams, Mapping[str, object]],
              workload: WorkloadSpec, *, seed: int,
              failure: Optional[FailureSpec] = None,
              probes: Sequence[str] = (),
              **scenario_kw) -> SweepTask:
    """Build a :class:`SweepTask` from natural arguments."""
    if isinstance(topo, TopologyParams):
        topo = asdict(topo)
    unknown = set(scenario_kw) - _SCENARIO_KEYS
    if unknown:
        raise ValueError(f"unsupported scenario keys {sorted(unknown)}; "
                         f"allowed: {sorted(_SCENARIO_KEYS)}")
    bad_probes = set(probes) - set(RESULT_PROBES)
    if bad_probes:
        raise ValueError(f"unknown probes {sorted(bad_probes)}; "
                         f"one of {sorted(RESULT_PROBES)}")
    if probes and workload.kind in ("mixed", "model"):
        # these kinds never produce the ScenarioResult probes read from
        raise ValueError(
            f"probes are not supported for {workload.kind!r} workloads")
    reps = scenario_kw.get("reps")
    if isinstance(reps, RepsConfig):
        scenario_kw["reps"] = _kv(asdict(reps))
    return SweepTask(lb=lb, topo=_kv(topo), workload=workload,
                     seed=int(seed), scenario=_kv(scenario_kw),
                     failure=failure, probes=tuple(probes))


def replace_lb(task: SweepTask, lb: str) -> SweepTask:
    """The same fully specified task under a different sender policy.

    The *policy axis* primitive behind the cross-policy arena
    (``repro figures run --all --policies ...``): every other parameter
    — topology, workload, seed, scenario, failure schedule, probes —
    is kept bit-for-bit, so any difference between the two artifacts is
    attributable to the load balancer alone.  Content keys differ (the
    LB is part of the task identity), so both variants coexist in one
    shared store.
    """
    if task.workload.kind == "model":
        raise ValueError("model tasks have no load-balancer axis")
    return replace(task, lb=lb)


def make_model_task(pattern: str, *, seed: int,
                    **params) -> SweepTask:
    """Build an analytical-model task (``WorkloadSpec(kind="model")``).

    ``params`` parameterize the model runner; they are canonicalized the
    same way scenario keys are, so model tasks hash and cache like
    simulator tasks.
    """
    workload = WorkloadSpec(kind="model", pattern=pattern,
                            params=_kv(params))
    return SweepTask(lb="model", topo=(), workload=workload,
                     seed=int(seed))


# ----------------------------------------------------------------------
# deterministic seeding
# ----------------------------------------------------------------------
def spawn_seeds(root_seed: int, n: int) -> List[int]:
    """``n`` child seeds derived from ``root_seed``.

    Pure function of ``(root_seed, index)`` — independent of execution
    order or worker count, so a grid expanded from the same root always
    simulates with the same seeds.
    """
    out = []
    for i in range(n):
        digest = hashlib.sha256(f"reps-sweep/{root_seed}/{i}".encode())
        out.append(int.from_bytes(digest.digest()[:4], "big"))
    return out


# ----------------------------------------------------------------------
# content keys and the artifact store
# ----------------------------------------------------------------------
def _jsonify(obj):
    if isinstance(obj, tuple):
        return [_jsonify(x) for x in obj]
    if isinstance(obj, FailureSpec):
        return {"kind": obj.kind, "params": _jsonify(obj.params)}
    if isinstance(obj, WorkloadSpec):
        return asdict(obj)
    return obj


#: WorkloadSpec fields that actually reach each runner entry point —
#: everything else is excluded from the content key, so e.g. two
#: collective specs differing only in the (inapplicable) workload_seed
#: cannot mint distinct cache entries for byte-identical simulations
_WORKLOAD_KEY_FIELDS = {
    "synthetic": ("kind", "pattern", "msg_bytes", "fan_in",
                  "workload_seed"),
    "trace": ("kind", "pattern", "load", "duration_us", "workload_seed"),
    "collective": ("kind", "pattern", "msg_bytes", "n_parallel"),
    "mixed": ("kind", "pattern", "msg_bytes", "workload_seed",
              "background_lb", "background_fraction"),
    "model": ("kind", "pattern", "params"),
}


def _workload_doc(workload: WorkloadSpec) -> Dict[str, object]:
    doc = asdict(workload)
    names = _WORKLOAD_KEY_FIELDS.get(workload.kind)
    return {k: _jsonify(doc[k]) for k in names} if names \
        else _jsonify_mapping(doc)


def _jsonify_mapping(doc: Mapping[str, object]) -> Dict[str, object]:
    return {k: _jsonify(v) for k, v in doc.items()}


def task_key(task: SweepTask) -> str:
    """Content hash identifying a task (and its stored result).

    Besides the task parameters, the key carries the artifact schema
    version and :func:`simulator_version`, so a stored result is only
    ever reused by the exact simulator revision that produced it.
    """
    doc = {
        "schema": SCHEMA_VERSION,
        "sim": simulator_version(),
        "lb": task.lb,
        "topo": _jsonify(task.topo),
        "workload": _workload_doc(task.workload),
        "seed": task.seed,
        "scenario": _jsonify(task.scenario),
        "failure": _jsonify(task.failure),
        "probes": list(task.probes),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


class ResultStore:
    """One JSON artifact per finished task under a root directory.

    Alongside the artifacts, the store maintains a campaign manifest
    (``manifest.json``): one index entry per key with the task label,
    seed, simulator version and write timestamp.  The manifest is what
    makes a sweep directory browsable without opening every artifact,
    and what :meth:`prune` uses to drop stale results.

    ``origin`` names where this store's *new* artifacts come from
    (e.g. ``"shard-0/2"``); it rides every manifest entry the store
    writes and survives :meth:`merge_from`, so a merged campaign
    store still says which shard produced each artifact.
    """

    MANIFEST = "manifest.json"

    def __init__(self, root: str, *, origin: Optional[str] = None,
                 fresh: bool = False) -> None:
        self.root = root
        self.origin = origin
        #: a fresh store answers every :meth:`get` with a miss (the
        #: ``--fresh`` behaviour): tasks re-run, results still persist
        self.fresh = fresh

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def _read(self, key: str) -> Optional[dict]:
        """What is actually on disk for ``key`` (schema-checked).

        Kept separate from :meth:`get` so cache *policy* overrides
        (``--fresh`` stores answer every lookup with a miss) cannot
        change what maintenance paths like :meth:`prune` or
        :meth:`manifest` believe exists.
        """
        try:
            with open(self._path(key)) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        return payload

    def get(self, key: str) -> Optional[dict]:
        return None if self.fresh else self._read(key)

    def _write_json(self, path: str, doc: dict) -> None:
        # per-process *and* per-thread temp name: concurrent campaigns
        # (and the campaign runner's figure threads) sharing a store
        # must not interleave writes before the atomic rename
        tmp = path + f".{os.getpid()}.{threading.get_ident()}.tmp"
        with open(tmp, "w") as fh:
            json.dump(doc, fh, sort_keys=True)
        os.replace(tmp, path)

    def _manifest_entry(self, payload: dict, written_at: float,
                        stats: Optional[dict] = None) -> dict:
        entry = {
            "label": payload.get("task", {}).get("label", ""),
            "seed": payload.get("task", {}).get("seed"),
            "schema": payload.get("schema"),
            "sim": payload.get("sim"),
            "written_at": written_at,
        }
        if self.origin:
            entry["origin"] = self.origin
        # execution accounting rides the manifest entry, never the
        # payload: content keys and byte-identity across backends must
        # not depend on how long a task happened to take
        if stats:
            wall = stats.get("wall_s")
            if isinstance(wall, (int, float)):
                entry["wall_s"] = round(float(wall), 6)
            nbytes = stats.get("bytes")
            if isinstance(nbytes, int) and not isinstance(nbytes, bool):
                entry["bytes"] = nbytes
        return entry

    def put(self, key: str, payload: dict, *,
            stats: Optional[dict] = None) -> None:
        self.put_many([(key, payload)],
                      stats={key: stats} if stats else None)

    def put_many(self, items: Iterable[Tuple[str, dict]], *,
                 stats: Optional[Dict[str, dict]] = None) -> None:
        """Persist several artifacts with **one** manifest update.

        Each artifact write is individually atomic as in :meth:`put`;
        the read-merge-write of ``manifest.json`` happens once per
        call, which is what makes the batched backend's store I/O
        O(batches) instead of O(tasks).  ``stats`` optionally maps
        keys to per-task execution accounting (``wall_s``/``bytes``)
        recorded into the manifest entries.
        """
        items = list(items)
        if not items:
            return
        os.makedirs(self.root, exist_ok=True)
        for key, payload in items:
            self._write_json(self._path(key), payload)
        # read-merge-write per call: concurrent campaigns sharing a
        # store each merge into the latest on-disk index instead of
        # clobbering it from a stale in-memory snapshot
        manifest = self._read_index()
        now = time.time()
        for key, payload in items:
            manifest[key] = self._manifest_entry(
                payload, now, (stats or {}).get(key))
        self._write_json(os.path.join(self.root, self.MANIFEST), manifest)

    def merge_from(self, other: "ResultStore") -> List[str]:
        """Fold ``other``'s artifacts into this store; returns the
        keys actually copied.

        Content-key semantics make this idempotent and commutative:
        a key already present here is skipped (equal key ⟺ identical
        payload), so merging the same shard twice — or two shards in
        either order — converges to the same store.  Manifest entries
        travel with their artifacts, preserving the writing shard's
        ``origin``; artifacts with a stale schema are left behind.
        """
        merged: List[str] = []
        other_manifest = other.manifest()
        manifest_updates: Dict[str, dict] = {}
        for key in other.keys():
            # presence check by path, not by parsing the artifact: a
            # re-merge of an already-merged store must cost stat()s,
            # not a JSON parse per artifact (equal key ⟺ identical
            # payload, and a corrupt artifact self-heals through the
            # run_sweep cache-miss path)
            if os.path.exists(self._path(key)):
                continue
            payload = other._read(key)
            if payload is None:
                continue  # stale schema / unreadable: not worth moving
            os.makedirs(self.root, exist_ok=True)
            self._write_json(self._path(key), payload)
            entry = other_manifest.get(key) or \
                other._manifest_entry(payload, time.time())
            manifest_updates[key] = entry
            merged.append(key)
        if manifest_updates:
            manifest = self._read_index()
            manifest.update(manifest_updates)
            self._write_json(os.path.join(self.root, self.MANIFEST),
                             manifest)
        return merged

    def _read_index(self) -> Dict[str, dict]:
        try:
            with open(os.path.join(self.root, self.MANIFEST)) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return {}

    def manifest(self) -> Dict[str, dict]:
        """The campaign index: key -> {label, seed, schema, sim,
        written_at}, reconciled against the artifacts on disk.

        put() merges, but two *processes* writing at the same instant
        can still lose an index entry (last writer wins); reads repair
        that by synthesizing entries for any artifact missing from the
        index and dropping entries whose artifact is gone.
        """
        manifest = self._read_index()
        on_disk = self.keys()
        for key in on_disk:
            if key in manifest:
                continue
            payload = self._read(key)
            if payload is not None:
                try:
                    mtime = os.path.getmtime(self._path(key))
                except OSError:
                    mtime = time.time()
                manifest[key] = self._manifest_entry(payload, mtime)
        for key in set(manifest) - set(on_disk):
            del manifest[key]
        return manifest

    def repair_manifest(self) -> Dict[str, dict]:
        """Reconcile the index against the artifacts **and persist it**.

        :meth:`manifest` repairs in memory only; this writes the
        repaired index back so a lost or raced ``manifest.json`` is
        fixed on disk (campaign runs call this after finishing).
        """
        manifest = self.manifest()
        if manifest or os.path.isdir(self.root):
            os.makedirs(self.root, exist_ok=True)
            self._write_json(os.path.join(self.root, self.MANIFEST),
                             manifest)
        return manifest

    def keys(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(n[:-5] for n in names
                      if n.endswith(".json") and n != self.MANIFEST)

    def prune(self, keep: Optional[Iterable[str]] = None) -> List[str]:
        """Delete stale artifacts; returns the removed keys.

        With ``keep`` given, everything outside that key set goes.
        Without it, artifacts whose stored simulator version differs
        from the current :func:`simulator_version` (or whose schema is
        outdated) are removed — the post-upgrade cleanup.

        Pruning also drops *orphaned* manifest entries — index rows
        whose artifact file is already gone (an interrupted prune, a
        hand-deleted file).  Reads repair the reverse case (artifact
        without an entry); without this, a lost artifact would haunt
        the index forever because read-repair only ever adds.
        """
        removed = []
        keep_set = set(keep) if keep is not None else None
        for key in self.keys():
            if keep_set is not None:
                stale = key not in keep_set
            else:
                payload = self._read(key)  # None for schema mismatch
                stale = payload is None or \
                    payload.get("sim") != simulator_version()
            if stale:
                try:
                    os.remove(self._path(key))
                except OSError:
                    continue
                removed.append(key)
        orphaned = set(self._read_index()) - set(self.keys())
        if removed or orphaned:
            # manifest() reconciles against the surviving artifacts, so
            # persisting it drops the removed keys and the orphans alike
            self._write_json(os.path.join(self.root, self.MANIFEST),
                             self.manifest())
        return removed

    def __len__(self) -> int:
        return len(self.keys())


# ----------------------------------------------------------------------
# task execution (top-level so it pickles into pool workers)
# ----------------------------------------------------------------------
def _metrics_doc(metrics: RunMetrics) -> Dict[str, object]:
    doc = asdict(metrics)
    for name in ("max_fct_us", "avg_fct_us", "p50_fct_us", "p99_fct_us",
                 "total_drops", "avg_goodput_gbps"):
        value = getattr(metrics, name)
        # inf (no flow finished) serializes as null — json.dump would
        # otherwise emit the non-standard `Infinity` literal and break
        # strict JSON consumers of the artifact files
        doc[name] = value if math.isfinite(value) else None
    return doc


def _finite_or_none(value: float):
    return value if math.isfinite(value) else None


def execute_task(task: SweepTask) -> Dict[str, object]:
    """Run one task to completion and return its JSON-ready payload."""
    w = task.workload
    payload = {"schema": SCHEMA_VERSION, "sim": simulator_version(),
               "key": task_key(task),
               "task": {"label": task.label(), "seed": task.seed}}
    if w.kind == "model":
        outputs = run_model(w.pattern, dict(w.params), task.seed)
        payload["metrics"] = {}
        payload["extra"] = {k: _finite_or_none(float(v))
                            for k, v in outputs.items()}
        return payload

    kw = dict(task.scenario)
    if isinstance(kw.get("reps"), tuple):
        kw["reps"] = RepsConfig(**dict(kw["reps"]))
    scenario = Scenario(
        lb=task.lb, topo=TopologyParams(**dict(task.topo)), seed=task.seed,
        failures=task.failure.hook() if task.failure else None,
        # only tasks that read the LB counter series pay the sampler
        # (and its engine events); other telemetry figures keep their
        # pre-existing event counts
        sample_lb_series="ev_recycle_series" in task.probes, **kw)
    extra: Dict[str, float] = {}
    if w.kind == "synthetic":
        res = run_synthetic(scenario, w.pattern, w.msg_bytes,
                            fan_in=w.fan_in, workload_seed=w.workload_seed)
    elif w.kind == "trace":
        res = run_trace(scenario, load=w.load, duration_us=w.duration_us,
                        trace=w.pattern, workload_seed=w.workload_seed)
    elif w.kind == "collective":
        res = run_collective(scenario, w.pattern, w.msg_bytes,
                             n_parallel=w.n_parallel)
        extra["finish_us"] = res.collective.finish_us
    elif w.kind == "mixed":
        main, bg = run_mixed_traffic(
            scenario, w.pattern, w.msg_bytes,
            background_lb=w.background_lb,
            background_fraction=w.background_fraction,
            workload_seed=w.workload_seed)
        for name in ("max_fct_us", "avg_fct_us"):
            extra[f"bg_{name}"] = _finite_or_none(getattr(bg, name))
        extra["bg_total_drops"] = float(bg.total_drops)
        extra["bg_flows_completed"] = float(bg.flows_completed)
        extra["bg_flows_total"] = float(bg.flows_total)
        payload["metrics"] = _metrics_doc(main)
        payload["extra"] = extra
        return payload
    else:
        raise ValueError(f"unknown workload kind {w.kind!r}")
    series: Dict[str, List[float]] = {}
    for name in task.probes:
        probed = RESULT_PROBES[name](res)
        for k, v in probed.items():
            if isinstance(v, (list, tuple)):
                # windowed time-series output: a dedicated artifact
                # section, kept out of `extra` so scalar aggregation
                # and report tables never see arrays
                series[k] = [_finite_or_none(float(x)) for x in v]
            else:
                extra[k] = _finite_or_none(float(v))
    payload["metrics"] = _metrics_doc(res.metrics)
    payload["extra"] = extra
    if series:
        payload["series"] = series
    return payload


# ----------------------------------------------------------------------
# grids and results
# ----------------------------------------------------------------------
@dataclass
class SweepGrid:
    """A declarative campaign: the cross product of every axis.

    ``seeds`` wins when non-empty; otherwise ``n_seeds`` seeds are
    spawned from ``root_seed``.  ``axes`` adds extra scenario axes
    (e.g. ``{"evs_size": [16, 64, 65536]}``) to the product, and
    ``scenario_kw`` applies shared scenario overrides to every task.
    """

    lbs: Sequence[str]
    workloads: Sequence[WorkloadSpec]
    topos: Sequence[Mapping[str, object]] = \
        field(default_factory=lambda: [{"n_hosts": 16, "hosts_per_t0": 8}])
    seeds: Sequence[int] = ()
    root_seed: int = 1
    n_seeds: int = 1
    scenario_kw: Mapping[str, object] = field(default_factory=dict)
    axes: Mapping[str, Sequence[object]] = field(default_factory=dict)
    failure: Optional[FailureSpec] = None

    def grid_seeds(self) -> List[int]:
        if self.seeds:
            return [int(s) for s in self.seeds]
        return spawn_seeds(self.root_seed, self.n_seeds)

    def tasks(self) -> List[SweepTask]:
        axis_names = sorted(self.axes)
        combos: List[Dict[str, object]] = [{}]
        for name in axis_names:
            combos = [dict(c, **{name: v})
                      for c in combos for v in self.axes[name]]
        out = []
        for topo in self.topos:
            for workload in self.workloads:
                for combo in combos:
                    for lb in self.lbs:
                        for seed in self.grid_seeds():
                            kw = dict(self.scenario_kw)
                            kw.update(combo)
                            out.append(make_task(
                                lb, topo, workload, seed=seed,
                                failure=self.failure, **kw))
        return out


@dataclass
class TaskResult:
    """One task's stored payload, plus whether the store supplied it."""

    task: SweepTask
    key: str
    metrics: Dict[str, object]
    extra: Dict[str, float]
    cached: bool
    #: windowed time-series probe outputs (name -> samples); empty for
    #: tasks without series probes
    series: Dict[str, List[float]] = field(default_factory=dict)

    def value(self, metric: str) -> float:
        if metric in self.metrics:
            v = self.metrics[metric]
        elif metric in self.extra:
            v = self.extra[metric]
        else:
            raise KeyError(
                f"metric {metric!r} not in task result "
                f"(have {sorted(self.metrics) + sorted(self.extra)})")
        # null in the artifact is the JSON-safe spelling of inf
        return float("inf") if v is None else v


class SweepResults:
    """Ordered task results with across-seed aggregation."""

    def __init__(self, results: Sequence[TaskResult]) -> None:
        self.results = list(results)
        self._by_task = {r.task: r for r in self.results}

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, task: SweepTask) -> TaskResult:
        return self._by_task[task]

    @property
    def executed(self) -> int:
        return sum(not r.cached for r in self.results)

    @property
    def cached(self) -> int:
        return sum(r.cached for r in self.results)

    def aggregate(self, metric: str) -> Dict[SweepTask, Aggregate]:
        """Mean/percentile aggregation of ``metric`` across seeds.

        Keys are seed-erased tasks (:meth:`SweepTask.group`), in first-
        appearance order; values aggregate every seed of that group.
        """
        groups: Dict[SweepTask, List[float]] = {}
        for r in self.results:
            groups.setdefault(r.task.group(), []).append(
                float(r.value(metric)))
        return {g: Aggregate(samples) for g, samples in groups.items()}

    def table(self, metric: str) -> List[List[object]]:
        """Report-ready rows: label, seeds, mean, 95% CI half-width,
        p99, min, max (CI across seeds; 0 for single-seed groups)."""
        rows = []
        for group, agg in self.aggregate(metric).items():
            rows.append([group.label(), agg.n, round(agg.mean, 2),
                         round(agg.ci95, 2),
                         round(agg.percentile(99), 2),
                         round(agg.min, 2), round(agg.max, 2)])
        return rows


def run_sweep(grid: Union[SweepGrid, Iterable[SweepTask]], *,
              workers: int = 1, store: Optional[ResultStore] = None,
              progress: bool = False,
              mp_context: Optional[str] = None,
              backend=None) -> SweepResults:
    """Execute a campaign and return its (possibly cached) results.

    ``backend`` selects the execution backend — a registry name from
    :mod:`repro.harness.backends`, a ready ``Backend`` instance, or
    ``None`` to consult ``$REPRO_BACKEND`` and fall back to ``serial``
    / ``process`` by worker count.  Results are identical across
    backends because each task's RNG state depends only on the task
    itself.  With a ``store``, finished tasks are skipped on re-runs
    and new results are persisted as they arrive.  ``mp_context``
    selects the pool start method (e.g. ``"spawn"``); callers that
    create pools from a multithreaded process (the campaign runner's
    figure-level threads) must not fork.
    """
    # lazy: backends import execute_task and ResultStore from here
    from .backends import resolve_backend

    tasks = grid.tasks() if isinstance(grid, SweepGrid) else list(grid)
    payloads: Dict[str, Dict[str, object]] = {}
    cached_keys = set()
    pending: List[Tuple[str, SweepTask]] = []
    seen = set()
    for task in tasks:
        key = task_key(task)
        if key in seen:
            continue
        seen.add(key)
        hit = store.get(key) if store is not None else None
        if hit is not None:
            payloads[key] = hit
            cached_keys.add(key)
        else:
            pending.append((key, task))
    executor = resolve_backend(backend, workers=workers,
                               mp_context=mp_context)
    if progress:
        print(f"sweep: {len(tasks)} tasks, {len(cached_keys)} cached, "
              f"{len(pending)} to run on {max(1, workers)} worker(s) "
              f"[{executor.name} backend]")

    if pending:
        payloads.update(executor.run(pending, store))

    results = []
    counted = set()
    for task in tasks:
        key = task_key(task)
        payload = payloads[key]
        # duplicate tasks in the input execute once; only the first
        # occurrence counts as freshly executed
        fresh = key not in cached_keys and key not in counted
        counted.add(key)
        results.append(TaskResult(
            task=task, key=key, metrics=payload["metrics"],
            extra=payload.get("extra", {}), cached=not fresh,
            series=payload.get("series", {})))
    return SweepResults(results)
