"""Benchmark scale control.

The paper's simulations use 128-1024 nodes and multi-MiB messages; a pure
Python simulator reproduces the *relative* behaviour at reduced scale in
seconds per run.  ``REPRO_BENCH_SCALE`` selects the operating point:

- ``smoke``: tiny topologies and messages for CI / wiring checks — each
  figure runs in seconds, at the cost of paper-shape fidelity.
- ``quick`` (default): small topologies, scaled message sizes; the whole
  benchmark suite runs in minutes.
- ``full``: larger topologies and messages, closer to the paper's sizes;
  expect a long run.

Message sizes quoted from the paper (4/8/16 MiB ...) are scaled by
``msg_scale`` so the per-flow packet counts stay proportional.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..sim.topology import TopologyParams


@dataclass(frozen=True)
class Scale:
    """One benchmark operating point."""

    name: str
    n_hosts: int
    hosts_per_t0: int
    msg_scale: float          # multiplies the paper's message sizes
    trace_duration_us: float
    repeats: int

    def msg_bytes(self, paper_mib: float) -> int:
        """Scale a paper-quoted message size (MiB) to this operating
        point, keeping at least 32 packets per flow."""
        return max(128 * 1024, int(paper_mib * 1024 * 1024 * self.msg_scale))

    def topo(self, **overrides) -> TopologyParams:
        params = dict(n_hosts=self.n_hosts, hosts_per_t0=self.hosts_per_t0)
        params.update(overrides)
        return TopologyParams(**params)


SMOKE = Scale(name="smoke", n_hosts=8, hosts_per_t0=4, msg_scale=1 / 64,
              trace_duration_us=40.0, repeats=1)
QUICK = Scale(name="quick", n_hosts=32, hosts_per_t0=8, msg_scale=0.25,
              trace_duration_us=120.0, repeats=1)
FULL = Scale(name="full", n_hosts=128, hosts_per_t0=16, msg_scale=1.0,
             trace_duration_us=400.0, repeats=3)

_SCALES = {"smoke": SMOKE, "quick": QUICK, "full": FULL}


def current_scale() -> Scale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default quick)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, "
            f"got {name!r}") from None
