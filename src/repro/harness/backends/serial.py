"""Serial backend: every task in-process, in submission order.

The debugging baseline — no pool, no pickling, tracebacks point
straight at the failing task — and the reference implementation the
equivalence suite measures every other backend against.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..sweep import execute_task
from .base import Backend, Pending, ProgressCb, emit, task_stats


class SerialBackend(Backend):
    """Execute pending tasks one by one in the calling process."""

    name = "serial"

    def run(self, pending: Pending, store=None,
            progress_cb: Optional[ProgressCb] = None
            ) -> Dict[str, Dict[str, object]]:
        payloads: Dict[str, Dict[str, object]] = {}
        for key, task in pending:
            t0 = time.perf_counter()
            payload = execute_task(task)
            wall = time.perf_counter() - t0
            payloads[key] = payload
            emit(store, key, payload, progress_cb,
                 stats=task_stats(payload, wall))
        return payloads
