"""Batched pool backend: amortize dispatch and store I/O over chunks.

Two overheads dominate :class:`~.process.ProcessBackend` on matrices
of short tasks (the quick-scale campaigns, the analytic-model grids):

1. **Dispatch**: ``chunksize=1`` costs one pickle round-trip per task.
2. **Store I/O**: ``ResultStore.put`` re-reads, merges and rewrites
   ``manifest.json`` on every artifact — O(n²) JSON bytes per sweep.

This backend slices the pending list into interleaved batches (round
robin, so naturally ordered slow/fast tasks spread across workers),
executes each batch with a single worker dispatch, and persists each
finished batch through :meth:`ResultStore.put_many` — one manifest
read-merge-write per *batch* instead of per task.  When the store's
manifest carries recorded wall times, the pending list is first
ordered longest-expected-first
(:func:`~repro.harness.backends.schedule.longest_first`) so the round
robin deals the expensive labels across batches *and* every batch
fronts its own slowest tasks.  Payloads are the same bytes
``execute_task`` always produces; only the orchestration and write
batching differ.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, List, Optional, Tuple

from ..sweep import SweepTask, execute_task
from .base import Backend, Pending, ProgressCb, task_stats
from .schedule import longest_first

#: batches per worker when no explicit batch size is given — finer
#: than one batch per worker so an unlucky batch of slow tasks cannot
#: serialize the whole sweep, coarse enough to amortize dispatch
_BATCHES_PER_WORKER = 4


def _batch_entry(batch: List[Tuple[str, SweepTask]]
                 ) -> List[Tuple[str, Dict[str, object], float]]:
    out = []
    for key, task in batch:
        t0 = time.perf_counter()
        payload = execute_task(task)
        out.append((key, payload, time.perf_counter() - t0))
    return out


class BatchedBackend(Backend):
    """Chunk tasks per worker and batch artifact-store writes."""

    name = "batched"

    def __init__(self, workers: int = 1, mp_context: Optional[str] = None,
                 batch_size: Optional[int] = None) -> None:
        self.workers = max(1, int(workers))
        self.mp_context = mp_context
        self.batch_size = batch_size

    def _batches(self, pending: List[Tuple[str, SweepTask]]
                 ) -> List[List[Tuple[str, SweepTask]]]:
        if self.batch_size is not None:
            n = max(1, -(-len(pending) // max(1, int(self.batch_size))))
        else:
            n = self.workers * _BATCHES_PER_WORKER
        n = min(n, len(pending))
        return [pending[i::n] for i in range(n)]

    def _drain(self, finished, store, progress_cb
               ) -> Dict[str, Dict[str, object]]:
        payloads: Dict[str, Dict[str, object]] = {}
        for batch_result in finished:
            if store is not None:
                store.put_many(
                    [(key, payload) for key, payload, _ in batch_result],
                    stats={key: task_stats(payload, wall)
                           for key, payload, wall in batch_result})
            for key, payload, _wall in batch_result:
                payloads[key] = payload
                if progress_cb is not None:
                    progress_cb(key, payload)
        return payloads

    def run(self, pending: Pending, store=None,
            progress_cb: Optional[ProgressCb] = None
            ) -> Dict[str, Dict[str, object]]:
        pending = longest_first(pending, store)
        if not pending:
            return {}
        batches = self._batches(pending)
        if self.workers <= 1 or len(batches) <= 1:
            return self._drain((_batch_entry(b) for b in batches),
                               store, progress_cb)
        ctx = multiprocessing.get_context(self.mp_context)
        n = min(self.workers, len(batches))
        with ctx.Pool(processes=n) as pool:
            finished = pool.imap_unordered(_batch_entry, batches)
            return self._drain(finished, store, progress_cb)
