"""Wall-time-driven task ordering for the parallel backends.

The store's manifest entries carry per-task execution accounting
(``wall_s``, recorded by every backend through
:func:`~repro.harness.backends.base.task_stats`).  When a sweep
re-runs against a warm store — larger scale, more seeds, a few
invalidated artifacts — that history predicts which *labels* are
expensive, and dispatching longest-expected-first (LPT) stops one
straggler label from serializing the tail of the sweep behind a
work-stealing pool.

Guarantees the backends rely on:

- **Pure reordering.**  ``longest_first`` returns a permutation of
  ``pending`` — never drops, duplicates, or rewrites a task — so the
  byte-identity contract of the equivalence suite is untouched.
- **Stable.**  Ties (and the no-history case) preserve the caller's
  original order, keeping runs reproducible.
- **Fail-soft.**  Any store error, a store without a manifest, or a
  manifest without timings degrades to the original order.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .base import Pending


def task_label(task) -> str:
    """The task's display label — the join key against the manifest
    accounting.  :class:`~repro.harness.sweep.SweepTask` spells it as
    a method; duck-typed fakes may use a plain attribute."""
    label = getattr(task, "label", "")
    if callable(label):
        try:
            label = label()
        except Exception:
            label = ""
    return str(label)


def wall_time_history(store) -> Dict[str, Tuple[float, int]]:
    """``label -> (mean wall seconds, observation count)`` from the
    store's manifest accounting.  Empty when nothing was ever timed."""
    if store is None:
        return {}
    try:
        manifest = store.manifest()
    except Exception:
        return {}
    totals: Dict[str, List[float]] = {}
    for entry in manifest.values():
        if not isinstance(entry, dict):
            continue
        wall = entry.get("wall_s")
        if isinstance(wall, bool) or not isinstance(wall, (int, float)):
            continue
        totals.setdefault(str(entry.get("label", "")), []).append(
            float(wall))
    return {label: (sum(vals) / len(vals), len(vals))
            for label, vals in totals.items()}


def wall_time_by_label(store) -> Dict[str, float]:
    """Mean recorded wall seconds per task label, from the store's
    manifest accounting.  Empty when nothing was ever timed."""
    return {label: mean
            for label, (mean, _n) in wall_time_history(store).items()}


def default_expectation(history: Dict[str, Tuple[float, int]]) -> float:
    """What an *unseen* label is expected to cost: the observation-
    weighted mean of the recorded wall times (total wall over total
    observations).  An unweighted mean of per-label means would let a
    single once-seen outlier label pull every unseen task's estimate —
    and so its dispatch position — arbitrarily far from the workload's
    typical cost."""
    obs = sum(n for _mean, n in history.values())
    if not obs:
        return 0.0
    return sum(mean * n for mean, n in history.values()) / obs


def longest_first(pending: Pending, store) -> List[Tuple[str, object]]:
    """Order ``pending`` longest-expected-first by recorded wall time.

    Tasks whose label has history get its mean wall time; unseen
    labels get the observation-weighted overall mean (neutral: what a
    typical recorded task cost); with no history at all the original
    order comes back unchanged.
    """
    pending = list(pending)
    history = wall_time_history(store)
    if not history or len(pending) <= 1:
        return pending
    default = default_expectation(history)

    def expected(item) -> float:
        entry = history.get(task_label(item[1]))
        return entry[0] if entry is not None else default

    # sorted() is stable: equal expectations keep submission order
    return sorted(pending, key=expected, reverse=True)
