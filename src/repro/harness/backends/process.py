"""Process-pool backend: one task per worker dispatch.

The historical ``run_sweep(workers=N)`` behaviour, extracted from
``sweep.py``: a ``multiprocessing`` pool, ``imap_unordered`` with
``chunksize=1`` so long tasks never convoy behind a pre-assigned
chunk, and a store write per finished task.  ``mp_context`` selects
the start method — callers that create pools from a multithreaded
process (the campaign runner's figure threads) must pass ``"spawn"``.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Optional, Tuple

from ..sweep import SweepTask, execute_task
from .base import Backend, Pending, ProgressCb, emit


def _pool_entry(item: Tuple[str, SweepTask]
                ) -> Tuple[str, Dict[str, object]]:
    key, task = item
    return key, execute_task(task)


class ProcessBackend(Backend):
    """Fan tasks out over a ``multiprocessing`` pool."""

    name = "process"

    def __init__(self, workers: int = 1,
                 mp_context: Optional[str] = None) -> None:
        self.workers = max(1, int(workers))
        self.mp_context = mp_context

    def run(self, pending: Pending, store=None,
            progress_cb: Optional[ProgressCb] = None
            ) -> Dict[str, Dict[str, object]]:
        pending = list(pending)
        payloads: Dict[str, Dict[str, object]] = {}
        if self.workers <= 1 or len(pending) <= 1:
            for key, task in pending:
                payload = execute_task(task)
                payloads[key] = payload
                emit(store, key, payload, progress_cb)
            return payloads
        ctx = multiprocessing.get_context(self.mp_context)
        n = min(self.workers, len(pending))
        with ctx.Pool(processes=n) as pool:
            done = pool.imap_unordered(_pool_entry, pending, chunksize=1)
            for key, payload in done:
                payloads[key] = payload
                emit(store, key, payload, progress_cb)
        return payloads
