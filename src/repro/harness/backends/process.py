"""Process-pool backend: one task per worker dispatch.

The historical ``run_sweep(workers=N)`` behaviour, extracted from
``sweep.py``: a ``multiprocessing`` pool, ``imap_unordered`` with
``chunksize=1`` so a free worker always steals the next pending task
(no pre-assigned chunks to convoy behind), and a store write per
finished task.  Pending tasks are submitted **longest-expected-first**
(:func:`~repro.harness.backends.schedule.longest_first`) using the
wall times recorded in the store's manifest, so a straggler label
starts early instead of serializing the tail of the sweep — pure
reordering, payloads stay byte-identical.  ``mp_context`` selects
the start method — callers that create pools from a multithreaded
process (the campaign runner's figure threads) must pass ``"spawn"``.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Dict, Optional, Tuple

from ..sweep import SweepTask, execute_task
from .base import Backend, Pending, ProgressCb, emit, task_stats
from .schedule import longest_first


def _pool_entry(item: Tuple[str, SweepTask]
                ) -> Tuple[str, Dict[str, object], float]:
    key, task = item
    t0 = time.perf_counter()
    payload = execute_task(task)
    return key, payload, time.perf_counter() - t0


class ProcessBackend(Backend):
    """Fan tasks out over a ``multiprocessing`` pool."""

    name = "process"

    def __init__(self, workers: int = 1,
                 mp_context: Optional[str] = None) -> None:
        self.workers = max(1, int(workers))
        self.mp_context = mp_context

    def run(self, pending: Pending, store=None,
            progress_cb: Optional[ProgressCb] = None
            ) -> Dict[str, Dict[str, object]]:
        pending = list(pending)
        payloads: Dict[str, Dict[str, object]] = {}
        if self.workers <= 1 or len(pending) <= 1:
            for key, task in pending:
                t0 = time.perf_counter()
                payload = execute_task(task)
                wall = time.perf_counter() - t0
                payloads[key] = payload
                emit(store, key, payload, progress_cb,
                     stats=task_stats(payload, wall))
            return payloads
        ordered = longest_first(pending, store)
        ctx = multiprocessing.get_context(self.mp_context)
        n = min(self.workers, len(ordered))
        with ctx.Pool(processes=n) as pool:
            done = pool.imap_unordered(_pool_entry, ordered, chunksize=1)
            for key, payload, wall in done:
                payloads[key] = payload
                emit(store, key, payload, progress_cb,
                     stats=task_stats(payload, wall))
        return payloads
