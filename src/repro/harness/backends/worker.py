"""Shard worker: run one shard manifest and report heartbeats.

The execution leaf of ``repro orchestrate``: the orchestrator plans
shard manifests and fans them out to worker processes, each of which
runs this module (``python -m repro.harness.backends.worker``) against
one manifest.  A worker

1. validates the manifest exactly as ``repro shard run`` does
   (simulator-version match, grid re-expansion at the recorded scale),
2. executes the shard's pending tasks through a normal execution
   backend into a local store tagged with the shard's identity, and
3. writes a small JSON *heartbeat* file on an interval **and** on
   every task completion, so the orchestrator can tell a slow worker
   from a dead one and render live progress without touching the
   store.

Exit codes are part of the protocol: ``0`` success,
:data:`EXIT_FATAL` (3) for validation failures that a retry can never
fix (bad manifest, simulator drift, grid drift — the orchestrator
must abort, not reassign), anything else is a retryable crash.

Heartbeat writes are atomic (temp file + ``os.replace``) so the
orchestrator never reads a torn heartbeat.  ``REPRO_WORKER_THROTTLE_S``
sleeps that many seconds after each executed task — a failure-drill
hook so tests (and operators rehearsing dead-worker recovery) can hold
a shard mid-flight long enough to kill it.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import threading
import time
from typing import Dict, Iterator, List, Optional

#: exit code for validation failures a retry cannot fix
EXIT_FATAL = 3

#: failure-drill hook: seconds to sleep after each executed task
THROTTLE_ENV = "REPRO_WORKER_THROTTLE_S"


@contextlib.contextmanager
def scoped_env(**pairs: Optional[str]) -> Iterator[None]:
    """Set environment variables for the duration of a ``with`` block.

    Every named variable is restored on exit — to its previous value,
    or removed if it did not exist (a plain ``monkeypatch``-style
    save/restore; ``None`` removes the variable for the scope).  The
    shard CLI and the worker run below code that reads
    ``REPRO_BENCH_SCALE`` / ``REPRO_SHARD`` from the environment; this
    keeps that contract while guaranteeing a later in-process run (a
    test, or an orchestrator driving shards) cannot inherit a stale
    shard identity or scale.
    """
    saved = {name: os.environ.get(name) for name in pairs}
    try:
        for name, value in pairs.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


class Heartbeat:
    """Atomic liveness + progress file, written by a daemon thread.

    The thread proves the *process* is alive even while a single long
    task simulates; the per-task bumps keep the progress numbers
    fresh.  All writes go through one lock, and ``close()`` writes a
    final frame so a cleanly-exited worker leaves ``done == total``
    behind.
    """

    def __init__(self, path: Optional[str], shard: int, n_shards: int,
                 total: int, interval_s: float = 1.0) -> None:
        self.path = path
        self.shard = shard
        self.n_shards = n_shards
        self.total = total
        self.done = 0
        self.interval_s = max(0.05, float(interval_s))
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _write(self) -> None:
        if self.path is None:
            return
        doc = {
            "pid": os.getpid(),
            "shard": self.shard,
            "n_shards": self.n_shards,
            "done": self.done,
            "total": self.total,
            "ts": time.time(),
        }
        tmp = f"{self.path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, self.path)
        except OSError:
            # a worker must never die because its heartbeat file is
            # unwritable; the orchestrator's deadline treats silence
            # as death and retries the shard
            pass

    def start(self) -> "Heartbeat":
        if self.path is None:
            return self
        with self._lock:
            self._write()

        def beat() -> None:
            while not self._stop.wait(self.interval_s):
                with self._lock:
                    self._write()

        self._thread = threading.Thread(target=beat, daemon=True)
        self._thread.start()
        return self

    def bump(self, n: int = 1) -> None:
        with self._lock:
            self.done += n
            self._write()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s * 4)
            self._thread = None
        with self._lock:
            self._write()


def read_heartbeat(path: str) -> Optional[Dict[str, object]]:
    """The latest heartbeat document, or ``None`` when missing/torn."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    return doc if isinstance(doc, dict) else None


def run_shard_worker(manifest_path: str, store_dir: str, *,
                     workers: int = 1, backend: Optional[str] = None,
                     heartbeat_path: Optional[str] = None,
                     heartbeat_interval_s: float = 1.0,
                     out=None) -> int:
    """Execute one shard manifest; returns the process exit code.

    The library form of the ``__main__`` entrypoint so the orchestrator
    (and tests) can run a shard in-process.  Environment exports
    (``REPRO_BENCH_SCALE``, ``REPRO_SHARD``) are scoped to this call.
    """
    from ..store import open_store
    from ..sweep import simulator_version, task_key
    from . import (
        expand_figures,
        load_shard_manifest,
        resolve_backend,
        shard_origin,
        tasks_for_manifest,
    )

    out = out if out is not None else sys.stdout

    def say(message: str) -> None:
        print(message, file=out, flush=True)

    try:
        manifest = load_shard_manifest(manifest_path)
    except ValueError as exc:
        say(f"worker: {exc}")
        return EXIT_FATAL

    with scoped_env(REPRO_BENCH_SCALE=str(manifest["scale"]),
                    REPRO_SHARD=(f"{manifest['shard']}/"
                                 f"{manifest['n_shards']}")):
        if simulator_version() != manifest["sim"]:
            say(f"worker: simulator {simulator_version()} does not "
                f"match the plan's {manifest['sim']}; re-plan")
            return EXIT_FATAL
        try:
            tasks = tasks_for_manifest(
                manifest, expand_figures(manifest["figures"]))
        except (KeyError, ValueError) as exc:
            say(f"worker: {exc}")
            return EXIT_FATAL
        try:
            store = open_store(store_dir,
                               origin=shard_origin(manifest))
        except ValueError as exc:
            say(f"worker: {exc}")
            return EXIT_FATAL
        os.makedirs(store.root, exist_ok=True)

        # the cache check mirrors run_sweep: a retried shard re-opens
        # the same store, so tasks the killed attempt already finished
        # are served from disk and a worker death costs only the
        # unfinished remainder of its shard
        pending: List = []
        cached = 0
        for task in tasks:
            key = task_key(task)
            if store.get(key) is not None:
                cached += 1
            else:
                pending.append((key, task))
        beat = Heartbeat(heartbeat_path, int(manifest["shard"]),
                         int(manifest["n_shards"]), len(tasks),
                         interval_s=heartbeat_interval_s).start()
        if cached:
            beat.bump(cached)

        throttle = 0.0
        raw = os.environ.get(THROTTLE_ENV, "")
        if raw:
            try:
                throttle = max(0.0, float(raw))
            except ValueError:
                throttle = 0.0

        def on_task(_key: str, _payload: Dict[str, object]) -> None:
            beat.bump()
            if throttle:
                time.sleep(throttle)

        try:
            executor = resolve_backend(backend, workers=workers)
            if pending:
                executor.run(pending, store, progress_cb=on_task)
        except Exception as exc:
            say(f"worker: shard {shard_origin(manifest)} crashed: "
                f"{type(exc).__name__}: {exc}")
            import traceback
            traceback.print_exc(file=out)
            return 1
        finally:
            beat.close()
        say(f"worker: {shard_origin(manifest)} done — {len(tasks)} "
            f"task(s) ({len(pending)} executed, {cached} cached) -> "
            f"{store.root}")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="run one shard manifest with heartbeats "
                    "(orchestrator execution leaf)")
    parser.add_argument("manifest", help="shard-<i>.json manifest")
    parser.add_argument("--store", required=True,
                        help="local artifact-store directory")
    parser.add_argument("--workers", type=int, default=1,
                        help="in-worker sweep processes (1 = serial)")
    parser.add_argument("--backend", default=None,
                        help="execution backend for this shard")
    parser.add_argument("--heartbeat", default=None,
                        help="heartbeat JSON path (atomic writes)")
    parser.add_argument("--heartbeat-interval", type=float, default=1.0,
                        help="seconds between liveness beats")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return run_shard_worker(
        args.manifest, args.store, workers=args.workers,
        backend=args.backend, heartbeat_path=args.heartbeat,
        heartbeat_interval_s=args.heartbeat_interval)


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(main())
