"""Pluggable execution backends for the sweep harness.

``run_sweep`` (and everything above it: figures, campaigns, the
benchmarks) selects *how* pending tasks execute by backend name —
``--backend`` on the CLI, ``REPRO_BACKEND`` in the environment, or a
:class:`~.base.Backend` instance through the library API:

- ``serial``  — in-process, in order; the debuggable reference.
- ``process`` — one ``multiprocessing`` dispatch per task (the
  historical ``workers=N`` pool).
- ``batched`` — interleaved task batches per worker with batched
  artifact-store writes; amortizes dispatch and manifest I/O on
  matrices of short tasks.
- ``shard``   — partition / run-per-shard / merge, in-process; the
  continuously-tested rehearsal of the ``repro shard`` multi-host
  flow.

All backends produce byte-identical artifacts for the same grid (the
equivalence suite in ``tests/harness/test_backends.py`` enforces it),
so backend choice never invalidates a store.
"""

from __future__ import annotations

import copy
import os
from typing import Optional, Union

from .base import Backend, ProgressCb
from .batched import BatchedBackend
from .process import ProcessBackend
from .serial import SerialBackend
from .shard import (
    SHARD_SCHEMA,
    ShardBackend,
    expand_figures,
    load_shard_manifest,
    plan_manifests,
    shard_origin,
    shard_partition,
    tasks_for_manifest,
    write_shard_plan,
)

#: the env var naming the default backend for this process tree
BACKEND_ENV = "REPRO_BACKEND"

#: registry: ``--backend`` / ``REPRO_BACKEND`` name -> implementation
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
    BatchedBackend.name: BatchedBackend,
    ShardBackend.name: ShardBackend,
}

#: what ``resolve_backend(None)`` falls back to, by worker count
_DEFAULTS = {False: SerialBackend.name, True: ProcessBackend.name}


def backend_names() -> list:
    """Registered backend names, stable order for CLI choices."""
    return sorted(BACKENDS)


def make_backend(name: str, *, workers: int = 1,
                 mp_context: Optional[str] = None, **kwargs) -> Backend:
    """Instantiate a backend by registry name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; one of {backend_names()}"
        ) from None
    if cls is SerialBackend:
        return cls(**kwargs)
    return cls(workers=workers, mp_context=mp_context, **kwargs)


def resolve_backend(spec: Union[Backend, str, None] = None, *,
                    workers: int = 1,
                    mp_context: Optional[str] = None) -> Backend:
    """The backend a caller asked for, however they asked.

    ``spec`` may be a ready :class:`Backend`, a registry name, or
    ``None`` — which consults ``$REPRO_BACKEND`` and finally defaults
    to ``serial`` (``workers <= 1``) or ``process`` (``workers > 1``),
    preserving the harness's historical behaviour when nobody opts in.

    A ready instance is returned as-is — except that a caller-required
    ``mp_context`` (the threaded campaign runner forces ``"spawn"``
    for fork safety) is applied to a pool-owning instance that never
    chose one, via a shallow copy so the caller's object stays
    untouched.
    """
    if isinstance(spec, Backend):
        if mp_context is not None and \
                getattr(spec, "mp_context", mp_context) is None:
            spec = copy.copy(spec)
            spec.mp_context = mp_context
        return spec
    name = spec or os.environ.get(BACKEND_ENV) or _DEFAULTS[workers > 1]
    return make_backend(name, workers=workers, mp_context=mp_context)


__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "Backend",
    "BatchedBackend",
    "ProcessBackend",
    "ProgressCb",
    "SHARD_SCHEMA",
    "SerialBackend",
    "ShardBackend",
    "backend_names",
    "expand_figures",
    "load_shard_manifest",
    "make_backend",
    "plan_manifests",
    "resolve_backend",
    "shard_origin",
    "shard_partition",
    "tasks_for_manifest",
    "write_shard_plan",
]
