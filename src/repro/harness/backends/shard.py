"""Shard backend: partition a campaign so any host can run a slice.

The scale-out story (``repro shard plan | run | merge``):

1. **plan** expands a figure selection into its deduplicated task
   grid and partitions the sorted content keys round-robin into ``N``
   *shard manifests* — plain JSON, deterministic for a given grid, so
   every host (or CI matrix job) planning the same commit at the same
   scale produces byte-identical manifests.
2. **run** executes one manifest on any host: it re-expands the
   recorded figure selection at the recorded scale, refuses to run if
   the local :func:`~repro.harness.sweep.simulator_version` differs
   from the planner's (content keys would never line up), and sweeps
   exactly the manifest's keys into a local store tagged with the
   shard's identity.
3. **merge** folds shard stores into one via
   :meth:`ResultStore.merge_from`.  Content keys make the merge
   idempotent and order-independent; a subsequent campaign run against
   the merged store is fully cached and renders the same report a
   single-host run would.

:class:`ShardBackend` runs the same plan → execute → merge cycle
in-process (each shard against its own scratch store), so the flow is
exercised by the backend-equivalence suite on every CI run.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

from ..sweep import (
    SCHEMA_VERSION,
    ResultStore,
    SweepTask,
    simulator_version,
    task_key,
)
from .base import Backend, Pending, ProgressCb
from .schedule import longest_first

#: bump when the shard manifest layout changes
SHARD_SCHEMA = 1

#: manifest marker so arbitrary JSON cannot be fed to ``shard run``
SHARD_KIND = "repro-shard"


def shard_partition(keys: Sequence[str], n_shards: int) -> List[List[str]]:
    """Deterministically split ``keys`` into ``n_shards`` slices.

    Round-robin over the *sorted* keys: independent of input order,
    balanced to within one task, and stable across hosts — the
    property that lets every shard recompute its own assignment.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    ordered = sorted(set(keys))
    return [ordered[i::n_shards] for i in range(n_shards)]


def plan_manifests(figures: Sequence[str], keys: Sequence[str],
                   n_shards: int, scale: str) -> List[Dict[str, object]]:
    """The shard manifests for one planned campaign grid.

    ``figures`` is the resolved figure-id selection (recorded so
    ``shard run`` re-expands exactly the planner's grid, immune to
    later registry/tag drift), ``keys`` the deduplicated task keys.
    """
    parts = shard_partition(keys, n_shards)
    return [{
        "schema": SHARD_SCHEMA,
        "kind": SHARD_KIND,
        "shard": index,
        "n_shards": n_shards,
        "sim": simulator_version(),
        "artifact_schema": SCHEMA_VERSION,
        "scale": scale,
        "figures": list(figures),
        "keys": part,
    } for index, part in enumerate(parts)]


def write_shard_plan(out_dir: str,
                     manifests: Sequence[Dict[str, object]]) -> List[str]:
    """Persist ``manifests`` as ``shard-<i>.json`` under ``out_dir``."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for manifest in manifests:
        path = os.path.join(out_dir, f"shard-{manifest['shard']}.json")
        with open(path, "w") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths


def load_shard_manifest(path: str) -> Dict[str, object]:
    """Read and validate one shard manifest."""
    try:
        with open(path) as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read shard manifest {path}: {exc}")
    if not isinstance(manifest, dict) or \
            manifest.get("kind") != SHARD_KIND:
        raise ValueError(f"{path} is not a repro shard manifest")
    if manifest.get("schema") != SHARD_SCHEMA:
        raise ValueError(
            f"{path}: shard schema {manifest.get('schema')!r} "
            f"unsupported (expected {SHARD_SCHEMA})")
    return manifest


def shard_origin(manifest: Dict[str, object]) -> str:
    """The shard identity recorded in store manifests / provenance."""
    return f"shard-{manifest['shard']}/{manifest['n_shards']}"


class ShardBackend(Backend):
    """Plan → run each shard against its own store → merge.

    The single-process rehearsal of the distributed flow: pending
    tasks are partitioned exactly as ``shard plan`` would, each shard
    executes against a scratch :class:`ResultStore` (serially, or
    through a ``workers``-process pool — the flag is honoured, not
    dropped), and the scratch stores merge into the caller's store.
    Useful mostly as a continuously-tested guarantee that partition +
    merge preserve the artifact set; multi-host runs use the CLI flow
    instead.
    """

    name = "shard"

    def __init__(self, workers: int = 1, mp_context: Optional[str] = None,
                 n_shards: int = 2) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.workers = max(1, int(workers))
        self.mp_context = mp_context
        self.n_shards = n_shards

    def run(self, pending: Pending, store=None,
            progress_cb: Optional[ProgressCb] = None
            ) -> Dict[str, Dict[str, object]]:
        from .process import ProcessBackend
        from .serial import SerialBackend

        inner = SerialBackend() if self.workers <= 1 else \
            ProcessBackend(workers=self.workers,
                           mp_context=self.mp_context)
        by_key: Dict[str, SweepTask] = dict(pending)
        parts = shard_partition(list(by_key), self.n_shards)
        payloads: Dict[str, Dict[str, object]] = {}
        # when the caller's store already carries an identity (e.g.
        # `repro shard run --backend shard`), the internal sub-shards
        # must not overwrite it — manifest origins would otherwise
        # name shards that exist only inside this call
        outer_origin = getattr(store, "origin", None)
        # scratch stores mirror the destination's format so the v2
        # (columnar) merge path is rehearsed whenever the caller uses
        # a v2 store
        store_cls = type(store) if store is not None else ResultStore
        with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
            for index, keys in enumerate(parts):
                if not keys:
                    continue
                scratch = store_cls(
                    os.path.join(tmp, f"shard-{index}"),
                    origin=outer_origin or
                    f"shard-{index}/{self.n_shards}")
                # the scratch store has no wall-time history, so order
                # each shard's slice by the caller's store instead —
                # the single-host rehearsal of shards inheriting the
                # planner host's accounting
                payloads.update(inner.run(
                    longest_first([(key, by_key[key]) for key in keys],
                                  store),
                    scratch, progress_cb))
                if store is not None:
                    store.merge_from(scratch)
        return payloads


def tasks_for_manifest(manifest: Dict[str, object],
                       by_key: Dict[str, SweepTask]) -> List[SweepTask]:
    """Resolve a manifest's keys against a re-expanded grid.

    Raises :class:`ValueError` when any planned key is missing — the
    grid drifted (code or scale changed) since ``shard plan``, and
    running anyway would produce artifacts the merge can never match.
    """
    missing = [key for key in manifest["keys"] if key not in by_key]
    if missing:
        raise ValueError(
            f"{len(missing)} planned task(s) missing from the "
            f"re-expanded grid (first: {missing[0]}); the figure "
            f"matrices changed since `shard plan` — re-plan")
    return [by_key[key] for key in manifest["keys"]]


def expand_figures(figures: Sequence[str]) -> Dict[str, SweepTask]:
    """``key -> task`` for a figure-id selection (deduplicated)."""
    from ...scenarios import get_figure

    by_key: Dict[str, SweepTask] = {}
    for fig_id in figures:
        spec = get_figure(fig_id)
        for task in spec.build().values():
            by_key.setdefault(task_key(task), task)
    return by_key
