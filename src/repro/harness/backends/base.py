"""The execution-backend protocol: *how* pending sweep tasks run.

:func:`~repro.harness.sweep.run_sweep` decides *what* runs (grid
expansion, dedup, cache lookups); a :class:`Backend` decides how the
cache misses execute — in-process, across a worker pool, in amortized
batches, or sharded into independent stores that merge later.

The contract every implementation must honour:

- **Artifact equivalence.**  A backend only orchestrates; the payload
  for a task comes from :func:`~repro.harness.sweep.execute_task` and
  must be byte-identical no matter which backend ran it.  Backend
  choice is therefore *not* part of the content key, and stores
  written by different backends (or different hosts) merge safely.
- **Completeness.**  ``run`` returns a payload for every pending key
  and persists every payload into ``store`` (when one is given)
  before returning.
- **No ordering promises.**  Callers must not rely on completion
  order; determinism comes from per-task seeding, not scheduling.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Sequence, Tuple

#: one pending unit of work: ``(content key, task)``
Pending = Sequence[Tuple[str, "SweepTask"]]  # noqa: F821 (doc alias)

#: optional per-task completion callback: ``cb(key, payload)``
ProgressCb = Callable[[str, Dict[str, object]], None]


class Backend(ABC):
    """One way of executing a sweep's pending tasks."""

    #: registry name (``--backend <name>`` / ``REPRO_BACKEND``)
    name: str = "?"

    @abstractmethod
    def run(self, pending: Pending, store=None,
            progress_cb: Optional[ProgressCb] = None
            ) -> Dict[str, Dict[str, object]]:
        """Execute every ``(key, task)`` pair; persist into ``store``
        (a :class:`~repro.harness.sweep.ResultStore`, may be ``None``)
        and return ``key -> payload``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


def task_stats(payload: Dict[str, object],
               wall_s: float) -> Dict[str, object]:
    """Execution accounting for one finished task.

    ``bytes`` is the canonical-JSON size of the payload — the same
    serialization the store round-trips — so backends agree on it
    regardless of how the artifact is later framed on disk.
    """
    return {
        "wall_s": wall_s,
        "bytes": len(json.dumps(payload, sort_keys=True).encode()),
    }


def emit(store, key: str, payload: Dict[str, object],
         progress_cb: Optional[ProgressCb],
         stats: Optional[Dict[str, object]] = None) -> None:
    """Shared per-task completion path: persist, then notify.

    ``stats`` (from :func:`task_stats`) is forwarded to the store's
    manifest accounting; it never touches the payload, so backend
    byte-identity is unaffected.  Passed positionally-absent when
    ``None`` so stores that predate the ``stats`` kwarg still work.
    """
    if store is not None:
        if stats is not None:
            store.put(key, payload, stats=stats)
        else:
            store.put(key, payload)
    if progress_cb is not None:
        progress_cb(key, payload)
