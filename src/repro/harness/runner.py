"""Experiment runner: one call per paper scenario.

Wraps :class:`~repro.sim.network.Network` construction, workload
installation, failure injection and metric collection so each benchmark
file stays a thin description of its figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.reps import RepsConfig
from ..sim.metrics import RunMetrics, SeriesRecorder
from ..sim.network import Network, NetworkConfig
from ..sim.topology import TopologyParams
from ..sim.units import US, us_to_ps
from ..workloads.collectives import (
    AllToAll,
    ButterflyAllReduce,
    RingAllReduce,
    spine_heavy_ring,
)
from ..workloads.synthetic import incast, permutation, tornado
from ..workloads.traces import generate_trace_flows

FailureHook = Callable[[Network], None]


@dataclass
class Scenario:
    """One simulation run, fully specified."""

    lb: str
    topo: TopologyParams = field(default_factory=TopologyParams)
    cc: str = "dctcp"
    evs_size: int = 65536
    ack_coalesce: int = 1
    carry_evs: bool = False
    reps: Optional[RepsConfig] = None
    rto_us: float = 70.0
    seed: int = 1
    max_us: float = 50_000.0
    failures: Optional[FailureHook] = None
    telemetry_bucket_us: Optional[float] = None
    #: attach the :class:`LbCounterSampler` (EV-source counter series)?
    #: ``None`` follows ``telemetry_bucket_us``; the sweep layer sets
    #: this explicitly so only tasks requesting ``ev_recycle_series``
    #: pay the per-window sampling (and its engine events)
    sample_lb_series: Optional[bool] = None

    def network(self) -> Network:
        cfg = NetworkConfig(
            topo=self.topo, lb=self.lb, cc=self.cc, evs_size=self.evs_size,
            ack_coalesce=self.ack_coalesce, carry_evs=self.carry_evs,
            reps=self.reps, rto_us=self.rto_us, seed=self.seed,
        )
        net = Network(cfg)
        if self.failures is not None:
            self.failures(net)
        return net


class LbCounterSampler:
    """Fixed-bucket sampler of fabric-wide EV-source counters.

    The REPS sender counts where each transmitted EV came from
    (recycled / random exploration / frozen reuse); sampling the sums
    across every flow per telemetry window is what turns those
    counters into the Fig.-2-style recycling-rate trajectory.  Purely
    observational: it reads counters on its own engine events and
    never touches packets or RNG state, so simulation results are
    unchanged (only ``RunMetrics.events`` grows by the sample count).
    """

    COUNTERS = ("stats_recycled", "stats_explored", "stats_frozen_reuse")

    def __init__(self, net: Network, bucket_ps: int) -> None:
        self.net = net
        self.bucket_ps = bucket_ps
        self.times_us: List[float] = []
        self.totals: Dict[str, List[float]] = {
            c: [] for c in self.COUNTERS}
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.net.engine.after(self.bucket_ps, self._sample)

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        self.times_us.append(self.net.engine.now / US)
        flows = self.net.flows.values()
        for counter in self.COUNTERS:
            self.totals[counter].append(float(sum(
                getattr(rec.sender.lb, counter, 0) for rec in flows)))
        self.net.engine.after(self.bucket_ps, self._sample)


@dataclass
class ScenarioResult:
    metrics: RunMetrics
    recorder: Optional[SeriesRecorder] = None
    network: Optional[Network] = None
    lb_sampler: Optional[LbCounterSampler] = None

    @property
    def max_fct_us(self) -> float:
        return self.metrics.max_fct_us

    @property
    def avg_fct_us(self) -> float:
        return self.metrics.avg_fct_us


def _maybe_record(net: Network, scenario: Scenario):
    if scenario.telemetry_bucket_us is None:
        return None
    ports = net.tree.t0s[0].up_ports
    return net.record_ports(ports, bucket_us=scenario.telemetry_bucket_us)


def _maybe_sample_lb(net: Network,
                     scenario: Scenario) -> Optional[LbCounterSampler]:
    if scenario.telemetry_bucket_us is None or \
            scenario.sample_lb_series is False:
        return None
    sampler = LbCounterSampler(
        net, us_to_ps(scenario.telemetry_bucket_us))
    sampler.start()
    # registered like a SeriesRecorder so Network.run() stops it
    net.recorders.append(sampler)
    return sampler


def run_synthetic(
    scenario: Scenario,
    pattern: str,
    msg_bytes: int,
    *,
    fan_in: int = 8,
    workload_seed: int = 2,
) -> ScenarioResult:
    """Run one of the Sec. 4.2 synthetic patterns."""
    net = scenario.network()
    n = scenario.topo.n_hosts
    if pattern == "incast":
        pairs = incast(n, fan_in, receiver=0)
    elif pattern == "permutation":
        pairs = permutation(n, seed=workload_seed, cross_tor_only=True,
                            hosts_per_t0=scenario.topo.hosts_per_t0)
    elif pattern == "tornado":
        pairs = tornado(n)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    recorder = _maybe_record(net, scenario)
    sampler = _maybe_sample_lb(net, scenario)
    for src, dst in pairs:
        net.add_flow(src, dst, msg_bytes)
    metrics = net.run(max_us=scenario.max_us)
    return ScenarioResult(metrics, recorder, net, sampler)


def run_trace(
    scenario: Scenario,
    *,
    load: float,
    duration_us: float,
    trace: str = "websearch",
    workload_seed: int = 2,
) -> ScenarioResult:
    """Replay a DC-trace workload at ``load`` for ``duration_us``."""
    net = scenario.network()
    host_gbps = (scenario.topo.host_link_gbps
                 or scenario.topo.link_gbps)
    flows = generate_trace_flows(
        n_hosts=scenario.topo.n_hosts, load=load,
        duration_us=duration_us, host_gbps=host_gbps,
        trace=trace, seed=workload_seed,
    )
    recorder = _maybe_record(net, scenario)
    sampler = _maybe_sample_lb(net, scenario)
    for f in flows:
        net.add_flow(f.src, f.dst, f.size_bytes, start_us=f.start_us)
    metrics = net.run(max_us=scenario.max_us)
    return ScenarioResult(metrics, recorder, net, sampler)


def run_collective(
    scenario: Scenario,
    kind: str,
    msg_bytes: int,
    *,
    n_parallel: int = 8,
) -> ScenarioResult:
    """Run an AI collective: ring/butterfly AllReduce or AllToAll(n)."""
    net = scenario.network()
    n = scenario.topo.n_hosts
    if kind == "ring_allreduce":
        coll = RingAllReduce(
            net, msg_bytes,
            order=spine_heavy_ring(n, scenario.topo.hosts_per_t0))
    elif kind == "butterfly_allreduce":
        coll = ButterflyAllReduce(net, msg_bytes)
    elif kind == "alltoall":
        coll = AllToAll(net, msg_bytes, n_parallel=n_parallel)
    else:
        raise ValueError(f"unknown collective {kind!r}")
    recorder = _maybe_record(net, scenario)
    sampler = _maybe_sample_lb(net, scenario)
    coll.install()
    metrics = net.run(max_us=scenario.max_us)
    result = ScenarioResult(metrics, recorder, net, sampler)
    result.collective = coll  # type: ignore[attr-defined]
    return result


def run_mixed_traffic(
    scenario: Scenario,
    pattern: str,
    msg_bytes: int,
    *,
    background_lb: str = "ecmp",
    background_fraction: float = 0.1,
    workload_seed: int = 2,
) -> Tuple[RunMetrics, RunMetrics]:
    """Fig. 6: main traffic under ``scenario.lb`` sharing the fabric with
    ECMP background flows.  Returns (main metrics, background metrics)."""
    net = scenario.network()
    n = scenario.topo.n_hosts
    if pattern == "permutation":
        pairs = permutation(n, seed=workload_seed, cross_tor_only=True,
                            hosts_per_t0=scenario.topo.hosts_per_t0)
    elif pattern == "tornado":
        pairs = tornado(n)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    n_bg = max(1, int(len(pairs) * background_fraction))
    for i, (src, dst) in enumerate(pairs):
        if i < n_bg:
            net.add_flow(src, dst, msg_bytes, lb=background_lb, tag="bg")
        else:
            net.add_flow(src, dst, msg_bytes, tag="main")
    net.run(max_us=scenario.max_us)
    return net.metrics(tag="main"), net.metrics(tag="bg")


# ----------------------------------------------------------------------
# failure hooks (Sec. 4.3.3 failure modes)
# ----------------------------------------------------------------------
def fail_cables_hook(indices: Sequence[int], at_us: float,
                     duration_us: Optional[float] = None) -> FailureHook:
    """Fail the i-th T0 uplink cables at ``at_us``."""
    def hook(net: Network) -> None:
        cables = net.tree.t0_uplink_cables()
        for i in indices:
            net.failures.fail_cable(
                cables[i % len(cables)],
                at_ps=int(at_us * 1e6),
                duration_ps=(int(duration_us * 1e6)
                             if duration_us is not None else None))
    return hook


def fail_cable_schedule_hook(
        events: Sequence[Sequence[float]]) -> FailureHook:
    """A timed schedule of T0-uplink failures.

    ``events`` is a sequence of ``(index, at_us, duration_us)`` triples
    (``duration_us`` ``None`` = permanent).  This is the declarative
    form of the Fig. 7 / Fig. 11b hand-written hooks: the whole schedule
    is plain data, so it pickles into pool workers and hashes into sweep
    content keys.
    """
    def hook(net: Network) -> None:
        cables = net.tree.t0_uplink_cables()
        for index, at_us, duration_us in events:
            net.failures.fail_cable(
                cables[int(index) % len(cables)],
                at_ps=int(at_us * 1e6),
                duration_ps=(int(duration_us * 1e6)
                             if duration_us is not None else None))
    return hook


def fail_tor_uplinks_hook(*, tor: int = 0, keep: int = 1,
                          at_us: float = 100.0,
                          stagger_us: float = 200.0) -> FailureHook:
    """Incrementally fail one ToR's uplinks (Fig. 22, Appendix C.3).

    All but ``keep`` of T0 ``tor``'s uplink cables die permanently, one
    every ``stagger_us`` starting at ``at_us``.
    """
    def hook(net: Network) -> None:
        t0_name = net.tree.t0s[tor % len(net.tree.t0s)].name
        uplinks = [c for c in net.tree.t0_uplink_cables()
                   if c.name.startswith(f"{t0_name}<->")]
        victims = uplinks[:-keep] if keep > 0 else uplinks
        for i, cable in enumerate(victims):
            net.failures.fail_cable(
                cable, at_ps=int((at_us + stagger_us * i) * 1e6))
    return hook


def force_freeze_hook(at_us: float) -> FailureHook:
    """Force every freeze-capable flow LB into freezing mode at
    ``at_us`` without any actual failure (Fig. 19, Appendix A)."""
    def hook(net: Network) -> None:
        at_ps = int(at_us * 1e6)

        def freeze() -> None:
            for rec in net.flows.values():
                lb = rec.sender.lb
                if hasattr(lb, "force_freeze"):
                    lb.force_freeze(at_ps)
        net.engine.at(at_ps, freeze)
    return hook


def fail_fraction_hook(fraction: float, at_us: float, *, seed: int = 0,
                       what: str = "cables") -> FailureHook:
    """Fail a random fraction of T0 uplink cables or T1 switches.

    Mirrors the paper's constraint (Sec. 4.3.3): failures never include a
    single point of failure that would make the workload uncompletable —
    one spine switch keeps all its cables, so every ToR pair stays
    connected.
    """
    import random as _random

    def hook(net: Network) -> None:
        rng = _random.Random(seed)
        at_ps = int(at_us * 1e6)
        if what == "cables":
            cables = net.tree.t0_uplink_cables()
            protected = rng.choice(net.tree.t1s).name
            pool = [c for c in cables if f"<->{protected}" not in c.name]
            k = max(1, min(len(pool), int(len(cables) * fraction)))
            for c in rng.sample(pool, k):
                net.failures.fail_cable(c, at_ps=at_ps)
        elif what == "switches":
            switches = net.tree.t1s
            k = max(1, min(len(switches) - 1,
                           int(round(len(switches) * fraction))))
            for s in rng.sample(switches, k):
                net.failures.fail_switch(s, at_ps=at_ps)
        else:
            raise ValueError(f"unknown failure target {what!r}")
    return hook


def degrade_cables_hook(indices: Sequence[int], gbps: float,
                        at_us: float = 0.0) -> FailureHook:
    """Downgrade T0 uplink cables (asymmetry, Sec. 4.3.2)."""
    def hook(net: Network) -> None:
        cables = net.tree.t0_uplink_cables()
        for i in indices:
            net.failures.degrade_cable(cables[i % len(cables)], gbps,
                                       at_ps=int(at_us * 1e6))
    return hook


def degrade_fraction_hook(fraction: float, gbps: float, *,
                          seed: int = 0) -> FailureHook:
    """Downgrade a random fraction of T0 uplinks (Fig. 5's 3%)."""
    import random as _random

    def hook(net: Network) -> None:
        rng = _random.Random(seed)
        cables = net.tree.t0_uplink_cables()
        k = max(1, int(round(len(cables) * fraction)))
        for c in rng.sample(cables, k):
            net.failures.degrade_cable(c, gbps, at_ps=0)
    return hook


def ber_hook(ber: float, *, what: str = "cables",
             seed: int = 0) -> FailureHook:
    """Random per-packet loss on one uplink cable or one T1 switch."""
    import random as _random

    def hook(net: Network) -> None:
        rng = _random.Random(seed)
        if what == "cables":
            cable = rng.choice(net.tree.t0_uplink_cables())
            net.failures.set_ber(cable, ber)
        else:
            switch = rng.choice(net.tree.t1s)
            net.failures.set_switch_ber(switch, ber)
    return hook


def run_lb_matrix(
    lbs: Sequence[str],
    make_scenario: Callable[[str], Scenario],
    run: Callable[[Scenario], ScenarioResult],
) -> Dict[str, ScenarioResult]:
    """Run the same experiment under each load balancer."""
    return {lb: run(make_scenario(lb)) for lb in lbs}


# ----------------------------------------------------------------------
# result probes
# ----------------------------------------------------------------------
# Named extractors that turn a finished :class:`ScenarioResult` into
# scalar metrics.  The "microscopic" figures read telemetry recorders,
# per-port counters, or per-flow LB state — none of which survive the
# sweep harness's JSON artifacts directly.  Probes run inside the task
# executor (so they work across a process pool) and their outputs travel
# in the artifact's ``extra`` section.

def probe_queue_telemetry(result: ScenarioResult) -> Dict[str, float]:
    """Fig. 2-style steady-state queue/utilization stats (needs a
    ``telemetry_bucket_us`` scenario setting)."""
    rec = result.recorder
    if rec is None:
        raise ValueError("queue_telemetry probe needs telemetry_bucket_us")
    kmin_kb = (result.network.tree.queue_capacity()
               * result.network.tree.params.kmin_fraction / 1024.0)
    return {
        "steady_queue_kb": rec.max_queue_kb(0.3, 0.9),
        "util_spread_gbps": rec.utilization_spread(),
        "kmin_kb": kmin_kb,
    }


def probe_uplink_share(result: ScenarioResult) -> Dict[str, float]:
    """Fig. 4: bytes the first (degraded) T0 uplink carried relative to
    the average of its siblings."""
    t0 = result.network.tree.t0s[0]
    slow = t0.up_ports[0]
    other = [p.stats.bytes_tx for p in t0.up_ports if p is not slow]
    avg = sum(other) / len(other) if other else 0.0
    share = slow.stats.bytes_tx / avg if avg else float("inf")
    return {"slow_uplink_share": share}


def probe_freeze_entries(result: ScenarioResult) -> Dict[str, float]:
    """Figs. 7/22: how often REPS senders entered freezing mode."""
    total = sum(getattr(rec.sender.lb, "stats_freeze_entries", 0)
                for rec in result.network.flows.values())
    return {"freeze_entries": float(total)}


# ----------------------------------------------------------------------
# windowed time-series probes (Fig. 2 trajectories, not endpoints)
# ----------------------------------------------------------------------
# These return *lists* — one sample per telemetry window — which the
# sweep layer persists in the artifact's ``series`` section (scalars
# keep riding ``extra``).  Every series probe also emits the shared
# window grid ``t_us`` so the curves are plottable without the
# recorder.  All of them need a ``telemetry_bucket_us`` scenario
# setting, exactly like ``queue_telemetry``.

def _series_recorder(result: ScenarioResult, probe: str) -> SeriesRecorder:
    rec = result.recorder
    if rec is None:
        raise ValueError(f"{probe} probe needs telemetry_bucket_us")
    return rec


def probe_goodput_series(result: ScenarioResult) -> Dict[str, object]:
    """Per-window aggregate goodput (Gbps) across the recorded T0
    uplinks — the Fig. 2 left axis, and the failure-recovery curve."""
    rec = _series_recorder(result, "goodput_series")
    names = list(rec.util_gbps)
    total = [sum(rec.util_gbps[p][i] for p in names)
             for i in range(len(rec.times_us))]
    return {"t_us": list(rec.times_us), "goodput_gbps": total}


def probe_queue_series(result: ScenarioResult) -> Dict[str, object]:
    """Per-window worst queue occupancy (KB) across the recorded T0
    uplinks — the Fig. 2 right axis."""
    rec = _series_recorder(result, "queue_series")
    worst = [max(rec.queue_kb[p][i] for p in rec.queue_kb)
             for i in range(len(rec.times_us))]
    return {"t_us": list(rec.times_us), "queue_kb": worst}


def probe_uplink_share_series(result: ScenarioResult) -> Dict[str, object]:
    """Per-window share of uplink traffic carried by the first T0
    uplink (the one failure schedules hit first).  A fair spray holds
    1/n; a dead or skewed-away-from link drops toward 0."""
    rec = _series_recorder(result, "uplink_share_series")
    first = result.network.tree.t0s[0].up_ports[0].name
    names = list(rec.util_gbps)
    shares = []
    for i in range(len(rec.times_us)):
        total = sum(rec.util_gbps[p][i] for p in names)
        shares.append(rec.util_gbps[first][i] / total if total > 0
                      else 0.0)
    return {"t_us": list(rec.times_us), "uplink_share": shares}


def probe_ev_recycle_series(result: ScenarioResult) -> Dict[str, object]:
    """Per-window EV-recycling hit rate: the fraction of transmitted
    EVs drawn from the recycle buffer (vs random exploration or frozen
    reuse).  Zero throughout for non-REPS senders."""
    sampler = result.lb_sampler
    if sampler is None:
        raise ValueError(
            "ev_recycle_series probe needs telemetry_bucket_us")
    prev = {c: 0.0 for c in sampler.COUNTERS}
    rates = []
    for i in range(len(sampler.times_us)):
        deltas = {c: sampler.totals[c][i] - prev[c]
                  for c in sampler.COUNTERS}
        prev = {c: sampler.totals[c][i] for c in sampler.COUNTERS}
        sends = sum(deltas.values())
        rates.append(deltas["stats_recycled"] / sends if sends > 0
                     else 0.0)
    return {"t_us": list(sampler.times_us), "ev_recycle_rate": rates}


#: probe name -> extractor; referenced by ``SweepTask.probes``
RESULT_PROBES: Dict[str, Callable[[ScenarioResult], Dict[str, object]]] = {
    "queue_telemetry": probe_queue_telemetry,
    "uplink_share": probe_uplink_share,
    "freeze_entries": probe_freeze_entries,
    "goodput_series": probe_goodput_series,
    "queue_series": probe_queue_series,
    "uplink_share_series": probe_uplink_share_series,
    "ev_recycle_series": probe_ev_recycle_series,
}
