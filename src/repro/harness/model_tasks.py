"""Analytical-model task runners for the sweep harness.

The paper's non-simulation figures (balls-into-bins traces, the EVS
imbalance model, trace flow-size CDFs, the Table-1 footprint) used to
run as ad-hoc loops inside their benchmarks.  Here each model is a named
runner so a :class:`~repro.harness.sweep.WorkloadSpec` of
``kind="model"`` executes through the same grid -> pool -> artifact
pipeline as the simulator figures: deterministic given ``(params,
seed)``, picklable, and returning plain scalar outputs that serialize
into the JSON store.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Mapping, Sequence

from ..core.footprint import compute_footprint
from ..core.reps import RepsConfig
from ..models.balls_bins import (
    BinsTrace,
    average_max_load_curve,
    batched_balls_into_bins,
)
from ..models.imbalance import load_imbalance
from ..models.recycled import RecycledParams, recycled_balls_into_bins
from ..workloads.traces import FACEBOOK_CDF, WEBSEARCH_CDF, sample_flow_size


def _trace_outputs(trace: BinsTrace, checkpoints: Sequence[int],
                   tail: int) -> Dict[str, float]:
    """Round checkpoints plus trailing-window stats of a bins trace."""
    out: Dict[str, float] = {}
    for c in checkpoints:
        out[f"round_{int(c)}"] = float(trace.max_load[int(c) - 1])
    window = trace.max_load[-int(tail):] if tail else trace.max_load
    if window:
        out["tail_avg"] = sum(window) / len(window)
        out["tail_peak"] = float(max(window))
    return out


def _run_imbalance(params: Mapping[str, object],
                   seed: int) -> Dict[str, float]:
    """Fig. 14: expected EV load imbalance at one (EVS, flows) point."""
    stats = load_imbalance(
        evs_size=1 << int(params["evs_exponent"]),
        n_uplinks=int(params.get("n_uplinks", 32)),
        n_flows=int(params.get("n_flows", 1)),
        repeats=int(params.get("repeats", 50)),
        seed=seed,
    )
    return {"average": stats.average,
            "p97_5": stats.p97_5}


def _run_balls_bins_curve(params: Mapping[str, object],
                          seed: int) -> Dict[str, float]:
    """Fig. 17: repeat-averaged max-load trajectory of the OPS model."""
    rounds = int(params.get("rounds", 1000))
    curve = average_max_load_curve(
        int(params["ports"]), rounds,
        lam=float(params.get("lam", 0.99)),
        repeats=int(params.get("repeats", 3)), seed=seed)
    return {f"round_{int(c)}": curve[int(c) - 1]
            for c in params.get("checkpoints", (100, 500, rounds))}


def _run_balls_bins_ops(params: Mapping[str, object],
                        seed: int) -> Dict[str, float]:
    """Figs. 18/20: one batched (oblivious) balls-into-bins run."""
    trace = batched_balls_into_bins(
        int(params["n_bins"]), int(params.get("rounds", 2000)),
        lam=float(params.get("lam", 1.0)), rng=random.Random(seed))
    return _trace_outputs(trace, params.get("checkpoints", ()),
                          int(params.get("tail", 100)))


def _run_recycled_bins(params: Mapping[str, object],
                       seed: int) -> Dict[str, float]:
    """Figs. 18/20: one recycled balls-into-bins run (Theorem 5.1)."""
    trace = recycled_balls_into_bins(
        RecycledParams(
            n_bins=int(params["n_bins"]),
            tau=int(params["tau"]) if "tau" in params else None,
            b=float(params["b"]) if "b" in params else None,
            coalesce=int(params.get("coalesce", 1)),
        ),
        int(params.get("rounds", 2000)), rng=random.Random(seed))
    out = _trace_outputs(trace, params.get("checkpoints", ()),
                         int(params.get("tail", 100)))
    out["remembered_fraction"] = trace.remembered_fraction[-1]
    return out


_TRACE_CDFS = {"websearch": WEBSEARCH_CDF, "facebook": FACEBOOK_CDF}


def _run_trace_quantiles(params: Mapping[str, object],
                         seed: int) -> Dict[str, float]:
    """Fig. 24: flow-size quantiles of one DC-trace distribution."""
    cdf_def = _TRACE_CDFS[str(params["trace"])]
    n = int(params.get("samples", 20_000))
    rng = random.Random(seed)
    sizes = sorted(sample_flow_size(cdf_def, rng) for _ in range(n))
    out = {}
    for pct in params.get("quantiles", (25, 50, 75, 90, 99)):
        out[f"p{int(pct)}"] = float(sizes[int(pct / 100 * (n - 1))])
    return out


def _run_footprint(params: Mapping[str, object],
                   seed: int) -> Dict[str, float]:
    """Table 1: per-connection state of one REPS configuration."""
    fp = compute_footprint(RepsConfig(
        buffer_size=int(params.get("buffer_size", 8)),
        evs_size=int(params.get("evs_size", 65536)),
        ev_lifespan=int(params.get("ev_lifespan", 1)),
    ))
    return {"total_bits": float(fp.total_bits),
            "total_bytes": float(fp.total_bytes)}


MODEL_RUNNERS: Dict[str, Callable[[Mapping[str, object], int],
                                  Dict[str, float]]] = {
    "imbalance": _run_imbalance,
    "balls_bins_curve": _run_balls_bins_curve,
    "balls_bins_ops": _run_balls_bins_ops,
    "recycled_bins": _run_recycled_bins,
    "trace_quantiles": _run_trace_quantiles,
    "footprint": _run_footprint,
}


def run_model(pattern: str, params: Mapping[str, object],
              seed: int) -> Dict[str, float]:
    """Execute one analytical-model task; returns its scalar outputs."""
    try:
        runner = MODEL_RUNNERS[pattern]
    except KeyError:
        raise ValueError(f"unknown model {pattern!r}; "
                         f"one of {sorted(MODEL_RUNNERS)}") from None
    return runner(params, seed)
