"""Terminal rendering of telemetry series (the examples' "figures").

The paper's microscopic figures (2, 4, 7, 19, 22) plot per-port
utilization and queue occupancy over time.  Without a plotting stack we
render the same series as sparklines and horizontal bars, which is all
the shape comparisons need.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], *,
              max_value: Optional[float] = None) -> str:
    """Render ``values`` as a fixed-height character strip.

    ``max_value`` pins the scale (e.g. the line rate) so multiple
    sparklines are comparable; defaults to the series maximum.
    """
    if not values:
        return ""
    top = max_value if max_value is not None else max(values)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    n = len(_SPARK_LEVELS) - 1
    out = []
    for v in values:
        idx = int(round(min(max(v, 0.0), top) / top * n))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def hbar(value: float, max_value: float, width: int = 40) -> str:
    """A horizontal bar of ``value`` against ``max_value``."""
    if max_value <= 0:
        return ""
    filled = int(round(min(max(value, 0.0), max_value)
                       / max_value * width))
    return "#" * filled + "." * (width - filled)

def bar_chart(items: Sequence[tuple], *, width: int = 40,
              unit: str = "") -> str:
    """Labeled horizontal bar chart of ``(label, value)`` pairs.

    The scale is the finite maximum across values; non-finite or
    missing values render as an empty bar marked ``n/a``.  This is the
    campaign report's "figure": enough to eyeball orderings and rough
    factors, which is all the paper-shape comparisons use.

    >>> print(bar_chart([("ops", 2.0), ("reps", 1.0)], width=4))
    ops   ####  2.00
    reps  ##..  1.00
    """
    if not items:
        return "(no data)"
    finite = [v for _, v in items
              if isinstance(v, (int, float)) and v == v
              and v not in (float("inf"), float("-inf"))]
    top = max(finite) if finite else 0.0
    label_w = max(len(str(label)) for label, _ in items)
    lines = []
    for label, value in items:
        if value in finite:
            bar = hbar(float(value), top, width) if top > 0 \
                else "." * width
            suffix = f"{value:,.2f}{unit}"
        else:
            bar, suffix = "." * width, "n/a"
        lines.append(f"{str(label):<{label_w}}  {bar}  {suffix}")
    return "\n".join(lines)


def render_port_series(
    times_us: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    max_value: Optional[float] = None,
    label: str = "Gbps",
) -> str:
    """Multi-port sparkline panel (one row per port), Fig-2 style.

    >>> panel = render_port_series([0, 20], {"p0": [100.0, 400.0]},
    ...                            max_value=400.0)
    >>> "p0" in panel and "@" in panel
    True
    """
    if not times_us:
        return "(no samples)"
    top = max_value
    if top is None:
        top = max((max(v) for v in series.values() if v), default=1.0)
    lines = [f"t = {times_us[0]:.0f}..{times_us[-1]:.0f} us, "
             f"full scale = {top:g} {label}"]
    width = max(len(name) for name in series)
    for name in sorted(series):
        lines.append(f"{name:<{width}}  "
                     f"{sparkline(series[name], max_value=top)}")
    return "\n".join(lines)
