"""Multi-seed experiment statistics.

The paper runs "each experiment multiple times to account for randomness
in the initial EVs" (Sec. 4.5.4).  :func:`repeat` runs a scenario
factory across seeds and aggregates any scalar metric with a mean and a
t-distribution confidence interval, so benches and users can report
seed-robust numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..sim.metrics import nearest_rank

#: two-sided 95% t-critical values for small sample sizes (df = n - 1)
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
        6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


@dataclass
class Aggregate:
    """Mean and spread of one metric over repeated runs."""

    samples: List[float]

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n if self.samples else float("nan")

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((x - m) ** 2 for x in self.samples)
                         / (self.n - 1))

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval of the mean."""
        if self.n < 2:
            return 0.0
        t = _T95.get(self.n - 1, 1.96)
        return t * self.stdev / math.sqrt(self.n)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100] of the samples."""
        return nearest_rank(self.samples, p)

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else float("nan")

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else float("nan")

    def __str__(self) -> str:
        return f"{self.mean:.2f} +- {self.ci95:.2f} (n={self.n})"


def repeat(run: Callable[[int], float],
           seeds: Sequence[int] = (1, 2, 3)) -> Aggregate:
    """Run ``run(seed)`` for each seed and aggregate the scalar results.

    >>> repeat(lambda seed: float(seed), seeds=(1, 2, 3)).mean
    2.0
    """
    if not seeds:
        raise ValueError("need at least one seed")
    return Aggregate([float(run(seed)) for seed in seeds])


def compare(run_a: Callable[[int], float], run_b: Callable[[int], float],
            seeds: Sequence[int] = (1, 2, 3)) -> dict:
    """Paired comparison of two scenario factories over shared seeds.

    Returns the two aggregates and the per-seed ratio aggregate
    (``a / b``), which is the seed-robust speedup estimate.
    """
    a = repeat(run_a, seeds)
    b = repeat(run_b, seeds)
    ratios = [x / y if y else float("inf")
              for x, y in zip(a.samples, b.samples)]
    return {"a": a, "b": b, "ratio": Aggregate(ratios)}
