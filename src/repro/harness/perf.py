"""Core perf micro-benchmarks and the ``perf.json`` trend gate.

The simulator's speed is tracked like its fidelity: a committed
``perf.json`` record sits beside ``campaign.json``, and ``repro perf
trend`` diffs a fresh capture against it.  Two kinds of scenario:

- **network** — full-stack packet runs (spray, incast + trimming, RTO
  under a cable failure): every layer of the hot path from
  ``Engine.run`` through ``EgressPort`` and the switches to the
  transport's ACK/EV handling.  Metric: simulated packets per second.
- **engine** — scheduler-only workloads (event chains, RTO-style timer
  rearm storms) that isolate the time-wheel and the recycled-shell
  :class:`~repro.sim.engine.Timer` from the packet pipeline.  Metric:
  driver units (events / simulated packets) per second.
- **store** — campaign-store workloads on a synthetic model campaign
  (populate, cold ``open``+``manifest()``, shard-style merge) that
  track the :class:`~repro.harness.store.ColumnarStore` v3 fast path.
  Metric: tasks per second; each record also carries informational
  v2-vs-v3 comparison fields (``open_speedup_vs_v2``,
  ``bytes_ratio``) measured in the same process — informational
  because segment size depends on the host's zlib, not just the
  simulator.

The gate has two tiers.  The *deterministic* fields of a scenario
(packet/event counts, completed flows, simulated time) are pure
simulation outputs — identical on any machine — so any drift there
means the simulator's behaviour changed and is reported as a hard
mismatch.  The *throughput* fields are wall-clock and machine-dependent,
so they get a relative tolerance band and are warn-only unless
``--strict``.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.engine import Engine, Timer
from ..sim.network import Network, NetworkConfig
from ..sim.topology import TopologyParams
from ..sim.units import us_to_ps
from .store import ColumnarStore
from .sweep import SCHEMA_VERSION, simulator_version

SCHEMA = "repro/perf/v1"

#: committed capture scale ("quick"); CI smoke runs use scale=1
QUICK_SCALE = 8

#: fields that must be identical between two records captured from the
#: same simulator (they are simulation outputs, not measurements)
DETERMINISTIC_FIELDS = ("pkts", "events", "flows_completed", "sim_time_us",
                        "units")
#: wall-clock fields: machine-dependent, tolerance-banded
THROUGHPUT_FIELDS = ("pkts_per_s", "events_per_s", "units_per_s")


# ----------------------------------------------------------------------
# network scenarios (full stack; metric = simulated packets / second)
# ----------------------------------------------------------------------
def _net_core_spray(scale: int) -> Network:
    topo = TopologyParams(n_hosts=16, hosts_per_t0=8, link_gbps=200.0)
    net = Network(NetworkConfig(topo=topo, lb="reps", seed=1))
    for s in range(16):
        net.add_flow(s, (s + 8) % 16, 256 * 1024 * scale)
    return net


def _net_incast_trim(scale: int) -> Network:
    topo = TopologyParams(n_hosts=16, hosts_per_t0=8, link_gbps=200.0,
                          trim_enabled=True)
    net = Network(NetworkConfig(topo=topo, lb="ops", seed=2,
                                ack_coalesce=4))
    for s in range(1, 16):
        net.add_flow(s, 0, 64 * 1024 * scale)
    return net


def _net_rto_failure(scale: int) -> Network:
    topo = TopologyParams(n_hosts=16, hosts_per_t0=8, link_gbps=200.0)
    net = Network(NetworkConfig(topo=topo, lb="reps", seed=3,
                                routing_update_delay_us=500.0))
    net.failures.fail_cable(net.tree.t0_uplink_cables()[0],
                            at_ps=us_to_ps(20.0))
    for s in range(16):
        net.add_flow(s, (s + 8) % 16, 128 * 1024 * scale)
    return net


def _run_network(builder: Callable[[int], Network], scale: int) -> dict:
    net = builder(scale)
    t0 = time.perf_counter()
    m = net.run(max_us=500_000.0)
    wall = time.perf_counter() - t0
    return {
        "kind": "network",
        "pkts": m.pkts_sent,
        "events": m.events,
        "flows_completed": m.flows_completed,
        "sim_time_us": m.sim_time_us,
        "wall_s": round(wall, 4),
        "pkts_per_s": round(m.pkts_sent / wall, 1),
        "events_per_s": round(m.events / wall, 1),
    }


# ----------------------------------------------------------------------
# engine scenarios (scheduler only; metric = driver units / second)
# ----------------------------------------------------------------------
def _run_event_chain(scale: int) -> dict:
    """64 staggered self-scheduling event chains: raw push/pop rate."""
    n_units = 37_500 * scale
    eng = Engine()
    remaining = [n_units]

    def hop() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            eng.at(eng.now + 81_920, hop)

    for i in range(64):
        eng.at(i * 1_280, hop)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    return {
        "kind": "engine",
        "events": eng.events_executed,
        "units": n_units,
        "wall_s": round(wall, 4),
        "units_per_s": round(n_units / wall, 1),
    }


def _run_timer_storm(scale: int) -> dict:
    """The Timer traffic a transport generates at line rate, isolated
    from the packet pipeline: per received data packet the receiver
    re-arms its delayed-ACK flush timer; every 4th packet flushes
    (cancel) and the returning ACK pushes the sender's RTO timer
    forward.  This is the load the recycled-shell Timer exists for —
    the seed implementation pushed a heap entry per rearm and drained
    every stale shell as a no-op event."""
    n_units = 25_000 * scale
    n_flows = 512
    eng = Engine()
    rto = [Timer(eng, lambda: None) for _ in range(n_flows)]
    flush = [Timer(eng, lambda: None) for _ in range(n_flows)]
    done = [0]

    def pkt_arrival(i: int) -> None:
        done[0] += 1
        f = i % n_flows
        if (i // n_flows) & 3 == 3:
            flush[f].cancel()                      # coalesced ACK sent
            rto[f].arm_at(eng.now + 500_000_000)   # ACK rearms sender RTO
        else:
            flush[f].arm_after(4_000_000)          # delayed-ACK rearm
        if done[0] < n_units:
            eng.at(eng.now + 1_600, pkt_arrival, i + 1)

    eng.at(0, pkt_arrival, 0)
    t0 = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - t0
    return {
        "kind": "engine",
        "events": eng.events_executed,
        "units": n_units,
        "wall_s": round(wall, 4),
        "units_per_s": round(n_units / wall, 1),
    }


# ----------------------------------------------------------------------
# store scenarios (campaign store; metric = tasks / second)
# ----------------------------------------------------------------------
#: tasks per unit of store-scenario scale (scale 8 -> 50k tasks, the
#: ISSUE's measurement point; CI smoke uses scale 1 -> 6250)
_STORE_TASKS_PER_SCALE = 6_250

#: put_many chunk size — matches a batched-backend campaign's store
#: write pattern (and the store's own compaction block size)
_STORE_CHUNK = 512


def _store_records(n: int) -> Tuple[List[Tuple[str, dict]],
                                    Dict[str, dict]]:
    """A deterministic synthetic model campaign of ``n`` artifacts.

    Shaped like the PR 5 benchmark's model campaign: a label matrix of
    figures x lb policies x workloads (the repeated strings the v3
    dictionary encoder targets), scalar metric results, and a
    time-series section on every 8th artifact (the lazy-decode path).
    Seeded ``random.Random`` keeps the bytes identical across runs, so
    ``units`` is gate-exact while sizes stay comparable run to run.
    """
    rng = random.Random(0x5EED5)
    lbs = ("reps", "reps_cc", "ops", "ecmp", "flowlet", "mprdma")
    workloads = ("tornado", "permutation", "incast", "mixed", "model")
    records: List[Tuple[str, dict]] = []
    stats: Dict[str, dict] = {}
    for i in range(n):
        lb = lbs[i % len(lbs)]
        wl = workloads[(i // len(lbs)) % len(workloads)]
        fig = f"fig{(i // 40) % 24:02d}"
        label = f"{fig}/{lb} {wl}/16384KiB 8h"
        seed = i % 10
        # the metrics block mirrors a real execute_task artifact: a
        # per-flow FCT list (ps-grid values, 5 exact decimals), full-
        # precision goodput floats, event/packet counters, and the
        # many usually-zero drop/retransmit counters
        n_flows = 8
        makespan = round(rng.uniform(300.0, 5000.0), 5)
        # flows in a synchronized pattern finish together: per-flow
        # FCTs sit within a few us of the makespan, per-flow goodputs
        # within ~1% of each other (the balanced-fabric case the
        # paper's load balancer exists to produce)
        fcts = sorted(round(makespan - rng.uniform(0.0, 4.0), 5)
                      for _ in range(n_flows))
        fcts[-1] = makespan
        goodput_base = rng.uniform(5.0, 380.0)
        goodputs = [goodput_base * rng.uniform(0.99, 1.01)
                    for _ in range(n_flows)]
        failure_run = (i % 16 == 5)
        payload: dict = {
            "schema": SCHEMA_VERSION,
            "sim": "perfbench0",
            "key": hashlib.sha256(f"short/{i}".encode()).hexdigest()[:24],
            "task": {"label": label, "seed": seed, "kind": "bench",
                     "lb": lb, "workload": wl, "mib": 16.0},
            "metrics": {
                "fct_us": fcts,
                "flows_total": n_flows,
                "flows_completed": n_flows,
                "makespan_us": makespan,
                "sim_time_us": makespan,
                "drops_overflow": rng.randrange(40) if failure_run else 0,
                "drops_link_down": rng.randrange(9) if failure_run else 0,
                "drops_ber": 0,
                "trims": rng.randrange(2000) if failure_run else 0,
                "ecn_marks": rng.randrange(5_000),
                "pkts_sent": rng.randrange(30_000, 2_000_000),
                "retransmissions": rng.randrange(30) if failure_run else 0,
                "timeouts": 0,
                "events": rng.randrange(400_000, 30_000_000),
                "max_fct_us": makespan,
                "avg_fct_us": round(sum(fcts) / n_flows, 5),
                "p50_fct_us": fcts[n_flows // 2],
                "p99_fct_us": makespan,
                "total_drops": 0,
                "goodput_gbps": goodputs,
                "avg_goodput_gbps": sum(goodputs) / n_flows,
            },
            "extra": {
                "steady_queue_kb": round(rng.uniform(0.0, 600.0), 1),
                "util_spread_gbps": rng.uniform(0.0, 90.0),
                "kmin_kb": round(rng.uniform(10.0, 100.0), 3),
            },
        }
        if i % 8 == 0:
            # windowed probes are *correlated* walks, not white noise
            # — goodput ramps, queues drain — which is what the v3
            # delta-varint array packing exploits
            g = rng.uniform(50.0, 350.0)
            q = rng.randrange(1 << 16)
            goodput, queue = [], []
            for _ in range(64):
                g = min(400.0, max(0.0, g + rng.uniform(-20.0, 20.0)))
                q = max(0, q + rng.randrange(-4096, 4096))
                goodput.append(round(g, 3))
                queue.append(q)
            payload["series"] = {
                "goodput_series": goodput,
                "queue_series": queue,
                "t_us": [50 * j for j in range(64)],
            }
        key = hashlib.sha256(
            f"perf-store/{label}/{seed}/{i}".encode()).hexdigest()
        records.append((key, payload))
        stats[key] = {"wall_s": round(rng.uniform(0.01, 2.0), 6),
                      "bytes": rng.randrange(200, 20_000)}
    return records, stats


def _store_populate(root: str, records, stats,
                    segment_format: int) -> float:
    """Write ``records`` chunked as a batched campaign would; returns
    the wall seconds spent."""
    t0 = time.perf_counter()
    st = ColumnarStore(root, segment_format=segment_format)
    for i in range(0, len(records), _STORE_CHUNK):
        chunk = records[i:i + _STORE_CHUNK]
        st.put_many(chunk,
                    stats={k: stats[k] for k, _ in chunk})
    return time.perf_counter() - t0


def _seg_bytes(root: str) -> int:
    return os.path.getsize(os.path.join(root, "store.seg"))


def _run_store_populate(scale: int) -> dict:
    """Chunked ``put_many`` of the synthetic campaign, v3 vs v2."""
    n = _STORE_TASKS_PER_SCALE * scale
    records, stats = _store_records(n)
    with tempfile.TemporaryDirectory(prefix="repro-perf-store-") as tmp:
        wall = _store_populate(os.path.join(tmp, "v3"), records, stats, 3)
        v2_wall = _store_populate(os.path.join(tmp, "v2"), records,
                                  stats, 2)
        nbytes = _seg_bytes(os.path.join(tmp, "v3"))
        v2_bytes = _seg_bytes(os.path.join(tmp, "v2"))
    return {
        "kind": "store",
        "units": n,
        "wall_s": round(wall, 4),
        "units_per_s": round(n / wall, 1),
        "v2_wall_s": round(v2_wall, 4),
        "bytes": nbytes,
        "v2_bytes": v2_bytes,
        "bytes_ratio": round(nbytes / v2_bytes, 4),
    }


def _run_store_cold_read(scale: int) -> dict:
    """Cold ``open`` + ``manifest()`` — the every-campaign-start cost
    the v3 meta-only frame scan exists for."""
    n = _STORE_TASKS_PER_SCALE * scale
    records, stats = _store_records(n)
    with tempfile.TemporaryDirectory(prefix="repro-perf-store-") as tmp:
        v3_root = os.path.join(tmp, "v3")
        v2_root = os.path.join(tmp, "v2")
        _store_populate(v3_root, records, stats, 3)
        _store_populate(v2_root, records, stats, 2)

        t0 = time.perf_counter()
        st = ColumnarStore(v3_root)
        manifest = st.manifest()
        wall = time.perf_counter() - t0
        assert len(manifest) == n

        t0 = time.perf_counter()
        st2 = ColumnarStore(v2_root)
        manifest2 = st2.manifest()
        v2_wall = time.perf_counter() - t0
        assert len(manifest2) == n
    return {
        "kind": "store",
        "units": n,
        "wall_s": round(wall, 4),
        "units_per_s": round(n / wall, 1),
        "v2_wall_s": round(v2_wall, 4),
        "open_speedup_vs_v2": round(v2_wall / wall, 2) if wall else 0.0,
    }


def _run_store_merge(scale: int) -> dict:
    """Two half-campaign shard stores folded into one (`shard merge`)."""
    n = _STORE_TASKS_PER_SCALE * scale
    records, stats = _store_records(n)
    half = n // 2
    with tempfile.TemporaryDirectory(prefix="repro-perf-store-") as tmp:
        a_root = os.path.join(tmp, "a")
        b_root = os.path.join(tmp, "b")
        _store_populate(a_root, records[:half], stats, 3)
        _store_populate(b_root, records[half:], stats, 3)
        t0 = time.perf_counter()
        dest = ColumnarStore(os.path.join(tmp, "merged"))
        dest.merge_from(ColumnarStore(a_root))
        dest.merge_from(ColumnarStore(b_root))
        wall = time.perf_counter() - t0
        assert len(dest.manifest()) == n
    return {
        "kind": "store",
        "units": n,
        "wall_s": round(wall, 4),
        "units_per_s": round(n / wall, 1),
    }


#: name -> runner(scale) for every perf scenario
SCENARIOS: Dict[str, Callable[[int], dict]] = {
    "core_spray": lambda scale: _run_network(_net_core_spray, scale),
    "incast_trim": lambda scale: _run_network(_net_incast_trim, scale),
    "rto_failure": lambda scale: _run_network(_net_rto_failure, scale),
    "engine_chain": _run_event_chain,
    "engine_timer_storm": _run_timer_storm,
    "store_populate": _run_store_populate,
    "store_cold_read": _run_store_cold_read,
    "store_merge": _run_store_merge,
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def run_scenario(name: str, scale: int = QUICK_SCALE,
                 repeats: int = 3) -> dict:
    """Run one scenario ``repeats`` times; keep the fastest wall."""
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown perf scenario {name!r}; "
                       f"known: {scenario_names()}") from None
    best: Optional[dict] = None
    for _ in range(max(1, repeats)):
        rec = runner(scale)
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    assert best is not None
    return best


def run_perf(scale: int = QUICK_SCALE, repeats: int = 3,
             names: Optional[List[str]] = None) -> dict:
    """Capture a full perf record for the current simulator."""
    record = {
        "schema": SCHEMA,
        "sim": simulator_version(),
        "scale": scale,
        "repeats": repeats,
        "scenarios": {},
    }
    for name in (names or scenario_names()):
        record["scenarios"][name] = run_scenario(name, scale, repeats)
    return record


def load_record(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: not a {SCHEMA} record")
    return doc


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
@dataclass
class PerfDiff:
    """Outcome of diffing a fresh capture against the committed record."""

    mismatches: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.mismatches and not self.regressions


def diff_perf(old: dict, new: dict, tol: float = 0.25) -> PerfDiff:
    """Compare two perf records.

    Deterministic counters must match exactly (same simulator in, same
    simulation out); throughputs may drift by ``tol`` relative before
    counting as a regression.
    """
    diff = PerfDiff()
    if old.get("scale") != new.get("scale"):
        diff.notes.append(
            f"scale differs (old={old.get('scale')} "
            f"new={new.get('scale')}): deterministic counters not "
            f"comparable, gating throughput only")
    old_sc = old.get("scenarios", {})
    new_sc = new.get("scenarios", {})
    for name in old_sc:
        if name not in new_sc:
            diff.mismatches.append(f"{name}: missing from new record")
            continue
        o, n = old_sc[name], new_sc[name]
        if old.get("scale") == new.get("scale"):
            for key in DETERMINISTIC_FIELDS:
                if key in o and o.get(key) != n.get(key):
                    diff.mismatches.append(
                        f"{name}.{key}: {o.get(key)} -> {n.get(key)} "
                        f"(deterministic field; simulator behaviour "
                        f"changed)")
        for key in THROUGHPUT_FIELDS:
            if key not in o or key not in n:
                continue
            ov, nv = float(o[key]), float(n[key])
            if ov <= 0:
                continue
            rel = (nv - ov) / ov
            line = f"{name}.{key}: {ov:,.0f} -> {nv:,.0f} ({rel:+.1%})"
            if rel < -tol:
                diff.regressions.append(line)
            elif rel > tol:
                diff.improvements.append(line)
    for name in new_sc:
        if name not in old_sc:
            diff.notes.append(f"{name}: new scenario (no baseline)")
    return diff


def render_record(record: dict) -> str:
    lines = [f"perf record (sim {record.get('sim', '?')}, "
             f"scale {record.get('scale', '?')}, best of "
             f"{record.get('repeats', '?')})"]
    for name, sc in record.get("scenarios", {}).items():
        if sc.get("kind") == "network":
            lines.append(
                f"  {name:<20} {sc['pkts_per_s']:>12,.0f} pkts/s "
                f"{sc['events_per_s']:>14,.0f} ev/s "
                f"(wall {sc['wall_s']:.3f}s)")
        elif sc.get("kind") == "store":
            extra = ""
            if "open_speedup_vs_v2" in sc:
                extra += f", x{sc['open_speedup_vs_v2']:.2f} vs v2"
            if "bytes_ratio" in sc:
                extra += (f", {sc['bytes_ratio']:.2f}x v2 size "
                          f"({sc['bytes']:,}B)")
            lines.append(
                f"  {name:<20} {sc['units_per_s']:>12,.0f} tasks/s "
                f"(wall {sc['wall_s']:.3f}s{extra})")
        else:
            lines.append(
                f"  {name:<20} {sc['units_per_s']:>12,.0f} units/s "
                f"({sc['events']:,} events, wall {sc['wall_s']:.3f}s)")
    baseline = record.get("baseline")
    if baseline:
        lines.append(f"  baseline: {baseline.get('ref', 'unnamed')}")
        for name, sp in (record.get("speedup") or {}).items():
            lines.append(f"    {name:<18} x{sp:.2f} vs baseline")
    return "\n".join(lines)


def render_diff(diff: PerfDiff, tol: float) -> str:
    lines = []
    for line in diff.mismatches:
        lines.append(f"[MISMATCH] {line}")
    for line in diff.regressions:
        lines.append(f"[SLOWER]   {line} (tol {tol:.0%})")
    for line in diff.improvements:
        lines.append(f"[FASTER]   {line}")
    for line in diff.notes:
        lines.append(f"[NOTE]     {line}")
    if diff.clean:
        lines.append(f"perf trend: clean "
                     f"(throughput within {tol:.0%}, counters exact)")
    return "\n".join(lines)
