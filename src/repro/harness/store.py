"""Columnar campaign store (ResultStore v2): one segment file per store.

The JSON :class:`~repro.harness.sweep.ResultStore` pays one file open,
parse and manifest merge per artifact — fine for a figure, painful for
a campaign of hundreds (or a shard sweep of thousands) of tasks.  This
module keeps the store *contract* (content-keyed ``get``/``put`` /
``put_many``/``merge_from``/``prune``/``manifest``) and replaces the
storage with a single append-only **segment file**:

- ``store.seg`` starts with an 8-byte file magic and is otherwise a
  sequence of self-describing **blocks**: a fixed frame header (magic,
  compressed length, CRC-32, record count) followed by a
  zlib-compressed block body.
- A block body holds a batch of artifacts split columnar-style: one
  JSON header (content keys, the non-numeric remainder of every
  payload, the column directory) plus **binary-packed numeric
  columns** — scalar columns as tagged 8-byte ints/floats, array
  columns (time-series probes) as length-prefixed packed vectors with
  a per-element int/float bitmap.  The split is lossless: a decoded
  payload is canonically identical (``json.dumps(..., sort_keys=True)``)
  to what was stored.
- The **key index** is in-memory only, rebuilt by scanning the frame
  headers on open; a torn final block (crash mid-append) is detected
  by CRC and dropped, and the next append truncates the torn tail
  first, so the file self-heals without a repair tool.
- **Manifest entries ride the frames.**  Each record carries its index
  entry (label, seed, sim, origin, timestamp) inside the block header,
  so a put is *one* append — no per-put read-merge-write of
  ``manifest.json`` (the JSON store's O(n²) byte cost on long serial
  campaigns).  ``manifest.json`` still exists for browsing and
  cross-format tooling, but as a *derived* artifact: it is
  materialized by :meth:`~repro.harness.sweep.ResultStore.
  repair_manifest` (campaign runs call it on finish), by ``compact``
  and by ``prune``, and :meth:`ColumnarStore.manifest` always prefers
  the frame-carried entries.

Invariants carried over from the JSON store:

- **Equal key ⟺ identical payload.**  Appends never need to compare
  contents; ``merge_from`` skips present keys and folds everything new
  in as *one* appended block — shard merging is an append, not N file
  copies.  Duplicate records (e.g. a ``--fresh`` re-run) are legal;
  the index resolves to the newest, and :meth:`ColumnarStore.compact`
  drops the shadowed ones.
- **Read-compat.**  A v2 store opened on a legacy directory serves the
  existing ``<key>.json`` artifacts transparently (reads fall back,
  ``keys()`` is the union); :meth:`ColumnarStore.compact` absorbs them
  into the segment file and deletes the originals.
- **manifest.json is unchanged** — same entry layout, same
  read-merge-write and read-repair semantics — so shard origins,
  trend tooling and store browsing work identically on both formats.

Concurrency: writes are appended under a process-local lock with
``O_APPEND``, so the campaign runner's figure threads share one store
safely.  Two *processes* appending to one segment file converge the
same way two JSON campaigns do (content keys make double-execution
harmless), but may leave shadowed duplicates — run ``repro store
compact`` afterwards.

``repro store compact | inspect | verify`` exposes the maintenance
surface; :func:`open_store` is the policy switch (``REPRO_STORE=json``
forces the legacy format).
"""

from __future__ import annotations

import json
import math
import os
import struct
import threading
import time
import zlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .sweep import SCHEMA_VERSION, ResultStore, simulator_version

#: the store-format policy environment variable (see :func:`open_store`)
STORE_ENV = "REPRO_STORE"

#: 8-byte file magic; the trailing digit is the segment format version
FILE_MAGIC = b"REPSEG02"

#: per-block frame magic
BLOCK_MAGIC = b"BLK1"

#: frame header: magic, compressed length, CRC-32, record count
_FRAME = struct.Struct("<4sIII")

#: records per block when compaction rewrites the file
COMPACT_BLOCK_RECORDS = 512

#: decoded blocks kept resident per store instance (LRU): the key
#: index stays complete in memory, payloads re-load from disk on miss
BLOCK_CACHE_BLOCKS = 32

# scalar column tags (one byte per record)
_T_MISSING, _T_NULL, _T_INT, _T_FLOAT = 0, 1, 2, 3

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _scalar_tag(value) -> Optional[int]:
    """The column tag for a scalar, or ``None`` for "keep as JSON".

    Bools are ints in Python but not in the column format; non-finite
    floats stay JSON so both store formats spell them identically; and
    ints outside 64 bits cannot be packed.
    """
    if value is None:
        return _T_NULL
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return _T_INT if _I64_MIN <= value <= _I64_MAX else None
    if isinstance(value, float):
        return _T_FLOAT if math.isfinite(value) else None
    return None


def _json_copy(obj):
    """Deep copy for JSON-typed trees — hot-path cheap (the generic
    ``copy.deepcopy`` machinery costs ~5x more per cached read)."""
    if isinstance(obj, dict):
        return {k: _json_copy(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_json_copy(v) for v in obj]
    return obj


def _is_numeric_array(value) -> bool:
    """True for a non-empty list of packable ints/floats."""
    if not isinstance(value, list) or not value:
        return False
    for v in value:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return False
        if isinstance(v, int) and not _I64_MIN <= v <= _I64_MAX:
            return False
        if isinstance(v, float) and not math.isfinite(v):
            return False
    return True


def encode_block(records: Sequence[Tuple[str, dict]],
                 entries: Optional[Sequence[Optional[dict]]] = None
                 ) -> bytes:
    """One uncompressed block body for ``records`` (key/payload pairs).

    Layout: ``u32 header_len + header_json + packed_columns``.  The
    header carries the keys, the per-record JSON remainders, the
    per-record manifest ``entries`` (may be ``None``), and the column
    directory ``[section, name, kind]`` in deterministic (sorted)
    order; the packed tail holds the columns in that order.
    """
    keys: List[str] = []
    rests: List[dict] = []
    scalars: Dict[Tuple[str, str], Dict[int, object]] = {}
    arrays: Dict[Tuple[str, str], Dict[int, list]] = {}
    for idx, (key, payload) in enumerate(records):
        keys.append(key)
        rest: dict = {}
        for sect, val in payload.items():
            if not isinstance(val, dict):
                rest[sect] = val
                continue
            rsect = {}
            for name, v in val.items():
                if _scalar_tag(v) is not None:
                    scalars.setdefault((sect, name), {})[idx] = v
                elif _is_numeric_array(v):
                    arrays.setdefault((sect, name), {})[idx] = v
                else:
                    rsect[name] = v
            rest[sect] = rsect
        rests.append(rest)

    n = len(records)
    cols: List[List[str]] = []
    packed = bytearray()
    for sect, name in sorted(scalars):
        cols.append([sect, name, "s"])
        values = scalars[(sect, name)]
        tags = bytearray(n)
        buf = bytearray()
        for i in range(n):
            if i not in values:
                continue
            v = values[i]
            tags[i] = _scalar_tag(v)
            if tags[i] == _T_INT:
                buf += struct.pack("<q", v)
            elif tags[i] == _T_FLOAT:
                buf += struct.pack("<d", v)
        packed += tags + buf
    for sect, name in sorted(arrays):
        cols.append([sect, name, "a"])
        values = arrays[(sect, name)]
        tags = bytearray(n)
        buf = bytearray()
        for i in range(n):
            if i not in values:
                continue
            tags[i] = 1
            elems = values[i]
            buf += struct.pack("<I", len(elems))
            bitmap = bytearray((len(elems) + 7) // 8)
            for j, e in enumerate(elems):
                if isinstance(e, int):
                    bitmap[j // 8] |= 1 << (j % 8)
            buf += bitmap
            for e in elems:
                buf += struct.pack("<q" if isinstance(e, int) else "<d", e)
        packed += tags + buf

    doc = {"k": keys, "r": rests, "c": cols}
    if entries is not None and any(e is not None for e in entries):
        doc["m"] = list(entries)
    header = json.dumps(doc, separators=(",", ":")).encode()
    return struct.pack("<I", len(header)) + header + bytes(packed)


def decode_block(body: bytes
                 ) -> Tuple[List[Tuple[str, dict]],
                            List[Optional[dict]]]:
    """Invert :func:`encode_block`; every call returns fresh objects.

    Returns ``(records, entries)`` — the key/payload pairs and the
    parallel list of frame-carried manifest entries (``None`` where a
    record carried none).
    """
    (hlen,) = struct.unpack_from("<I", body, 0)
    header = json.loads(body[4:4 + hlen].decode())
    keys, rests, cols = header["k"], header["r"], header["c"]
    n = len(keys)
    off = 4 + hlen
    for sect, name, kind in cols:
        tags = body[off:off + n]
        off += n
        if kind == "s":
            for i in range(n):
                tag = tags[i]
                if tag == _T_MISSING:
                    continue
                if tag == _T_NULL:
                    v: object = None
                elif tag == _T_INT:
                    (v,) = struct.unpack_from("<q", body, off)
                    off += 8
                else:
                    (v,) = struct.unpack_from("<d", body, off)
                    off += 8
                rests[i][sect][name] = v
        else:
            for i in range(n):
                if not tags[i]:
                    continue
                (count,) = struct.unpack_from("<I", body, off)
                off += 4
                bitmap = body[off:off + (count + 7) // 8]
                off += len(bitmap)
                elems = []
                for j in range(count):
                    is_int = bitmap[j // 8] >> (j % 8) & 1
                    (e,) = struct.unpack_from("<q" if is_int else "<d",
                                              body, off)
                    off += 8
                    elems.append(e)
                rests[i][sect][name] = elems
    entries = header.get("m") or [None] * n
    return list(zip(keys, rests)), entries


def _frame_bytes(records: Sequence[Tuple[str, dict]],
                 entries: Optional[Sequence[Optional[dict]]] = None
                 ) -> bytes:
    body = encode_block(records, entries)
    comp = zlib.compress(body, 6)
    return _FRAME.pack(BLOCK_MAGIC, len(comp), zlib.crc32(comp),
                       len(records)) + comp


def _walk_frames(fh, start: int):
    """The one segment scanner: iterate events from ``start``.

    Yields, in file order:

    - ``("magic", offset)`` — a FILE_MAGIC marker.  Accepted anywhere,
      not just at offset 0: two processes racing the very first append
      can each prepend the magic, and treating it as an 8-byte skip
      makes that interleaving lossless instead of data-destroying.
    - ``("frame", offset, end, records, entries)`` — one complete,
      CRC-valid, decoded block spanning ``[offset, end)``.
    - ``("tail", offset, reason)`` — bytes from ``offset`` on are not
      a valid frame (torn write, corruption, not a segment file);
      scanning stops.
    - ``("eof", offset)`` — clean end of file.

    Both the reader (:meth:`ColumnarStore._refresh`) and the auditor
    (:meth:`ColumnarStore.verify`) consume this generator, so they can
    never disagree about what is readable.
    """
    pos = start
    fh.seek(pos)
    while True:
        head = fh.read(_FRAME.size)
        if not head:
            yield ("eof", pos)
            return
        if head[:len(FILE_MAGIC)] == FILE_MAGIC:
            yield ("magic", pos)
            pos += len(FILE_MAGIC)
            fh.seek(pos)
            continue
        if len(head) < _FRAME.size:
            yield ("tail", pos, "truncated frame header")
            return
        magic, comp_len, crc, _n_records = _FRAME.unpack(head)
        if magic != BLOCK_MAGIC:
            yield ("tail", pos, "bad frame magic")
            return
        comp = fh.read(comp_len)
        if len(comp) < comp_len:
            yield ("tail", pos, "truncated frame body")
            return
        if zlib.crc32(comp) != crc:
            yield ("tail", pos, "CRC mismatch")
            return
        try:
            records, entries = decode_block(zlib.decompress(comp))
        except (ValueError, KeyError, struct.error, zlib.error) as exc:
            yield ("tail", pos, f"undecodable block ({exc})")
            return
        end = pos + _FRAME.size + comp_len
        yield ("frame", pos, end, records, entries)
        pos = end


class ColumnarStore(ResultStore):
    """The v2 store: one segment file + in-memory index, JSON fallback.

    API-compatible with :class:`~repro.harness.sweep.ResultStore`;
    see the module docstring for the format and its invariants.
    """

    SEGMENT = "store.seg"

    def __init__(self, root: str, *, origin: Optional[str] = None,
                 fresh: bool = False) -> None:
        super().__init__(root, origin=origin, fresh=fresh)
        self._lock = threading.RLock()
        self._index: Dict[str, Tuple[int, int]] = {}  # key -> (off, slot)
        #: bounded LRU of decoded blocks — the index is complete, the
        #: payload cache is not (misses re-load the block from disk)
        self._blocks: "OrderedDict[int, List[Tuple[str, dict]]]" = \
            OrderedDict()
        self._entries: Dict[str, dict] = {}  # frame-carried manifest
        self._scanned = 0        # segment bytes validated and indexed
        self._records = 0        # raw record count incl. duplicates
        self._blocks_seen = 0    # frames indexed so far
        self._tail_dirty = False  # torn/garbage tail after _scanned

    # ------------------------------------------------------------------
    # segment scanning
    # ------------------------------------------------------------------
    def _segment_path(self) -> str:
        return os.path.join(self.root, self.SEGMENT)

    def _reset(self) -> None:
        self._index.clear()
        self._blocks.clear()
        self._entries.clear()
        self._scanned = 0
        self._records = 0
        self._blocks_seen = 0
        self._tail_dirty = False

    def _refresh(self) -> None:
        """Index any segment bytes appended since the last scan.

        Tolerant by construction: a frame that is short, fails its CRC
        or does not decode marks the tail dirty and stops the scan —
        everything before it stays served, and the next append
        truncates the torn tail away.
        """
        path = self._segment_path()
        try:
            size = os.path.getsize(path)
        except OSError:
            if self._scanned:
                self._reset()  # compacted away / removed externally
            return
        if size < self._scanned:
            self._reset()      # shrunk externally: rescan from scratch
        if size == self._scanned or self._tail_dirty:
            return
        with open(path, "rb") as fh:
            for event in _walk_frames(fh, self._scanned):
                if event[0] == "magic":
                    self._scanned = event[1] + len(FILE_MAGIC)
                elif event[0] == "frame":
                    _kind, offset, end, records, entries = event
                    self._cache_block(offset, records)
                    for slot, (key, _payload) in enumerate(records):
                        self._index[key] = (offset, slot)
                        if entries[slot] is not None:
                            self._entries[key] = entries[slot]
                    self._records += len(records)
                    self._blocks_seen += 1
                    self._scanned = end
                elif event[0] == "tail":
                    self._tail_dirty = True
                    return
                # "eof": loop ends

    def _cache_block(self, offset: int,
                     records: List[Tuple[str, dict]]) -> None:
        self._blocks[offset] = records
        self._blocks.move_to_end(offset)
        while len(self._blocks) > BLOCK_CACHE_BLOCKS:
            self._blocks.popitem(last=False)

    def _record(self, key: str, loc: Tuple[int, int]) -> Optional[dict]:
        offset, slot = loc
        records = self._blocks.get(offset)
        if records is None:
            try:
                with open(self._segment_path(), "rb") as fh:
                    fh.seek(offset)
                    head = fh.read(_FRAME.size)
                    magic, comp_len, crc, _n = _FRAME.unpack(head)
                    comp = fh.read(comp_len)
                records, _entries = decode_block(zlib.decompress(comp))
            except (OSError, ValueError, struct.error, zlib.error):
                return None
            self._cache_block(offset, records)
        else:
            self._blocks.move_to_end(offset)
        if slot >= len(records) or records[slot][0] != key:
            # stale index vs an externally rewritten file (compact in
            # another process): never serve some other key's payload
            # as a cache hit — a miss just re-executes the task
            return None
        return records[slot][1]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _read(self, key: str) -> Optional[dict]:
        with self._lock:
            self._refresh()
            loc = self._index.get(key)
            if loc is None:
                return super()._read(key)  # legacy JSON artifact
            payload = self._record(key, loc)
        if payload is None or payload.get("schema") != SCHEMA_VERSION:
            return None
        return _json_copy(payload)

    def _read_raw(self, key: str) -> Optional[dict]:
        """Like :meth:`_read` but without the schema filter — what
        compaction preserves (dropping stale artifacts is prune's
        decision, not compact's)."""
        with self._lock:
            self._refresh()
            loc = self._index.get(key)
            if loc is not None:
                payload = self._record(key, loc)
                if payload is not None:
                    return _json_copy(payload)
        try:
            with open(self._path(key)) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def keys(self) -> List[str]:
        with self._lock:
            self._refresh()
            segment = set(self._index)
        return sorted(segment | set(super().keys()))

    def _json_keys(self) -> List[str]:
        """Legacy ``<key>.json`` artifacts living beside the segment."""
        return super().keys()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _append_frame(self, records: Sequence[Tuple[str, dict]],
                      entries: Sequence[Optional[dict]]) -> None:
        """Append one block and register its records in the index."""
        frame = _frame_bytes(records, entries)
        path = self._segment_path()
        if self._tail_dirty:
            # the dirty flag may be stale two ways: another process
            # healed this same tail and appended valid frames, or
            # replaced the file entirely (compact can *grow* it, so
            # the size<scanned reset never fires and a resumed scan
            # lands mid-frame).  Either way, truncating on stale
            # state destroys committed artifacts — re-validate the
            # whole file from offset 0 first.
            self._reset()
            self._refresh()
        if self._tail_dirty:
            # genuinely torn: drop the garbage before appending over
            # it — all the way to offset 0 when even the file magic
            # never made it to disk (the append below re-creates it)
            with open(path, "r+b") as fh:
                fh.truncate(self._scanned)
            self._tail_dirty = False
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            data = frame
            if os.fstat(fd).st_size == 0:
                data = FILE_MAGIC + frame
            # loop on short writes (ENOSPC / RLIMIT_FSIZE can commit a
            # partial frame without raising): the index must never
            # report artifacts durable that are torn on disk
            view = memoryview(data)
            written = 0
            while written < len(view):
                n = os.write(fd, view[written:])
                if n <= 0:
                    raise OSError(
                        f"short write to {path} "
                        f"({written}/{len(view)} bytes)")
                written += n
            end = os.lseek(fd, 0, os.SEEK_CUR)
        finally:
            os.close(fd)
        offset = end - len(frame)
        cached = [(key, _json_copy(payload)) for key, payload in records]
        self._cache_block(offset, cached)
        for slot, (key, _payload) in enumerate(cached):
            self._index[key] = (offset, slot)
            if entries[slot] is not None:
                self._entries[key] = entries[slot]
        if offset == max(self._scanned, len(FILE_MAGIC)):
            self._scanned = end
            self._records += len(cached)
            self._blocks_seen += 1
        # else: another process appended in between; _refresh picks the
        # gap (and this frame again) up from _scanned — idempotent

    def put_many(self, items: Iterable[Tuple[str, dict]]) -> None:
        """Persist several artifacts as **one** segment append.

        The manifest entries travel inside the frame, so there is no
        per-call read-merge-write of ``manifest.json`` — the whole
        sweep costs O(batches) store I/O, and the on-disk index is
        materialized once by ``repair_manifest`` when a campaign
        finishes.
        """
        items = list(items)
        if not items:
            return
        with self._lock:
            os.makedirs(self.root, exist_ok=True)
            self._refresh()
            now = time.time()
            self._append_frame(
                items,
                [self._manifest_entry(payload, now)
                 for _key, payload in items])

    def merge_from(self, other: ResultStore) -> List[str]:
        """Fold ``other`` in as **one** appended block (vs one file
        copy per artifact in the JSON store).  Same semantics: present
        keys skip, stale schemas stay behind, manifest entries travel
        with their ``origin`` inside the frame."""
        other_manifest = other.manifest()
        merged: List[str] = []
        records: List[Tuple[str, dict]] = []
        entries: List[Optional[dict]] = []
        with self._lock:
            self._refresh()
            json_present = set(self._json_keys())
            for key in other.keys():
                if key in self._index or key in json_present:
                    continue
                payload = other._read(key)
                if payload is None:
                    continue
                records.append((key, payload))
                entries.append(other_manifest.get(key) or
                               other._manifest_entry(payload,
                                                     time.time()))
                merged.append(key)
            if records:
                os.makedirs(self.root, exist_ok=True)
                # chunked like compaction: one giant block would make
                # every later cold point-read decode the whole merge
                for lo in range(0, len(records), COMPACT_BLOCK_RECORDS):
                    hi = lo + COMPACT_BLOCK_RECORDS
                    self._append_frame(records[lo:hi], entries[lo:hi])
        return merged

    def manifest(self) -> Dict[str, dict]:
        """The campaign index, frame-carried entries first.

        Starts from whatever ``manifest.json`` says (legacy artifacts,
        cross-format tooling), overlays the entries riding the segment
        frames, synthesizes entries for artifacts that carry none, and
        drops entries whose artifact is gone — the same read-repair
        contract as the JSON store, just with the frames as the source
        of truth.
        """
        with self._lock:
            self._refresh()
            manifest = self._read_index()
            for key, entry in self._entries.items():
                manifest[key] = dict(entry)
            on_disk = self.keys()
            for key in on_disk:
                if key in manifest:
                    continue
                payload = self._read(key)
                if payload is not None:
                    manifest[key] = self._manifest_entry(
                        payload, time.time())
            for key in set(manifest) - set(on_disk):
                del manifest[key]
        return manifest

    # ------------------------------------------------------------------
    # maintenance: prune / compact / verify / stats
    # ------------------------------------------------------------------
    def prune(self, keep: Optional[Iterable[str]] = None) -> List[str]:
        """Same policy as the JSON store (keep-set, else stale schema /
        simulator hash); segment records are dropped by rewriting the
        file, legacy JSON artifacts by deletion.  Orphaned manifest
        entries are dropped either way."""
        keep_set = set(keep) if keep is not None else None
        with self._lock:
            self._refresh()
            removed = []
            for key in self.keys():
                if keep_set is not None:
                    stale = key not in keep_set
                else:
                    payload = self._read(key)
                    stale = payload is None or \
                        payload.get("sim") != simulator_version()
                if stale:
                    removed.append(key)
            for key in removed:
                if key not in self._index:
                    try:
                        os.remove(self._path(key))
                    except OSError:
                        pass
            if any(key in self._index for key in removed):
                self._rewrite(drop=set(removed))
            else:
                for key in removed:
                    self._index.pop(key, None)
                    self._entries.pop(key, None)
            orphaned = set(self._read_index()) - set(self.keys())
            if removed or orphaned:
                self._write_json(os.path.join(self.root, self.MANIFEST),
                                 self.manifest())
        return removed

    def compact(self) -> Dict[str, object]:
        """Rewrite the segment file: one record per live key, legacy
        JSON artifacts absorbed and deleted, shadowed duplicates
        dropped.  Returns before/after statistics."""
        with self._lock:
            self._refresh()
            before = self._stats_locked()
            rewrite = self._rewrite(drop=set())
            self._write_json(os.path.join(self.root, self.MANIFEST),
                             self.manifest())
            after = self._stats_locked()
        return {"before": before, "after": after,
                "records_written": rewrite["records"],
                "json_absorbed": rewrite["json_absorbed"]}

    def _rewrite(self, drop: set) -> Dict[str, object]:
        """Write a fresh segment holding every live key not in
        ``drop``; absorb and delete legacy JSON artifacts.  Caller
        holds the lock."""
        survivors = [key for key in self.keys() if key not in drop]
        absorbed = [key for key in self._json_keys()
                    if key not in drop and key not in self._index]
        entry_for = self.manifest()  # preserves shard origins
        os.makedirs(self.root, exist_ok=True)
        tmp = self._segment_path() + \
            f".{os.getpid()}.{threading.get_ident()}.tmp"
        written: set = set()
        with open(tmp, "wb") as fh:
            fh.write(FILE_MAGIC)
            batch: List[Tuple[str, dict]] = []
            entries: List[Optional[dict]] = []
            for key in survivors:
                payload = self._read_raw(key)
                if payload is None:
                    continue
                batch.append((key, payload))
                entries.append(entry_for.get(key))
                written.add(key)
                if len(batch) >= COMPACT_BLOCK_RECORDS:
                    fh.write(_frame_bytes(batch, entries))
                    batch, entries = [], []
            if batch:
                fh.write(_frame_bytes(batch, entries))
        os.replace(tmp, self._segment_path())
        # remove only the legacy JSON artifacts that are now in the
        # segment (absorbed or shadowed) or deliberately dropped — a
        # file that failed to *read* (EACCES, I/O error) was never
        # absorbed and must survive the rewrite
        for key in self._json_keys():
            if key not in written and key not in drop:
                continue
            try:
                os.remove(self._path(key))
            except OSError:
                pass
        self._reset()
        self._refresh()
        return {"records": len(written),
                "json_absorbed": len(set(absorbed) & written)}

    def verify(self) -> Dict[str, object]:
        """Scan the file from scratch and cross-check every record.

        Returns a report dict; ``ok`` is False on CRC failures, torn
        tails, undecodable blocks, or records whose embedded content
        key disagrees with their index key.
        """
        report: Dict[str, object] = {
            "blocks": 0, "records": 0, "unique_keys": 0,
            "duplicate_records": 0, "key_mismatches": [],
            "truncated_tail_bytes": 0, "legacy_json": 0, "errors": [],
        }
        seen: Dict[str, int] = {}
        path = self._segment_path()
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size:
            with open(path, "rb") as fh:
                # same scanner the reader uses: verify can never call
                # readable what _refresh would refuse, or vice versa
                for event in _walk_frames(fh, 0):
                    if event[0] == "frame":
                        _kind, _offset, _end, records, _entries = event
                        report["blocks"] += 1
                        for key, payload in records:
                            report["records"] += 1
                            seen[key] = seen.get(key, 0) + 1
                            embedded = payload.get("key")
                            if embedded is not None and embedded != key:
                                report["key_mismatches"].append(key)
                    elif event[0] == "tail":
                        _kind, offset, reason = event
                        report["truncated_tail_bytes"] = size - offset
                        if not reason.startswith("truncated"):
                            report["errors"].append(
                                f"{reason} at offset {offset}")
        for key in self._json_keys():
            report["legacy_json"] += 1
            try:
                with open(self._path(key)) as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                report["errors"].append(f"unreadable artifact {key}.json")
                continue
            embedded = payload.get("key")
            if embedded is not None and embedded != key:
                report["key_mismatches"].append(key)
        report["unique_keys"] = len(seen)
        report["duplicate_records"] = \
            sum(count - 1 for count in seen.values())
        report["ok"] = not (report["errors"] or report["key_mismatches"]
                            or report["truncated_tail_bytes"])
        return report

    def _stats_locked(self) -> Dict[str, object]:
        try:
            seg_bytes = os.path.getsize(self._segment_path())
        except OSError:
            seg_bytes = 0
        json_keys = self._json_keys()
        json_bytes = 0
        for key in json_keys:
            try:
                json_bytes += os.path.getsize(self._path(key))
            except OSError:
                pass
        return {
            "segment_bytes": seg_bytes,
            "json_bytes": json_bytes,
            "bytes": seg_bytes + json_bytes,
            "blocks": self._blocks_seen,
            # raw frame records, not unique index keys: the duplicate
            # surplus is the `repro store inspect` signal to compact
            "records": self._records,
            "duplicates": self._records - len(self._index),
            "legacy_json": len(json_keys),
            "keys": len(set(self._index) | set(json_keys)),
            # a torn/corrupt tail stops the scan, so the counts above
            # cover only the readable prefix — statistics must say so
            "tail_dirty": self._tail_dirty,
        }

    def stats(self) -> Dict[str, object]:
        """Browsable store statistics (``repro store inspect``)."""
        with self._lock:
            self._refresh()
            return self._stats_locked()


def open_store(root: str, *, origin: Optional[str] = None,
               fresh: bool = False) -> ResultStore:
    """The store for ``root`` under the current format policy.

    ``REPRO_STORE=json`` forces the legacy one-JSON-per-task format
    (e.g. to A/B against v2, or to produce a store for the migration
    path); anything else — the default — opens a :class:`ColumnarStore`,
    which reads legacy directories transparently and writes segments.
    """
    kind = os.environ.get(STORE_ENV, "").strip().lower()
    if kind in ("json", "v1"):
        return ResultStore(root, origin=origin, fresh=fresh)
    if kind in ("", "columnar", "v2"):
        return ColumnarStore(root, origin=origin, fresh=fresh)
    raise ValueError(
        f"{STORE_ENV} must be 'json' or 'columnar', got {kind!r}")
