"""Columnar campaign store (ResultStore v2/v3): one segment file per
store.

The JSON :class:`~repro.harness.sweep.ResultStore` pays one file open,
parse and manifest merge per artifact — fine for a figure, painful for
a campaign of hundreds (or a shard sweep of thousands) of tasks.  This
module keeps the store *contract* (content-keyed ``get``/``put`` /
``put_many``/``merge_from``/``prune``/``manifest``) and replaces the
storage with a single append-only **segment file**:

- ``store.seg`` starts with an 8-byte file magic and is otherwise a
  sequence of self-describing **blocks**.  Two frame formats coexist
  in one file and are always both readable; the store's
  ``segment_format`` only selects what *new* frames are written as.
- **v2 frames** (``BLK1``): a fixed header (magic, compressed length,
  CRC-32, record count) + one zlib-compressed body — a JSON header
  (content keys, the non-numeric remainder of every payload, the
  column directory) plus **binary-packed numeric columns** — scalar
  columns as tagged 8-byte ints/floats, array columns (time-series
  probes) as length-prefixed packed vectors with a per-element
  int/float bitmap.
- **v3 frames** (``BLK2``, the default): the same columns split into
  three *independently* zlib-compressed sections — **meta** (key
  refs, per-block string table, column directory, frame-carried
  manifest entries, section CRCs), **body** (JSON remainders + scalar
  + dictionary-string columns) and **array** (the time-series
  columns).  A cold open/``manifest()`` decompresses metas only; a
  ``get`` decodes meta+body; the array section is decoded lazily,
  only for records that actually carry arrays.  Repeated strings
  (figure labels, lb policy / workload names, ``sim``/``key``/
  ``origin``) are **dictionary-encoded** against a per-block sorted
  string table and stored once.  Both splits are lossless: a decoded
  payload is canonically identical (``json.dumps(...,
  sort_keys=True)``) to what was stored.
- Reads go through an **mmap view** of the segment (remapped when the
  file grows or is replaced), falling back to buffered preads on
  platforms without :mod:`mmap` or under ``REPRO_STORE_MMAP=0``.
- The **key index** is in-memory only, rebuilt by scanning the frame
  headers/metas on open; a torn final block (crash mid-append) is
  detected by CRC/length and dropped, and the next append truncates
  the torn tail first, so the file self-heals without a repair tool.
- **Manifest entries ride the frames.**  Each record carries its index
  entry (label, seed, sim, origin, timestamp) inside the block header,
  so a put is *one* append — no per-put read-merge-write of
  ``manifest.json`` (the JSON store's O(n²) byte cost on long serial
  campaigns).  ``manifest.json`` still exists for browsing and
  cross-format tooling, but as a *derived* artifact: it is
  materialized by :meth:`~repro.harness.sweep.ResultStore.
  repair_manifest` (campaign runs call it on finish), by ``compact``
  and by ``prune``, and :meth:`ColumnarStore.manifest` always prefers
  the frame-carried entries.

Invariants carried over from the JSON store:

- **Equal key ⟺ identical payload.**  Appends never need to compare
  contents; ``merge_from`` skips present keys and folds everything new
  in as *one* appended block — shard merging is an append, not N file
  copies.  Duplicate records (e.g. a ``--fresh`` re-run) are legal;
  the index resolves to the newest, and :meth:`ColumnarStore.compact`
  drops the shadowed ones.
- **Read-compat.**  A v2 store opened on a legacy directory serves the
  existing ``<key>.json`` artifacts transparently (reads fall back,
  ``keys()`` is the union); :meth:`ColumnarStore.compact` absorbs them
  into the segment file and deletes the originals.
- **manifest.json is unchanged** — same entry layout, same
  read-merge-write and read-repair semantics — so shard origins,
  trend tooling and store browsing work identically on both formats.

Concurrency: writes are appended under a process-local lock with
``O_APPEND``, so the campaign runner's figure threads share one store
safely.  Two *processes* appending to one segment file converge the
same way two JSON campaigns do (content keys make double-execution
harmless), but may leave shadowed duplicates — run ``repro store
compact`` afterwards.

``repro store compact | inspect | verify`` exposes the maintenance
surface; :func:`open_store` is the policy switch (``REPRO_STORE=json``
forces the legacy format).
"""

from __future__ import annotations

import base64
import binascii
import json
import math
import os
import struct
import threading
import time
import zlib

try:  # stdlib everywhere we run, but degrade to zlib-only if absent
    import lzma
except ImportError:  # pragma: no cover - platform without _lzma
    lzma = None  # type: ignore[assignment]
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # advisory append locking — POSIX only, gated (see _flock)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

try:  # zero-copy segment reads — gated (see _segment_view)
    import mmap
except ImportError:  # pragma: no cover - no-mmap platform
    mmap = None

from .sweep import SCHEMA_VERSION, ResultStore, simulator_version

#: the store-format policy environment variable (see :func:`open_store`)
STORE_ENV = "REPRO_STORE"

#: set to ``0``/``off`` to force buffered reads instead of mmap
MMAP_ENV = "REPRO_STORE_MMAP"

#: set to ``0``/``off`` to skip the advisory inter-process append lock
LOCK_ENV = "REPRO_STORE_LOCK"

#: 8-byte file magic; the trailing digit is the segment format version
FILE_MAGIC = b"REPSEG02"

#: file magic written by stores created at segment format 3
FILE_MAGIC_V3 = b"REPSEG03"

#: per-block frame magic (v2 frames)
BLOCK_MAGIC = b"BLK1"

#: per-block frame magic (v3 frames; may follow v2 frames in one file)
BLOCK_MAGIC_V3 = b"BLK2"

#: the segment format new blocks are written in by default
SEGMENT_FORMAT = 3

#: v2 frame header: magic, compressed length, CRC-32, record count
_FRAME = struct.Struct("<4sIII")

#: v3 frame header: magic, record count, meta length, meta CRC-32,
#: body length, array length (section CRCs and raw sizes ride the meta)
_FRAME3 = struct.Struct("<4sIIIII")

#: records per block when compaction rewrites the file
COMPACT_BLOCK_RECORDS = 512

#: decoded blocks kept resident per store instance (LRU): the key
#: index stays complete in memory, payloads re-load from disk on miss
BLOCK_CACHE_BLOCKS = 32

# scalar column tags (one byte per record)
_T_MISSING, _T_NULL, _T_INT, _T_FLOAT = 0, 1, 2, 3

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _scalar_tag(value) -> Optional[int]:
    """The column tag for a scalar, or ``None`` for "keep as JSON".

    Bools are ints in Python but not in the column format; non-finite
    floats stay JSON so both store formats spell them identically; and
    ints outside 64 bits cannot be packed.
    """
    if value is None:
        return _T_NULL
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return _T_INT if _I64_MIN <= value <= _I64_MAX else None
    if isinstance(value, float):
        return _T_FLOAT if math.isfinite(value) else None
    return None


def _json_copy(obj):
    """Deep copy for JSON-typed trees — hot-path cheap (the generic
    ``copy.deepcopy`` machinery costs ~5x more per cached read)."""
    if isinstance(obj, dict):
        return {k: _json_copy(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_json_copy(v) for v in obj]
    return obj


def _is_numeric_array(value) -> bool:
    """True for a non-empty list of packable ints/floats."""
    if not isinstance(value, list) or not value:
        return False
    for v in value:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            return False
        if isinstance(v, int) and not _I64_MIN <= v <= _I64_MAX:
            return False
        if isinstance(v, float) and not math.isfinite(v):
            return False
    return True


def encode_block(records: Sequence[Tuple[str, dict]],
                 entries: Optional[Sequence[Optional[dict]]] = None
                 ) -> bytes:
    """One uncompressed block body for ``records`` (key/payload pairs).

    Layout: ``u32 header_len + header_json + packed_columns``.  The
    header carries the keys, the per-record JSON remainders, the
    per-record manifest ``entries`` (may be ``None``), and the column
    directory ``[section, name, kind]`` in deterministic (sorted)
    order; the packed tail holds the columns in that order.
    """
    keys: List[str] = []
    rests: List[dict] = []
    scalars: Dict[Tuple[str, str], Dict[int, object]] = {}
    arrays: Dict[Tuple[str, str], Dict[int, list]] = {}
    for idx, (key, payload) in enumerate(records):
        keys.append(key)
        rest: dict = {}
        for sect, val in payload.items():
            if not isinstance(val, dict):
                rest[sect] = val
                continue
            rsect = {}
            for name, v in val.items():
                if _scalar_tag(v) is not None:
                    scalars.setdefault((sect, name), {})[idx] = v
                elif _is_numeric_array(v):
                    arrays.setdefault((sect, name), {})[idx] = v
                else:
                    rsect[name] = v
            rest[sect] = rsect
        rests.append(rest)

    n = len(records)
    cols: List[List[str]] = []
    packed = bytearray()
    for sect, name in sorted(scalars):
        cols.append([sect, name, "s"])
        values = scalars[(sect, name)]
        tags = bytearray(n)
        buf = bytearray()
        for i in range(n):
            if i not in values:
                continue
            v = values[i]
            tags[i] = _scalar_tag(v)
            if tags[i] == _T_INT:
                buf += struct.pack("<q", v)
            elif tags[i] == _T_FLOAT:
                buf += struct.pack("<d", v)
        packed += tags + buf
    for sect, name in sorted(arrays):
        cols.append([sect, name, "a"])
        values = arrays[(sect, name)]
        tags = bytearray(n)
        buf = bytearray()
        for i in range(n):
            if i not in values:
                continue
            tags[i] = 1
            elems = values[i]
            buf += struct.pack("<I", len(elems))
            bitmap = bytearray((len(elems) + 7) // 8)
            for j, e in enumerate(elems):
                if isinstance(e, int):
                    bitmap[j // 8] |= 1 << (j % 8)
            buf += bitmap
            for e in elems:
                buf += struct.pack("<q" if isinstance(e, int) else "<d", e)
        packed += tags + buf

    doc = {"k": keys, "r": rests, "c": cols}
    if entries is not None and any(e is not None for e in entries):
        doc["m"] = list(entries)
    header = json.dumps(doc, separators=(",", ":")).encode()
    return struct.pack("<I", len(header)) + header + bytes(packed)


def decode_block(body: bytes
                 ) -> Tuple[List[Tuple[str, dict]],
                            List[Optional[dict]]]:
    """Invert :func:`encode_block`; every call returns fresh objects.

    Returns ``(records, entries)`` — the key/payload pairs and the
    parallel list of frame-carried manifest entries (``None`` where a
    record carried none).
    """
    (hlen,) = struct.unpack_from("<I", body, 0)
    header = json.loads(body[4:4 + hlen].decode())
    keys, rests, cols = header["k"], header["r"], header["c"]
    n = len(keys)
    off = 4 + hlen
    for sect, name, kind in cols:
        tags = body[off:off + n]
        off += n
        if kind == "s":
            for i in range(n):
                tag = tags[i]
                if tag == _T_MISSING:
                    continue
                if tag == _T_NULL:
                    v: object = None
                elif tag == _T_INT:
                    (v,) = struct.unpack_from("<q", body, off)
                    off += 8
                else:
                    (v,) = struct.unpack_from("<d", body, off)
                    off += 8
                rests[i][sect][name] = v
        else:
            for i in range(n):
                if not tags[i]:
                    continue
                (count,) = struct.unpack_from("<I", body, off)
                off += 4
                bitmap = body[off:off + (count + 7) // 8]
                off += len(bitmap)
                elems = []
                for j in range(count):
                    is_int = bitmap[j // 8] >> (j % 8) & 1
                    (e,) = struct.unpack_from("<q" if is_int else "<d",
                                              body, off)
                    off += 8
                    elems.append(e)
                rests[i][sect][name] = elems
    entries = header.get("m") or [None] * n
    return list(zip(keys, rests)), entries


def _frame_bytes(records: Sequence[Tuple[str, dict]],
                 entries: Optional[Sequence[Optional[dict]]] = None
                 ) -> bytes:
    body = encode_block(records, entries)
    comp = zlib.compress(body, 6)
    return _FRAME.pack(BLOCK_MAGIC, len(comp), zlib.crc32(comp),
                       len(records)) + comp


# ----------------------------------------------------------------------
# v3 frames: dictionary-encoded strings, separately compressed sections
# ----------------------------------------------------------------------
# Sentinels for the string-table substitution inside JSON trees.  A
# string present in the block's table is replaced by the two-element
# list ``["\x00r", index]``; a *real* list whose first element is one
# of the sentinel strings is wrapped as ``["\x00e", ...]`` so the
# substitution stays lossless on adversarial payloads.
_REF = "\x00r"
_ESC = "\x00e"


def _dict_pack(obj, index: Dict[str, int]):
    if isinstance(obj, str):
        ref = index.get(obj)
        return obj if ref is None else [_REF, ref]
    if isinstance(obj, list):
        packed = [_dict_pack(v, index) for v in obj]
        if obj and isinstance(obj[0], str) and obj[0] in (_REF, _ESC):
            return [_ESC] + packed
        return packed
    if isinstance(obj, dict):
        return {k: _dict_pack(v, index) for k, v in obj.items()}
    return obj


def _dict_unpack(obj, table: List[str]):
    if isinstance(obj, list):
        if obj and obj[0] == _REF:
            return table[obj[1]]
        if obj and obj[0] == _ESC:
            return [_dict_unpack(v, table) for v in obj[1:]]
        return [_dict_unpack(v, table) for v in obj]
    if isinstance(obj, dict):
        return {k: _dict_unpack(v, table) for k, v in obj.items()}
    return obj


def _count_strings(obj, counts: Dict[str, int]) -> None:
    """Count every string *value* in a JSON tree (keys stay literal)."""
    if isinstance(obj, str):
        counts[obj] = counts.get(obj, 0) + 1
    elif isinstance(obj, list):
        for v in obj:
            _count_strings(v, counts)
    elif isinstance(obj, dict):
        for v in obj.values():
            _count_strings(v, counts)


def _col_order(col: Tuple[str, Optional[str]]):
    # ``None`` names (top-level payload fields) sort before nested ones
    return (col[0], col[1] is not None, col[1] or "")


def _col_key(sect: str, name: Optional[str], kind: str) -> str:
    return (sect if name is None else f"{sect}.{name}") + f"|{kind}"


def _set_field(payload: dict, sect: str, name: Optional[str],
               value) -> None:
    if name is None:
        payload[sect] = value
    else:
        payload[sect][name] = value


def _compress_v3(raw: bytes) -> bytes:
    """The smaller of zlib-9 and LZMA for one v3 section.

    The streams self-describe: ``zlib.compress`` output always leads
    with ``0x78`` (deflate, 32K window) and ``FORMAT_ALONE`` LZMA with
    its ``0x5d`` properties byte, so the reader dispatches on the
    first byte.  LZMA's large dictionary wins on the structured
    sections (string tables, manifest entries, varint columns); zlib
    keeps the mostly-incompressible array noise cheap to round-trip.
    """
    z = zlib.compress(raw, 9)
    if lzma is None:
        return z
    x = lzma.compress(raw, format=lzma.FORMAT_ALONE, preset=6)
    return x if len(x) < len(z) else z


def _decompress_v3(buf: bytes) -> bytes:
    if buf[:1] == b"\x5d":
        if lzma is None:  # pragma: no cover - see _compress_v3
            raise ValueError("LZMA-compressed section but no lzma module")
        return lzma.decompress(buf, format=lzma.FORMAT_ALONE)
    return zlib.decompress(buf)


# v3 scalar-column tag: a float stored exactly as a scaled decimal
# integer (scale byte + zigzag varint) — the common rounded-metric
# case packs in 2-5 bytes instead of an incompressible 8-byte double
_T_FSCALED = 4

#: largest decimal scale tried for exact float-as-scaled-int packing
_MAX_FSCALE = 6


def _uvarint(out: bytearray, v: int) -> None:
    """LEB128 append (unsigned)."""
    while v >= 0x80:
        out.append((v & 0x7F) | 0x80)
        v >>= 7
    out.append(v)


def _read_uvarint(buf, off: int) -> Tuple[int, int]:
    v = shift = 0
    while True:
        b = buf[off]
        off += 1
        v |= (b & 0x7F) << shift
        if not b & 0x80:
            return v, off
        shift += 7


def _zigzag(v: int) -> int:
    return (v << 1) if v >= 0 else ((-v << 1) - 1)


def _unzigzag(z: int) -> int:
    return (z >> 1) if not z & 1 else -((z + 1) >> 1)


def _float_scale(value: float) -> Optional[Tuple[int, int]]:
    """``(scale, scaled_int)`` when ``scaled_int / 10**scale`` round-
    trips to ``value`` exactly; ``None`` for full-precision floats.

    ``-0.0`` is excluded: it compares equal to the decoded ``0.0`` but
    serializes differently, and canonical-JSON byte-identity is the
    round-trip contract.
    """
    if value == 0.0 and math.copysign(1.0, value) < 0.0:
        return None
    for k in range(_MAX_FSCALE + 1):
        m = 10 ** k
        try:
            r = round(value * m)
        except (OverflowError, ValueError):  # pragma: no cover
            return None
        if r / m == value:
            return k, r
    return None


def _scale_floats(elems: Sequence[float]
                  ) -> Optional[Tuple[int, List[int]]]:
    """One common decimal scale for a whole float array, or ``None``."""
    if any(v == 0.0 and math.copysign(1.0, v) < 0.0 for v in elems):
        return None
    for k in range(_MAX_FSCALE + 1):
        m = 10 ** k
        scaled: List[int] = []
        for v in elems:
            try:
                r = round(v * m)
            except (OverflowError, ValueError):  # pragma: no cover
                return None
            if r / m != v:
                break
            scaled.append(r)
        else:
            return k, scaled
    return None


def _hex_key_blob(keys: Sequence[str]) -> Optional[Tuple[int, bytes]]:
    """``(hex_len, packed_bytes)`` when every key is the same-length
    lowercase-hex string (sha256 content keys), else ``None``.

    Hex keys are pure entropy — zlib cannot shrink them — so packing
    them binary halves their cost; the hexlify round-trip check makes
    the transform lossless (uppercase or odd-length keys fall back).
    """
    if not keys:
        return None
    klen = len(keys[0])
    if klen == 0 or klen % 2:
        return None
    parts = []
    for k in keys:
        if len(k) != klen:
            return None
        try:
            raw = binascii.unhexlify(k)
        except (binascii.Error, ValueError):
            return None
        if binascii.hexlify(raw).decode() != k:
            return None
        parts.append(raw)
    return klen, b"".join(parts)


def _meta_keys(n: int, meta: dict) -> List[str]:
    """The record keys of a v3 frame, from either key encoding."""
    if "kx" in meta:
        klen, blob64 = meta["kx"]
        raw = base64.b64decode(blob64.encode())
        half = klen // 2
        if half <= 0 or len(raw) != n * half:
            raise ValueError("key blob length disagrees with meta")
        return [binascii.hexlify(raw[i * half:(i + 1) * half]).decode()
                for i in range(n)]
    table = meta["t"]
    keys = [table[i] for i in meta["k"]]
    if len(keys) != n:
        raise ValueError("record count disagrees with meta")
    return keys


# per-value array encodings inside a v3 array column
_ARR_INT = 0      # delta + zigzag varints
_ARR_SCALED = 1   # scale byte, then delta + zigzag varints of scaled
_ARR_RAW = 2      # v2-style int/float bitmap + 8-byte values
_ARR_SPLIT = 3    # full-precision floats, byte-stream-split planes


def _pack_array_v3(buf: bytearray, elems: list) -> None:
    """Append one array value: deltas of ints (monotonic timestamps,
    correlated queue depths) and of exactly-scaled decimal floats
    (rounded metric series) varint-pack to a byte or two per element;
    anything else falls back to the v2 raw layout."""
    if all(isinstance(e, int) for e in elems):
        buf.append(_ARR_INT)
        _uvarint(buf, len(elems))
        prev = 0
        for e in elems:
            _uvarint(buf, _zigzag(e - prev))
            prev = e
        return
    if all(isinstance(e, float) for e in elems):
        scaled = _scale_floats(elems)
        if scaled is not None:
            k, ints = scaled
            buf.append(_ARR_SCALED)
            buf.append(k)
            _uvarint(buf, len(ints))
            prev = 0
            for e in ints:
                _uvarint(buf, _zigzag(e - prev))
                prev = e
            return
        # full-precision floats: split the packed doubles into byte
        # planes (all sign/exponent bytes together, then each
        # mantissa byte position) — correlated values share their
        # high bytes, turning them into zlib-friendly runs while the
        # noise bytes stay put (Parquet's BYTE_STREAM_SPLIT)
        buf.append(_ARR_SPLIT)
        _uvarint(buf, len(elems))
        packed = struct.pack(f"<{len(elems)}d", *elems)
        for plane in range(7, -1, -1):
            buf += packed[plane::8]
        return
    buf.append(_ARR_RAW)
    _uvarint(buf, len(elems))
    bitmap = bytearray((len(elems) + 7) // 8)
    for j, e in enumerate(elems):
        if isinstance(e, int):
            bitmap[j // 8] |= 1 << (j % 8)
    buf += bitmap
    for e in elems:
        buf += struct.pack("<q" if isinstance(e, int) else "<d", e)


def _unpack_array_v3(buf, off: int) -> Tuple[list, int]:
    """Inverse of :func:`_pack_array_v3`; returns ``(elems, offset)``."""
    kind = buf[off]
    off += 1
    if kind == _ARR_INT or kind == _ARR_SCALED:
        m = 1
        if kind == _ARR_SCALED:
            m = 10 ** buf[off]
            off += 1
        count, off = _read_uvarint(buf, off)
        elems: list = []
        prev = 0
        for _ in range(count):
            z, off = _read_uvarint(buf, off)
            prev += _unzigzag(z)
            elems.append(prev if kind == _ARR_INT else prev / m)
        return elems, off
    if kind == _ARR_SPLIT:
        count, off = _read_uvarint(buf, off)
        planes = bytes(buf[off:off + 8 * count])
        if len(planes) != 8 * count:
            raise ValueError("truncated byte-split float array")
        off += 8 * count
        raw = bytearray(8 * count)
        for j, plane in enumerate(range(7, -1, -1)):
            raw[plane::8] = planes[j * count:(j + 1) * count]
        return list(struct.unpack(f"<{count}d", bytes(raw))), off
    if kind != _ARR_RAW:
        raise ValueError(f"bad array encoding tag {kind}")
    count, off = _read_uvarint(buf, off)
    bitmap = buf[off:off + (count + 7) // 8]
    off += len(bitmap)
    elems = []
    for j in range(count):
        is_int = bitmap[j // 8] >> (j % 8) & 1
        (e,) = struct.unpack_from("<q" if is_int else "<d", buf, off)
        off += 8
        elems.append(e)
    return elems, off


def encode_frame_v3(records: Sequence[Tuple[str, dict]],
                    entries: Optional[Sequence[Optional[dict]]] = None
                    ) -> Tuple[bytes, Dict[str, object]]:
    """One complete v3 frame for ``records``; returns ``(frame, info)``.

    Layout: ``_FRAME3`` header + three independently zlib-compressed
    sections —

    - **meta**: the key refs, the per-block string table, the column
      directory, the frame-carried manifest entries, the array-bearing
      slot list and the body/array section CRCs.  Everything the index
      rebuild and ``manifest()`` need, and nothing else: a cold open
      decompresses *only* this section.
    - **body**: the packed JSON remainders plus the scalar (``s``) and
      dictionary-string (``d``) columns — what a ``get`` of a scalar
      payload decodes.
    - **array**: the numeric array columns (``a``, time-series
      probes), decoded lazily only when a requested record carries
      arrays.

    Strings are dictionary-encoded against a per-block sorted table:
    content keys, every ``d``-column value (figure labels, lb policy /
    workload strings, ``sim``/``key``/``origin`` fields) and any
    string repeated in the remainders or entries is stored once and
    referenced by integer.  ``info`` is the compression breakdown that
    feeds :meth:`ColumnarStore.stats`.
    """
    n = len(records)
    keys: List[str] = []
    rests: List[dict] = []
    scalars: Dict[Tuple[str, Optional[str]], Dict[int, object]] = {}
    strs: Dict[Tuple[str, Optional[str]], Dict[int, str]] = {}
    arrays: Dict[Tuple[str, Optional[str]], Dict[int, list]] = {}
    for idx, (key, payload) in enumerate(records):
        keys.append(key)
        rest: dict = {}
        for sect, val in payload.items():
            if isinstance(val, dict):
                rsect = {}
                for name, v in val.items():
                    if _scalar_tag(v) is not None:
                        scalars.setdefault((sect, name), {})[idx] = v
                    elif isinstance(v, str):
                        strs.setdefault((sect, name), {})[idx] = v
                    elif _is_numeric_array(v):
                        arrays.setdefault((sect, name), {})[idx] = v
                    else:
                        rsect[name] = v
                rest[sect] = rsect
            elif isinstance(val, str):
                strs.setdefault((sect, None), {})[idx] = val
            elif _scalar_tag(val) is not None:
                scalars.setdefault((sect, None), {})[idx] = val
            else:
                rest[sect] = val
        rests.append(rest)

    entry_list = list(entries) if entries is not None else [None] * n
    counts: Dict[str, int] = {}
    _count_strings(rests, counts)
    _count_strings([e for e in entry_list if e is not None], counts)
    # content keys are sha256 hex in practice — half-size as a packed
    # binary blob ("kx"), and kept out of the string table entirely;
    # arbitrary key strings fall back to table refs ("k")
    key_blob = _hex_key_blob(keys)
    table_set = set() if key_blob is not None else set(keys)
    for col in strs.values():
        table_set.update(col.values())
    table_set.update(s for s, c in counts.items() if c >= 2)
    table = sorted(table_set)
    index = {s: i for i, s in enumerate(table)}

    cols: List[List[object]] = []
    col_bytes: List[int] = []
    body = bytearray()
    rest_json = json.dumps(_dict_pack(rests, index),
                           separators=(",", ":")).encode()
    body += struct.pack("<I", len(rest_json)) + rest_json
    for sect, name in sorted(scalars, key=_col_order):
        cols.append([sect, name, "s"])
        values = scalars[(sect, name)]
        tags = bytearray(n)
        buf = bytearray()
        for i in range(n):
            if i not in values:
                continue
            v = values[i]
            tags[i] = _scalar_tag(v)
            if tags[i] == _T_INT:
                _uvarint(buf, _zigzag(v))
            elif tags[i] == _T_FLOAT:
                scaled = _float_scale(v)
                if scaled is not None:
                    tags[i] = _T_FSCALED
                    buf.append(scaled[0])
                    _uvarint(buf, _zigzag(scaled[1]))
                else:
                    buf += struct.pack("<d", v)
        col_bytes.append(n + len(buf))
        body += tags + buf
    for sect, name in sorted(strs, key=_col_order):
        cols.append([sect, name, "d"])
        values = strs[(sect, name)]
        tags = bytearray(n)
        buf = bytearray()
        for i in range(n):
            if i not in values:
                continue
            tags[i] = 1
            _uvarint(buf, index[values[i]])
        col_bytes.append(n + len(buf))
        body += tags + buf

    arr = bytearray()
    ab: set = set()
    for sect, name in sorted(arrays, key=_col_order):
        cols.append([sect, name, "a"])
        values = arrays[(sect, name)]
        ab.update(values)
        tags = bytearray(n)
        buf = bytearray()
        for i in range(n):
            if i not in values:
                continue
            tags[i] = 1
            _pack_array_v3(buf, values[i])
        col_bytes.append(n + len(buf))
        arr += tags + buf

    body_b, arr_b = bytes(body), bytes(arr)
    body_comp = _compress_v3(body_b)
    arr_comp = _compress_v3(arr_b) if arr_b else b""
    meta: Dict[str, object] = {
        "t": table, "c": cols,
        "cb": col_bytes, "ab": sorted(ab),
        "bc": zlib.crc32(body_comp), "ac": zlib.crc32(arr_comp),
        "bl": [len(body_b), len(arr_b)],
    }
    if key_blob is not None:
        meta["kx"] = [key_blob[0],
                      base64.b64encode(key_blob[1]).decode()]
    else:
        meta["k"] = [index[k] for k in keys]
    if any(e is not None for e in entry_list):
        meta["m"] = _dict_pack(entry_list, index)
    meta_comp = _compress_v3(
        json.dumps(meta, separators=(",", ":")).encode())
    frame = _FRAME3.pack(BLOCK_MAGIC_V3, n, len(meta_comp),
                         zlib.crc32(meta_comp), len(body_comp),
                         len(arr_comp)) + meta_comp + body_comp + arr_comp
    info = {
        "version": 3, "records": n, "meta_comp": len(meta_comp),
        "body_comp": len(body_comp), "array_comp": len(arr_comp),
        "body_raw": len(body_b), "array_raw": len(arr_b),
        "table": len(table),
        "cols": {_col_key(s, nm, k): b
                 for (s, nm, k), b in zip((tuple(c) for c in cols),
                                          col_bytes)},
    }
    return frame, info


def _decode_body_v3(n: int, meta: dict, body: bytes
                    ) -> Tuple[List[Tuple[str, dict]],
                               List[Optional[dict]]]:
    """Records (sans array columns) + entries from a decompressed body."""
    table = meta["t"]
    keys = _meta_keys(n, meta)
    (rlen,) = struct.unpack_from("<I", body, 0)
    rests = _dict_unpack(json.loads(body[4:4 + rlen].decode()), table)
    off = 4 + rlen
    for sect, name, kind in meta["c"]:
        if kind == "a":
            continue
        tags = body[off:off + n]
        off += n
        if kind == "s":
            for i in range(n):
                tag = tags[i]
                if tag == _T_MISSING:
                    continue
                if tag == _T_NULL:
                    v: object = None
                elif tag == _T_INT:
                    z, off = _read_uvarint(body, off)
                    v = _unzigzag(z)
                elif tag == _T_FSCALED:
                    m = 10 ** body[off]
                    z, off = _read_uvarint(body, off + 1)
                    v = _unzigzag(z) / m
                else:
                    (v,) = struct.unpack_from("<d", body, off)
                    off += 8
                _set_field(rests[i], sect, name, v)
        else:  # "d": refs into the block's string table
            for i in range(n):
                if not tags[i]:
                    continue
                ref, off = _read_uvarint(body, off)
                _set_field(rests[i], sect, name, table[ref])
    entries = _dict_unpack(meta["m"], table) if "m" in meta \
        else [None] * n
    return list(zip(keys, rests)), entries


def _decode_arrays_v3(n: int, acols: Sequence[Sequence[object]],
                      arr: bytes,
                      records: List[Tuple[str, dict]]) -> None:
    """Apply the array section's columns onto decoded ``records``."""
    off = 0
    for sect, name, _kind in acols:
        tags = arr[off:off + n]
        off += n
        for i in range(n):
            if not tags[i]:
                continue
            elems, off = _unpack_array_v3(arr, off)
            _set_field(records[i][1], sect, name, elems)


def decode_frame_v3(buf: bytes, offset: int = 0
                    ) -> Tuple[List[Tuple[str, dict]],
                               List[Optional[dict]]]:
    """Fully decode one v3 frame at ``offset`` (tests / audits)."""
    head = buf[offset:offset + _FRAME3.size]
    magic, n, mlen, mcrc, blen, alen = _FRAME3.unpack(head)
    if magic != BLOCK_MAGIC_V3:
        raise ValueError("not a v3 frame")
    pos = offset + _FRAME3.size
    meta_comp = buf[pos:pos + mlen]
    if zlib.crc32(meta_comp) != mcrc:
        raise ValueError("meta CRC mismatch")
    meta = json.loads(_decompress_v3(meta_comp).decode())
    body_comp = buf[pos + mlen:pos + mlen + blen]
    if zlib.crc32(body_comp) != meta["bc"]:
        raise ValueError("body CRC mismatch")
    records, entries = _decode_body_v3(n, meta, _decompress_v3(body_comp))
    if alen:
        arr_comp = buf[pos + mlen + blen:pos + mlen + blen + alen]
        if zlib.crc32(arr_comp) != meta["ac"]:
            raise ValueError("array CRC mismatch")
        acols = [c for c in meta["c"] if c[2] == "a"]
        _decode_arrays_v3(n, acols, _decompress_v3(arr_comp), records)
    return records, entries


_DECODE_ERRORS = (ValueError, KeyError, IndexError, TypeError,
                  struct.error, zlib.error) + \
    ((lzma.LZMAError,) if lzma is not None else ())


def _walk_frames(read, start: int, *, full: bool = True):
    """The one segment scanner: iterate events from ``start``.

    ``read(offset, n)`` returns up to ``n`` bytes at ``offset`` — an
    mmap slice or a buffered pread; the scanner never holds a file
    position.  Yields, in file order:

    - ``("magic", offset)`` — a file-magic marker (v2 or v3).
      Accepted anywhere, not just at offset 0: two lockless processes
      racing the very first append can each prepend the magic, and
      treating it as an 8-byte skip makes that interleaving lossless
      instead of data-destroying.
    - ``("frame", block)`` — one complete frame.  ``block`` is a dict:
      ``version`` (2 or 3), ``offset``/``end``, ``keys``, ``entries``,
      ``records`` (fully decoded payloads — always for v2; for v3 only
      when ``full``, else ``None``), ``errors`` (section CRC/decode
      failures, ``full`` mode only) and ``info`` (the stats
      breakdown).  With ``full=False`` a v3 frame costs **one meta
      decompression** — the body and array sections are never read;
      their presence is length-checked so torn tails still stop the
      scan.
    - ``("tail", offset, reason)`` — bytes from ``offset`` on are not
      a valid frame (torn write, corruption, not a segment file);
      scanning stops.
    - ``("eof", offset)`` — clean end of file.

    Both the reader (:meth:`ColumnarStore._refresh`) and the auditor
    (:meth:`ColumnarStore.verify`) consume this generator, so they can
    never disagree about what is readable.
    """
    pos = start
    while True:
        head = read(pos, _FRAME3.size)
        if not head:
            yield ("eof", pos)
            return
        if head[:len(FILE_MAGIC)] in (FILE_MAGIC, FILE_MAGIC_V3):
            yield ("magic", pos)
            pos += len(FILE_MAGIC)
            continue
        magic4 = head[:4]
        if magic4 == BLOCK_MAGIC:
            if len(head) < _FRAME.size:
                yield ("tail", pos, "truncated frame header")
                return
            _m, comp_len, crc, _n_records = \
                _FRAME.unpack(head[:_FRAME.size])
            comp = read(pos + _FRAME.size, comp_len)
            if len(comp) < comp_len:
                yield ("tail", pos, "truncated frame body")
                return
            if zlib.crc32(comp) != crc:
                yield ("tail", pos, "CRC mismatch")
                return
            try:
                records, entries = decode_block(zlib.decompress(comp))
            except _DECODE_ERRORS as exc:
                yield ("tail", pos, f"undecodable block ({exc})")
                return
            end = pos + _FRAME.size + comp_len
            yield ("frame", {
                "version": 2, "offset": pos, "end": end,
                "keys": [k for k, _p in records], "entries": entries,
                "records": records, "errors": [],
                "info": {"version": 2, "records": len(records),
                         "comp": comp_len}})
            pos = end
            continue
        if magic4 != BLOCK_MAGIC_V3:
            yield ("tail", pos, "bad frame magic")
            return
        if len(head) < _FRAME3.size:
            yield ("tail", pos, "truncated frame header")
            return
        _m, n, mlen, mcrc, blen, alen = _FRAME3.unpack(head)
        meta_comp = read(pos + _FRAME3.size, mlen)
        if len(meta_comp) < mlen:
            yield ("tail", pos, "truncated frame meta")
            return
        if zlib.crc32(meta_comp) != mcrc:
            yield ("tail", pos, "CRC mismatch")
            return
        try:
            meta = json.loads(_decompress_v3(meta_comp).decode())
            table = meta["t"]
            keys = _meta_keys(n, meta)
            entries = _dict_unpack(meta["m"], table) if "m" in meta \
                else [None] * n
        except _DECODE_ERRORS as exc:
            yield ("tail", pos, f"undecodable block meta ({exc})")
            return
        body_off = pos + _FRAME3.size + mlen
        end = body_off + blen + alen
        # the sections stay unread unless ``full`` — but a frame whose
        # bytes never fully reached the disk is still a torn tail
        if end > pos and len(read(end - 1, 1)) < 1:
            yield ("tail", pos, "truncated frame body")
            return
        raw = meta.get("bl") or [0, 0]
        blk: Dict[str, object] = {
            "version": 3, "offset": pos, "end": end,
            "keys": keys, "entries": entries, "records": None,
            "errors": [],
            "info": {"version": 3, "records": n, "meta_comp": mlen,
                     "body_comp": blen, "array_comp": alen,
                     "body_raw": raw[0], "array_raw": raw[1],
                     "table": len(table),
                     "cols": dict(zip(
                         (_col_key(*c) for c in meta.get("c", [])),
                         meta.get("cb", [])))},
        }
        if full:
            body_comp = read(body_off, blen)
            arr_comp = read(body_off + blen, alen)
            errors = blk["errors"]
            if zlib.crc32(body_comp) != meta.get("bc"):
                errors.append("body CRC mismatch")
            if alen and zlib.crc32(arr_comp) != meta.get("ac"):
                errors.append("array CRC mismatch")
            if not errors:
                try:
                    records, _e = _decode_body_v3(
                        n, meta, _decompress_v3(body_comp))
                    if alen:
                        acols = [c for c in meta["c"] if c[2] == "a"]
                        _decode_arrays_v3(n, acols,
                                          _decompress_v3(arr_comp),
                                          records)
                    blk["records"] = records
                except _DECODE_ERRORS as exc:
                    errors.append(f"undecodable block body ({exc})")
        yield ("frame", blk)
        pos = end


class ColumnarStore(ResultStore):
    """The v2 store: one segment file + in-memory index, JSON fallback.

    API-compatible with :class:`~repro.harness.sweep.ResultStore`;
    see the module docstring for the format and its invariants.
    """

    SEGMENT = "store.seg"

    def __init__(self, root: str, *, origin: Optional[str] = None,
                 fresh: bool = False,
                 segment_format: Optional[int] = None) -> None:
        super().__init__(root, origin=origin, fresh=fresh)
        fmt = SEGMENT_FORMAT if segment_format is None else segment_format
        if fmt not in (2, 3):
            raise ValueError(f"unknown segment format {fmt!r}")
        #: the format *new* frames are written in; both are always read
        self._format = fmt
        self._lock = threading.RLock()
        self._index: Dict[str, Tuple[int, int]] = {}  # key -> (off, slot)
        #: bounded LRU of decoded blocks — the index is complete, the
        #: payload cache is not (misses re-load the block from disk).
        #: Each value is ``(records, pending_array_slots, array_cols)``
        #: — ``pending_array_slots`` is the mutable set of slots whose
        #: array columns are still undecoded (v3 lazy reads), ``None``
        #: once applied or for blocks without arrays.
        self._blocks: "OrderedDict[int, tuple]" = OrderedDict()
        self._entries: Dict[str, dict] = {}  # frame-carried manifest
        self._scanned = 0        # segment bytes validated and indexed
        self._records = 0        # raw record count incl. duplicates
        self._blocks_seen = 0    # frames indexed so far
        self._tail_dirty = False  # torn/garbage tail after _scanned
        self._view = None        # mmap over the scanned segment
        self._view_len = 0
        # per-format/section/column accounting for stats() — folded
        # from frame headers during the scan, never from block decodes
        self._fmt_blocks = {2: 0, 3: 0}
        self._sections = dict.fromkeys(
            ("meta_comp", "body_comp", "array_comp", "body_raw",
             "array_raw", "v2_comp", "table_strings"), 0)
        self._col_bytes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # segment access: mmap view with buffered fallback
    # ------------------------------------------------------------------
    def _segment_path(self) -> str:
        return os.path.join(self.root, self.SEGMENT)

    def _file_magic(self) -> bytes:
        return FILE_MAGIC_V3 if self._format >= 3 else FILE_MAGIC

    def _drop_view(self) -> None:
        if self._view is not None:
            try:
                self._view.close()
            except (OSError, ValueError):  # pragma: no cover
                pass
        self._view = None
        self._view_len = 0

    def _segment_view(self, size: int):
        """An mmap over the segment's first ``size`` bytes, or ``None``.

        Remapped when the file grew (append) or the size changed under
        a replace (compact); ``REPRO_STORE_MMAP=0`` or a platform
        without :mod:`mmap` degrades to buffered pread — same bytes,
        one copy more per read.
        """
        if (mmap is None or size <= 0 or
                os.environ.get(MMAP_ENV, "").strip().lower()
                in ("0", "off", "no")):
            self._drop_view()
            return None
        if self._view is not None and self._view_len == size:
            return self._view
        self._drop_view()
        try:
            fd = os.open(self._segment_path(), os.O_RDONLY)
        except OSError:
            return None
        try:
            self._view = mmap.mmap(fd, size, access=mmap.ACCESS_READ)
            self._view_len = size
        except (OSError, ValueError):  # pragma: no cover - map failure
            self._view = None
            self._view_len = 0
        finally:
            os.close(fd)
        return self._view

    @contextmanager
    def _segment_reader(self):
        """Yield ``read(off, n)`` for the current segment, or ``None``.

        The mmap path slices the shared view (no file handle, no seek
        syscalls); the fallback opens the file for the duration and
        serves buffered preads.
        """
        try:
            size = os.path.getsize(self._segment_path())
        except OSError:
            size = 0
        view = self._segment_view(size) if size > 0 else None
        if view is not None:
            yield lambda off, n: view[off:off + n]
            return
        try:
            fh = open(self._segment_path(), "rb")
        except OSError:
            yield None
            return
        try:
            def read(off: int, n: int) -> bytes:
                fh.seek(off)
                return fh.read(n)
            yield read
        finally:
            fh.close()

    def _reset(self) -> None:
        self._index.clear()
        self._blocks.clear()
        self._entries.clear()
        self._scanned = 0
        self._records = 0
        self._blocks_seen = 0
        self._tail_dirty = False
        self._drop_view()
        self._fmt_blocks = {2: 0, 3: 0}
        for key in self._sections:
            self._sections[key] = 0
        self._col_bytes.clear()

    def _fold_info(self, info: Dict[str, object]) -> None:
        """Accumulate one frame's stats breakdown (scan or append)."""
        self._fmt_blocks[info["version"]] = \
            self._fmt_blocks.get(info["version"], 0) + 1
        if info["version"] == 3:
            s = self._sections
            for field in ("meta_comp", "body_comp", "array_comp",
                          "body_raw", "array_raw"):
                s[field] += info.get(field, 0)
            s["table_strings"] += info.get("table", 0)
            for ckey, nbytes in (info.get("cols") or {}).items():
                self._col_bytes[ckey] = \
                    self._col_bytes.get(ckey, 0) + nbytes
        else:
            self._sections["v2_comp"] += info.get("comp", 0)

    def _refresh(self) -> None:
        """Index any segment bytes appended since the last scan.

        Tolerant by construction: a frame that is short, fails its CRC
        or does not decode marks the tail dirty and stops the scan —
        everything before it stays served, and the next append
        truncates the torn tail away.
        """
        path = self._segment_path()
        try:
            size = os.path.getsize(path)
        except OSError:
            if self._scanned:
                self._reset()  # compacted away / removed externally
            return
        if size < self._scanned:
            self._reset()      # shrunk externally: rescan from scratch
        if size == self._scanned or self._tail_dirty:
            return
        with self._segment_reader() as read:
            if read is None:
                return
            for event in _walk_frames(read, self._scanned, full=False):
                if event[0] == "magic":
                    self._scanned = event[1] + len(FILE_MAGIC)
                elif event[0] == "frame":
                    blk = event[1]
                    if blk["version"] == 2:
                        # v2 scans decode anyway (the keys live in the
                        # block body) — keep the bytes we paid for
                        self._cache_block(blk["offset"],
                                          (blk["records"], None, ()))
                    entries = blk["entries"]
                    for slot, key in enumerate(blk["keys"]):
                        self._index[key] = (blk["offset"], slot)
                        if entries[slot] is not None:
                            self._entries[key] = entries[slot]
                    self._records += len(blk["keys"])
                    self._blocks_seen += 1
                    self._fold_info(blk["info"])
                    self._scanned = blk["end"]
                elif event[0] == "tail":
                    self._tail_dirty = True
                    return
                # "eof": loop ends

    def _cache_block(self, offset: int, entry: tuple) -> None:
        self._blocks[offset] = entry
        self._blocks.move_to_end(offset)
        while len(self._blocks) > BLOCK_CACHE_BLOCKS:
            self._blocks.popitem(last=False)

    def _load_block(self, offset: int) -> Optional[tuple]:
        """Decode the frame at ``offset`` for point reads.

        v2 frames decode fully; v3 frames decode meta+body only —
        ``(records, pending_array_slots, array_cols)`` — so a ``get``
        of a scalar payload never unpacks the time-series arrays.
        """
        with self._segment_reader() as read:
            if read is None:
                return None
            try:
                magic4 = read(offset, 4)
                if magic4 == BLOCK_MAGIC:
                    head = read(offset, _FRAME.size)
                    _m, comp_len, _crc, _n = _FRAME.unpack(head)
                    comp = read(offset + _FRAME.size, comp_len)
                    records, _e = decode_block(zlib.decompress(comp))
                    return (records, None, ())
                if magic4 == BLOCK_MAGIC_V3:
                    head = read(offset, _FRAME3.size)
                    _m, n, mlen, _mcrc, blen, _alen = \
                        _FRAME3.unpack(head)
                    meta = json.loads(_decompress_v3(
                        read(offset + _FRAME3.size, mlen)).decode())
                    body = _decompress_v3(
                        read(offset + _FRAME3.size + mlen, blen))
                    records, _e = _decode_body_v3(n, meta, body)
                    pending = set(meta.get("ab") or ())
                    acols = tuple(tuple(c) for c in meta["c"]
                                  if c[2] == "a")
                    return (records, pending or None, acols)
            except (OSError,) + _DECODE_ERRORS:
                return None
        return None

    def _apply_arrays(self, offset: int, records, pending: set,
                      acols) -> bool:
        """Decode the array section at ``offset`` into ``records``."""
        with self._segment_reader() as read:
            if read is None:
                return False
            try:
                head = read(offset, _FRAME3.size)
                _m, n, mlen, _mcrc, blen, alen = _FRAME3.unpack(head)
                arr = _decompress_v3(
                    read(offset + _FRAME3.size + mlen + blen, alen))
                _decode_arrays_v3(n, acols, arr, records)
            except (OSError,) + _DECODE_ERRORS:
                return False
        pending.clear()
        return True

    def _record(self, key: str, loc: Tuple[int, int]) -> Optional[dict]:
        offset, slot = loc
        entry = self._blocks.get(offset)
        if entry is None:
            entry = self._load_block(offset)
            if entry is None:
                return None
            self._cache_block(offset, entry)
        else:
            self._blocks.move_to_end(offset)
        records, pending, acols = entry
        if slot >= len(records) or records[slot][0] != key:
            # stale index vs an externally rewritten file (compact in
            # another process): never serve some other key's payload
            # as a cache hit — a miss just re-executes the task
            return None
        if pending and slot in pending:
            # this record carries time-series arrays and they are
            # still undecoded — pull in the array section now (once
            # per block; the cache entry is patched in place)
            if not self._apply_arrays(offset, records, pending, acols):
                return None
        return records[slot][1]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _read(self, key: str) -> Optional[dict]:
        with self._lock:
            self._refresh()
            loc = self._index.get(key)
            if loc is None:
                return super()._read(key)  # legacy JSON artifact
            payload = self._record(key, loc)
        if payload is None or payload.get("schema") != SCHEMA_VERSION:
            return None
        return _json_copy(payload)

    def _read_raw(self, key: str) -> Optional[dict]:
        """Like :meth:`_read` but without the schema filter — what
        compaction preserves (dropping stale artifacts is prune's
        decision, not compact's)."""
        with self._lock:
            self._refresh()
            loc = self._index.get(key)
            if loc is not None:
                payload = self._record(key, loc)
                if payload is not None:
                    return _json_copy(payload)
        try:
            with open(self._path(key)) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def keys(self) -> List[str]:
        with self._lock:
            self._refresh()
            segment = set(self._index)
        return sorted(segment | set(super().keys()))

    def _json_keys(self) -> List[str]:
        """Legacy ``<key>.json`` artifacts living beside the segment."""
        return super().keys()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _flock(self, fd: int) -> bool:
        """Take the advisory inter-process append lock, if available.

        Released implicitly when ``fd`` closes.  Returns False on
        platforms without :mod:`fcntl`, under ``REPRO_STORE_LOCK=0``,
        or if the lock call itself fails — appends then fall back to
        the documented lockless semantics (O_APPEND keeps each frame
        contiguous on Linux; concurrent writers may leave shadowed
        duplicates and must not race a tail heal).
        """
        if fcntl is None or os.environ.get(
                LOCK_ENV, "").strip().lower() in ("0", "off", "no"):
            return False
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            return True
        except OSError:  # pragma: no cover - e.g. locks unsupported fs
            return False

    def _encode_frame(self, records: Sequence[Tuple[str, dict]],
                      entries: Sequence[Optional[dict]]
                      ) -> Tuple[bytes, Dict[str, object]]:
        if self._format >= 3:
            return encode_frame_v3(records, entries)
        frame = _frame_bytes(records, entries)
        return frame, {"version": 2, "records": len(records),
                       "comp": len(frame) - _FRAME.size}

    def _append_frame(self, records: Sequence[Tuple[str, dict]],
                      entries: Sequence[Optional[dict]]) -> None:
        """Append one block and register its records in the index."""
        frame, info = self._encode_frame(records, entries)
        path = self._segment_path()
        fd = os.open(path, os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            # the advisory flock serializes whole appends (tail heal
            # included) across processes; without it two writers
            # converge the lockless way — shadowed duplicates, and a
            # heal racing an append can drop the other's frame
            self._flock(fd)
            if self._tail_dirty:
                # the dirty flag may be stale two ways: another
                # process healed this same tail and appended valid
                # frames, or replaced the file entirely (compact can
                # *grow* it, so the size<scanned reset never fires and
                # a resumed scan lands mid-frame).  Either way,
                # truncating on stale state destroys committed
                # artifacts — re-validate the whole file from offset 0
                # first, under the lock
                self._reset()
                self._refresh()
            if self._tail_dirty:
                # genuinely torn: drop the garbage before appending
                # over it — all the way to offset 0 when even the file
                # magic never made it to disk (the append below
                # re-creates it).  Unmap first: reads through a view
                # spanning truncated pages would fault
                self._drop_view()
                os.ftruncate(fd, self._scanned)
                self._tail_dirty = False
            data = frame
            if os.fstat(fd).st_size == 0:
                data = self._file_magic() + frame
            # loop on short writes (ENOSPC / RLIMIT_FSIZE can commit a
            # partial frame without raising): the index must never
            # report artifacts durable that are torn on disk
            view = memoryview(data)
            written = 0
            while written < len(view):
                n = os.write(fd, view[written:])
                if n <= 0:
                    raise OSError(
                        f"short write to {path} "
                        f"({written}/{len(view)} bytes)")
                written += n
            end = os.lseek(fd, 0, os.SEEK_CUR)
        finally:
            os.close(fd)
        offset = end - len(frame)
        cached = [(key, _json_copy(payload)) for key, payload in records]
        self._cache_block(offset, (cached, None, ()))
        for slot, (key, _payload) in enumerate(cached):
            self._index[key] = (offset, slot)
            if entries[slot] is not None:
                self._entries[key] = entries[slot]
        if offset == max(self._scanned, len(FILE_MAGIC)):
            self._scanned = end
            self._records += len(cached)
            self._blocks_seen += 1
            self._fold_info(info)
        # else: another process appended in between; _refresh picks the
        # gap (and this frame again) up from _scanned — idempotent

    def put_many(self, items: Iterable[Tuple[str, dict]], *,
                 stats: Optional[Dict[str, dict]] = None) -> None:
        """Persist several artifacts as **one** segment append.

        The manifest entries travel inside the frame, so there is no
        per-call read-merge-write of ``manifest.json`` — the whole
        sweep costs O(batches) store I/O, and the on-disk index is
        materialized once by ``repair_manifest`` when a campaign
        finishes.  ``stats`` (key → per-task accounting, see
        :meth:`~repro.harness.sweep.ResultStore.put_many`) rides the
        frame-carried entries, never the payloads.
        """
        items = list(items)
        if not items:
            return
        with self._lock:
            os.makedirs(self.root, exist_ok=True)
            self._refresh()
            now = time.time()
            self._append_frame(
                items,
                [self._manifest_entry(payload, now,
                                      (stats or {}).get(key))
                 for key, payload in items])

    def merge_from(self, other: ResultStore) -> List[str]:
        """Fold ``other`` in as **one** appended block (vs one file
        copy per artifact in the JSON store).  Same semantics: present
        keys skip, stale schemas stay behind, manifest entries travel
        with their ``origin`` inside the frame."""
        other_manifest = other.manifest()
        other_keys = other.keys()
        if isinstance(other, ColumnarStore):
            # stream the source in frame order, not sorted-key order:
            # content keys shuffle records across blocks, so sorted
            # point reads thrash the bounded block LRU and re-decode
            # each block once per *record* (the 50k merge scenario
            # measured ~17x slower that way); frame order decodes each
            # source block once.  Legacy JSON keys sort after the
            # segment (their location is per-file, order-free).
            with other._lock:
                locs = dict(other._index)
            other_keys = sorted(
                other_keys, key=lambda k: locs.get(k, (1 << 62, 0)))
        merged: List[str] = []
        records: List[Tuple[str, dict]] = []
        entries: List[Optional[dict]] = []
        with self._lock:
            self._refresh()
            json_present = set(self._json_keys())
            for key in other_keys:
                if key in self._index or key in json_present:
                    continue
                payload = other._read(key)
                if payload is None:
                    continue
                records.append((key, payload))
                entries.append(other_manifest.get(key) or
                               other._manifest_entry(payload,
                                                     time.time()))
                merged.append(key)
            if records:
                os.makedirs(self.root, exist_ok=True)
                # chunked like compaction: one giant block would make
                # every later cold point-read decode the whole merge
                for lo in range(0, len(records), COMPACT_BLOCK_RECORDS):
                    hi = lo + COMPACT_BLOCK_RECORDS
                    self._append_frame(records[lo:hi], entries[lo:hi])
        return merged

    def manifest(self) -> Dict[str, dict]:
        """The campaign index, frame-carried entries first.

        Starts from whatever ``manifest.json`` says (legacy artifacts,
        cross-format tooling), overlays the entries riding the segment
        frames, synthesizes entries for artifacts that carry none, and
        drops entries whose artifact is gone — the same read-repair
        contract as the JSON store, just with the frames as the source
        of truth.
        """
        with self._lock:
            self._refresh()
            manifest = self._read_index()
            for key, entry in self._entries.items():
                manifest[key] = dict(entry)
            on_disk = self.keys()
            for key in on_disk:
                if key in manifest:
                    continue
                payload = self._read(key)
                if payload is not None:
                    manifest[key] = self._manifest_entry(
                        payload, time.time())
            for key in set(manifest) - set(on_disk):
                del manifest[key]
        return manifest

    # ------------------------------------------------------------------
    # maintenance: prune / compact / verify / stats
    # ------------------------------------------------------------------
    def prune(self, keep: Optional[Iterable[str]] = None) -> List[str]:
        """Same policy as the JSON store (keep-set, else stale schema /
        simulator hash); segment records are dropped by rewriting the
        file, legacy JSON artifacts by deletion.  Orphaned manifest
        entries are dropped either way."""
        keep_set = set(keep) if keep is not None else None
        with self._lock:
            self._refresh()
            removed = []
            for key in self.keys():
                if keep_set is not None:
                    stale = key not in keep_set
                else:
                    payload = self._read(key)
                    stale = payload is None or \
                        payload.get("sim") != simulator_version()
                if stale:
                    removed.append(key)
            for key in removed:
                if key not in self._index:
                    try:
                        os.remove(self._path(key))
                    except OSError:
                        pass
            if any(key in self._index for key in removed):
                self._rewrite(drop=set(removed))
            else:
                for key in removed:
                    self._index.pop(key, None)
                    self._entries.pop(key, None)
            orphaned = set(self._read_index()) - set(self.keys())
            if removed or orphaned:
                self._write_json(os.path.join(self.root, self.MANIFEST),
                                 self.manifest())
        return removed

    def compact(self) -> Dict[str, object]:
        """Rewrite the segment file: one record per live key, legacy
        JSON artifacts absorbed and deleted, shadowed duplicates
        dropped.  Returns before/after statistics."""
        with self._lock:
            self._refresh()
            before = self._stats_locked()
            rewrite = self._rewrite(drop=set())
            self._write_json(os.path.join(self.root, self.MANIFEST),
                             self.manifest())
            after = self._stats_locked()
        return {"before": before, "after": after,
                "records_written": rewrite["records"],
                "json_absorbed": rewrite["json_absorbed"]}

    def _rewrite(self, drop: set) -> Dict[str, object]:
        """Write a fresh segment holding every live key not in
        ``drop``; absorb and delete legacy JSON artifacts.  Caller
        holds the lock."""
        survivors = [key for key in self.keys() if key not in drop]
        absorbed = [key for key in self._json_keys()
                    if key not in drop and key not in self._index]
        entry_for = self.manifest()  # preserves shard origins
        os.makedirs(self.root, exist_ok=True)
        tmp = self._segment_path() + \
            f".{os.getpid()}.{threading.get_ident()}.tmp"
        written: set = set()
        with open(tmp, "wb") as fh:
            # compaction rewrites in the store's *write* format — the
            # v2 → v3 migration path is one `repro store compact`
            fh.write(self._file_magic())
            batch: List[Tuple[str, dict]] = []
            entries: List[Optional[dict]] = []
            for key in survivors:
                payload = self._read_raw(key)
                if payload is None:
                    continue
                batch.append((key, payload))
                entries.append(entry_for.get(key))
                written.add(key)
                if len(batch) >= COMPACT_BLOCK_RECORDS:
                    fh.write(self._encode_frame(batch, entries)[0])
                    batch, entries = [], []
            if batch:
                fh.write(self._encode_frame(batch, entries)[0])
        self._drop_view()  # the view maps the file we just replaced
        os.replace(tmp, self._segment_path())
        # remove only the legacy JSON artifacts that are now in the
        # segment (absorbed or shadowed) or deliberately dropped — a
        # file that failed to *read* (EACCES, I/O error) was never
        # absorbed and must survive the rewrite
        for key in self._json_keys():
            if key not in written and key not in drop:
                continue
            try:
                os.remove(self._path(key))
            except OSError:
                pass
        self._reset()
        self._refresh()
        return {"records": len(written),
                "json_absorbed": len(set(absorbed) & written)}

    def verify(self) -> Dict[str, object]:
        """Scan the file from scratch and cross-check every record.

        Returns a report dict; ``ok`` is False on CRC failures, torn
        tails, undecodable blocks, or records whose embedded content
        key disagrees with their index key.
        """
        report: Dict[str, object] = {
            "blocks": 0, "records": 0, "unique_keys": 0,
            "duplicate_records": 0, "key_mismatches": [],
            "truncated_tail_bytes": 0, "legacy_json": 0, "errors": [],
        }
        seen: Dict[str, int] = {}
        path = self._segment_path()
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        if size:
            with open(path, "rb") as fh:
                def read(off: int, n: int) -> bytes:
                    fh.seek(off)
                    return fh.read(n)
                # same scanner the reader uses (full decode: every
                # section CRC-checked): verify can never call readable
                # what _refresh would refuse, or vice versa
                for event in _walk_frames(read, 0, full=True):
                    if event[0] == "frame":
                        blk = event[1]
                        report["blocks"] += 1
                        for err in blk["errors"]:
                            report["errors"].append(
                                f"{err} at offset {blk['offset']}")
                        records = blk["records"]
                        for slot, key in enumerate(blk["keys"]):
                            report["records"] += 1
                            seen[key] = seen.get(key, 0) + 1
                            if records is None:
                                continue
                            embedded = records[slot][1].get("key")
                            if embedded is not None and embedded != key:
                                report["key_mismatches"].append(key)
                    elif event[0] == "tail":
                        _kind, offset, reason = event
                        report["truncated_tail_bytes"] = size - offset
                        if not reason.startswith("truncated"):
                            report["errors"].append(
                                f"{reason} at offset {offset}")
        for key in self._json_keys():
            report["legacy_json"] += 1
            try:
                with open(self._path(key)) as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                report["errors"].append(f"unreadable artifact {key}.json")
                continue
            embedded = payload.get("key")
            if embedded is not None and embedded != key:
                report["key_mismatches"].append(key)
        report["unique_keys"] = len(seen)
        report["duplicate_records"] = \
            sum(count - 1 for count in seen.values())
        report["ok"] = not (report["errors"] or report["key_mismatches"]
                            or report["truncated_tail_bytes"])
        return report

    def _stats_locked(self) -> Dict[str, object]:
        try:
            seg_bytes = os.path.getsize(self._segment_path())
        except OSError:
            seg_bytes = 0
        json_keys = self._json_keys()
        json_bytes = 0
        for key in json_keys:
            try:
                json_bytes += os.path.getsize(self._path(key))
            except OSError:
                pass
        task_wall = 0.0
        task_bytes = 0
        timed = 0
        for entry in self._entries.values():
            wall = entry.get("wall_s")
            if isinstance(wall, (int, float)) and \
                    not isinstance(wall, bool):
                task_wall += float(wall)
                timed += 1
            nbytes = entry.get("bytes")
            if isinstance(nbytes, (int, float)) and \
                    not isinstance(nbytes, bool):
                task_bytes += int(nbytes)
        return {
            "segment_bytes": seg_bytes,
            "json_bytes": json_bytes,
            "bytes": seg_bytes + json_bytes,
            "blocks": self._blocks_seen,
            # raw frame records, not unique index keys: the duplicate
            # surplus is the `repro store inspect` signal to compact
            "records": self._records,
            "duplicates": self._records - len(self._index),
            "legacy_json": len(json_keys),
            "keys": len(set(self._index) | set(json_keys)),
            # a torn/corrupt tail stops the scan, so the counts above
            # cover only the readable prefix — statistics must say so
            "tail_dirty": self._tail_dirty,
            # header-only breakdown: every number below comes from the
            # frame headers/metas the scan already paid for — stats()
            # never decodes a block body through the LRU cache
            "format": {"v2_blocks": self._fmt_blocks.get(2, 0),
                       "v3_blocks": self._fmt_blocks.get(3, 0)},
            "sections": dict(self._sections),
            "columns": dict(self._col_bytes),
            # recorded task accounting riding the manifest entries
            "task_wall_s": round(task_wall, 6),
            "task_bytes": task_bytes,
            "tasks_timed": timed,
        }

    def stats(self) -> Dict[str, object]:
        """Browsable store statistics (``repro store inspect``).

        Cheap by construction on v3 segments: the refresh scan reads
        frame headers and metas only (no body decompression, nothing
        pushed through the block LRU), and the compression breakdown
        (``sections``/``columns``/``format``) is folded from the
        per-frame ``info`` the scanner already produced.
        """
        with self._lock:
            self._refresh()
            return self._stats_locked()


def open_store(root: str, *, origin: Optional[str] = None,
               fresh: bool = False) -> ResultStore:
    """The store for ``root`` under the current format policy.

    ``REPRO_STORE=json`` forces the legacy one-JSON-per-task format
    (e.g. to A/B against v2, or to produce a store for the migration
    path); anything else — the default — opens a :class:`ColumnarStore`,
    which reads legacy directories transparently and writes segments.
    """
    kind = os.environ.get(STORE_ENV, "").strip().lower()
    if kind in ("json", "v1"):
        return ResultStore(root, origin=origin, fresh=fresh)
    if kind in ("", "columnar", "v3"):
        return ColumnarStore(root, origin=origin, fresh=fresh)
    if kind == "v2":
        # pinned legacy segment format: reads everything, writes BLK1
        return ColumnarStore(root, origin=origin, fresh=fresh,
                             segment_format=2)
    raise ValueError(
        f"{STORE_ENV} must be 'json' or 'columnar', got {kind!r}")
