"""Plain-text reporting: the tables/series each benchmark regenerates.

Benchmarks print the paper's reported numbers next to the measured ones
so paper-vs-measured shape checks are visible in the bench output (and
recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [f"== {title} =="]
    lines.append(sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    print("\n" + format_table(title, headers, rows) + "\n")


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)


def format_markdown_table(headers: Sequence[str],
                          rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavored markdown table (used by the campaign
    report generator; cells formatted like the ASCII tables)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    lines = ["| " + " | ".join(str(h) for h in headers) + " |",
             "|" + "---|" * len(headers)]
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def speedups(baseline: float, values: Dict[str, float]) -> Dict[str, float]:
    """baseline / value per key (larger = faster than baseline)."""
    out = {}
    for k, v in values.items():
        out[k] = baseline / v if v > 0 else float("inf")
    return out


def shape_note(claim: str, holds: bool) -> str:
    """One-line paper-claim check used in bench output."""
    mark = "OK " if holds else "DIVERGES"
    return f"[{mark}] {claim}"


def print_shape(claim: str, holds: bool) -> None:
    print(shape_note(claim, holds))


SWEEP_HEADERS = ["scenario", "seeds", "mean", "ci95", "p99", "min", "max"]


def format_sweep_table(title: str, results, metric: str) -> str:
    """Render a sweep campaign's across-seed aggregation of ``metric``.

    ``results`` is a :class:`~repro.harness.sweep.SweepResults`; one row
    per seed-erased task group with mean / 95% CI half-width / p99 /
    min / max over its seeds.
    """
    return format_table(f"{title} — {metric}", SWEEP_HEADERS,
                        results.table(metric))


def cdf_points(values: Sequence[float],
               n_points: int = 20) -> List[tuple]:
    """Downsampled empirical CDF of ``values`` as (value, probability)."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    idxs = sorted({min(n - 1, int(round(i * (n - 1) / (n_points - 1))))
                   for i in range(n_points)}) if n_points > 1 else [n - 1]
    return [(ordered[i], (i + 1) / n) for i in idxs]
