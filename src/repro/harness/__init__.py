"""Experiment harness: scenario runner, scaling, and reporting."""

from .ascii_charts import hbar, render_port_series, sparkline
from .stats import Aggregate, compare, repeat
from .report import (
    cdf_points,
    format_table,
    print_shape,
    print_table,
    shape_note,
    speedups,
)
from .runner import (
    Scenario,
    ScenarioResult,
    ber_hook,
    degrade_cables_hook,
    degrade_fraction_hook,
    fail_cables_hook,
    fail_fraction_hook,
    run_collective,
    run_lb_matrix,
    run_mixed_traffic,
    run_synthetic,
    run_trace,
)
from .scale import FULL, QUICK, Scale, current_scale

__all__ = [
    "Scenario", "ScenarioResult", "run_synthetic", "run_trace",
    "run_collective", "run_mixed_traffic", "run_lb_matrix",
    "fail_cables_hook", "fail_fraction_hook", "degrade_cables_hook",
    "degrade_fraction_hook", "ber_hook",
    "Scale", "QUICK", "FULL", "current_scale",
    "format_table", "print_table", "print_shape", "shape_note",
    "speedups", "cdf_points",
    "hbar", "render_port_series", "sparkline",
    "Aggregate", "compare", "repeat",
]
