"""Experiment harness: scenario runner, sweeps, scaling, and reporting."""

from .ascii_charts import hbar, render_port_series, sparkline
from .stats import Aggregate, compare, repeat
from .report import (
    cdf_points,
    format_sweep_table,
    format_table,
    print_shape,
    print_table,
    shape_note,
    speedups,
)
from .model_tasks import MODEL_RUNNERS, run_model
from .runner import (
    RESULT_PROBES,
    Scenario,
    ScenarioResult,
    ber_hook,
    degrade_cables_hook,
    degrade_fraction_hook,
    fail_cable_schedule_hook,
    fail_cables_hook,
    fail_fraction_hook,
    fail_tor_uplinks_hook,
    force_freeze_hook,
    run_collective,
    run_lb_matrix,
    run_mixed_traffic,
    run_synthetic,
    run_trace,
)
from .scale import FULL, QUICK, SMOKE, Scale, current_scale
from .backends import (
    BACKENDS,
    Backend,
    backend_names,
    make_backend,
    resolve_backend,
)
from .store import ColumnarStore, open_store
from .sweep import (
    FailureSpec,
    ResultStore,
    SweepGrid,
    SweepResults,
    SweepTask,
    TaskResult,
    WorkloadSpec,
    execute_task,
    make_model_task,
    make_task,
    run_sweep,
    simulator_version,
    spawn_seeds,
    task_key,
)

__all__ = [
    "Scenario", "ScenarioResult", "run_synthetic", "run_trace",
    "run_collective", "run_mixed_traffic", "run_lb_matrix",
    "fail_cables_hook", "fail_cable_schedule_hook",
    "fail_tor_uplinks_hook", "fail_fraction_hook",
    "degrade_cables_hook", "degrade_fraction_hook", "ber_hook",
    "force_freeze_hook", "RESULT_PROBES",
    "MODEL_RUNNERS", "run_model",
    "Scale", "SMOKE", "QUICK", "FULL", "current_scale",
    "format_table", "print_table", "print_shape", "shape_note",
    "speedups", "cdf_points", "format_sweep_table",
    "hbar", "render_port_series", "sparkline",
    "Aggregate", "compare", "repeat",
    "SweepGrid", "SweepTask", "SweepResults", "TaskResult",
    "WorkloadSpec", "FailureSpec", "ResultStore", "ColumnarStore",
    "open_store",
    "make_task", "make_model_task", "task_key", "run_sweep",
    "spawn_seeds", "execute_task", "simulator_version",
    "BACKENDS", "Backend", "backend_names", "make_backend",
    "resolve_backend",
]
