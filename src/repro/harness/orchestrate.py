"""Elastic campaign orchestration: plan, fan out, retry, merge, report.

``repro shard plan | run | merge`` proves multi-host correctness but
leaves a human playing scheduler.  ``repro orchestrate`` closes the
loop (ROADMAP: *distributed elastic campaign orchestration*):

1. **Plan.**  The figure selection expands into its deduplicated task
   grid, and :func:`balanced_partition` bins the content keys into
   shard manifests by *expected wall time* — greedy LPT over the
   per-label accounting the campaign store already records
   (:func:`~repro.harness.backends.schedule.wall_time_history`), so a
   warm store makes shards that finish together instead of leaving one
   straggler shard to serialize the tail.  With no history every key
   weighs the same and the plan degrades to the deterministic
   round-robin ``shard plan`` produces.
2. **Fan out.**  A :class:`WorkerRunner` launches one worker process
   per busy slot (:class:`LocalGroupRunner` spawns local process
   groups; :class:`SSHRunner` wraps the identical command in ``ssh``
   for hosts sharing a filesystem).  Shards are dispatched
   longest-expected-first and there are deliberately more shards than
   slots: a worker that finishes early *steals* the next heaviest
   shard from the queue instead of idling.
3. **Watch.**  Workers report heartbeats
   (:mod:`repro.harness.backends.worker`); the orchestrator kills and
   reassigns a shard whose worker dies, stops heartbeating, or blows
   its deadline.  Retries reuse the shard's store, so a killed worker
   costs only the *unfinished remainder* of its shard — stores are
   torn-tail self-healing and content-keyed, so a partial store is
   never corrupt, only incomplete.
4. **Merge + report.**  Each finished shard streams back through
   ``ResultStore.merge_from`` the moment it lands (idempotent,
   order-free), a live status page re-renders on every state change
   (:mod:`repro.report.live`), and once every shard merged the normal
   campaign runner renders ``REPRODUCTION.md`` + ``campaign.json``
   from the fully-cached store — byte-identical tables to a
   single-host ``repro figures run --all``.

Failure semantics: a worker exit of
:data:`~repro.harness.backends.worker.EXIT_FATAL` (bad manifest,
simulator drift) aborts the whole run — a retry can never fix it on
any host.  Every other death retries up to ``max_retries`` times per
shard before the campaign is declared failed.  ``chaos_kills`` is the
built-in failure drill: SIGKILL that many live workers mid-shard and
let the retry path prove the elastic story (the CI orchestrate job
runs with one injected death on every push).
"""

from __future__ import annotations

import os
import shlex
import signal
import subprocess
import sys
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .backends.schedule import (
    default_expectation,
    task_label,
    wall_time_history,
)
from .backends.shard import (
    SHARD_KIND,
    SHARD_SCHEMA,
    shard_origin,
    write_shard_plan,
)
from .backends.worker import EXIT_FATAL, read_heartbeat
from .scale import current_scale
from .sweep import SCHEMA_VERSION, SweepTask, simulator_version, task_key

#: shard lifecycle states, in display order
SHARD_STATES = ("pending", "running", "merged", "failed", "aborted")


# ----------------------------------------------------------------------
# adaptive planning
# ----------------------------------------------------------------------
def balanced_partition(weighted: Sequence[Tuple[str, float]],
                       n_shards: int) -> List[List[str]]:
    """Greedy LPT binning of ``(key, expected_s)`` into ``n_shards``.

    Deterministic: keys are taken heaviest-first (ties broken by key)
    and each goes to the currently lightest bin (ties broken by bin
    index).  With all-equal weights this reduces to round-robin over
    the sorted keys — the same partition ``shard plan`` produces — so
    orchestration without history plans exactly like the manual flow.
    Bins keep their assignment order (heaviest first), which is the
    order the worker executes.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    by_weight = sorted(weighted, key=lambda kv: (-kv[1], kv[0]))
    bins: List[List[str]] = [[] for _ in range(n_shards)]
    loads = [0.0] * n_shards
    counts = [0] * n_shards
    for key, weight in by_weight:
        # tie-break on count then index: equal loads fill round-robin
        slot = min(range(n_shards),
                   key=lambda i: (loads[i], counts[i], i))
        bins[slot].append(key)
        loads[slot] += weight
        counts[slot] += 1
    return bins


def plan_campaign_shards(specs: Sequence, n_shards: int, *,
                         history_store=None, warn=None
                         ) -> Tuple[List[Dict[str, object]], float]:
    """Balanced shard manifests for a figure selection.

    Expands every spec's matrix (fail-soft, mirroring the campaign
    runner: a figure whose matrix cannot build contributes no tasks on
    any host), weighs each task by its label's recorded mean wall time
    from ``history_store`` (unseen labels get the observation-weighted
    default), and LPT-bins the keys.  Returns the manifests (empty
    bins dropped) and the total expected seconds.
    """
    figures: List[str] = []
    by_key: Dict[str, SweepTask] = {}
    for spec in specs:
        try:
            tasks = spec.build()
        except Exception as exc:
            if warn is not None:
                warn(f"skipping {spec.fig_id}: matrix failed to build "
                     f"({exc})")
            continue
        figures.append(spec.fig_id)
        for task in tasks.values():
            by_key.setdefault(task_key(task), task)
    history = wall_time_history(history_store)
    default = default_expectation(history)

    def expected(task: SweepTask) -> float:
        entry = history.get(task_label(task))
        return entry[0] if entry is not None else default

    weighted = [(key, expected(task)) for key, task in by_key.items()]
    parts = balanced_partition(weighted, n_shards)
    weights = dict(weighted)
    manifests = []
    for index, keys in enumerate(parts):
        if not keys:
            continue
        manifests.append({
            "schema": SHARD_SCHEMA,
            "kind": SHARD_KIND,
            "shard": index,
            "n_shards": n_shards,
            "sim": simulator_version(),
            "artifact_schema": SCHEMA_VERSION,
            "scale": current_scale().name,
            "figures": list(figures),
            "keys": keys,
            "expected_s": round(sum(weights[k] for k in keys), 6),
        })
    return manifests, sum(w for _k, w in weighted)


# ----------------------------------------------------------------------
# worker runners
# ----------------------------------------------------------------------
@dataclass
class ShardRun:
    """One shard's orchestration state across its attempts."""

    index: int
    manifest_path: str
    store_dir: str
    heartbeat_path: str
    total: int
    expected_s: float
    origin: str
    status: str = "pending"
    attempts: int = 0
    done: int = 0
    worker: str = ""
    started_at: float = 0.0
    wall_s: float = 0.0
    merged_keys: int = 0
    error: str = ""
    log_paths: List[str] = field(default_factory=list)


class WorkerHandle(ABC):
    """A launched worker the orchestrator can poll and kill."""

    name: str = "?"

    @abstractmethod
    def poll(self) -> Optional[int]:
        """Exit code, or ``None`` while still running."""

    @abstractmethod
    def kill(self) -> None:
        """Terminate the worker (and its whole process group)."""


class _ProcessHandle(WorkerHandle):
    """A subprocess worker running in its own session/process group."""

    def __init__(self, name: str, proc: subprocess.Popen) -> None:
        self.name = name
        self.proc = proc

    def poll(self) -> Optional[int]:
        return self.proc.poll()

    def kill(self) -> None:
        if self.proc.poll() is not None:
            return
        try:
            os.killpg(os.getpgid(self.proc.pid), signal.SIGKILL)
        except (OSError, ProcessLookupError):
            try:
                self.proc.kill()
            except OSError:  # pragma: no cover - already reaped
                pass


class WorkerRunner(ABC):
    """*How* a shard worker process comes to exist.

    ``launch`` starts ``python -m repro.harness.backends.worker`` for
    one shard and returns a :class:`WorkerHandle`; ``slots`` is the
    natural fan-out (``None`` leaves the caller's choice).  The
    command is identical across runners — only the transport differs —
    so a campaign debugged locally fans out over SSH unchanged.
    """

    name: str = "?"

    def slots(self) -> Optional[int]:
        return None

    @abstractmethod
    def launch(self, shard: ShardRun, slot: int, *, workers: int,
               backend: Optional[str], log_path: str) -> WorkerHandle:
        """Start a worker for ``shard``; stdout/stderr go to
        ``log_path``."""


def _worker_argv(python: str, shard: ShardRun, *, workers: int,
                 backend: Optional[str]) -> List[str]:
    argv = [python, "-m", "repro.harness.backends.worker",
            shard.manifest_path, "--store", shard.store_dir,
            "--heartbeat", shard.heartbeat_path,
            "--workers", str(workers)]
    if backend:
        argv += ["--backend", backend]
    return argv


def _package_root() -> str:
    """The directory that makes ``import repro`` work in a child."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))


def _child_env() -> Dict[str, str]:
    env = dict(os.environ)
    root = _package_root()
    parts = [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    if root not in parts:
        env["PYTHONPATH"] = os.pathsep.join([root] + parts)
    return env


class LocalGroupRunner(WorkerRunner):
    """Workers as local process groups (``start_new_session``), so a
    kill takes the worker *and* its sweep pool children with it."""

    name = "local"

    def __init__(self, python: Optional[str] = None) -> None:
        self.python = python or sys.executable

    def command_for(self, shard: ShardRun, *, workers: int = 1,
                    backend: Optional[str] = None) -> List[str]:
        return _worker_argv(self.python, shard, workers=workers,
                            backend=backend)

    def launch(self, shard: ShardRun, slot: int, *, workers: int,
               backend: Optional[str], log_path: str) -> WorkerHandle:
        argv = self.command_for(shard, workers=workers, backend=backend)
        with open(log_path, "ab") as log:
            proc = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL, env=_child_env(),
                start_new_session=True)
        return _ProcessHandle(f"local:{slot}", proc)


class SSHRunner(WorkerRunner):
    """Workers over ``ssh`` on hosts sharing this filesystem.

    The same worker command, wrapped in ``ssh -o BatchMode=yes
    <host>``; slot *i* maps to ``hosts[i % len(hosts)]``, so repeating
    a hostname runs that many workers on it.  Manifests, stores and
    heartbeats live on the shared filesystem — the merge/retry logic
    is transport-agnostic.  Killing a shard kills the local ssh
    client; with ``ssh -tt`` session teardown takes the remote worker
    with it (``tt`` is on by default for exactly that reason).
    """

    name = "ssh"

    def __init__(self, hosts: Sequence[str], *,
                 python: str = "python3",
                 pythonpath: Optional[str] = None,
                 tty: bool = True) -> None:
        hosts = [h.strip() for h in hosts if h and h.strip()]
        if not hosts:
            raise ValueError("SSHRunner needs at least one host")
        self.hosts = list(hosts)
        self.python = python
        self.pythonpath = pythonpath or _package_root()
        self.tty = tty

    def slots(self) -> Optional[int]:
        return len(self.hosts)

    def command_for(self, shard: ShardRun, slot: int = 0, *,
                    workers: int = 1,
                    backend: Optional[str] = None) -> List[str]:
        host = self.hosts[slot % len(self.hosts)]
        remote = _worker_argv(self.python, shard, workers=workers,
                              backend=backend)
        remote_cmd = " ".join(
            [f"PYTHONPATH={shlex.quote(self.pythonpath)}",
             f"REPRO_BENCH_SCALE={shlex.quote(current_scale().name)}"]
            + [shlex.quote(a) for a in remote])
        argv = ["ssh", "-o", "BatchMode=yes"]
        if self.tty:
            argv.append("-tt")
        return argv + [host, remote_cmd]

    def launch(self, shard: ShardRun, slot: int, *, workers: int,
               backend: Optional[str], log_path: str) -> WorkerHandle:
        argv = self.command_for(shard, slot, workers=workers,
                                backend=backend)
        with open(log_path, "ab") as log:
            proc = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL, start_new_session=True)
        host = self.hosts[slot % len(self.hosts)]
        return _ProcessHandle(f"ssh:{host}", proc)


# ----------------------------------------------------------------------
# the orchestrator
# ----------------------------------------------------------------------
@dataclass
class OrchestrationResult:
    """Everything one orchestrated campaign did."""

    shards: List[ShardRun]
    events: List[str]
    retries: int
    chaos_requested: int
    chaos_killed: int
    wall_s: float
    aborted: bool = False
    campaign: Optional[object] = None   # CampaignResult when rendered
    report_path: Optional[str] = None
    json_path: Optional[str] = None

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in SHARD_STATES}
        for shard in self.shards:
            out[shard.status] += 1
        return out

    def ok(self) -> bool:
        return (not self.aborted
                and all(s.status == "merged" for s in self.shards)
                and self.campaign is not None)


def _tail(path: str, lines: int = 12) -> str:
    try:
        with open(path, "r", errors="replace") as fh:
            content = fh.read()
    except OSError:
        return ""
    return "\n".join(content.strip().splitlines()[-lines:])


class Orchestrator:
    """The event loop behind ``repro orchestrate``.

    Built as a class so tests can drive the retry/deadline logic with
    fake runners; :func:`orchestrate_campaign` is the one-call API.
    """

    def __init__(self, specs: Sequence, *, results_dir: str,
                 work_dir: Optional[str] = None, fan_out: int = 2,
                 n_shards: Optional[int] = None, shard_workers: int = 1,
                 backend: Optional[str] = None,
                 runner: Optional[WorkerRunner] = None,
                 heartbeat_timeout_s: float = 60.0,
                 shard_deadline_s: Optional[float] = None,
                 max_retries: int = 2, poll_interval_s: float = 0.15,
                 chaos_kills: int = 0, check: bool = True,
                 fresh: bool = False, progress: bool = False,
                 report_path: str = "REPRODUCTION.md",
                 json_path: str = "campaign.json",
                 html_path: Optional[str] = None) -> None:
        from .campaign import shared_store

        if not specs:
            raise ValueError("empty campaign: no figures selected")
        self.specs = list(specs)
        self.results_dir = results_dir
        self.work_dir = work_dir or os.path.join(results_dir,
                                                 "orchestrate")
        self.runner = runner or LocalGroupRunner()
        self.fan_out = max(1, self.runner.slots() or fan_out)
        # more shards than slots is the work-stealing margin: a fast
        # worker pulls extra shards while a slow one chews on its first
        self.n_shards = n_shards or max(1, 2 * self.fan_out)
        self.shard_workers = max(1, shard_workers)
        self.backend = backend
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.shard_deadline_s = shard_deadline_s
        self.max_retries = max(0, int(max_retries))
        self.poll_interval_s = poll_interval_s
        self.chaos_kills = max(0, int(chaos_kills))
        self.check = check
        self.progress = progress
        self.report_path = report_path
        self.json_path = json_path
        self.html_path = html_path
        self.store = shared_store(results_dir, fresh=fresh)
        self.events: List[str] = []
        self.retries = 0
        self.chaos_killed = 0
        self._started = 0.0

    # -- bookkeeping ---------------------------------------------------
    def _say(self, message: str) -> None:
        self.events.append(message)
        if self.progress:
            print(f"orchestrate: {message}")

    def _status_doc(self, shards: Sequence[ShardRun],
                    state: str) -> Dict[str, object]:
        return {
            "state": state,
            "scale": current_scale().name,
            "runner": self.runner.name,
            "fan_out": self.fan_out,
            "updated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                        time.gmtime()),
            "wall_s": round(time.monotonic() - self._started, 1)
            if self._started else 0.0,
            "retries": self.retries,
            "chaos_killed": self.chaos_killed,
            "tasks_done": sum(s.done if s.status != "merged" else s.total
                              for s in shards),
            "tasks_total": sum(s.total for s in shards),
            "shards": [{
                "shard": s.index, "status": s.status,
                "attempts": s.attempts, "worker": s.worker,
                "done": s.total if s.status == "merged" else s.done,
                "total": s.total,
                "expected_s": round(s.expected_s, 2),
                "wall_s": round(s.wall_s, 1),
                "error": s.error,
            } for s in shards],
            "events": self.events[-30:],
            "report": self.report_path,
            "json": self.json_path,
        }

    def _render_live(self, shards: Sequence[ShardRun],
                     state: str) -> None:
        if self.html_path is None:
            return
        # lazy import: the harness layer only touches the report layer
        # at call time (same pattern as the campaign runner)
        from ..report.live import write_live_html

        try:
            write_live_html(self.html_path,
                            self._status_doc(shards, state))
        except OSError:
            pass  # a broken live page must never kill the campaign

    # -- the run -------------------------------------------------------
    def plan(self) -> List[ShardRun]:
        manifests, total_s = plan_campaign_shards(
            self.specs, self.n_shards, history_store=self.store,
            warn=lambda msg: self._say(f"warning: {msg}"))
        if not manifests:
            raise ValueError(
                "orchestration planned no tasks (every figure matrix "
                "failed to build)")
        plan_dir = os.path.join(self.work_dir, "plan")
        paths = write_shard_plan(plan_dir, manifests)
        os.makedirs(os.path.join(self.work_dir, "logs"), exist_ok=True)
        shards = []
        for manifest, path in zip(manifests, paths):
            index = int(manifest["shard"])
            shards.append(ShardRun(
                index=index,
                manifest_path=os.path.abspath(path),
                store_dir=os.path.abspath(
                    os.path.join(self.work_dir, "stores",
                                 f"shard-{index}")),
                heartbeat_path=os.path.abspath(
                    os.path.join(self.work_dir, "heartbeats",
                                 f"shard-{index}.json")),
                total=len(manifest["keys"]),
                expected_s=float(manifest.get("expected_s") or 0.0),
                origin=shard_origin(manifest)))
        os.makedirs(os.path.join(self.work_dir, "heartbeats"),
                    exist_ok=True)
        history = "warm" if any(s.expected_s for s in shards) else "cold"
        self._say(f"planned {sum(s.total for s in shards)} task(s) "
                  f"into {len(shards)} shard(s) over {self.fan_out} "
                  f"worker slot(s) [{history} wall-time history]")
        return shards

    def _launch(self, shard: ShardRun, slot: int) -> WorkerHandle:
        shard.attempts += 1
        shard.status = "running"
        shard.started_at = time.monotonic()
        shard.done = 0
        log_path = os.path.join(
            self.work_dir, "logs",
            f"shard-{shard.index}.attempt-{shard.attempts}.log")
        shard.log_paths.append(log_path)
        # stale heartbeat from a previous attempt must not mask a
        # worker that dies before its first beat
        try:
            os.remove(shard.heartbeat_path)
        except OSError:
            pass
        handle = self.runner.launch(shard, slot,
                                    workers=self.shard_workers,
                                    backend=self.backend,
                                    log_path=log_path)
        shard.worker = handle.name
        self._say(f"shard {shard.index} -> {handle.name} "
                  f"(attempt {shard.attempts}, {shard.total} task(s), "
                  f"~{shard.expected_s:.1f}s expected)")
        return handle

    def _merge(self, shard: ShardRun) -> None:
        # sources open read-compatible whatever $REPRO_STORE says
        # about the destination — same rule as `repro shard merge`
        from .store import ColumnarStore

        merged = self.store.merge_from(ColumnarStore(shard.store_dir))
        shard.merged_keys = len(merged)
        shard.status = "merged"
        shard.wall_s += time.monotonic() - shard.started_at
        self._say(f"shard {shard.index} merged ({len(merged)} new "
                  f"artifact(s), {shard.total} task(s), "
                  f"{shard.wall_s:.1f}s)")

    def _handle_death(self, shard: ShardRun, reason: str,
                      fatal: bool) -> bool:
        """Retry or fail a dead shard; returns ``True`` to requeue."""
        shard.wall_s += time.monotonic() - shard.started_at
        tail = _tail(shard.log_paths[-1]) if shard.log_paths else ""
        if fatal:
            shard.status = "failed"
            shard.error = reason + (f"\n{tail}" if tail else "")
            self._say(f"shard {shard.index} FATAL: {reason} — "
                      f"aborting (a retry cannot fix this)")
            return False
        if shard.attempts > self.max_retries:
            shard.status = "failed"
            shard.error = reason + (f"\n{tail}" if tail else "")
            self._say(f"shard {shard.index} failed after "
                      f"{shard.attempts} attempt(s): {reason}")
            return False
        shard.status = "pending"
        shard.error = reason
        self.retries += 1
        self._say(f"shard {shard.index} died ({reason}); retrying — "
                  f"finished tasks are kept, only the remainder "
                  f"re-runs")
        return True

    def run(self) -> OrchestrationResult:
        self._started = time.monotonic()
        shards = self.plan()
        # longest-expected-first dispatch: the heaviest shard starts
        # on the first free slot, idle workers steal the next heaviest
        queue: List[ShardRun] = sorted(
            shards, key=lambda s: (-s.expected_s, s.index))
        running: Dict[int, Tuple[WorkerHandle, ShardRun]] = {}
        abort = False
        self._render_live(shards, "running")
        while True:
            progressed = False
            while queue and len(running) < self.fan_out and not abort:
                slot = min(set(range(self.fan_out)) - set(running))
                shard = queue.pop(0)
                running[slot] = (self._launch(shard, slot), shard)
                progressed = True
            for slot in sorted(running):
                handle, shard = running[slot]
                rc = handle.poll()
                now = time.monotonic()
                if rc is None:
                    beat = read_heartbeat(shard.heartbeat_path)
                    if beat is not None:
                        shard.done = int(beat.get("done") or 0)
                    if (self.chaos_killed < self.chaos_kills
                            and shard.attempts == 1
                            and beat is not None):
                        # the failure drill: a live, mid-shard worker
                        # goes down hard; recovery must be invisible
                        handle.kill()
                        self.chaos_killed += 1
                        self._say(f"chaos: SIGKILL {handle.name} "
                                  f"mid-shard (shard {shard.index}, "
                                  f"{shard.done}/{shard.total} done)")
                        progressed = True
                        continue
                    last_beat = (float(beat["ts"])
                                 if beat and isinstance(
                                     beat.get("ts"), (int, float))
                                 else None)
                    silent_for = (time.time() - last_beat
                                  if last_beat is not None
                                  else now - shard.started_at)
                    if silent_for > self.heartbeat_timeout_s:
                        handle.kill()
                        if self._handle_death(
                                shard, f"no heartbeat for "
                                f"{silent_for:.0f}s", fatal=False):
                            queue.append(shard)
                        else:
                            abort = abort or shard.status == "failed"
                        del running[slot]
                        progressed = True
                    elif (self.shard_deadline_s is not None
                          and now - shard.started_at >
                          self.shard_deadline_s):
                        handle.kill()
                        if self._handle_death(
                                shard, f"deadline "
                                f"{self.shard_deadline_s:.0f}s "
                                f"exceeded", fatal=False):
                            queue.append(shard)
                        else:
                            abort = abort or shard.status == "failed"
                        del running[slot]
                        progressed = True
                    continue
                # the worker exited
                del running[slot]
                progressed = True
                if rc == 0:
                    self._merge(shard)
                elif rc == EXIT_FATAL:
                    self._handle_death(shard, f"exit {rc}", fatal=True)
                    abort = True
                else:
                    reason = ("killed" if rc < 0 else f"exit {rc}")
                    if self._handle_death(shard, reason, fatal=False):
                        queue.append(shard)
                    else:
                        abort = True
            if abort and queue:
                for shard in queue:
                    shard.status = "aborted"
                queue.clear()
                progressed = True
            if abort and running:
                for slot in sorted(running):
                    handle, shard = running.pop(slot)
                    handle.kill()
                    shard.status = "aborted"
                    shard.wall_s += time.monotonic() - shard.started_at
                    self._say(f"shard {shard.index} aborted")
                progressed = True
            if progressed:
                self._render_live(shards, "running")
            if not running and not queue:
                break
            time.sleep(self.poll_interval_s)

        result = OrchestrationResult(
            shards=shards, events=self.events, retries=self.retries,
            chaos_requested=self.chaos_kills,
            chaos_killed=self.chaos_killed,
            wall_s=time.monotonic() - self._started, aborted=abort)
        if all(s.status == "merged" for s in shards):
            self._say("all shards merged; rendering the campaign from "
                      "the fully-cached store")
            self._render_live(shards, "reporting")
            result.campaign = self._final_campaign()
            result.report_path, result.json_path = \
                self._write_report(result.campaign)
            result.wall_s = time.monotonic() - self._started
        self._render_live(
            shards, "complete" if result.ok() else "failed")
        return result

    def _final_campaign(self):
        from .campaign import run_campaign

        # every artifact is already in the shared store, so this is a
        # cache walk + report aggregation, identical to a single-host
        # run against the same store (the CLI e2e test asserts it);
        # any shard straggler would simply execute here — the report
        # can be late, never wrong
        return run_campaign(self.specs, workers=1, store=self.store,
                            check=self.check, progress=self.progress)

    def _write_report(self, campaign) -> Tuple[str, str]:
        from ..report import write_campaign_report

        return write_campaign_report(campaign,
                                     report_path=self.report_path,
                                     json_path=self.json_path)


def orchestrate_campaign(specs: Sequence, **kwargs
                         ) -> OrchestrationResult:
    """Plan, fan out, babysit, merge and report one campaign.

    The one-call API over :class:`Orchestrator`; see the module
    docstring for the flow and the class for the knobs.
    """
    return Orchestrator(specs, **kwargs).run()
