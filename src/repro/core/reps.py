"""REPS — Recycled Entropy Packet Spraying (Sec. 3, Algorithms 1 & 2).

This module is the paper's contribution and is deliberately free of any
simulator dependency: :class:`RepsSender` is a plain object driven by
``on_ack`` / ``on_failure_detection`` / ``next_entropy`` calls, so it can
be unit-tested standalone, embedded in the packet simulator, or — as the
paper argues — implemented in NIC firmware with ~25 bytes of state.

Terminology maps 1:1 onto the paper's pseudocode:

=====================  ==========================================
Paper                  Here
=====================  ==========================================
``repsBuffer``         ``self._evs`` / ``self._uses`` (paired arrays)
``head``               ``self._head``
``numberOfValidEVs``   ``self._num_valid``
``isFreezingMode``     ``self._freezing``
``exitFreezingMode``   ``self._exit_freezing_at``
``exploreCounter``     ``self._explore_counter``
``EVS_SIZE``           ``config.evs_size``
``REPS_BUFFER_SIZE``   ``config.buffer_size``
``FREEZING_TIMEOUT``   ``config.freezing_timeout_ps``
``NUM_PKTS_CWND``      ``cwnd_pkts()`` (supplied by the transport)
=====================  ==========================================
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass
from typing import Callable, List, Optional


@dataclass
class RepsConfig:
    """Tunables of a REPS sender.

    Attributes:
        buffer_size: circular-buffer depth (8 in the paper, from the
            Theorem 5.1 bound and empirical evidence).
        evs_size: size of the entropy-value set (65536 for a 16-bit EV).
        freezing_enabled: enables failure-mitigation freezing (Sec. 3.2).
            Disabled reproduces the Appendix C.4 ablation.
        freezing_timeout_ps: how long to stay frozen before probing the
            network again.
        ev_lifespan: number of sends each cached EV is good for.  1 is
            standard REPS; >1 is the *Reuse EVs* coalescing variant
            (Sec. 4.5.1).
        explore_every: during the post-freeze explore phase, one packet in
            every ``explore_every`` uses a random EV (Algorithm 2 uses the
            buffer size).
    """

    buffer_size: int = 8
    evs_size: int = 65536
    freezing_enabled: bool = True
    freezing_timeout_ps: int = 100_000_000  # 100 us
    ev_lifespan: int = 1
    explore_every: Optional[int] = None

    def validate(self) -> None:
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if self.evs_size < 1:
            raise ValueError("evs_size must be >= 1")
        if self.ev_lifespan < 1:
            raise ValueError("ev_lifespan must be >= 1")

    @property
    def explore_period(self) -> int:
        return self.explore_every or self.buffer_size


class RepsSender:
    """Per-connection REPS state machine (Algorithms 1 and 2).

    Args:
        config: algorithm tunables.
        rng: source of randomness for explored EVs.
        cwnd_pkts: callable returning the current congestion window in
            packets (``NUM_PKTS_CWND``); used to size the post-freezing
            exploration phase.  Defaults to 4x the buffer size.
    """

    name = "reps"

    def __init__(
        self,
        config: Optional[RepsConfig] = None,
        rng: Optional[random.Random] = None,
        cwnd_pkts: Optional[Callable[[], int]] = None,
    ) -> None:
        self.config = config or RepsConfig()
        self.config.validate()
        self.rng = rng or random.Random()
        self._cwnd_pkts = cwnd_pkts or (lambda: 4 * self.config.buffer_size)
        n = self.config.buffer_size
        # The circular buffer as paired tables (htsim-style): cached EVs
        # and their remaining uses, plus the config scalars the per-packet
        # path needs copied out of the dataclass, so next_entropy/on_ack
        # are pure table lookups with no object or dataclass hops.
        self._evs = array("l", [0] * n)
        self._uses = array("l", [0] * n)
        self._n = n
        self._lifespan = self.config.ev_lifespan
        self._evs_size = self.config.evs_size
        self._explore_period = self.config.explore_period
        self._head = 0
        self._num_valid = 0
        self._freezing = False
        self._exit_freezing_at = 0
        self._explore_counter = 0
        self._ever_cached = False
        self._force_frozen = False
        # observability counters (not part of the 25-byte NIC state)
        self.stats_explored = 0
        self.stats_recycled = 0
        self.stats_frozen_reuse = 0
        self.stats_freeze_entries = 0

    # ------------------------------------------------------------------
    # inspection helpers (used by tests and telemetry)
    # ------------------------------------------------------------------
    @property
    def rng(self) -> random.Random:
        return self._rng

    @rng.setter
    def rng(self, rng: random.Random) -> None:
        # keep the cached bound method in step with the source of
        # randomness (tests swap in fresh seeded Randoms)
        self._rng = rng
        self._randrange = rng.randrange

    @property
    def freezing(self) -> bool:
        return self._freezing

    @property
    def valid_evs(self) -> int:
        return self._num_valid

    @property
    def explore_counter(self) -> int:
        return self._explore_counter

    @property
    def buffer_snapshot(self) -> List[tuple]:
        """(ev, uses_left) per slot, index 0 = slot 0 (not head-relative)."""
        return list(zip(self._evs, self._uses))

    # ------------------------------------------------------------------
    # Algorithm 1: onAck
    # ------------------------------------------------------------------
    def on_ack(self, ev: int, ecn: bool, now: int) -> None:
        """Process one acknowledged entropy (Algorithm 1, lines 5-19)."""
        if not ecn:
            head = self._head
            if self._uses[head] <= 0:
                self._num_valid += 1
            self._evs[head] = ev
            self._uses[head] = self._lifespan
            head += 1
            self._head = head if head < self._n else 0
            self._ever_cached = True
        # _maybe_exit_freezing, inlined off the per-ACK path
        if self._freezing and not self._force_frozen and \
                now > self._exit_freezing_at:
            self._freezing = False
            self._explore_counter = max(1, self._cwnd_pkts())

    def _maybe_exit_freezing(self, now: int) -> None:
        """Time-based exit (Sec. 3.2: "exit freezing mode after a fixed
        amount of time").  Checked on the ACK path (Algorithm 1) *and*
        the send path: if every cached EV maps to the dead path, no ACK
        will ever arrive to run the Algorithm-1 check, and only the
        send-path check lets the post-freezing random probes discover a
        healthy path again (the paper's stuck-buffer escape hatch)."""
        if self._freezing and not self._force_frozen and \
                now > self._exit_freezing_at:
            self._freezing = False
            self._explore_counter = max(1, self._cwnd_pkts())

    # ------------------------------------------------------------------
    # Algorithm 1: onFailureDetection
    # ------------------------------------------------------------------
    def on_failure_detection(self, now: int) -> None:
        """Enter freezing mode on suspected failure (lines 21-26)."""
        if not self.config.freezing_enabled:
            return
        if not self._freezing and self._explore_counter == 0:
            self._freezing = True
            self._exit_freezing_at = now + self.config.freezing_timeout_ps
            self.stats_freeze_entries += 1

    def force_freeze(self, now: int, permanent: bool = True) -> None:
        """Force freezing mode regardless of failures (Appendix A, Fig 19)."""
        self._freezing = True
        self._force_frozen = permanent
        self._exit_freezing_at = now + self.config.freezing_timeout_ps
        self.stats_freeze_entries += 1

    # ------------------------------------------------------------------
    # Algorithm 2: getNextEV + onSend
    # ------------------------------------------------------------------
    def _get_next_ev(self) -> int:
        """Pop the oldest valid EV, or cycle stale ones while frozen."""
        valid = self._num_valid
        if valid > 0:
            offset = self._head - valid
            if offset < 0:
                offset += self._n
            uses = self._uses[offset] - 1
            self._uses[offset] = uses
            if uses == 0:
                self._num_valid = valid - 1
            self.stats_recycled += 1
            return self._evs[offset]
        # numberOfValidEVs == 0: only reached in freezing mode, where stale
        # entries are knowingly reused (Sec. 3.2, item 2).
        offset = self._head
        head = offset + 1
        self._head = head if head < self._n else 0
        self.stats_frozen_reuse += 1
        return self._evs[offset]

    def _random_ev(self) -> int:
        self.stats_explored += 1
        return self._randrange(self._evs_size)

    def next_entropy(self, now: int) -> int:
        """Choose the EV for the next data packet (Algorithm 2, onSend)."""
        # _maybe_exit_freezing, inlined off the per-packet path
        if self._freezing and not self._force_frozen and \
                now > self._exit_freezing_at:
            self._freezing = False
            self._explore_counter = max(1, self._cwnd_pkts())
        counter = self._explore_counter
        if counter > 0:
            counter -= 1
            self._explore_counter = counter
            if counter % self._explore_period == 0:
                self.stats_explored += 1
                return self._randrange(self._evs_size)
            # otherwise fall through to the normal selection logic
        if not self._ever_cached or (
                self._num_valid == 0 and not self._freezing):
            self.stats_explored += 1
            return self._randrange(self._evs_size)
        return self._get_next_ev()

    # ------------------------------------------------------------------
    # transport hooks shared with the baseline LB interface
    # ------------------------------------------------------------------
    def on_timeout(self, ev: int, now: int) -> None:
        """RTO expiry: indirect failure evidence (Sec. 2.1 heuristic)."""
        self.on_failure_detection(now)

    def on_nack(self, ev: int, now: int) -> None:
        """Trimmed-packet NACK: a *congestion* loss, so no freezing.

        With packet trimming available REPS can tell congestion drops from
        failure drops (Appendix A) and only freezes on the latter.
        """
        # congestion losses carry no routing information REPS wants to keep
        return
