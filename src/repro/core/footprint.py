"""Per-connection memory footprint accounting (Table 1).

The paper's headline "<25 bytes of state per connection" is recomputed
here from a live configuration, so the Table-1 benchmark regenerates the
table instead of hard-coding it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .reps import RepsConfig

#: bit widths of the global variables, exactly as Table 1 lists them
_GLOBAL_BITS = {
    "head": 8,
    "numberOfValidEVs": 8,
    "exitFreezingMode": 32,
    "isFreezingMode": 1,
    "exploreCounter": 8,
}


@dataclass
class Footprint:
    """Bit-level accounting of one REPS connection."""

    ev_bits: int
    validity_bits: int
    buffer_elements: int
    global_bits: Dict[str, int]

    @property
    def per_element_bits(self) -> int:
        return self.ev_bits + self.validity_bits

    @property
    def total_bits(self) -> int:
        return (self.per_element_bits * self.buffer_elements
                + sum(self.global_bits.values()))

    @property
    def total_bytes(self) -> int:
        return math.ceil(self.total_bits / 8)

    def rows(self) -> list:
        """Table rows as (component, bits) pairs, mirroring Table 1."""
        rows = [
            ("Entropy Value (cachedEV)", self.ev_bits),
            ("Entropy Validity Bit (isValid)", self.validity_bits),
        ]
        rows += [(name, bits) for name, bits in self.global_bits.items()]
        rows.append((f"Total ({self.buffer_elements} elements)",
                     self.total_bits))
        return rows


def compute_footprint(config: RepsConfig) -> Footprint:
    """Recompute Table 1 for an arbitrary REPS configuration.

    The EV width is the minimum number of bits addressing ``evs_size``
    values; the validity "bit" widens to a use counter for the Reuse-EVs
    variant (lifespan > 1).
    """
    ev_bits = max(1, math.ceil(math.log2(config.evs_size)))
    validity_bits = max(1, math.ceil(math.log2(config.ev_lifespan + 1)))
    return Footprint(
        ev_bits=ev_bits,
        validity_bits=validity_bits,
        buffer_elements=config.buffer_size,
        global_bits=dict(_GLOBAL_BITS),
    )
