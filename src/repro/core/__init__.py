"""REPS: the paper's core contribution (Sec. 3)."""

from .footprint import Footprint, compute_footprint
from .reps import RepsConfig, RepsSender

__all__ = ["RepsConfig", "RepsSender", "Footprint", "compute_footprint"]
