"""Batched balls-into-bins: the OPS queueing model (Sec. 5.1).

At each round every non-empty bin (output port) removes one ball
(transmits one packet), then ``round(lam * n)`` new balls (packets)
arrive and are placed uniformly at random — oblivious spraying.  At
injection rates approaching 1 the maximum load grows without bound
(Berenbrink et al. [11]), which is Fig. 17's demonstration and the
theoretical core of why OPS builds queues even in symmetric networks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class BinsTrace:
    """Round-by-round result of a balls-into-bins simulation."""

    n_bins: int
    max_load: List[int] = field(default_factory=list)
    total_balls: List[int] = field(default_factory=list)

    @property
    def final_max_load(self) -> int:
        return self.max_load[-1] if self.max_load else 0

    def averaged_max_load(self, window: int = 50) -> float:
        """Mean max load over the trailing ``window`` rounds."""
        if not self.max_load:
            return 0.0
        tail = self.max_load[-window:]
        return sum(tail) / len(tail)


def batched_balls_into_bins(
    n_bins: int,
    rounds: int,
    *,
    lam: float = 1.0,
    rng: Optional[random.Random] = None,
    initial_loads: Optional[Sequence[int]] = None,
) -> BinsTrace:
    """Simulate the OPS model for ``rounds`` steps at injection rate
    ``lam`` (fraction of full throughput; 1.0 = n balls per round)."""
    if n_bins < 1:
        raise ValueError("need at least one bin")
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    rng = rng or random.Random()
    loads = list(initial_loads) if initial_loads is not None \
        else [0] * n_bins
    if len(loads) != n_bins:
        raise ValueError("initial_loads length must equal n_bins")
    trace = BinsTrace(n_bins)
    carry = 0.0
    for _ in range(rounds):
        # service: every non-empty bin transmits one ball
        for i in range(n_bins):
            if loads[i] > 0:
                loads[i] -= 1
        # arrivals: lam * n balls, fractional part carried across rounds
        carry += lam * n_bins
        arrivals = int(carry)
        carry -= arrivals
        for _ in range(arrivals):
            loads[rng.randrange(n_bins)] += 1
        trace.max_load.append(max(loads))
        trace.total_balls.append(sum(loads))
    return trace


def average_max_load_curve(
    n_bins: int,
    rounds: int,
    *,
    lam: float = 0.99,
    repeats: int = 5,
    seed: int = 0,
) -> List[float]:
    """Average of the max-load trajectory over ``repeats`` runs
    (the Fig. 17 series for one port count)."""
    acc = [0.0] * rounds
    for r in range(repeats):
        trace = batched_balls_into_bins(
            n_bins, rounds, lam=lam, rng=random.Random(seed + r))
        for i, v in enumerate(trace.max_load):
            acc[i] += v
    return [a / repeats for a in acc]
