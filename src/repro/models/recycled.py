"""Recycled balls-into-bins: the REPS convergence model (Sec. 5.1).

The paper's new model: ``b * n`` colors cycle round-robin in batches of
``n``.  Each round every non-empty bin removes one ball; if the bin held
at most ``tau`` balls, the removed ball's color *remembers* the bin
(unless it already remembers another); above ``tau`` the color forgets.
Colors with a memory re-throw into their remembered bin; the rest throw
uniformly at random.

Theorem 5.1: for n >= 16, tau >= 4 ln n, b >= 2.4 ln n the process
converges in O(n log n) rounds with all queues O(log n) — while plain
batched spraying (``balls_bins.py``) grows without bound.  Fig. 18 plots
the two side by side; Fig. 20 adds coalesced recycling (a color is only
updated every ``coalesce`` removals, modelling ACK coalescing).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

from .balls_bins import BinsTrace


@dataclass
class RecycledParams:
    """Parameters of the recycled balls-into-bins process."""

    n_bins: int
    b: Optional[float] = None      # colors = b * n (default from Thm 5.1)
    tau: Optional[int] = None      # remember threshold (default from Thm 5.1)
    coalesce: int = 1              # color update every k-th removal

    def resolved(self) -> "RecycledParams":
        n = self.n_bins
        ln_n = math.log(max(n, 2))
        b = self.b if self.b is not None else max(2.4 * ln_n, 2.0)
        tau = self.tau if self.tau is not None else max(int(4 * ln_n), 4)
        return RecycledParams(n_bins=n, b=b, tau=tau,
                              coalesce=self.coalesce)


@dataclass
class RecycledTrace(BinsTrace):
    """Adds convergence bookkeeping to the base trace."""

    remembered_fraction: List[float] = field(default_factory=list)
    converged_round: Optional[int] = None


def recycled_balls_into_bins(
    params: RecycledParams,
    rounds: int,
    *,
    rng: Optional[random.Random] = None,
) -> RecycledTrace:
    """Simulate the recycled model for ``rounds`` steps at full rate."""
    p = params.resolved()
    n = p.n_bins
    if n < 1:
        raise ValueError("need at least one bin")
    rng = rng or random.Random()
    n_colors = max(n, int(p.b * n))
    # memory[c] = remembered bin of color c, or None
    memory: List[Optional[int]] = [None] * n_colors
    # each bin is a FIFO of colors (FIFO removal matters for the proof)
    bins: List[deque] = [deque() for _ in range(n)]
    trace = RecycledTrace(n)
    color_cursor = 0
    removals = [0] * n_colors  # coalescing: update memory every k-th pop
    for rnd in range(rounds):
        # removal phase
        for i, q in enumerate(bins):
            if not q:
                continue
            load_before = len(q)
            c = q.popleft()
            removals[c] += 1
            if removals[c] % p.coalesce != 0:
                continue  # coalesced away: no memory update this time
            if load_before <= p.tau:
                if memory[c] is None:
                    memory[c] = i
            else:
                memory[c] = None
        # throw phase: next batch of n colors
        for k in range(n):
            c = (color_cursor + k) % n_colors
            target = memory[c]
            if target is None:
                target = rng.randrange(n)
            bins[target].append(c)
        color_cursor = (color_cursor + n) % n_colors
        max_load = max(len(q) for q in bins)
        trace.max_load.append(max_load)
        trace.total_balls.append(sum(len(q) for q in bins))
        remembered = sum(1 for m in memory if m is not None)
        trace.remembered_fraction.append(remembered / n_colors)
        if trace.converged_round is None and max_load <= p.tau and \
                rnd > 0 and all(len(q) for q in bins):
            trace.converged_round = rnd
    return trace


def theorem_bounds(n: int) -> dict:
    """The Theorem 5.1 parameter thresholds for ``n`` bins."""
    ln_n = math.log(max(n, 2))
    return {
        "n": n,
        "tau_min": 4 * ln_n,
        "b_min": 2.4 * ln_n,
        "expected_rounds": n * ln_n,
        "max_load_order": ln_n,
    }
