"""Section-5 theory models: balls-into-bins analyses of OPS and REPS."""

from .balls_bins import (
    BinsTrace,
    average_max_load_curve,
    batched_balls_into_bins,
)
from .imbalance import ImbalanceStats, imbalance_sweep, load_imbalance
from .recycled import (
    RecycledParams,
    RecycledTrace,
    recycled_balls_into_bins,
    theorem_bounds,
)

__all__ = [
    "BinsTrace", "average_max_load_curve", "batched_balls_into_bins",
    "ImbalanceStats", "imbalance_sweep", "load_imbalance",
    "RecycledParams", "RecycledTrace", "recycled_balls_into_bins",
    "theorem_bounds",
]
