"""EVS-size load-imbalance model (Sec. 4.5.2, Fig. 14).

Balls-into-bins analysis of how many entropy values a spraying scheme
needs: each active flow hashes its whole EVS onto the switch's uplinks
(bins); the load imbalance ``lambda = max_load / (m / n) - 1`` measures
how far the fullest uplink sits above the average.  Small EVSs leave
>10% imbalance even with many flows; 2^16 EVs get below 1% (Fig. 14b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import List, Optional, Tuple

from ..sim.switch import ecmp_hash


@dataclass
class ImbalanceStats:
    """Distribution of load imbalance over repeated draws."""

    evs_size: int
    n_uplinks: int
    n_flows: int
    samples: List[float]

    @property
    def average(self) -> float:
        return mean(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        data = sorted(self.samples)
        k = min(len(data) - 1,
                max(0, int(round(p / 100 * (len(data) - 1)))))
        return data[k]

    @property
    def p2_5(self) -> float:
        return self.percentile(2.5)

    @property
    def p97_5(self) -> float:
        return self.percentile(97.5)


def load_imbalance(
    *,
    evs_size: int,
    n_uplinks: int,
    n_flows: int = 1,
    repeats: int = 100,
    seed: int = 0,
    use_ecmp_hash: bool = True,
) -> ImbalanceStats:
    """Measure the EV->uplink load imbalance distribution.

    For each trial, every flow (with its own header fields, hence its own
    hash salt) throws one ball per EV in the EVS; balls land in the
    uplink chosen by the ECMP hash.  Matches the paper's setup: "for each
    active flow a number of balls equal to the EVS size, each ball a
    unique EV".
    """
    if n_uplinks < 1 or evs_size < 1 or n_flows < 1:
        raise ValueError("evs_size, n_uplinks and n_flows must be >= 1")
    rng = random.Random(seed)
    samples: List[float] = []
    m = evs_size * n_flows  # total balls per trial
    avg = m / n_uplinks
    for _ in range(repeats):
        loads = [0] * n_uplinks
        for _flow in range(n_flows):
            if use_ecmp_hash:
                src = rng.getrandbits(32)
                dst = rng.getrandbits(32)
                salt = rng.getrandbits(63)
                for ev in range(evs_size):
                    loads[ecmp_hash(src, dst, ev, salt) % n_uplinks] += 1
            else:
                for _ev in range(evs_size):
                    loads[rng.randrange(n_uplinks)] += 1
        samples.append(max(loads) / avg - 1.0)
    return ImbalanceStats(evs_size, n_uplinks, n_flows, samples)


def imbalance_sweep(
    *,
    evs_exponents: Tuple[int, ...] = tuple(range(5, 17)),
    n_uplinks: int = 32,
    n_flows: int = 1,
    repeats: int = 50,
    seed: int = 0,
) -> List[ImbalanceStats]:
    """The Fig. 14 sweep: imbalance vs EVS size 2^5 .. 2^16."""
    return [
        load_imbalance(evs_size=1 << e, n_uplinks=n_uplinks,
                       n_flows=n_flows, repeats=repeats, seed=seed + e)
        for e in evs_exponents
    ]
