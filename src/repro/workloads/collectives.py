"""AI training collectives (Sec. 4.2): ring/butterfly AllReduce, AllToAll.

Collectives are dependency-driven flow schedulers: each completed flow
triggers the next step's flow from its receiver, modelling the step
synchronisation of real collective algorithms while the fabric below
carries every chunk as an ordinary message.

- **Ring AllReduce**: 2(N-1) steps of M/N chunks around a logical ring.
  ``spine_heavy_ring`` lays the ring out so every hop crosses the spine
  (the paper's FPGA baseline layout, Sec. 4.2).
- **Butterfly AllReduce** (recursive doubling): log2(N) rounds of
  full-message pairwise exchanges with partner ``i XOR 2^r``.
- **AllToAll(n)**: every node sends to every other, windowed to ``n``
  concurrent connections per node [31, 47].
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.network import Network


def spine_heavy_ring(n_hosts: int, hosts_per_t0: int) -> List[int]:
    """Ring order where consecutive hosts sit under different ToRs,
    forcing every ring hop across the T1 spine."""
    n_t0 = n_hosts // hosts_per_t0
    if n_t0 < 2:
        return list(range(n_hosts))
    order = []
    for offset in range(hosts_per_t0):
        for t0 in range(n_t0):
            order.append(t0 * hosts_per_t0 + offset)
    return order


class Collective:
    """Base class: tracks completion of a scheduled collective."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self.flows_issued = 0
        self.flows_completed = 0
        self._expected = 0
        self.done = False
        self.finish_us: Optional[float] = None

    def _flow_done(self, _sender) -> None:
        self.flows_completed += 1
        if self.flows_completed == self._expected:
            self.done = True
            self.finish_us = self.net.engine.now / 1_000_000

    def install(self, start_us: float = 0.0) -> None:  # pragma: no cover
        raise NotImplementedError


class RingAllReduce(Collective):
    """Ring AllReduce of ``message_bytes`` over ``order`` (default all)."""

    def __init__(self, net: Network, message_bytes: int,
                 order: Optional[Sequence[int]] = None) -> None:
        super().__init__(net)
        self.order = list(order) if order is not None \
            else list(range(len(net.tree.hosts)))
        n = len(self.order)
        if n < 2:
            raise ValueError("ring needs at least 2 participants")
        self.n = n
        self.steps = 2 * (n - 1)
        self.chunk = max(1, message_bytes // n)
        self._expected = n * self.steps

    def install(self, start_us: float = 0.0) -> None:
        for idx in range(self.n):
            self._send(idx, 0, start_us)

    def _send(self, idx: int, step: int, start_us: float = 0.0) -> None:
        src = self.order[idx]
        dst = self.order[(idx + 1) % self.n]
        self.flows_issued += 1
        self.net.add_flow(
            src, dst, self.chunk, start_us=start_us,
            on_complete=lambda s, i=idx, st=step: self._chunk_done(i, st),
            tag="collective",
        )

    def _chunk_done(self, idx: int, step: int) -> None:
        self._flow_done(None)
        # the receiver (next node on the ring) may start its next step
        if step + 1 < self.steps:
            self._send((idx + 1) % self.n, step + 1)


class ButterflyAllReduce(Collective):
    """Recursive-doubling AllReduce: log2(N) full-message exchanges."""

    def __init__(self, net: Network, message_bytes: int,
                 hosts: Optional[Sequence[int]] = None) -> None:
        super().__init__(net)
        self.hosts = list(hosts) if hosts is not None \
            else list(range(len(net.tree.hosts)))
        n = len(self.hosts)
        if n < 2 or n & (n - 1):
            raise ValueError("butterfly needs a power-of-two participant count")
        self.n = n
        self.rounds = n.bit_length() - 1
        self.message_bytes = message_bytes
        self._expected = n * self.rounds

    def install(self, start_us: float = 0.0) -> None:
        for i in range(self.n):
            self._send(i, 0, start_us)

    def _send(self, i: int, rnd: int, start_us: float = 0.0) -> None:
        partner = i ^ (1 << rnd)
        self.flows_issued += 1
        self.net.add_flow(
            self.hosts[i], self.hosts[partner], self.message_bytes,
            start_us=start_us,
            on_complete=lambda s, p=partner, r=rnd: self._round_done(p, r),
            tag="collective",
        )

    def _round_done(self, receiver: int, rnd: int) -> None:
        self._flow_done(None)
        # the receiver got its round-r data: it may start round r+1
        if rnd + 1 < self.rounds:
            self._send(receiver, rnd + 1)


class AllToAll(Collective):
    """AllToAll with at most ``n_parallel`` connections per node."""

    def __init__(self, net: Network, message_bytes: int, n_parallel: int,
                 hosts: Optional[Sequence[int]] = None) -> None:
        super().__init__(net)
        self.hosts = list(hosts) if hosts is not None \
            else list(range(len(net.tree.hosts)))
        n = len(self.hosts)
        if n < 2:
            raise ValueError("alltoall needs at least 2 participants")
        if n_parallel < 1:
            raise ValueError("n_parallel must be >= 1")
        self.n = n
        self.n_parallel = n_parallel
        self.bytes_per_pair = max(1, message_bytes // (n - 1))
        self._expected = n * (n - 1)
        # shifted destination order avoids synchronized incast: node i
        # targets i+1, i+2, ... (mod n), the classic linear-shift schedule
        self._queues = {
            i: [(i + k) % n for k in range(1, n)] for i in range(n)
        }

    def install(self, start_us: float = 0.0) -> None:
        for i in range(self.n):
            for _ in range(min(self.n_parallel, len(self._queues[i]))):
                self._send_next(i, start_us)

    def _send_next(self, i: int, start_us: float = 0.0) -> None:
        if not self._queues[i]:
            return
        j = self._queues[i].pop(0)
        self.flows_issued += 1
        self.net.add_flow(
            self.hosts[i], self.hosts[j], self.bytes_per_pair,
            start_us=start_us,
            on_complete=lambda s, src=i: self._pair_done(src),
            tag="collective",
        )

    def _pair_done(self, src: int) -> None:
        self._flow_done(None)
        self._send_next(src)
