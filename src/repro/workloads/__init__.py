"""Workload generators: synthetic patterns, DC traces, AI collectives."""

from .collectives import (
    AllToAll,
    ButterflyAllReduce,
    Collective,
    RingAllReduce,
    spine_heavy_ring,
)
from .synthetic import incast, permutation, tornado
from .traces import (
    FACEBOOK_CDF,
    TRACES,
    WEBSEARCH_CDF,
    TraceFlow,
    empirical_cdf,
    generate_trace_flows,
    mean_flow_size,
    sample_flow_size,
)

__all__ = [
    "incast", "permutation", "tornado",
    "AllToAll", "ButterflyAllReduce", "Collective", "RingAllReduce",
    "spine_heavy_ring",
    "WEBSEARCH_CDF", "FACEBOOK_CDF", "TRACES", "TraceFlow",
    "empirical_cdf", "generate_trace_flows", "mean_flow_size",
    "sample_flow_size",
]
