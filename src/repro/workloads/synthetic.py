"""Synthetic traffic patterns (Sec. 4.2): incast, permutation, tornado.

Each generator returns (src, dst) pairs; the harness attaches message
sizes and start times.  ``tornado`` is the worst case for load balancing:
every packet must cross the full tree (node i talks to its twin in the
other half), so ToR uplinks see maximum pressure.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

Pair = Tuple[int, int]


def incast(n_hosts: int, fan_in: int, *, receiver: int = 0,
           seed: Optional[int] = None) -> List[Pair]:
    """``fan_in`` senders all target one receiver (e.g. 8:1 incast)."""
    if not 1 <= fan_in < n_hosts:
        raise ValueError("fan_in must be in [1, n_hosts)")
    rng = random.Random(seed)
    candidates = [h for h in range(n_hosts) if h != receiver]
    if seed is not None:
        senders = rng.sample(candidates, fan_in)
    else:
        # deterministic default: the fan_in hosts farthest from receiver
        senders = candidates[-fan_in:]
    return [(s, receiver) for s in senders]


def permutation(n_hosts: int, *, seed: int = 0,
                cross_tor_only: bool = False,
                hosts_per_t0: Optional[int] = None) -> List[Pair]:
    """A random permutation: each host sends to and receives from exactly
    one other host (Sec. 4.2, from the DCTCP methodology).

    With ``cross_tor_only`` every pair is constructed to span two ToRs
    (shuffle within each ToR, then rotate whole ToR groups), ensuring all
    traffic exercises the uplinks (needs ``hosts_per_t0``).
    """
    rng = random.Random(seed)
    hosts = list(range(n_hosts))
    if cross_tor_only:
        if hosts_per_t0 is None:
            raise ValueError("cross_tor_only needs hosts_per_t0")
        n_t0 = n_hosts // hosts_per_t0
        if n_t0 < 2:
            raise ValueError("cross_tor_only needs at least two ToRs")
        groups = [hosts[t * hosts_per_t0:(t + 1) * hosts_per_t0]
                  for t in range(n_t0)]
        for g in groups:
            rng.shuffle(g)
        shift = rng.randrange(1, n_t0)
        pairs = []
        for t, group in enumerate(groups):
            dst_group = groups[(t + shift) % n_t0]
            pairs += list(zip(group, dst_group))
        pairs.sort()
        return pairs
    for _ in range(1000):
        dsts = hosts[:]
        rng.shuffle(dsts)
        if any(s == d for s, d in zip(hosts, dsts)):
            continue
        return list(zip(hosts, dsts))
    raise RuntimeError("could not draw a valid permutation")


def tornado(n_hosts: int) -> List[Pair]:
    """Each node sends to its twin in the other half of the tree:
    0 -> n/2, 1 -> n/2+1, ... and vice versa (Sec. 4.2)."""
    if n_hosts % 2:
        raise ValueError("tornado needs an even number of hosts")
    half = n_hosts // 2
    pairs = [(i, i + half) for i in range(half)]
    pairs += [(i + half, i) for i in range(half)]
    return pairs
