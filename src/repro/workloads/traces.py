"""Datacenter trace workloads (Sec. 4.2, Appendix D).

The paper replays production WebSearch and Facebook traces characterised
only by their flow-size CDFs (Fig. 24).  We reconstruct those CDFs from
the published distributions (DCTCP paper's web-search cluster; Facebook
Hadoop), sample flow sizes by inverse transform, and generate Poisson
flow arrivals at a requested load level — the standard methodology of the
works the paper cites [6, 65, 68].

Substitution note (DESIGN.md): real traces are proprietary; the CDFs are
the paper's own characterisation of them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: WebSearch flow-size CDF (bytes, cumulative probability) — DCTCP paper.
WEBSEARCH_CDF: Sequence[Tuple[int, float]] = (
    (6_000, 0.15),
    (13_000, 0.30),
    (19_000, 0.45),
    (33_000, 0.60),
    (53_000, 0.70),
    (133_000, 0.80),
    (667_000, 0.90),
    (1_333_000, 0.95),
    (6_667_000, 0.98),
    (20_000_000, 1.00),
)

#: Facebook (Hadoop-style) CDF: dominated by tiny flows, heavy tail.
FACEBOOK_CDF: Sequence[Tuple[int, float]] = (
    (300, 0.20),
    (1_000, 0.45),
    (2_000, 0.60),
    (10_000, 0.75),
    (100_000, 0.85),
    (1_000_000, 0.95),
    (10_000_000, 1.00),
)

TRACES = {"websearch": WEBSEARCH_CDF, "facebook": FACEBOOK_CDF}


def sample_flow_size(cdf: Sequence[Tuple[int, float]],
                     rng: random.Random) -> int:
    """Inverse-transform sample with log-linear interpolation between
    CDF knots (flow sizes span decades, so interpolate in log space)."""
    u = rng.random()
    prev_size, prev_p = 1, 0.0
    for size, p in cdf:
        if u <= p:
            if p == prev_p:
                return size
            frac = (u - prev_p) / (p - prev_p)
            log_size = (math.log(prev_size)
                        + frac * (math.log(size) - math.log(prev_size)))
            return max(1, int(round(math.exp(log_size))))
        prev_size, prev_p = size, p
    return cdf[-1][0]


def mean_flow_size(cdf: Sequence[Tuple[int, float]]) -> float:
    """Mean of the interpolated distribution (log-linear segments),
    estimated by fine numeric integration of the inverse CDF."""
    steps = 10_000
    total = 0.0
    prev_size, prev_p = 1, 0.0
    knots = [(1, 0.0)] + list(cdf)
    for (s0, p0), (s1, p1) in zip(knots, knots[1:]):
        if p1 == p0:
            continue
        n = max(1, int(steps * (p1 - p0)))
        for i in range(n):
            frac = (i + 0.5) / n
            total += math.exp(math.log(s0)
                              + frac * (math.log(s1) - math.log(s0))) \
                * (p1 - p0) / n
        prev_size, prev_p = s1, p1
    return total


@dataclass
class TraceFlow:
    """One sampled flow: (src, dst, size_bytes, start_us)."""

    src: int
    dst: int
    size_bytes: int
    start_us: float


def generate_trace_flows(
    *,
    n_hosts: int,
    load: float,
    duration_us: float,
    host_gbps: float,
    trace: str = "websearch",
    seed: int = 0,
) -> List[TraceFlow]:
    """Poisson arrivals at ``load`` (fraction of host line rate).

    Every host sends flows whose sizes follow the trace CDF to uniformly
    random other hosts; inter-arrival times are exponential with rate
    ``load * line_rate / mean_flow_size`` per host (Sec. 4.2: "For each
    node we select randomly the receiver").
    """
    if not 0 < load <= 1.5:
        raise ValueError("load must be in (0, 1.5]")
    cdf = TRACES[trace]
    rng = random.Random(seed)
    mean_size = mean_flow_size(cdf)
    bytes_per_us = host_gbps * 1000 / 8
    rate_per_us = load * bytes_per_us / mean_size  # flows per us per host
    flows: List[TraceFlow] = []
    for src in range(n_hosts):
        t = 0.0
        while True:
            t += rng.expovariate(rate_per_us)
            if t >= duration_us:
                break
            dst = rng.randrange(n_hosts - 1)
            if dst >= src:
                dst += 1
            flows.append(TraceFlow(src, dst,
                                   sample_flow_size(cdf, rng), t))
    flows.sort(key=lambda f: f.start_us)
    return flows


def empirical_cdf(sizes: Sequence[int]) -> List[Tuple[int, float]]:
    """Empirical CDF points of sampled sizes (for the Fig. 24 bench)."""
    if not sizes:
        return []
    ordered = sorted(sizes)
    n = len(ordered)
    return [(s, (i + 1) / n) for i, s in enumerate(ordered)]
