"""repro — reproduction of REPS (Bonato et al., EuroSys '26).

Recycled Entropy Packet Spraying: a per-packet adaptive load balancer for
out-of-order datacenter transports, plus the full evaluation substrate —
a packet-level network simulator, baseline load balancers, workload
generators and the Section-5 balls-into-bins theory models.

Quickstart::

    from repro import Network, NetworkConfig, TopologyParams
    from repro.workloads import permutation

    cfg = NetworkConfig(topo=TopologyParams(n_hosts=32, hosts_per_t0=8),
                        lb="reps")
    net = Network(cfg)
    for src, dst in permutation(32, seed=7):
        net.add_flow(src, dst, 1 << 20)
    print(net.run().summary())
"""

from .core import RepsConfig, RepsSender, compute_footprint
from .sim import (
    FatTree,
    Network,
    NetworkConfig,
    RunMetrics,
    TopologyParams,
)

__version__ = "1.0.0"

__all__ = [
    "RepsConfig", "RepsSender", "compute_footprint",
    "Network", "NetworkConfig", "TopologyParams", "FatTree", "RunMetrics",
    "__version__",
]
