"""Live orchestration status: a console line and a self-refreshing
HTML page.

``repro orchestrate`` re-renders this page on every state change
(shard launched, heartbeat progress, merge, retry, chaos kill), so an
operator can watch a long campaign from a browser tab without a
server: the page refreshes itself with a ``<meta http-equiv=refresh>``
while the run is live and stops refreshing once the campaign reaches a
terminal state.  Writes are atomic (temp file + ``os.replace``) — a
refresh mid-write can never show a torn page.

The input is the orchestrator's plain status document (a dict built by
``Orchestrator._status_doc``), not its live objects, so these
renderers are trivially testable and the page is a pure function of
one snapshot.
"""

from __future__ import annotations

import html
import os
from typing import Dict, List, Sequence

#: states after which the page stops auto-refreshing
TERMINAL_STATES = ("complete", "failed")

_STATE_COLORS = {
    "pending": "#8a8a8a",
    "running": "#1f6feb",
    "merged": "#1a7f37",
    "failed": "#cf222e",
    "aborted": "#cf222e",
}


def _shards(doc: Dict[str, object]) -> List[Dict[str, object]]:
    shards = doc.get("shards")
    return list(shards) if isinstance(shards, (list, tuple)) else []


def render_status_text(doc: Dict[str, object]) -> str:
    """One-glance console rendering of a status snapshot."""
    shards = _shards(doc)
    done = doc.get("tasks_done", 0)
    total = doc.get("tasks_total", 0)
    merged = sum(1 for s in shards if s.get("status") == "merged")
    head = (f"[{doc.get('state', '?')}] tasks {done}/{total} · "
            f"shards {merged}/{len(shards)} merged · "
            f"retries {doc.get('retries', 0)}")
    if doc.get("chaos_killed"):
        head += f" · chaos kills {doc['chaos_killed']}"
    lines = [head]
    for s in shards:
        lines.append(
            f"  shard {s.get('shard')}: {s.get('status'):<8} "
            f"{s.get('done', 0)}/{s.get('total', 0)} "
            f"attempt {s.get('attempts', 0)} {s.get('worker', '')}")
    return "\n".join(lines)


def _bar(done: int, total: int) -> str:
    pct = 0 if not total else int(round(100.0 * done / total))
    return (f'<div class="bar"><div class="fill" '
            f'style="width:{pct}%"></div></div>'
            f'<span class="pct">{pct}%</span>')


def render_live_html(doc: Dict[str, object]) -> str:
    """The full status page for one snapshot."""
    state = str(doc.get("state", "?"))
    shards = _shards(doc)
    refresh = ("" if state in TERMINAL_STATES else
               '<meta http-equiv="refresh" content="2">')
    rows = []
    for s in shards:
        status = str(s.get("status", "?"))
        color = _STATE_COLORS.get(status, "#8a8a8a")
        err = str(s.get("error") or "")
        rows.append(
            "<tr>"
            f"<td>{int(s.get('shard', 0))}</td>"
            f'<td><span class="badge" style="background:{color}">'
            f"{html.escape(status)}</span></td>"
            f"<td>{int(s.get('done', 0))}/{int(s.get('total', 0))}</td>"
            f"<td>{int(s.get('attempts', 0))}</td>"
            f"<td>{html.escape(str(s.get('worker', '')))}</td>"
            f"<td>{float(s.get('expected_s', 0.0)):.1f}s</td>"
            f"<td>{float(s.get('wall_s', 0.0)):.1f}s</td>"
            f"<td>{html.escape(err.splitlines()[0] if err else '')}"
            "</td></tr>")
    events: Sequence[str] = doc.get("events") or ()
    event_items = "\n".join(
        f"<li>{html.escape(str(e))}</li>" for e in events)
    done = int(doc.get("tasks_done", 0))
    total = int(doc.get("tasks_total", 0))
    state_color = {"complete": "#1a7f37",
                   "failed": "#cf222e"}.get(state, "#1f6feb")
    return f"""<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
{refresh}
<title>repro orchestrate — {html.escape(state)}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem;
        color: #1f2328; }}
table {{ border-collapse: collapse; margin: 1rem 0; }}
td, th {{ border: 1px solid #d0d7de; padding: .3rem .6rem;
          text-align: left; }}
.badge {{ color: #fff; border-radius: .6rem; padding: .1rem .5rem; }}
.bar {{ display: inline-block; width: 16rem; height: .8rem;
        background: #d0d7de; border-radius: .4rem; overflow: hidden;
        vertical-align: middle; }}
.fill {{ height: 100%; background: #1f6feb; }}
.pct {{ margin-left: .5rem; }}
.meta {{ color: #57606a; }}
ul {{ color: #57606a; }}
</style>
</head>
<body>
<h1>repro orchestrate
<span class="badge" style="background:{state_color}">
{html.escape(state)}</span></h1>
<p class="meta">scale {html.escape(str(doc.get('scale', '?')))} ·
runner {html.escape(str(doc.get('runner', '?')))} ·
fan-out {int(doc.get('fan_out', 0))} ·
retries {int(doc.get('retries', 0))} ·
chaos kills {int(doc.get('chaos_killed', 0))} ·
wall {float(doc.get('wall_s', 0.0)):.1f}s ·
updated {html.escape(str(doc.get('updated_at', '')))}</p>
<p>tasks {done}/{total} {_bar(done, total)}</p>
<table>
<tr><th>shard</th><th>status</th><th>done</th><th>attempts</th>
<th>worker</th><th>expected</th><th>wall</th><th>error</th></tr>
{''.join(rows)}
</table>
<h2>events</h2>
<ul>
{event_items}
</ul>
</body>
</html>
"""


def write_live_html(path: str, doc: Dict[str, object]) -> str:
    """Atomically (re)write the live page; returns ``path``."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        fh.write(render_live_html(doc))
    os.replace(tmp, path)
    return path
