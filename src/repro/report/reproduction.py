"""``REPRODUCTION.md`` + ``campaign.json`` from one campaign run.

The markdown report is the human-auditable artifact: a provenance
header, a campaign summary table, then one fidelity-badged section per
figure with the measured-vs-paper table (95% CIs where the figure
aggregates seeds), an ASCII chart of the headline metric, and the
spec's notes.  ``campaign.json`` carries the same content
machine-readable, for CI trend tracking and external tooling.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..harness.ascii_charts import bar_chart, sparkline
from ..harness.campaign import STATUSES, CampaignResult, FigureOutcome
from ..harness.report import format_markdown_table
from ..scenarios import figure_ids
from .provenance import collect_provenance, store_throughput

#: bump when the campaign.json layout changes
REPORT_SCHEMA = 1

#: status -> short explanation used in the report legend
_LEGEND = {
    "pass": "paper-shape checks hold",
    "warn": "measured, but no shape check to verify against",
    "fail": "measured numbers diverge from the paper's claimed shape",
    "error": "figure did not execute (crash captured below)",
}


def _safe_table(outcome: FigureOutcome):
    """The figure's table doc, fail-soft and computed once.

    The campaign itself is fail-soft, but ``spec.table`` callables run
    only at render time; a table that crashes (e.g. a hardcoded axis
    key missing from a scale-reduced matrix) must cost one section's
    table, never the whole report after the simulations already ran.
    The result is memoized on the outcome so the markdown and JSON
    renderers don't re-aggregate every figure's sweep.  Returns
    ``(table_doc | None, error_message)``.
    """
    cached = getattr(outcome, "_table_cache", None)
    if cached is not None:
        return cached
    if outcome.result is None:
        value = (None, "")
    else:
        try:
            value = (outcome.result.table_doc(), "")
        except Exception:
            import traceback
            value = (None, traceback.format_exc(limit=4))
    outcome._table_cache = value
    return value


def _finite(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _distinct_seeds(campaign: CampaignResult) -> int:
    seeds = set()
    for outcome in campaign:
        if outcome.result is None:
            continue
        for task_result in outcome.result.sweep:
            seeds.add(task_result.task.seed)
    return len(seeds)


def _is_number(cell) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)


def _chart_column(headers: Sequence[str],
                  rows: Sequence[Sequence[object]]
                  ) -> Tuple[Optional[str], List[Tuple]]:
    """``(column header, (label, value) pairs)`` for the section chart.

    One column is chosen — the first (past the label column) that is
    numeric in some row — and used for *every* row, so the chart never
    mixes incomparable columns; rows where that cell is non-numeric
    are skipped.
    """
    headers = list(headers)
    rows = [list(r) for r in rows]
    col = next((j for j in range(1, len(headers))
                if any(len(r) > j and _is_number(r[j]) for r in rows)),
               None)
    if col is None:
        return None, []
    items = [(str(r[0]), float(r[col])) for r in rows
             if len(r) > col and r and _is_number(r[col])]
    return str(headers[col]) if col < len(headers) else None, items


def _figure_series(outcome: FigureOutcome) -> Dict[str, Dict[str, list]]:
    """``row label -> series name -> samples`` for one outcome (empty
    for scalar figures / unexecuted ones)."""
    if outcome.result is None:
        return {}
    out: Dict[str, Dict[str, list]] = {}
    for key in outcome.result.keys():
        series = outcome.result[key].series
        if series:
            out[str(key)] = dict(series)
    return out


def _series_panel(outcome: FigureOutcome) -> List[str]:
    """The time-series figure's "plot": one sparkline per row of the
    headline series, on a shared scale, with the window grid range."""
    by_row = _figure_series(outcome)
    name = outcome.spec.metric
    curves = {}
    t_range = ""
    for row, series in by_row.items():
        values = series.get(name)
        if not values:
            continue
        curves[row] = [0.0 if v is None else float(v) for v in values]
        t_us = series.get("t_us")
        if t_us and not t_range:
            t_range = f", t = {t_us[0]:.0f}..{t_us[-1]:.0f} us"
    if not curves:
        return []
    top = max((max(vals) for vals in curves.values() if vals),
              default=0.0)
    width = max(len(row) for row in curves)
    lines = ["```text",
             f"{name} per window (full scale = {top:,.0f}{t_range})"]
    lines += [f"{row:<{width}}  {sparkline(vals, max_value=top)}"
              for row, vals in curves.items()]
    lines += ["```", ""]
    return lines


def _figure_section(outcome: FigureOutcome) -> str:
    spec = outcome.spec
    lines = [f"## {spec.fig_id} — {spec.figure} `{outcome.badge()}`", "",
             spec.title, ""]
    meta = (f"tags: {', '.join(spec.tags) or '—'} · metric: "
            f"`{spec.metric}` · {outcome.n_tasks} tasks "
            f"({outcome.executed} executed, {outcome.cached} cached) "
            f"· {outcome.wall_s:.1f} s")
    lines += [meta, ""]
    if spec.doc:
        lines += [spec.doc, ""]
    if outcome.status == "error":
        # a crash in the shape check still leaves measured results;
        # only a figure that never executed has nothing to show
        intro = "Figure did not execute:" if outcome.result is None \
            else "Shape check crashed (measured results below):"
        lines += [intro, "", "```text", outcome.error.rstrip(), "```",
                  ""]
        if outcome.result is None:
            return "\n".join(lines)
    if outcome.status == "fail":
        lines += [f"> **Diverges from the paper:** {outcome.error}", ""]
    table_doc, table_error = _safe_table(outcome)
    if table_doc is None:
        lines += ["Table renderer failed:", "", "```text",
                  table_error.rstrip(), "```", ""]
        return "\n".join(lines)
    headers, rows, notes = table_doc
    lines += [format_markdown_table(headers, rows), ""]
    if spec.metric_kind == "timeseries":
        # the trajectory *is* the figure: sparkline the headline
        # series instead of bar-charting a summary column
        lines += _series_panel(outcome)
    else:
        value_header, chart = _chart_column(headers, rows)
        if len(chart) >= 2:
            lines += ["```text", value_header or spec.metric,
                      bar_chart(chart), "```", ""]
    for note in notes:
        lines += [f"*{note}*", ""]
    return "\n".join(lines)


def _arena_outcomes(campaign: CampaignResult) -> List[FigureOutcome]:
    return [o for o in campaign if "arena" in o.spec.tags]


def _arena_policies(campaign: CampaignResult) -> List[str]:
    """The arena's policy set, in the order the run requested it
    (read back from the first arena table — its rows are one per
    policy, pivot first)."""
    for outcome in _arena_outcomes(campaign):
        table_doc, _ = _safe_table(outcome)
        if table_doc is not None:
            return [str(row[0]) for row in table_doc[1]]
    return []


def _arena_rollup(campaign: CampaignResult) -> List[str]:
    """The cross-policy rollup: every arena figure's per-policy means
    side by side, plus each policy's geometric-mean ratio vs the
    pivot.  Empty when the campaign ran without ``--policies``."""
    arena = _arena_outcomes(campaign)
    policies = _arena_policies(campaign)
    if not arena or not policies:
        return []
    pivot = policies[0]
    rows = []
    ratios: Dict[str, List[float]] = {p: [] for p in policies}
    for outcome in arena:
        table_doc, _ = _safe_table(outcome)
        if table_doc is None:
            continue
        by_policy = {str(r[0]): r for r in table_doc[1]}
        cells = []
        for policy in policies:
            row = by_policy.get(policy)
            if row is None or not _is_number(row[1]) \
                    or not math.isfinite(float(row[1])):
                cells.append("—")
                continue
            mean, ratio = float(row[1]), float(row[2])
            if policy == pivot:
                cells.append(f"{mean:,.2f}")
            elif math.isfinite(ratio):
                cells.append(f"{mean:,.2f} ({ratio:.2f}×)")
                ratios[policy].append(ratio)
            else:
                cells.append(f"{mean:,.2f}")
        rows.append([f"[`{outcome.fig_id}`](#{_anchor(outcome)})",
                     f"`{outcome.badge()}`", outcome.spec.metric]
                    + cells)
    geo = []
    for policy in policies:
        if policy == pivot:
            geo.append("1.00×")
        elif ratios[policy]:
            logsum = sum(math.log(r) for r in ratios[policy]
                         if r > 0)
            geo.append(f"{math.exp(logsum / len(ratios[policy])):.2f}×")
        else:
            geo.append("—")
    rows.append(["**geomean vs pivot**", "", ""] + geo)
    return [
        "## Cross-policy arena", "",
        f"{len(arena)} figure(s) re-run head-to-head: each base "
        f"figure's canonical `{pivot}` cells re-targeted onto "
        f"{', '.join(f'`{p}`' for p in policies)} with every other "
        "parameter unchanged (competitor horizons capped at 1 s "
        "simulated; a policy still incomplete there scores DNF and "
        "the figure fails).  Cells show the per-policy mean of the "
        "figure's metric (ratio vs the pivot in parentheses; below "
        "1× beats it on a lower-is-better metric).", "",
        format_markdown_table(
            ["figure", "status", "metric"] + policies, rows),
        "",
    ]


def render_reproduction(campaign: CampaignResult,
                        provenance: Optional[Dict[str, object]] = None
                        ) -> str:
    """The full ``REPRODUCTION.md`` body."""
    prov = provenance if provenance is not None else collect_provenance()
    counts = campaign.counts()
    store_line = "(no artifact store)"
    if campaign.store is not None:
        store_line = (f"`{campaign.store.root}` "
                      f"({len(campaign.store)} artifacts"
                      + (f", {len(campaign.pruned)} pruned"
                         if campaign.pruned else "") + ")")
        # recorded execution accounting (manifest-carried wall times)
        # — stated when present so the report shows what the adaptive
        # scheduler had to work with
        thr = store_throughput(campaign.store)
        if thr["tasks_timed"]:
            store_line += (f"; {thr['tasks_timed']} timed tasks, "
                           f"{thr['task_wall_s']:.1f} s task wall, "
                           f"{thr['tasks_per_s']:.1f} tasks/s")
    registered = len(figure_ids())
    if len(campaign) >= registered:
        scope = ("Every registered paper figure, reproduced by one "
                 "command (`repro figures run --all`)")
    else:
        # a filtered campaign must say so, or the committed full
        # report could be silently replaced by a subset that still
        # claims whole-paper coverage
        scope = (f"**Partial campaign**: {len(campaign)} of the "
                 f"{registered} registered paper figures "
                 "(`--only/--skip/--tag` filters applied), reproduced")
    head = [
        "# REPS reproduction report", "",
        scope + " through the shared sweep harness and judged against "
        "the paper's shape claims.  Regenerate with:",
        "", "```bash",
        "PYTHONPATH=src python -m repro figures run --all "
        f"--scale {prov['scale']}",
        "```", "",
        "## Provenance", "",
        format_markdown_table(
            ["field", "value"],
            [["generated at", prov["generated_at"]],
             ["git revision", f"`{prov['git_sha']}`"],
             ["simulator hash", f"`{prov['simulator_version']}`"],
             ["artifact schema", prov["schema_version"]],
             ["bench scale", f"`{prov['scale']}`"],
             ["execution backend", f"`{prov.get('backend', 'serial')}`"
              + (f" (shard `{prov['shard']}`)"
                 if prov.get("shard") else "")],
             ["python", prov["python"]],
             ["platform", prov["platform"]],
             ["campaign wall time", f"{campaign.wall_s:.1f} s"],
             ["distinct seeds", _distinct_seeds(campaign)],
             ["artifact store", store_line]]),
        "",
        "## Campaign summary", "",
        format_markdown_table(
            ["outcome", "figures", "meaning"],
            [[f"`[{s.upper()}]`", counts[s], _LEGEND.get(s, s)]
             for s in STATUSES]),
        "",
        f"{len(campaign)} figures · {campaign.tasks} tasks "
        f"({campaign.executed} executed, {campaign.cached} served from "
        "the content-keyed store — cross-figure dedup included).", "",
        format_markdown_table(
            ["figure", "paper", "status", "tasks", "executed", "cached",
             "wall (s)"],
            [[f"[`{o.fig_id}`](#{_anchor(o)})", o.spec.figure,
              f"`{o.badge()}`", o.n_tasks, o.executed, o.cached,
              round(o.wall_s, 1)] for o in campaign]),
        "",
    ]
    head += _arena_rollup(campaign)
    sections = [_figure_section(outcome) for outcome in campaign]
    return "\n".join(head) + "\n" + "\n".join(sections)


def _anchor(outcome: FigureOutcome) -> str:
    """GitHub anchor for a figure's section heading."""
    text = (f"{outcome.spec.fig_id} — {outcome.spec.figure} "
            f"{outcome.badge()}")
    keep = [c for c in text.lower().replace(" ", "-")
            if c.isalnum() or c in "-_"]
    return "".join(keep)


def campaign_doc(campaign: CampaignResult,
                 provenance: Optional[Dict[str, object]] = None
                 ) -> Dict[str, object]:
    """The machine-readable campaign record (``campaign.json``)."""
    prov = provenance if provenance is not None else collect_provenance()
    counts = campaign.counts()
    figures = []
    for outcome in campaign:
        doc = {
            "fig_id": outcome.fig_id,
            "figure": outcome.spec.figure,
            "title": outcome.spec.title,
            "tags": list(outcome.spec.tags),
            "metric": outcome.spec.metric,
            "metric_kind": outcome.spec.metric_kind,
            "status": outcome.status,
            "error": outcome.error,
            "wall_s": round(outcome.wall_s, 3),
            "tasks": outcome.n_tasks,
            "executed": outcome.executed,
            "cached": outcome.cached,
            "table": None,
        }
        table_doc, table_error = _safe_table(outcome)
        if table_doc is not None:
            headers, rows, notes = table_doc
            doc["table"] = {
                "headers": [str(h) for h in headers],
                "rows": [[_finite(c) for c in row] for row in rows],
                "notes": [str(n) for n in notes],
            }
        elif table_error and not doc["error"]:
            doc["error"] = table_error
        by_row = _figure_series(outcome)
        if by_row:
            # the raw trajectories, machine-readable; trend gating
            # reads these back as summary statistics
            doc["series"] = {
                row: {name: [None if v is None else round(float(v), 4)
                             for v in values]
                      for name, values in series.items()}
                for row, series in by_row.items()}
        figures.append(doc)
    return {
        "schema": REPORT_SCHEMA,
        "provenance": prov,
        "summary": {
            "figures": len(campaign),
            "registered": len(figure_ids()),
            **counts,
            "tasks": campaign.tasks,
            "executed": campaign.executed,
            "cached": campaign.cached,
            "distinct_seeds": _distinct_seeds(campaign),
            "policies": _arena_policies(campaign),
            "wall_s": round(campaign.wall_s, 3),
            "pruned": len(campaign.pruned),
            "store": (campaign.store.root
                      if campaign.store is not None else None),
        },
        "figures": figures,
    }


def write_campaign_report(campaign: CampaignResult, *,
                          report_path: str = "REPRODUCTION.md",
                          json_path: str = "campaign.json"
                          ) -> Tuple[str, str]:
    """Render and write both artifacts; one provenance snapshot feeds
    both so they can never disagree about their origin."""
    prov = collect_provenance(backend=getattr(campaign, "backend", None))
    for path in (report_path, json_path):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
    with open(report_path, "w") as fh:
        fh.write(render_reproduction(campaign, prov))
    with open(json_path, "w") as fh:
        json.dump(campaign_doc(campaign, prov), fh, indent=2)
        fh.write("\n")
    return report_path, json_path
