"""Report generation: the self-documenting reproduction artifacts.

One campaign run (:func:`repro.harness.campaign.run_campaign`) feeds
two generators:

- :mod:`repro.report.reproduction` renders ``REPRODUCTION.md`` — the
  consolidated measured-vs-paper report with per-figure fidelity badges
  and a provenance header — plus the machine-readable
  ``campaign.json``.
- :mod:`repro.report.figure_docs` renders ``docs/figures/`` straight
  from the figure registry (no execution), so figure documentation is
  a pure function of the specs and can never drift from code.
- :mod:`repro.report.trend` compares two ``campaign.json`` records
  (``repro figures trend``): badge transitions, metric drift, and
  coverage changes between runs, the CI regression gate.
- :mod:`repro.report.live` renders the self-refreshing status page
  ``repro orchestrate`` rewrites as shards launch, merge and retry.

All of them share :mod:`repro.report.provenance` for the environment
header.
"""

from .figure_docs import (
    docs_drift,
    render_figure_page,
    render_index,
    write_figure_docs,
)
from .live import (
    render_live_html,
    render_status_text,
    write_live_html,
)
from .provenance import collect_provenance
from .reproduction import (
    campaign_doc,
    render_reproduction,
    write_campaign_report,
)
from .trend import (
    TrendReport,
    diff_campaigns,
    load_record,
    render_trend,
)

__all__ = [
    "TrendReport",
    "campaign_doc",
    "collect_provenance",
    "diff_campaigns",
    "docs_drift",
    "load_record",
    "render_figure_page",
    "render_index",
    "render_live_html",
    "render_reproduction",
    "render_status_text",
    "render_trend",
    "write_campaign_report",
    "write_figure_docs",
    "write_live_html",
]
