"""Campaign trend tracking: regression deltas between two records.

``repro figures trend OLD.json NEW.json`` compares two
``campaign.json`` records (the machine-readable half of a campaign
run) figure by figure:

- **badge transitions** — a figure whose fidelity status worsened
  (``pass`` → ``fail``, anything → ``error``) is a regression; an
  improved badge is reported but benign.
- **metric drift** — a row's identity is the tuple of its
  *non-numeric* cells (label columns like lb/workload/load; a bare
  first-column label alone is ambiguous — several figures emit
  multiple rows per label), and its numeric cells are the
  measurements, matched by column header.  Numeric cells whose
  relative change exceeds ``tol`` are drift; a numeric cell whose
  column vanished (removed/renamed header, or a number degrading to
  text) is drift too.  The simulator is deterministic, so at equal
  scale and unchanged code the tables must match exactly — the
  default ``tol=0`` makes this a byte-level drift gate; loosen
  ``tol`` when comparing across intentional behaviour changes.
- **coverage** — figures (or table rows) present in the old record
  but missing from the new one are regressions; new figures/rows are
  reported as additions.  Because identity is the categorical cells,
  a renamed label row reads as one row vanished + one added — a
  visible coverage change, not a silent pass.
- **time-series drift** — a figure's ``series`` arrays (windowed
  probe trajectories) are gated by *summary statistics*, not
  element-wise: each ``(row, series)`` contributes ``name[n]``,
  ``name[mean]``, ``name[min]``, ``name[max]`` and ``name[last]``
  pseudo-cells that diff exactly like table cells (same ``tol``,
  same vanished-column rule).  The simulator is deterministic, so at
  equal scale identical code must reproduce identical statistics;
  element-wise noise from an intentional change stays readable as a
  handful of stat drifts instead of thousands of cell diffs.

The comparison deliberately ignores provenance, wall times and
executed/cached counts: those describe *how* a campaign ran, not what
it measured.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: fidelity badges ranked: higher is worse (transition up = regression)
_STATUS_RANK = {"pass": 0, "warn": 1, "fail": 2, "error": 3}


def load_record(path: str) -> Dict[str, object]:
    """Read one ``campaign.json`` record (shape-checked).

    The full figure structure is validated here so a truncated or
    hand-edited record fails with one clean message instead of a
    traceback from deep inside the diff.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read campaign record {path}: {exc}")
    figures = doc.get("figures") if isinstance(doc, dict) else None
    if not isinstance(figures, list):
        raise ValueError(f"{path} is not a campaign.json record "
                         "(no 'figures' array)")
    for i, fig in enumerate(figures):
        if not isinstance(fig, dict) or "fig_id" not in fig:
            raise ValueError(
                f"{path} is not a campaign.json record (figure entry "
                f"{i} has no 'fig_id')")
        table = fig.get("table")
        if table is not None and (
                not isinstance(table, dict)
                or not isinstance(table.get("headers", []), list)
                or not isinstance(table.get("rows", []), list)):
            raise ValueError(
                f"{path} is not a campaign.json record "
                f"({fig['fig_id']}: malformed 'table')")
    return doc


def _is_number(cell) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)


def _row_label(row: Sequence[object]) -> str:
    """A row's identity: every non-numeric (categorical) cell.

    Several figures emit multiple rows per first-column label (e.g. a
    load level × one row per lb), so the first cell alone would make
    duplicate rows shadow each other and hide their regressions.
    """
    cats = [str(c) for c in row if not _is_number(c)]
    return " · ".join(cats) if cats else str(row[0])


def _table_index(figure: Dict[str, object]
                 ) -> Tuple[List[str], Dict[Tuple[str, str], object]]:
    """``(row labels, (label, header) -> numeric cell)`` for one table.

    Rows whose categorical cells collide exactly get a stable ``#k``
    occurrence suffix (table order is deterministic), so even fully
    duplicate labels cannot overwrite one another.
    """
    table = figure.get("table") or {}
    headers = [str(h) for h in table.get("headers", [])]
    seen: Dict[str, int] = {}
    labels: List[str] = []
    cells: Dict[Tuple[str, str], object] = {}
    for row in table.get("rows", []):
        if not row:
            continue
        base = _row_label(row)
        k = seen.get(base, 0)
        seen[base] = k + 1
        label = base if k == 0 else f"{base} #{k + 1}"
        labels.append(label)
        for j, cell in enumerate(row):
            if not _is_number(cell):
                continue  # categorical: part of the label, not a metric
            header = headers[j] if j < len(headers) else f"col{j}"
            cells[(label, header)] = cell
    _merge_series_stats(figure, labels, cells)
    return labels, cells


def _merge_series_stats(figure: Dict[str, object], labels: List[str],
                        cells: Dict[Tuple[str, str], object]) -> None:
    """Fold a figure's ``series`` arrays into the cell index as
    summary-statistic pseudo-cells (``name[stat]`` per row).

    Series rows share the label namespace with table rows — the same
    entity (e.g. one lb) — so a vanished lb reads as one vanished row,
    not a row loss plus five stat losses.
    """
    series = figure.get("series")
    if not isinstance(series, dict):
        return
    for row, named in sorted(series.items()):
        if not isinstance(named, dict):
            continue
        if row not in labels:
            labels.append(row)
        for name, values in sorted(named.items()):
            if not isinstance(values, list):
                continue
            finite = [v for v in values if _is_number(v)]
            stats = {"n": len(values)}
            if finite:
                stats.update(mean=round(sum(finite) / len(finite), 4),
                             min=min(finite), max=max(finite),
                             last=finite[-1])
            for stat, value in stats.items():
                cells[(row, f"{name}[{stat}]")] = value


@dataclass
class Drift:
    """One table cell that moved (or appeared/vanished)."""

    fig_id: str
    row: str
    column: str
    old: Optional[object]
    new: Optional[object]
    rel: float  # relative change; inf for appear/vanish or from-zero

    def describe(self) -> str:
        if self.old is None:
            return (f"{self.fig_id}: {self.row!r} gained "
                    f"{self.column}={self.new}")
        if self.new is None:
            return (f"{self.fig_id}: {self.row!r} {self.column} "
                    f"vanished (was {self.old})")
        rel = "∞" if math.isinf(self.rel) else f"{self.rel:.1%}"
        return (f"{self.fig_id}: {self.row!r} {self.column} "
                f"{self.old} → {self.new} ({rel})")


@dataclass
class FigureTrend:
    """One figure's delta between two campaign records."""

    fig_id: str
    old_status: str
    new_status: str
    drifts: List[Drift] = field(default_factory=list)
    #: measurements that appeared in surviving rows (benign, visible)
    new_cells: List[Drift] = field(default_factory=list)
    vanished_rows: List[str] = field(default_factory=list)
    new_rows: List[str] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return _STATUS_RANK.get(self.new_status, 3) > \
            _STATUS_RANK.get(self.old_status, 3)

    @property
    def improved(self) -> bool:
        return _STATUS_RANK.get(self.new_status, 3) < \
            _STATUS_RANK.get(self.old_status, 3)

    @property
    def changed(self) -> bool:
        return bool(self.drifts or self.new_cells or self.vanished_rows
                    or self.new_rows
                    or self.old_status != self.new_status)


@dataclass
class TrendReport:
    """The full OLD → NEW comparison."""

    figures: List[FigureTrend]
    added: List[str]      # fig_ids only in NEW (benign)
    removed: List[str]    # fig_ids only in OLD (regression)
    tol: float

    def regressions(self) -> List[str]:
        """Everything ``--strict`` fails on, human-readable."""
        out = [f"figure {fig_id} removed from the campaign"
               for fig_id in self.removed]
        for fig in self.figures:
            if fig.regressed:
                out.append(f"{fig.fig_id}: badge {fig.old_status} → "
                           f"{fig.new_status}")
            out += [d.describe() for d in fig.drifts]
            out += [f"{fig.fig_id}: row {row!r} vanished"
                    for row in fig.vanished_rows]
        return out

    @property
    def clean(self) -> bool:
        return not self.regressions()


def _diff_tables(fig_id: str, old: Dict[str, object],
                 new: Dict[str, object], tol: float
                 ) -> Tuple[List[Drift], List[Drift], List[str],
                            List[str]]:
    old_labels, old_cells = _table_index(old)
    new_labels, new_cells = _table_index(new)
    old_rows, new_rows = set(old_labels), set(new_labels)
    drifts: List[Drift] = []
    # a measurement appearing in a surviving row is benign but must be
    # visible — coverage changes in either direction never pass silently
    appeared_cells = [
        Drift(fig_id, label, header, None, cell, math.inf)
        for (label, header), cell in new_cells.items()
        if label in old_rows and (label, header) not in old_cells]
    for (label, header), old_cell in old_cells.items():
        if label not in new_rows:
            continue  # reported once as a vanished row, not per cell
        new_cell = new_cells.get((label, header))
        if new_cell is None:
            # the row survived but this measurement did not: a
            # removed/renamed column, or a number degraded to text —
            # lost coverage the gate must see, not skip
            drifts.append(Drift(fig_id, label, header,
                                old_cell, None, math.inf))
            continue
        if old_cell == new_cell:
            continue
        rel = abs(new_cell - old_cell) / abs(old_cell) \
            if old_cell else math.inf
        if rel > tol:
            drifts.append(Drift(fig_id, label, header,
                                old_cell, new_cell, rel))
    vanished = sorted(old_rows - new_rows)
    appeared = sorted(new_rows - old_rows)
    return drifts, appeared_cells, vanished, appeared


def diff_campaigns(old_doc: Dict[str, object],
                   new_doc: Dict[str, object], *,
                   tol: float = 0.0) -> TrendReport:
    """Compare two campaign records; see the module docstring for what
    counts as a regression."""
    old_figs = {f["fig_id"]: f for f in old_doc.get("figures", [])}
    new_figs = {f["fig_id"]: f for f in new_doc.get("figures", [])}
    figures: List[FigureTrend] = []
    for fig_id, old in old_figs.items():
        new = new_figs.get(fig_id)
        if new is None:
            continue
        drifts, new_cells, vanished, appeared = \
            _diff_tables(fig_id, old, new, tol)
        figures.append(FigureTrend(
            fig_id=fig_id,
            old_status=str(old.get("status", "error")),
            new_status=str(new.get("status", "error")),
            drifts=drifts, new_cells=new_cells,
            vanished_rows=vanished, new_rows=appeared))
    return TrendReport(
        figures=figures,
        added=[fid for fid in new_figs if fid not in old_figs],
        removed=[fid for fid in old_figs if fid not in new_figs],
        tol=tol)


def render_trend(report: TrendReport) -> str:
    """Human-readable trend summary (what the CLI prints)."""
    from ..harness.report import format_table

    rows = []
    for fig in report.figures:
        if not fig.changed:
            continue
        badge = f"{fig.old_status} → {fig.new_status}" \
            if fig.old_status != fig.new_status else fig.new_status
        worst = max((d.rel for d in fig.drifts), default=0.0)
        rows.append([fig.fig_id, badge, len(fig.drifts),
                     "∞" if math.isinf(worst) else f"{worst:.1%}",
                     len(fig.new_rows), len(fig.vanished_rows)])
    lines = []
    if rows:
        lines.append(format_table(
            "campaign trend (changed figures)",
            ["figure", "badge", "drifts", "max drift", "rows+", "rows-"],
            rows))
    else:
        lines.append(f"campaign trend: no figure changed "
                     f"(tolerance {report.tol:.1%})")
    for fig_id in report.added:
        lines.append(f"[NEW] {fig_id}: figure added to the campaign")
    for fig in report.figures:
        for drift in fig.new_cells:
            lines.append(f"[NEW] {drift.describe()}")
    for fig in report.figures:
        if fig.improved:
            lines.append(f"[BETTER] {fig.fig_id}: badge "
                         f"{fig.old_status} → {fig.new_status}")
    regressions = report.regressions()
    for item in regressions:
        lines.append(f"[REGRESSION] {item}")
    lines.append(
        f"{len(report.figures)} figure(s) compared, "
        f"{sum(1 for f in report.figures if f.changed)} changed, "
        f"{len(regressions)} regression(s)")
    return "\n".join(lines)
