"""The environment/provenance header of every reproduction artifact.

A reproduction claim is only auditable if the report says exactly what
produced it: which source revision, which simulator content hash, at
what scale, on which interpreter.  Everything here is collected without
third-party dependencies; fields that cannot be determined degrade to
``"unknown"`` instead of failing the report.
"""

from __future__ import annotations

import platform
import subprocess
import time
from typing import Dict

from ..harness.scale import current_scale
from ..harness.sweep import SCHEMA_VERSION, simulator_version


def _git(*args: str) -> str:
    try:
        out = subprocess.run(
            ["git", *args], capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def collect_provenance() -> Dict[str, object]:
    """Everything the report header states about this run's origin."""
    sha = _git("rev-parse", "--short", "HEAD") or "unknown"
    dirty = bool(_git("status", "--porcelain")) if sha != "unknown" \
        else False
    return {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime()),
        "git_sha": sha + ("-dirty" if dirty else ""),
        "simulator_version": simulator_version(),
        "schema_version": SCHEMA_VERSION,
        "scale": current_scale().name,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
