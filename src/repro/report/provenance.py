"""The environment/provenance header of every reproduction artifact.

A reproduction claim is only auditable if the report says exactly what
produced it: which source revision, which simulator content hash, at
what scale, on which interpreter.  Everything here is collected without
third-party dependencies; fields that cannot be determined degrade to
``"unknown"`` instead of failing the report.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from typing import Dict, Optional

from ..harness.backends import BACKEND_ENV
from ..harness.scale import current_scale
from ..harness.sweep import SCHEMA_VERSION, simulator_version


def _git(*args: str) -> str:
    try:
        out = subprocess.run(
            ["git", *args], capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def collect_provenance(backend: Optional[str] = None
                       ) -> Dict[str, object]:
    """Everything the report header states about this run's origin.

    ``backend`` is the resolved execution-backend name the campaign
    actually ran with; when absent the default resolution
    (``$REPRO_BACKEND`` → ``serial``) is recorded.  ``shard`` carries
    the shard identity ``repro shard run`` exports via
    ``$REPRO_SHARD`` — empty for whole-campaign (unsharded) runs.
    """
    sha = _git("rev-parse", "--short", "HEAD") or "unknown"
    dirty = bool(_git("status", "--porcelain")) if sha != "unknown" \
        else False
    return {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime()),
        "git_sha": sha + ("-dirty" if dirty else ""),
        "simulator_version": simulator_version(),
        "schema_version": SCHEMA_VERSION,
        "scale": current_scale().name,
        # recorded, not resolved: provenance must degrade (report the
        # configured name verbatim), never fail the report
        "backend": backend or os.environ.get(BACKEND_ENV) or "serial",
        "shard": os.environ.get("REPRO_SHARD", ""),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
