"""The environment/provenance header of every reproduction artifact.

A reproduction claim is only auditable if the report says exactly what
produced it: which source revision, which simulator content hash, at
what scale, on which interpreter.  Everything here is collected without
third-party dependencies; fields that cannot be determined degrade to
``"unknown"`` instead of failing the report.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from typing import Dict, Optional

from ..harness.backends import BACKEND_ENV
from ..harness.scale import current_scale
from ..harness.sweep import SCHEMA_VERSION, simulator_version


def _git(*args: str) -> str:
    try:
        out = subprocess.run(
            ["git", *args], capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def collect_provenance(backend: Optional[str] = None
                       ) -> Dict[str, object]:
    """Everything the report header states about this run's origin.

    ``backend`` is the resolved execution-backend name the campaign
    actually ran with; when absent the default resolution
    (``$REPRO_BACKEND`` → ``serial``) is recorded.  ``shard`` carries
    the shard identity ``repro shard run`` exports via
    ``$REPRO_SHARD`` — empty for whole-campaign (unsharded) runs.
    """
    sha = _git("rev-parse", "--short", "HEAD") or "unknown"
    dirty = bool(_git("status", "--porcelain")) if sha != "unknown" \
        else False
    return {
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      time.gmtime()),
        "git_sha": sha + ("-dirty" if dirty else ""),
        "simulator_version": simulator_version(),
        "schema_version": SCHEMA_VERSION,
        "scale": current_scale().name,
        # recorded, not resolved: provenance must degrade (report the
        # configured name verbatim), never fail the report
        "backend": backend or os.environ.get(BACKEND_ENV) or "serial",
        "shard": os.environ.get("REPRO_SHARD", ""),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def store_throughput(store) -> Dict[str, object]:
    """Recorded execution accounting for ``store``, report-safe.

    Folds the per-task wall times and payload sizes that execution
    backends record on the store's manifest entries into a throughput
    summary (``tasks_per_s`` is aggregate compute throughput: timed
    tasks over summed task wall — not wall-clock, which parallel
    backends compress).  Stores without timed entries — legacy
    manifests, ``--no-cache`` runs — degrade to zeros rather than
    failing the report.
    """
    empty = {"tasks_timed": 0, "task_wall_s": 0.0, "task_bytes": 0,
             "tasks_per_s": 0.0}
    if store is None:
        return empty
    try:
        manifest = store.manifest()
    except Exception:  # report-safe: accounting must never fail a run
        return empty
    wall = 0.0
    nbytes = 0
    timed = 0
    for entry in manifest.values():
        if not isinstance(entry, dict):
            continue
        w = entry.get("wall_s")
        if isinstance(w, (int, float)) and not isinstance(w, bool):
            wall += float(w)
            timed += 1
        b = entry.get("bytes")
        if isinstance(b, (int, float)) and not isinstance(b, bool):
            nbytes += int(b)
    return {
        "tasks_timed": timed,
        "task_wall_s": round(wall, 6),
        "task_bytes": nbytes,
        "tasks_per_s": round(timed / wall, 2) if wall > 0 else 0.0,
    }
