"""Sec. 4.5 / appendix figure specs: sensitivity studies and ablations.

Fig. 12 (ACK coalescing), Fig. 13 (coalescing variants), Fig. 15 (EVS
size + CC algorithm), Fig. 16 (topology scaling), Fig. 19 (forced
freezing), Fig. 21 (3-tier), Fig. 23 (freezing ablation), plus the
repo's own ablations (buffer depth, incremental deployment,
oversubscription).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from ..core.footprint import compute_footprint
from ..core.reps import RepsConfig
from ..harness.sweep import FailureSpec, SweepTask, WorkloadSpec
from ..sim.topology import TopologyParams
from ._shared import ALL_LBS, msg, scaled_topo, small_topo, synthetic, \
    task
from .registry import FigureResult, FigureSpec, TableDoc, register

# ----------------------------------------------------------------------
# Fig. 12 — ACK coalescing ratios, healthy and with failures
# ----------------------------------------------------------------------
_FIVE_PCT_CABLES = FailureSpec.make("fail_fraction", fraction=0.13,
                                    at_us=30.0, seed=4)
_FIG12_HEALTHY_RATIOS = (1, 2, 4, 8, 16)
_FIG12_FAILURE_RATIOS = (1, 4, 16)


def _fig12_tasks(ratios, failure) -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    return {(lb, r): task(lb, small_topo(), workload, seed=5,
                          ack_coalesce=r, failure=failure,
                          max_us=50_000_000.0)
            for r in ratios for lb in ("ops", "reps")}


def _fig12_healthy_build() -> Dict[tuple, SweepTask]:
    return _fig12_tasks(_FIG12_HEALTHY_RATIOS, None)


def _fig12_healthy_table(res: FigureResult) -> TableDoc:
    rows = [[f"{r}:1", round(res.value(("ops", r)), 1),
             round(res.value(("reps", r)), 1)]
            for r in _FIG12_HEALTHY_RATIOS]
    return (["ratio", "ops_max_fct_us", "reps_max_fct_us"], rows, [])


def _fig12_healthy_check(res: FigureResult) -> None:
    for r in (1, 2, 4, 8):
        assert res.value(("reps", r)) <= \
            res.value(("ops", r)) * 1.05, f"ratio {r}:1"
    # at 16:1 REPS falls back to roughly OPS behaviour (parity +-15%)
    assert res.value(("reps", 16)) <= res.value(("ops", 16)) * 1.15


register(FigureSpec(
    fig_id="fig12_healthy", figure="Fig. 12 (left)",
    title="Fig 12 (left): ACK coalescing, no failures (paper: REPS "
          "ahead through 8:1, parity at 16:1)",
    build=_fig12_healthy_build, table=_fig12_healthy_table,
    check=_fig12_healthy_check,
    tags=("sim", "sensitivity", "coalescing")))


def _fig12_failures_build() -> Dict[tuple, SweepTask]:
    return _fig12_tasks(_FIG12_FAILURE_RATIOS, _FIVE_PCT_CABLES)


def _fig12_failures_table(res: FigureResult) -> TableDoc:
    rows = [[f"{r}:1", round(res.value(("ops", r)), 1),
             round(res.value(("reps", r)), 1),
             round(res.value(("ops", r)) / res.value(("reps", r)), 2)]
            for r in _FIG12_FAILURE_RATIOS]
    return (["ratio", "ops_max_fct_us", "reps_max_fct_us", "speedup"],
            rows, [])


def _fig12_failures_check(res: FigureResult) -> None:
    for r in _FIG12_FAILURE_RATIOS:
        assert res.value(("reps", r)) < \
            0.8 * res.value(("ops", r)), f"ratio {r}:1"


register(FigureSpec(
    fig_id="fig12_failures", figure="Fig. 12 (right)",
    title="Fig 12 (right): ACK coalescing with 5% failed cables "
          "(paper: REPS ~5x faster even at 16:1)",
    build=_fig12_failures_build, table=_fig12_failures_table,
    check=_fig12_failures_check,
    tags=("sim", "sensitivity", "coalescing", "failures")))


# ----------------------------------------------------------------------
# Fig. 13 — REPS variants for heavy (16:1) ACK coalescing
# ----------------------------------------------------------------------
_FIG13_RATIO = 16

_FIG13_SCENARIOS: Dict[str, Optional[FailureSpec]] = {
    "symmetric": None,
    "asymmetric": FailureSpec.make("degrade_cables", indices=(0,),
                                   gbps=200.0),
    "failures": _FIVE_PCT_CABLES,
}

_FIG13_VARIANTS: Dict[str, Mapping[str, object]] = {
    "ops": dict(lb="ops"),
    "reps": dict(lb="reps"),
    "reps+carry": dict(lb="reps", carry_evs=True),
    "reps+reuse": dict(lb="reps",
                       reps=RepsConfig(ev_lifespan=_FIG13_RATIO // 2)),
}


def _fig13_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    tasks = {}
    for sc, failure in _FIG13_SCENARIOS.items():
        for variant, kw in _FIG13_VARIANTS.items():
            kw = dict(kw)
            lb = kw.pop("lb")
            tasks[(variant, sc)] = task(
                lb, small_topo(), workload, seed=5,
                ack_coalesce=_FIG13_RATIO, failure=failure,
                max_us=50_000_000.0, **kw)
    return tasks


def _fig13_table(res: FigureResult) -> TableDoc:
    rows = [[sc] + [round(res.value((v, sc)), 1) for v in _FIG13_VARIANTS]
            for sc in _FIG13_SCENARIOS]
    return (["scenario"] + list(_FIG13_VARIANTS), rows, [])


def _fig13_check(res: FigureResult) -> None:
    for sc in ("asymmetric", "failures"):
        base = res.value(("reps", sc))
        ops = res.value(("ops", sc))
        carry = res.value(("reps+carry", sc))
        reuse = res.value(("reps+reuse", sc))
        # the variants at least match plain REPS under coalescing...
        assert carry <= base * 1.05, sc
        assert reuse <= base * 1.10, sc
        # ...and beat OPS where adaptivity matters
        assert min(carry, reuse) < ops, sc


register(FigureSpec(
    fig_id="fig13", figure="Fig. 13",
    title="Fig 13: REPS coalescing variants at 16:1 (paper: "
          "Carry/Reuse EVs are the preferred variants)",
    build=_fig13_build, table=_fig13_table, check=_fig13_check,
    tags=("sim", "sensitivity", "coalescing")))


# ----------------------------------------------------------------------
# Fig. 15 — EVS-size sensitivity and CC-algorithm sensitivity
# ----------------------------------------------------------------------
_FIG15_EVS_SIZES = (32, 256, 65536)
_FIG15_CCS = ("dctcp", "eqds", "internal")


def _fig15_evs_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    return {(lb, evs): task(lb, small_topo(), workload, seed=5,
                            evs_size=evs, max_us=50_000_000.0)
            for evs in _FIG15_EVS_SIZES for lb in ("ops", "reps")}


def _fig15_evs_table(res: FigureResult) -> TableDoc:
    rows = [[evs, round(res.value(("ops", evs)), 1),
             round(res.value(("reps", evs)), 1)]
            for evs in _FIG15_EVS_SIZES]
    return (["evs_size", "ops_max_fct_us", "reps_max_fct_us"], rows, [])


def _fig15_evs_check(res: FigureResult) -> None:
    reps64k = res.value(("reps", 65536))
    ops64k = res.value(("ops", 65536))
    # REPS with 256 EVs ~ REPS with 64K EVs
    assert res.value(("reps", 256)) <= reps64k * 1.10
    # REPS with only 32 EVs stays within ~15%
    assert res.value(("reps", 32)) <= reps64k * 1.20
    # OPS degrades much more with a tiny EVS
    assert res.value(("ops", 32)) > ops64k * 1.25
    # headline: REPS@32 EVs performs like OPS@64K
    assert res.value(("reps", 32)) <= ops64k * 1.10


register(FigureSpec(
    fig_id="fig15_evs", figure="Fig. 15 (left)",
    title="Fig 15 (left): EVS-size sensitivity (paper: REPS fine at "
          "256, ~8% off at 32; OPS 21%/64% slower)",
    build=_fig15_evs_build, table=_fig15_evs_table,
    check=_fig15_evs_check,
    tags=("sim", "sensitivity")))


def _fig15_cc_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    return {(lb, cc): task(lb, small_topo(), workload, seed=5, cc=cc,
                           max_us=50_000_000.0)
            for cc in _FIG15_CCS for lb in ("ops", "reps")}


def _fig15_cc_table(res: FigureResult) -> TableDoc:
    rows = [[cc, round(res.value(("ops", cc)), 1),
             round(res.value(("reps", cc)), 1)] for cc in _FIG15_CCS]
    return (["cc", "ops_max_fct_us", "reps_max_fct_us"], rows, [])


def _fig15_cc_check(res: FigureResult) -> None:
    for cc in _FIG15_CCS:
        assert res.value(("reps", cc)) <= \
            res.value(("ops", cc)) * 1.05, cc


register(FigureSpec(
    fig_id="fig15_cc", figure="Fig. 15 (right)",
    title="Fig 15 (right): CC sensitivity (paper: REPS superior under "
          "every CC)",
    build=_fig15_cc_build, table=_fig15_cc_table,
    check=_fig15_cc_check,
    tags=("sim", "sensitivity")))


# ----------------------------------------------------------------------
# Fig. 16 — topology scaling x EVS size (tornado)
# ----------------------------------------------------------------------
FIG16_TOPOS: Dict[int, TopologyParams] = {
    16: TopologyParams(n_hosts=16, hosts_per_t0=8),
    32: TopologyParams(n_hosts=32, hosts_per_t0=8),
    64: TopologyParams(n_hosts=64, hosts_per_t0=16),
}
FIG16_EVS_SIZES = (16, 64, 65536)


def fig16_tasks(
    topos: Mapping[int, TopologyParams] = FIG16_TOPOS,
    evs_sizes: Sequence[int] = FIG16_EVS_SIZES,
    lbs: Sequence[str] = ("ops", "reps"),
    msg_bytes: Optional[int] = None,
) -> Dict[tuple, SweepTask]:
    """The figure's (lb, hosts, evs) matrix — parameterized so the
    tier-1 smoke test can build a tiny instance of the same wiring."""
    workload = synthetic("tornado", msg_bytes or msg(8))
    return {(lb, n, evs): task(lb, topo, workload, seed=5,
                               evs_size=evs, max_us=50_000_000.0)
            for n, topo in topos.items() for evs in evs_sizes
            for lb in lbs}


def _fig16_table(res: FigureResult) -> TableDoc:
    rows = [[n, evs, round(res.value(("ops", n, evs)), 1),
             round(res.value(("reps", n, evs)), 1)]
            for n in FIG16_TOPOS for evs in FIG16_EVS_SIZES]
    return (["hosts", "evs_size", "ops_max_fct_us", "reps_max_fct_us"],
            rows, [])


def _fig16_check(res: FigureResult) -> None:
    for n in FIG16_TOPOS:
        reps_full = res.value(("reps", n, 65536))
        # REPS with 64 EVs ~ full EVS at every scale
        assert res.value(("reps", n, 64)) <= reps_full * 1.15, n
        # REPS with 64 EVs beats OPS with the full 16-bit EVS (headline)
        assert res.value(("reps", n, 64)) <= \
            res.value(("ops", n, 65536)) * 1.05, n
    # OPS with 16 EVs degrades well beyond OPS with 64K at the largest
    n = max(FIG16_TOPOS)
    assert res.value(("ops", n, 16)) > \
        1.3 * res.value(("ops", n, 65536))


register(FigureSpec(
    fig_id="fig16", figure="Fig. 16",
    title="Fig 16: topology scaling x EVS size (paper: REPS flat; OPS "
          "needs a large EVS, worsens with size)",
    build=fig16_tasks, table=_fig16_table, check=_fig16_check,
    tags=("sim", "sensitivity", "scaling")))


# ----------------------------------------------------------------------
# Fig. 19 (Appendix A) — forcing freezing mode without any failure
# ----------------------------------------------------------------------
_FIG19_FORCE = FailureSpec.make("force_freeze", at_us=50.0)


def _fig19_build() -> Dict[str, SweepTask]:
    workload = synthetic("permutation", msg(16))
    variants = {
        "ops": ("ops", None),
        "reps": ("reps", None),
        "reps_forced": ("reps", _FIG19_FORCE),
    }
    return {name: task(lb, scaled_topo(), workload, seed=3,
                       failure=failure, max_us=50_000_000.0)
            for name, (lb, failure) in variants.items()}


def _fig19_table(res: FigureResult) -> TableDoc:
    rows = [(name, round(res.value(name, "max_fct_us"), 1),
             int(res.value(name, "total_drops")),
             int(res.value(name, "ecn_marks")))
            for name in res.keys()]
    return (["variant", "max_fct_us", "drops", "ecn_marks"], rows, [])


def _fig19_check(res: FigureResult) -> None:
    reps = res.value("reps")
    forced = res.value("reps_forced")
    ops = res.value("ops")
    # forced freezing costs only minor instability
    assert forced <= reps * 1.10
    # both REPS variants complete at least as fast as OPS
    assert forced <= ops * 1.02
    assert reps <= ops * 1.02


register(FigureSpec(
    fig_id="fig19", figure="Fig. 19",
    title="Fig 19: forced freezing after 50us (paper: comparable to "
          "standard REPS, both ahead of OPS)",
    build=_fig19_build, table=_fig19_table, check=_fig19_check,
    tags=("sim", "sensitivity", "freezing")))


# ----------------------------------------------------------------------
# Fig. 21 (Appendix C.2) — 3-tier fat tree, symmetric synthetic suite
# ----------------------------------------------------------------------
_FIG21_TOPO = dict(n_hosts=32, hosts_per_t0=4, tiers=3,
                   oversubscription=2, t0s_per_pod=2, t2s_per_t1=2)


def _fig21_build() -> Dict[tuple, SweepTask]:
    topo = TopologyParams(**_FIG21_TOPO)
    return {(pattern, lb): task(lb, topo, synthetic(pattern, msg(8)),
                                seed=5, max_us=50_000_000.0)
            for pattern in ("permutation", "tornado")
            for lb in ALL_LBS}


def _fig21_table(res: FigureResult) -> TableDoc:
    rows = []
    for pattern in ("permutation", "tornado"):
        base = res.value((pattern, "ecmp"))
        rows.append([f"{pattern} 8MiB"] +
                    [round(base / res.value((pattern, lb)), 2)
                     for lb in ALL_LBS])
    return (["workload"] + ALL_LBS, rows, [])


def _fig21_check(res: FigureResult) -> None:
    for pattern in ("permutation", "tornado"):
        vals = {lb: res.value((pattern, lb)) for lb in ALL_LBS}
        assert vals["reps"] < vals["ecmp"], pattern
        assert vals["reps"] <= vals["ops"] * 1.05, pattern
        assert res.value((pattern, "reps"), "flows_completed") == \
            res.value((pattern, "reps"), "flows_total")


register(FigureSpec(
    fig_id="fig21", figure="Fig. 21",
    title="Fig 21: 3-tier fat tree, speedup vs ECMP (paper: comparable "
          "to the 2-tier results)",
    build=_fig21_build, table=_fig21_table, check=_fig21_check,
    tags=("sim", "sensitivity", "scaling")))


# ----------------------------------------------------------------------
# Fig. 23 (Appendix C.4) — the freezing-mode ablation
# ----------------------------------------------------------------------
_FIG23_VARIANTS = ("reps", "reps_no_freezing", "ops")


def _fig23_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    no_freeze = RepsConfig(freezing_enabled=False)
    tasks = {}
    for sc, failure in _FIG13_SCENARIOS.items():
        tasks[("reps", sc)] = task("reps", small_topo(), workload,
                                   seed=5, failure=failure,
                                   max_us=50_000_000.0)
        tasks[("reps_no_freezing", sc)] = task(
            "reps", small_topo(), workload, seed=5, failure=failure,
            reps=no_freeze, max_us=50_000_000.0)
        tasks[("ops", sc)] = task("ops", small_topo(), workload,
                                  seed=5, failure=failure,
                                  max_us=50_000_000.0)
    return tasks


def _fig23_table(res: FigureResult) -> TableDoc:
    rows = [[sc] + [round(res.value((v, sc)), 1)
                    for v in _FIG23_VARIANTS]
            for sc in _FIG13_SCENARIOS]
    return (["scenario"] + list(_FIG23_VARIANTS), rows, [])


def _fig23_check(res: FigureResult) -> None:
    # no failures: freezing changes nothing measurable
    for sc in ("symmetric", "asymmetric"):
        a = res.value(("reps", sc))
        b = res.value(("reps_no_freezing", sc))
        assert abs(a - b) / a < 0.10, sc
    # failures: freezing helps; no-freezing REPS still beats OPS
    f = {v: res.value((v, "failures")) for v in _FIG23_VARIANTS}
    assert f["reps"] <= f["reps_no_freezing"] * 1.05
    assert f["reps_no_freezing"] < f["ops"]


register(FigureSpec(
    fig_id="fig23", figure="Fig. 23",
    title="Fig 23: freezing-mode ablation (paper: ~25% gain under "
          "failures, none needed otherwise)",
    build=_fig23_build, table=_fig23_table, check=_fig23_check,
    tags=("sim", "sensitivity", "freezing", "failures")))


# ----------------------------------------------------------------------
# Ablation — REPS circular-buffer depth (Sec. 3.1 / Theorem 5.1)
# ----------------------------------------------------------------------
_DEPTHS = (1, 2, 4, 8, 16, 32)


def _ablation_buffer_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    tasks = {}
    for depth in _DEPTHS:
        for failures in (False, True):
            tasks[(depth, failures)] = task(
                "reps", small_topo(), workload, seed=5,
                failure=_FIVE_PCT_CABLES if failures else None,
                reps=RepsConfig(buffer_size=depth), ack_coalesce=4,
                max_us=50_000_000.0)
    return tasks


def _ablation_buffer_table(res: FigureResult) -> TableDoc:
    rows = []
    for depth in _DEPTHS:
        fp = compute_footprint(RepsConfig(buffer_size=depth))
        rows.append((depth, fp.total_bytes,
                     round(res.value((depth, False)), 1),
                     round(res.value((depth, True)), 1)))
    return (["depth", "state_bytes", "healthy_max_fct_us",
             "failures_max_fct_us"], rows, [])


def _ablation_buffer_check(res: FigureResult) -> None:
    # every depth still completes the workload
    for key in res.keys():
        assert res.value(key, "flows_completed") == \
            res.value(key, "flows_total"), key
    # the paper's depth-8 choice is within 10% of the best depth in both
    # scenarios — deeper buffers buy nothing
    for failures in (False, True):
        best = min(res.value((d, failures)) for d in _DEPTHS)
        assert res.value((8, failures)) <= best * 1.10
    # and the state stays ~25 bytes (the paper's headline)
    assert compute_footprint(RepsConfig(buffer_size=8)).total_bytes == 25


register(FigureSpec(
    fig_id="ablation_buffer_depth", figure="Ablation",
    title="Ablation: REPS buffer depth (paper picks 8)",
    build=_ablation_buffer_build, table=_ablation_buffer_table,
    check=_ablation_buffer_check,
    tags=("sim", "ablation")))


# ----------------------------------------------------------------------
# Ablation — incremental deployment: ECMP-traffic fraction sweep
# ----------------------------------------------------------------------
_DEPLOY_FRACTIONS = (0.0, 0.25, 0.5, 0.75)


def _ablation_deploy_build() -> Dict[float, SweepTask]:
    tasks = {}
    for frac in _DEPLOY_FRACTIONS:
        if frac == 0.0:
            workload = synthetic("permutation", msg(8))
        else:
            workload = WorkloadSpec(
                kind="mixed", pattern="permutation", msg_bytes=msg(8),
                background_lb="ecmp", background_fraction=frac)
        tasks[frac] = task("reps", small_topo(), workload, seed=7,
                           max_us=50_000_000.0)
    return tasks


def _ablation_deploy_table(res: FigureResult) -> TableDoc:
    rows = []
    for frac in _DEPLOY_FRACTIONS:
        bg = (round(res.value(frac, "bg_max_fct_us"), 1)
              if frac else "-")
        rows.append((f"{int(frac * 100)}%",
                     round(res.value(frac, "max_fct_us"), 1), bg))
    return (["ecmp_share", "reps_traffic_max_fct_us",
             "ecmp_traffic_max_fct_us"], rows, [])


def _ablation_deploy_check(res: FigureResult) -> None:
    pure = res.value(0.0)
    for frac in _DEPLOY_FRACTIONS[1:]:
        assert res.value(frac, "flows_completed") == \
            res.value(frac, "flows_total")
        # REPS traffic degrades gracefully as legacy share grows, never
        # catastrophically (stays within ~4x of an all-REPS fabric even
        # at 75% legacy traffic)
        assert res.value(frac) < 4.0 * pure, frac


register(FigureSpec(
    fig_id="ablation_incremental", figure="Ablation",
    title="Ablation: legacy-ECMP share during incremental deployment",
    build=_ablation_deploy_build, table=_ablation_deploy_table,
    check=_ablation_deploy_check,
    tags=("sim", "ablation", "mixed")))


# ----------------------------------------------------------------------
# Ablation — oversubscription sweep (Sec. 4.1 runs 1:1 to 4:1)
# ----------------------------------------------------------------------
_OVERSUB_RATIOS = (1, 2, 4)


def _ablation_oversub_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    return {(lb, r): task(lb, small_topo(oversubscription=r), workload,
                          seed=5, max_us=50_000_000.0)
            for r in _OVERSUB_RATIOS for lb in ("ecmp", "ops", "reps")}


def _ablation_oversub_table(res: FigureResult) -> TableDoc:
    rows = [(f"{r}:1", round(res.value(("ecmp", r)), 1),
             round(res.value(("ops", r)), 1),
             round(res.value(("reps", r)), 1))
            for r in _OVERSUB_RATIOS]
    return (["oversub", "ecmp_us", "ops_us", "reps_us"], rows, [])


def _ablation_oversub_check(res: FigureResult) -> None:
    for r in _OVERSUB_RATIOS:
        # REPS keeps its edge at every oversubscription level
        assert res.value(("reps", r)) <= \
            res.value(("ops", r)) * 1.05, r
        assert res.value(("reps", r)) < res.value(("ecmp", r)), r
    # tighter fabrics take longer (sanity of the sweep itself)
    assert res.value(("reps", 4)) > res.value(("reps", 1))


register(FigureSpec(
    fig_id="ablation_oversubscription", figure="Ablation",
    title="Ablation: oversubscription 1:1 .. 4:1 (8 MiB permutation)",
    build=_ablation_oversub_build, table=_ablation_oversub_table,
    check=_ablation_oversub_check,
    tags=("sim", "ablation")))
