"""The cross-policy arena: every figure's matrix, re-run per policy.

The REPS paper plots REPS against OPS/ECMP-style baselines only.  The
arena derives, from any registered :class:`FigureSpec`, a *cross-policy
variant*: the figure's canonical cells (the ones its matrix runs under
the pivot policy, ``reps`` by default) are re-targeted — via
:func:`repro.harness.sweep.replace_lb` — onto every requested policy,
so RepFlow, PRIME and Sprinklers face exactly the scenarios the paper
measured REPS on.  Nothing else about the tasks changes — except that
competitor cells cap the simulation horizon at
:data:`ARENA_HORIZON_US`, so a policy that cannot finish a scenario
scores a quick DNF instead of simulating the base figure's unbounded
horizon — which means:

- pivot-policy cells are content-identical to the base figure's and
  come straight from the shared campaign store (cross-figure dedup);
- derived figures are *additions* — base figures, their tables and the
  committed trend record are untouched, so ``figures trend --strict``
  sees new ``arena_*`` rows as benign ``[NEW]`` entries, never drift.

Derived specs are ordinary :class:`FigureSpec` objects (ids
``arena_<fig_id>``, tag ``arena``) and run through the normal campaign
machinery; their check asserts that every policy finished every cell,
so a policy that cannot survive a figure's scenario shows up as a
``[FAIL]`` badge in REPRODUCTION.md rather than a silent ``inf``.
"""

from __future__ import annotations

import math
from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence

from ..harness.sweep import SweepTask, replace_lb
from .registry import REGISTRY, FigureResult, FigureSpec, Key, TableDoc

#: policy whose cells define a figure's canonical scenario slice
DEFAULT_PIVOT = "reps"

#: the head-to-head set the CI arena job runs (paper hero + classic
#: baseline + the three competitors the paper does not plot)
DEFAULT_POLICIES = ("reps", "ecmp", "repflow", "prime", "sprinklers")

#: horizon cap for non-pivot arena cells, in simulated microseconds.
#: Base figures run with effectively unbounded horizons (Fig. 8 sets
#: 50 s) because their own policies are known to finish; a competitor
#: that *cannot* finish — ECMP pinned onto a failed cable under a
#: collective, say — would otherwise simulate the full horizon of
#: background traffic and RTO storms per cell.  One simulated second
#: is orders of magnitude past any completing run on these fabrics;
#: a cell still incomplete at the cap is scored DNF (did not finish)
#: by the table and fails the arena check.  Pivot cells keep their
#: figure's declared horizon — they must stay bit-identical to the
#: base figure's artifacts for the shared-store dedup.
ARENA_HORIZON_US = 1_000_000.0


def _capped(task: SweepTask) -> SweepTask:
    scenario = dict(task.scenario)
    max_us = scenario.get("max_us")
    if max_us is not None and max_us <= ARENA_HORIZON_US:
        return task
    scenario["max_us"] = ARENA_HORIZON_US
    return dc_replace(task, scenario=tuple(sorted(scenario.items())))


def _cell_done(result: FigureResult, key: Key) -> bool:
    try:
        return (result.value(key, "flows_completed") ==
                result.value(key, "flows_total"))
    except KeyError:  # pragma: no cover - metric-less artifact guard
        return True


def _policy_cells(result: FigureResult, policy: str) -> List[Key]:
    return [key for key in result.keys() if key[0] == policy]


def _mean(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    if not finite or len(finite) != len(values):
        return float("inf")
    return sum(finite) / len(finite)


def _arena_table(policies: Sequence[str],
                 metric: str) -> Callable[[FigureResult], TableDoc]:
    def table(result: FigureResult) -> TableDoc:
        pivot = policies[0]
        done = {p: all(_cell_done(result, k)
                       for k in _policy_cells(result, p))
                for p in policies}
        means = {p: _mean([result.value(k)
                           for k in _policy_cells(result, p)])
                 for p in policies}
        rows = []
        for policy in policies:
            mean = means[policy]
            if not done[policy]:
                rows.append([policy, "DNF", "—"])
                continue
            ratio = (mean / means[pivot]
                     if math.isfinite(mean) and math.isfinite(means[pivot])
                     and means[pivot] > 0 else float("inf"))
            rows.append([policy, round(mean, 2), round(ratio, 3)])
        notes = [f"mean {metric} across the figure's {pivot}-cell "
                 f"scenarios, re-targeted per policy; `vs {pivot}` < 1 "
                 f"means a lower (usually better) metric than {pivot}.  "
                 f"DNF: the policy left flows incomplete at the arena "
                 f"horizon ({ARENA_HORIZON_US / 1e6:.0f} s simulated)."]
        return (["policy", f"mean {metric}", f"vs {pivot}"], rows,
                notes)
    return table


def _arena_check(policies: Sequence[str],
                 metric: str) -> Callable[[FigureResult], None]:
    def check(result: FigureResult) -> None:
        # completion first: max_fct-style metrics only aggregate
        # *finished* flows, so a DNF policy can still read finite
        dnf = sorted({key[0] for key in result.keys()
                      if not _cell_done(result, key)})
        assert not dnf, (
            f"policies {dnf} did not finish every cell within the "
            f"arena horizon ({ARENA_HORIZON_US:.0f} us simulated)")
        incomplete = sorted({
            key[0] for key in result.keys()
            if not math.isfinite(result.value(key))})
        assert not incomplete, (
            f"policies {incomplete} failed to complete every cell "
            f"(non-finite {metric})")
    return check


def arena_spec(base: FigureSpec,
               policies: Sequence[str] = DEFAULT_POLICIES, *,
               pivot: str = DEFAULT_PIVOT) -> Optional[FigureSpec]:
    """Derive ``base``'s cross-policy variant, or ``None`` when the
    figure has no policy axis (opted out, time-series metric, or no
    ``pivot`` cell in its matrix at the current scale)."""
    if not base.policy_axis or base.metric_kind != "scalar":
        return None
    try:
        matrix = base.build()
    except Exception:
        # fail-soft like the campaign: a figure whose matrix cannot
        # build has no arena variant (the base spec will surface the
        # error itself when run)
        return None
    cells: Dict[Key, SweepTask] = {
        key: task for key, task in matrix.items()
        if getattr(task, "lb", None) == pivot
        and task.workload.kind != "model"}
    if not cells:
        return None
    policies = list(dict.fromkeys(policies))  # stable de-dup

    def build() -> Dict[Key, SweepTask]:
        out: Dict[Key, SweepTask] = {}
        for policy in policies:
            for key, task in cells.items():
                out[(policy, key)] = (task if policy == pivot
                                      else _capped(
                                          replace_lb(task, policy)))
        return out

    return FigureSpec(
        fig_id=f"arena_{base.fig_id}",
        figure="Arena",
        title=f"Cross-policy arena: {base.title}",
        build=build,
        metric=base.metric,
        table=_arena_table(policies, base.metric),
        check=_arena_check(policies, base.metric),
        notes=base.notes,
        tags=("arena",) + tuple(t for t in base.tags if t != "arena"),
        doc=(f"Head-to-head derived from `{base.fig_id}`: its "
             f"{len(cells)} `{pivot}` cell(s) re-run under "
             f"{', '.join(policies)} with every other parameter "
             "unchanged (competitor horizons capped at "
             f"{ARENA_HORIZON_US / 1e6:.0f} s simulated — a cell "
             "still incomplete there scores DNF)."),
        policy_axis=False,
    )


def arena_specs(policies: Sequence[str] = DEFAULT_POLICIES, *,
                bases: Optional[Sequence[FigureSpec]] = None,
                pivot: str = DEFAULT_PIVOT) -> List[FigureSpec]:
    """Cross-policy variants of ``bases`` (default: the whole
    catalogue), in registry order, skipping axis-less figures."""
    if bases is None:
        bases = list(REGISTRY.values())
    out = []
    for base in bases:
        spec = arena_spec(base, policies, pivot=pivot)
        if spec is not None:
            out.append(spec)
    return out
