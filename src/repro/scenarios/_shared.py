"""Shared vocabulary for the figure specs.

The helpers keep every spec builder honest about scale: message sizes
and the scale-controlled topology resolve ``REPRO_BENCH_SCALE`` when the
matrix is built, not when the spec module imports.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..harness.scale import current_scale
from ..harness.sweep import (
    FailureSpec,
    SweepTask,
    WorkloadSpec,
    make_task,
)
from ..sim.topology import TopologyParams

#: the full Sec. 4.1 baseline suite, in the paper's legend order
ALL_LBS = ["ecmp", "ops", "flowlet", "bitmap", "mprdma", "plb",
           "mptcp", "adaptive_roce", "reps"]

#: cheaper subset for the wide sweeps (traces, collectives)
CORE_LBS = ["ecmp", "ops", "plb", "mprdma", "reps"]

#: the benchmarks' default per-run time budget (us)
DEFAULT_MAX_US = 2_000_000.0


def msg(paper_mib: float) -> int:
    """A paper-quoted message size at the current bench scale."""
    return current_scale().msg_bytes(paper_mib)


def scaled_topo(**overrides) -> TopologyParams:
    """The scale-controlled topology for single-scenario figures."""
    return current_scale().topo(**overrides)


def small_topo(**overrides) -> TopologyParams:
    """A matrix-friendly topology: 16 hosts, 8 uplinks, 1:1."""
    params = dict(n_hosts=16, hosts_per_t0=8)
    params.update(overrides)
    return TopologyParams(**params)


def testbed_topo() -> TopologyParams:
    """The Sec. 4.4.2 FPGA testbed modelled in simulation: two T0s with
    8x100G endpoints each and 2x400G uplinks per T0 (1:1, 8 KiB MTU)."""
    return TopologyParams(n_hosts=16, hosts_per_t0=8, oversubscription=4,
                          link_gbps=400.0, host_link_gbps=100.0,
                          mtu_bytes=8192)


def task(lb: str, topo: TopologyParams, workload: WorkloadSpec, *,
         seed: int, failure: Optional[FailureSpec] = None,
         probes: Sequence[str] = (), **scenario_kw) -> SweepTask:
    """A sweep task with the benchmarks' default time budget."""
    scenario_kw.setdefault("max_us", DEFAULT_MAX_US)
    return make_task(lb, topo, workload, seed=seed, failure=failure,
                     probes=probes, **scenario_kw)


def synthetic(pattern: str, msg_bytes: int, *, fan_in: int = 8,
              workload_seed: int = 2) -> WorkloadSpec:
    return WorkloadSpec(kind="synthetic", pattern=pattern,
                        msg_bytes=msg_bytes, fan_in=fan_in,
                        workload_seed=workload_seed)
