"""The declarative figure registry.

Every paper figure/table/ablation is a :class:`FigureSpec`: a named
builder that expands the figure's scenario matrix into
:class:`~repro.harness.sweep.SweepTask`s, the metric each cell reports,
a table renderer, and the paper's shape assertions.  The one executor,
:func:`run_figure`, pushes any spec through
:func:`~repro.harness.sweep.run_sweep` — so every figure gets the same
parallelism, deterministic seeding, and content-keyed artifact caching,
and a benchmark file shrinks to ``run_figure(fig_id)`` plus a report.

Specs register at import time; importing :mod:`repro.scenarios` loads
the full catalogue.

Invariants:

- **Registration order is paper order.**  ``REGISTRY`` iterates in the
  order the spec modules register, which follows the paper's figure
  numbering; campaign reports and generated docs rely on that order.
- **Matrices are lazy and deterministic.**  ``FigureSpec.build`` runs at
  execution (or doc-generation) time, so it resolves the current
  ``REPRO_BENCH_SCALE``; for a fixed scale the same spec always expands
  to the same tasks with the same content keys.  Nothing about a
  figure's identity lives outside its spec — which is why
  ``docs/figures/`` pages generated from the registry cannot drift from
  the code.
- **Probe lifecycle.**  A spec that needs telemetry names result probes
  on its tasks (``SweepTask.probes``); the probes run once, inside the
  worker that simulated the task, and their scalar outputs ride the
  artifact's ``extra`` mapping.  ``FigureResult.value`` reads metrics
  and probe outputs through one namespace, so tables and shape checks
  do not care which side produced a number.
- **Checks assert shape, not absolute numbers** (orderings and rough
  factors vs the paper); a failing check raises :class:`AssertionError`
  and is reported as a fidelity divergence, not a crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..harness.sweep import (
    ResultStore,
    SweepResults,
    SweepTask,
    TaskResult,
    run_sweep,
)

Key = Hashable
#: (headers, rows, notes) — what a figure prints/persists as its table
TableDoc = Tuple[Sequence[str], Sequence[Sequence[object]], Sequence[str]]


class FigureResult:
    """One executed figure: benchmark keys -> task results."""

    def __init__(self, spec: "FigureSpec", tasks: Dict[Key, SweepTask],
                 sweep: SweepResults) -> None:
        self.spec = spec
        self.tasks = tasks
        self.sweep = sweep
        self._by_key: Dict[Key, TaskResult] = {
            key: sweep[task] for key, task in tasks.items()}

    def __getitem__(self, key: Key) -> TaskResult:
        return self._by_key[key]

    def __len__(self) -> int:
        return len(self._by_key)

    def keys(self):
        return self._by_key.keys()

    def value(self, key: Key, metric: Optional[str] = None) -> float:
        """One cell of the figure (``spec.metric`` by default)."""
        return self._by_key[key].value(metric or self.spec.metric)

    def values(self, metric: Optional[str] = None) -> Dict[Key, float]:
        """Every cell, keyed the way the figure declared its matrix."""
        return {key: self.value(key, metric) for key in self._by_key}

    def series(self, key: Key,
               name: Optional[str] = None) -> List[float]:
        """One cell's time-series (``spec.metric`` by default).

        Only meaningful for specs whose tasks carry series probes
        (``metric_kind="timeseries"``); raises :class:`KeyError` when
        the artifact holds no such series.
        """
        series = self._by_key[key].series
        wanted = name or self.spec.metric
        if wanted not in series:
            raise KeyError(
                f"no series {wanted!r} for {key!r} "
                f"(have {sorted(series)})")
        return series[wanted]

    def all_series(self) -> Dict[Key, Dict[str, List[float]]]:
        """Every cell's series mapping (empty dicts for scalar-only
        artifacts) — what the report serializes into campaign.json."""
        return {key: dict(self._by_key[key].series)
                for key in self._by_key}

    def table_doc(self) -> TableDoc:
        """The figure's report table (headers, rows, notes)."""
        if self.spec.table is not None:
            return self.spec.table(self)
        if self.spec.metric_kind == "timeseries":
            # fallback for series figures: summary stats per row (the
            # full trajectory renders as the section's sparkline)
            rows = []
            for key, result in self._by_key.items():
                values = [v for v in result.series.get(self.spec.metric,
                                                       [])
                          if v is not None]
                rows.append((str(key), len(values),
                             round(sum(values) / len(values), 2)
                             if values else 0.0,
                             round(values[-1], 2) if values else 0.0))
            return (["scenario", "windows", f"mean_{self.spec.metric}",
                     f"last_{self.spec.metric}"], rows,
                    list(self.spec.notes))
        rows = [(str(key), round(self.value(key), 2))
                for key in self._by_key]
        return (["scenario", self.spec.metric], rows, list(self.spec.notes))

    def check(self) -> None:
        """Run the spec's paper-shape assertions (no-op if none)."""
        if self.spec.check is not None:
            self.spec.check(self)


@dataclass(frozen=True)
class FigureSpec:
    """One paper figure declared as data.

    ``build`` returns the figure's matrix as ``{key: SweepTask}`` —
    evaluated lazily so the matrix can honour ``REPRO_BENCH_SCALE`` at
    run time.  ``check`` raises :class:`AssertionError` when the
    measured shape diverges from the paper's claim.
    """

    fig_id: str
    figure: str                # the paper's name, e.g. "Fig. 7"
    title: str
    build: Callable[[], Dict[Key, SweepTask]]
    metric: str = "max_fct_us"
    #: how ``metric`` reads: ``"scalar"`` (a table cell) or
    #: ``"timeseries"`` (a windowed series probe output — the report
    #: renders the trajectory and campaign.json carries the arrays)
    metric_kind: str = "scalar"
    table: Optional[Callable[[FigureResult], TableDoc]] = None
    check: Optional[Callable[[FigureResult], None]] = None
    notes: Tuple[str, ...] = ()
    #: campaign filter labels (``repro figures run --all --tag sim``);
    #: by convention the first tag is the figure kind (sim | model)
    tags: Tuple[str, ...] = ()
    #: optional prose for the generated ``docs/figures/`` page — what
    #: the figure demonstrates beyond what the title already says
    doc: str = ""
    #: may the cross-policy arena (``--policies``) re-target this
    #: figure's matrix across sender policies?  Arena derivation
    #: (:mod:`repro.scenarios.arena`) additionally skips figures
    #: without a pivot-LB cell (analytic models) and time-series
    #: metrics, so ``False`` is only needed to opt a figure out.
    policy_axis: bool = True


REGISTRY: Dict[str, FigureSpec] = {}


def register(spec: FigureSpec) -> FigureSpec:
    """Add a spec to the catalogue (ids are unique)."""
    if spec.fig_id in REGISTRY:
        raise ValueError(f"duplicate figure id {spec.fig_id!r}")
    REGISTRY[spec.fig_id] = spec
    return spec


def get_figure(fig_id: str) -> FigureSpec:
    try:
        return REGISTRY[fig_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {fig_id!r}; "
            f"`repro figures list` shows the catalogue") from None


def figure_ids() -> List[str]:
    """Registered ids, in registration (paper) order."""
    return list(REGISTRY)


def run_figure(spec, *, workers: int = 1,
               store: Optional[ResultStore] = None,
               progress: bool = False,
               mp_context: Optional[str] = None,
               backend=None) -> FigureResult:
    """Expand a figure's matrix and execute it through the sweep
    harness (``spec`` may be a :class:`FigureSpec` or a registry id).
    ``backend`` selects the execution backend exactly as in
    :func:`~repro.harness.sweep.run_sweep`."""
    if isinstance(spec, str):
        spec = get_figure(spec)
    tasks = spec.build()
    results = run_sweep(list(tasks.values()), workers=workers,
                        store=store, progress=progress,
                        mp_context=mp_context, backend=backend)
    return FigureResult(spec, tasks, results)
