"""Declarative figure registry: every paper figure as data.

Importing this package registers the full catalogue — Sec. 4 simulation
figures, the failure studies, the sensitivity ablations, and the
analytical models — each as a :class:`FigureSpec` whose matrix expands
into sweep tasks and executes through
:func:`repro.harness.sweep.run_sweep`.

    >>> from repro.scenarios import figure_ids, run_figure
    >>> "fig07" in figure_ids()
    True
"""

from .registry import (
    REGISTRY,
    FigureResult,
    FigureSpec,
    TableDoc,
    figure_ids,
    get_figure,
    register,
    run_figure,
)

# importing the spec modules populates REGISTRY (paper order)
from . import baseline  # noqa: F401  (figs 2-6)
from . import timeseries  # noqa: F401  (fig 2 trajectories)
from . import failures  # noqa: F401  (figs 7-11, 22)
from . import sensitivity  # noqa: F401  (figs 12-16, 19, 21, 23 + ablations)
from . import analytic  # noqa: F401  (figs 14, 17-18, 20, 24, table 1)

# derived (not registered): cross-policy arena variants of the catalogue
from .arena import DEFAULT_POLICIES, arena_spec, arena_specs  # noqa: E402

__all__ = [
    "REGISTRY", "FigureSpec", "FigureResult", "TableDoc",
    "register", "get_figure", "figure_ids", "run_figure",
    "DEFAULT_POLICIES", "arena_spec", "arena_specs",
]
