"""Analytical-model figure specs (Sec. 5 / appendix / Table 1).

Fig. 14 (EVS imbalance), Fig. 17 (batched balls-into-bins), Fig. 18
(recycled vs oblivious bins), Fig. 20 (recycled bins under coalescing),
Fig. 24 (trace flow-size CDFs), Table 1 (memory footprint).

These figures never touch the packet simulator, but they run through
the exact same sweep pipeline as ``WorkloadSpec(kind="model")`` tasks —
same process pool, same content-keyed artifact caching.
"""

from __future__ import annotations

import random
from typing import Dict

from ..core.footprint import compute_footprint
from ..core.reps import RepsConfig
from ..harness.sweep import SweepTask, make_model_task
from ..workloads.traces import WEBSEARCH_CDF, empirical_cdf, \
    sample_flow_size
from .registry import FigureResult, FigureSpec, TableDoc, register

# ----------------------------------------------------------------------
# Fig. 14 — expected EV load imbalance at a 32-uplink switch
# ----------------------------------------------------------------------
_FIG14_EXPONENTS = (5, 6, 8, 10, 12, 14, 16)

#: paper-reported averages for the matching exponents (Fig. 14a/b)
_PAPER_1FLOW = {5: 2.92, 6: 1.82, 8: 0.82, 10: 0.37, 12: 0.20,
                14: 0.10, 16: 0.05}
_PAPER_32FLOW = {5: 0.35, 6: 0.27, 8: 0.13, 10: 0.07, 12: 0.03,
                 14: 0.02, 16: 0.01}


def _fig14_build() -> Dict[tuple, SweepTask]:
    tasks = {}
    for e in _FIG14_EXPONENTS:
        # seed 14+e mirrors imbalance_sweep's per-exponent derivation
        tasks[(e, 1)] = make_model_task(
            "imbalance", seed=14 + e, evs_exponent=e, n_uplinks=32,
            n_flows=1, repeats=40)
        tasks[(e, 32)] = make_model_task(
            "imbalance", seed=14 + e, evs_exponent=e, n_uplinks=32,
            n_flows=32, repeats=6)
    return tasks


def _fig14_table(res: FigureResult) -> TableDoc:
    rows = [(f"2^{e}", _PAPER_1FLOW[e],
             round(res.value((e, 1)), 3), _PAPER_32FLOW[e],
             round(res.value((e, 32)), 3))
            for e in _FIG14_EXPONENTS]
    return (["EVS", "paper_1flow", "ours_1flow",
             "paper_32flow", "ours_32flow"], rows, [])


def _fig14_check(res: FigureResult) -> None:
    for e in _FIG14_EXPONENTS:
        one, many = res.value((e, 1)), res.value((e, 32))
        # within ~2x of the paper's reported average at every point
        assert 0.4 * _PAPER_1FLOW[e] < one < 2.5 * _PAPER_1FLOW[e]
        assert many < one + 1e-9
    # headline thresholds
    assert res.value((16, 1)) < 0.10
    assert res.value((8, 32)) > 0.05
    # monotone decrease overall
    assert res.value((5, 1)) > res.value((16, 1)) * 10


register(FigureSpec(
    fig_id="fig14", figure="Fig. 14",
    title="Fig 14: load imbalance vs EVS size, 32 uplinks "
          "(paper vs measured)",
    build=_fig14_build, metric="average",
    table=_fig14_table, check=_fig14_check,
    tags=("model", "analytic")))


# ----------------------------------------------------------------------
# Fig. 17 — batched balls-into-bins at lambda = 0.99, 1000 rounds
# ----------------------------------------------------------------------
_FIG17_PORTS = (4, 8, 16, 32, 64, 128)
_FIG17_ROUNDS = 1000


def _fig17_build() -> Dict[int, SweepTask]:
    return {n: make_model_task(
                "balls_bins_curve", seed=17, ports=n,
                rounds=_FIG17_ROUNDS, lam=0.99, repeats=3,
                checkpoints=(100, 500, 1000))
            for n in _FIG17_PORTS}


def _fig17_table(res: FigureResult) -> TableDoc:
    rows = [(n, round(res.value(n, "round_100"), 1),
             round(res.value(n, "round_500"), 1),
             round(res.value(n, "round_1000"), 1))
            for n in _FIG17_PORTS]
    return (["ports", "round_100", "round_500", "round_1000"], rows, [])


def _fig17_check(res: FigureResult) -> None:
    for n in _FIG17_PORTS:
        # queues grow over the run
        assert res.value(n, "round_1000") > res.value(n, "round_100")
    # overall trend: more ports -> larger final max queue (adjacent
    # points may jitter at 3 repeats; the endpoints must not)
    finals = [res.value(n, "round_1000") for n in _FIG17_PORTS]
    assert finals[-1] > 2 * finals[0]
    assert max(finals[-2:]) >= max(finals[:2])


register(FigureSpec(
    fig_id="fig17", figure="Fig. 17",
    title="Fig 17: batched balls-into-bins, lam=0.99 (paper: queues "
          "grow; more ports grow faster)",
    build=_fig17_build, metric="round_1000",
    table=_fig17_table, check=_fig17_check,
    tags=("model", "analytic")))


# ----------------------------------------------------------------------
# Fig. 18 — recycled vs oblivious balls-into-bins, n = 5
# ----------------------------------------------------------------------
_FIG18_N, _FIG18_TAU, _FIG18_B = 5, 8, 4
_FIG18_ROUNDS = 2000  # paper plots 200; the longer run shows convergence
_FIG18_CHECKPOINTS = (50, 100, 200, 500, 2000)


def _fig18_build() -> Dict[str, SweepTask]:
    return {
        "ops": make_model_task(
            "balls_bins_ops", seed=18, n_bins=_FIG18_N,
            rounds=_FIG18_ROUNDS, lam=1.0,
            checkpoints=_FIG18_CHECKPOINTS, tail=100),
        "recycled": make_model_task(
            "recycled_bins", seed=18, n_bins=_FIG18_N, tau=_FIG18_TAU,
            b=_FIG18_B, rounds=_FIG18_ROUNDS,
            checkpoints=_FIG18_CHECKPOINTS, tail=100),
    }


def _fig18_table(res: FigureResult) -> TableDoc:
    rows = [(c, int(res.value("ops", f"round_{c}")),
             int(res.value("recycled", f"round_{c}")))
            for c in _FIG18_CHECKPOINTS]
    return (["round", "ops_max_queue", "recycled_max_queue"], rows,
            [f"tau = {_FIG18_TAU}"])


def _fig18_check(res: FigureResult) -> None:
    # OPS diverges...
    assert res.value("ops", "round_2000") > res.value("ops", "round_100")
    assert res.value("ops", "round_2000") > 2 * _FIG18_TAU
    # ...recycling converges to tau and stays there
    assert res.value("recycled", "tail_peak") <= _FIG18_TAU + 1
    assert res.value("recycled", "remembered_fraction") == 1.0


register(FigureSpec(
    fig_id="fig18", figure="Fig. 18",
    title=f"Fig 18: balls-into-bins n={_FIG18_N}, tau={_FIG18_TAU} "
          "(paper: OPS unbounded, recycled <= tau)",
    build=_fig18_build, metric="tail_peak",
    table=_fig18_table, check=_fig18_check,
    tags=("model", "analytic")))


# ----------------------------------------------------------------------
# Fig. 20 (Appendix C.1) — recycled balls-into-bins with coalescing
# ----------------------------------------------------------------------
_FIG20_N, _FIG20_TAU, _FIG20_B = 8, 10, 6
_FIG20_ROUNDS = 2000
_FIG20_RATIOS = (2, 4, 8)


def _fig20_build() -> Dict[object, SweepTask]:
    tasks: Dict[object, SweepTask] = {
        k: make_model_task(
            "recycled_bins", seed=20, n_bins=_FIG20_N, tau=_FIG20_TAU,
            b=_FIG20_B, coalesce=k, rounds=_FIG20_ROUNDS, tail=300)
        for k in _FIG20_RATIOS}
    tasks["ops"] = make_model_task(
        "balls_bins_ops", seed=20, n_bins=_FIG20_N,
        rounds=_FIG20_ROUNDS, lam=1.0, tail=300)
    return tasks


def _fig20_table(res: FigureResult) -> TableDoc:
    rows = [(f"recycle 1/{k}", round(res.value(k, "tail_avg"), 1),
             int(res.value(k, "tail_peak"))) for k in _FIG20_RATIOS]
    rows.append(("OPS", round(res.value("ops", "tail_avg"), 1),
                 int(res.value("ops", "tail_peak"))))
    return (["model", "tail_avg_max_queue", "tail_peak"], rows,
            [f"tau = {_FIG20_TAU}"])


def _fig20_check(res: FigureResult) -> None:
    ops = res.value("ops", "tail_avg")
    # 2:1 and 4:1 stay far below the OPS queue level
    assert res.value(2, "tail_avg") < 0.35 * ops
    assert res.value(4, "tail_avg") < 0.5 * ops
    # 8:1 degrades but still clearly beats OPS (paper: "still slightly
    # more advantageous than OPS")
    assert res.value(8, "tail_avg") < 0.6 * ops
    # monotone degradation with the coalescing ratio
    assert res.value(2, "tail_avg") <= res.value(4, "tail_avg") + 1e-9
    assert res.value(4, "tail_avg") <= res.value(8, "tail_avg") + 1e-9


register(FigureSpec(
    fig_id="fig20", figure="Fig. 20",
    title=f"Fig 20: recycled bins under ACK coalescing (n={_FIG20_N}, "
          f"tau={_FIG20_TAU})",
    build=_fig20_build, metric="tail_avg",
    table=_fig20_table, check=_fig20_check,
    tags=("model", "analytic", "coalescing")))


# ----------------------------------------------------------------------
# Fig. 24 (Appendix D) — flow-size CDFs of the datacenter traces
# ----------------------------------------------------------------------
_FIG24_QUANTILES = (25, 50, 75, 90, 99)


def _fig24_build() -> Dict[str, SweepTask]:
    return {trace: make_model_task(
                "trace_quantiles", seed=24, trace=trace,
                samples=20_000, quantiles=_FIG24_QUANTILES)
            for trace in ("websearch", "facebook")}


def _fig24_table(res: FigureResult) -> TableDoc:
    rows = [[f"p{q}", int(res.value("facebook", f"p{q}")),
             int(res.value("websearch", f"p{q}"))]
            for q in _FIG24_QUANTILES]
    return (["quantile", "facebook", "websearch"], rows, [])


def _fig24_check(res: FigureResult) -> None:
    # WebSearch: most flows < 100 KB, tail in the MBs
    assert res.value("websearch", "p50") < 100_000
    assert res.value("websearch", "p99") > 1_000_000
    # Facebook flows sit left of WebSearch at every quantile
    for q in _FIG24_QUANTILES:
        assert res.value("facebook", f"p{q}") <= \
            res.value("websearch", f"p{q}")
    # the empirical CDF helper reproduces a monotone curve
    rng = random.Random(7)
    pts = empirical_cdf([sample_flow_size(WEBSEARCH_CDF, rng)
                         for _ in range(500)])
    probs = [q for _, q in pts]
    assert probs == sorted(probs) and probs[-1] == 1.0


register(FigureSpec(
    fig_id="fig24", figure="Fig. 24",
    title="Fig 24: trace flow-size quantiles (bytes)",
    build=_fig24_build, metric="p50",
    table=_fig24_table, check=_fig24_check,
    tags=("model", "analytic", "traces")))


# ----------------------------------------------------------------------
# Table 1 — per-connection memory footprint of REPS
# ----------------------------------------------------------------------
#: Table 1 reference values: buffer elements -> (bits, bytes)
_TABLE1_PAPER = {1: (74, 10), 8: (193, 25)}
_TABLE1_ELEMENTS = (1, 2, 4, 8, 16)
_BITMAP_BITS = 65536  # 1 bit per EV for a 16-bit EVS (Sec. 3.3)


def _table1_build() -> Dict[int, SweepTask]:
    return {elements: make_model_task("footprint", seed=1,
                                      buffer_size=elements)
            for elements in _TABLE1_ELEMENTS}


def _table1_table(res: FigureResult) -> TableDoc:
    rows = []
    for elements in _TABLE1_ELEMENTS:
        paper_bits, paper_bytes = _TABLE1_PAPER.get(elements, ("-", "-"))
        rows.append((elements, paper_bits,
                     int(res.value(elements, "total_bits")),
                     paper_bytes,
                     int(res.value(elements, "total_bytes"))))
    notes = [f"BitMap strawman: {_BITMAP_BITS} bits/connection "
             f"(= {_BITMAP_BITS // 8 // 1024} KiB); "
             "MPTCP: 368 extra bytes for 8 subflows [45]"]
    return (["buffer_elems", "paper_bits", "ours_bits",
             "paper_bytes", "ours_bytes"], rows, notes)


def _table1_check(res: FigureResult) -> None:
    assert res.value(1, "total_bits") == 74
    assert res.value(1, "total_bytes") == 10
    assert res.value(8, "total_bits") == 193
    assert res.value(8, "total_bytes") == 25
    # small EVS shaves a byte per element (Sec. 3.3)
    small = compute_footprint(RepsConfig(evs_size=256))
    assert compute_footprint(RepsConfig()).total_bits - small.total_bits \
        == 8 * 8
    # REPS is orders of magnitude below per-EV state
    assert res.value(8, "total_bits") * 100 < _BITMAP_BITS


register(FigureSpec(
    fig_id="table1", figure="Table 1",
    title="Table 1: REPS per-connection footprint (paper vs recomputed)",
    build=_table1_build, metric="total_bits",
    table=_table1_table, check=_table1_check,
    tags=("model", "analytic")))
