"""Fig. 2 as a trajectory: the failure-recovery curve, not endpoints.

The paper's headline REPS results are *dynamics* — Fig. 2 plots
per-window telemetry over time, and Sec. 4.3.3 argues REPS converges
back to full goodput after cable failures while OPS keeps spraying
into the dead link.  The steady-state probes cannot show that, so this
spec runs the tornado microbenchmark under a timed uplink failure with
the windowed time-series probes attached: per-window goodput, worst
queue depth, the failed uplink's traffic share, and the EV-recycling
hit rate all travel through the artifact store as columnar arrays
(``metric_kind="timeseries"``), and the campaign report renders the
recovery curve as a sparkline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..harness.sweep import FailureSpec, SweepTask
from ._shared import scaled_topo, synthetic, task
from .registry import FigureResult, FigureSpec, TableDoc, register

#: like fig02: a long telemetry trace needs the real 16 MiB at every
#: scale
_TS_MSG = 16 << 20

_TS_BUCKET_US = 20.0

#: the first T0 uplink dies at t=200 us and comes back 400 us later
FAIL_AT_US = 200.0
FAIL_FOR_US = 400.0

_TS_FAILURE = FailureSpec.make(
    "fail_cable_schedule", events=((0, FAIL_AT_US, FAIL_FOR_US),))

_TS_PROBES = ("goodput_series", "queue_series", "uplink_share_series",
              "ev_recycle_series")


def window_mean(t_us: Sequence[float], values: Sequence[Optional[float]],
                t0: float, t1: float) -> float:
    """Mean of ``values`` over windows inside ``(t0, t1]`` (0 when the
    run never reaches the window — goodput after completion *is*
    zero).

    Timestamps are window *ends* (the recorder samples after each
    bucket), so a sample at exactly ``t0`` covers purely-before-``t0``
    traffic and belongs to the previous window — hence the
    left-exclusive filter.
    """
    xs = [v for t, v in zip(t_us, values) if t0 < t <= t1
          and v is not None]
    return sum(xs) / len(xs) if xs else 0.0


def _build() -> Dict[str, SweepTask]:
    return {lb: task(lb, scaled_topo(), synthetic("tornado", _TS_MSG),
                     seed=3, failure=_TS_FAILURE,
                     telemetry_bucket_us=_TS_BUCKET_US,
                     probes=_TS_PROBES, max_us=20_000_000.0)
            for lb in ("ops", "reps")}


def _summary(res: FigureResult, lb: str) -> Dict[str, float]:
    t = res.series(lb, "t_us")
    goodput = res.series(lb, "goodput_gbps")
    pre = window_mean(t, goodput, 0.0, FAIL_AT_US)
    fail = window_mean(t, goodput, FAIL_AT_US, FAIL_AT_US + FAIL_FOR_US)
    recycle = res.series(lb, "ev_recycle_rate")
    return {
        "pre": pre,
        "fail": fail,
        "retained": fail / pre if pre > 0 else 0.0,
        "recycle_end": recycle[-1] if recycle else 0.0,
        "share_fail": window_mean(t, res.series(lb, "uplink_share"),
                                  FAIL_AT_US, FAIL_AT_US + FAIL_FOR_US),
    }


def _table(res: FigureResult) -> TableDoc:
    rows: List[List[object]] = []
    for lb in res.keys():
        s = _summary(res, lb)
        rows.append([lb, round(s["pre"], 1), round(s["fail"], 1),
                     round(s["retained"], 2),
                     round(res.value(lb, "max_fct_us"), 1),
                     round(s["recycle_end"], 2)])
    return (["lb", "pre_goodput_gbps", "failure_goodput_gbps",
             "retained", "max_fct_us", "ev_recycle_rate_end"], rows,
            [f"uplink 0 down at t={FAIL_AT_US:.0f} us for "
             f"{FAIL_FOR_US:.0f} us; retained = failure-window / "
             f"pre-failure goodput"])


def _check(res: FigureResult) -> None:
    reps, ops = _summary(res, "reps"), _summary(res, "ops")
    # the failed uplink costs REPS little: it keeps most of its
    # pre-failure goodput through the outage and finishes first
    assert res.value("reps", "flows_completed") == \
        res.value("reps", "flows_total")
    assert res.value("reps", "max_fct_us") < \
        0.75 * res.value("ops", "max_fct_us")
    assert reps["retained"] >= 0.4
    assert reps["retained"] > 2.0 * ops["retained"]
    # the recovery is *recycling-driven*: by the end of the run nearly
    # every REPS EV comes from the recycle buffer, and its spray has
    # skewed off the dead uplink; OPS never recycles at all
    assert reps["recycle_end"] >= 0.5
    assert max(res.series("ops", "ev_recycle_rate"), default=0.0) == 0.0
    assert reps["share_fail"] <= 0.05


register(FigureSpec(
    fig_id="fig02_timeseries", figure="Fig. 2 (time series)",
    title="Fig 2 (time series): goodput/queue/recycling trajectories "
          "through a transient uplink failure (paper: REPS converges "
          "back, OPS keeps hitting the dead link)",
    build=_build, metric="goodput_gbps", metric_kind="timeseries",
    table=_table, check=_check,
    tags=("sim", "failures", "telemetry", "timeseries"),
    doc="Windowed series probes persist the full trajectories "
        "(per-window goodput, worst queue depth, failed-uplink share, "
        "EV-recycling hit rate) as columnar arrays in the artifact "
        "store; the report renders the recovery curve and "
        "campaign.json carries the raw arrays."))
