"""Sec. 4.3.1/4.3.2 figure specs: symmetric + asymmetric comparisons.

Fig. 2 (tornado micro), Fig. 3 (symmetric macro), Fig. 4 (asymmetric
micro), Fig. 5 (asymmetric macro), Fig. 6 (ECMP coexistence).
"""

from __future__ import annotations

from typing import Dict

from ..harness.sweep import FailureSpec, SweepTask, WorkloadSpec
from ._shared import ALL_LBS, CORE_LBS, msg, scaled_topo, small_topo, \
    synthetic, task
from .registry import FigureResult, FigureSpec, TableDoc, register

# ----------------------------------------------------------------------
# Fig. 2 — tornado microscopic view (OPS vs REPS telemetry)
# ----------------------------------------------------------------------
#: the figure needs a long telemetry trace, so 16 MiB at every scale
_FIG02_MSG = 16 << 20


def _fig02_build() -> Dict[str, SweepTask]:
    return {lb: task(lb, scaled_topo(), synthetic("tornado", _FIG02_MSG),
                     seed=3, telemetry_bucket_us=10.0,
                     probes=("queue_telemetry",))
            for lb in ("ops", "reps")}


def _fig02_table(res: FigureResult) -> TableDoc:
    rows = [(lb,
             round(res.value(lb, "max_fct_us"), 1),
             round(res.value(lb, "steady_queue_kb"), 1),
             round(res.value(lb, "util_spread_gbps"), 1),
             int(res.value(lb, "ecn_marks")))
            for lb in res.keys()]
    kmin = res.value("ops", "kmin_kb")
    return (["lb", "max_fct_us", "steady_queue_KB", "util_spread_Gbps",
             "ecn_marks"], rows, [f"Kmin = {kmin:.0f} KB"])


def _fig02_check(res: FigureResult) -> None:
    kmin_kb = res.value("ops", "kmin_kb")
    reps_q = res.value("reps", "steady_queue_kb")
    ops_q = res.value("ops", "steady_queue_kb")
    # shape: after convergence REPS holds every uplink queue around/below
    # Kmin while OPS keeps colliding well past it
    assert reps_q <= kmin_kb * 1.2
    assert ops_q > 1.5 * reps_q
    # REPS completes at least as fast (paper: ~4% faster)
    assert res.value("reps", "max_fct_us") <= \
        res.value("ops", "max_fct_us") * 1.02
    # port utilization swings: OPS steady spread well above REPS's
    assert res.value("reps", "util_spread_gbps") < \
        res.value("ops", "util_spread_gbps")
    # ECN marks: REPS near zero, OPS abundant
    assert res.value("reps", "ecn_marks") < \
        res.value("ops", "ecn_marks") / 10


register(FigureSpec(
    fig_id="fig02", figure="Fig. 2",
    title="Fig 2: tornado micro (paper: REPS queues < Kmin, ~4% faster; "
          "OPS queues cross Kmin)",
    build=_fig02_build, table=_fig02_table, check=_fig02_check,
    tags=("sim", "baseline", "telemetry")))


# ----------------------------------------------------------------------
# Fig. 3 — symmetric-network macro comparison
# ----------------------------------------------------------------------
_FIG03_SIZES_MIB = (4, 8, 16)
_FIG03_LOADS = (0.4, 0.7, 1.0)


def _fig03_synthetic_build() -> Dict[tuple, SweepTask]:
    tasks = {}
    for pattern, fan in (("incast", 8), ("permutation", 0),
                         ("tornado", 0)):
        for mib in _FIG03_SIZES_MIB:
            # incast has only fan-in flows and its CC-bound shape needs
            # the real message sizes; the scaled sizes keep the
            # all-pairs patterns fast
            size = mib << 20 if pattern == "incast" else msg(mib)
            workload = synthetic(pattern, size, fan_in=fan or 8)
            for lb in ALL_LBS:
                tasks[(pattern, mib, lb)] = task(
                    lb, small_topo(), workload, seed=3)
    return tasks


def _fig03_synthetic_table(res: FigureResult) -> TableDoc:
    rows = []
    for pattern in ("incast", "permutation", "tornado"):
        for mib in _FIG03_SIZES_MIB:
            base = res.value((pattern, mib, "ecmp"))
            row = [f"{pattern[0].upper()}. {mib}MiB"]
            row += [round(base / res.value((pattern, mib, lb)), 2)
                    for lb in ALL_LBS]
            rows.append(row)
    return (["workload"] + ALL_LBS, rows, [])


def _fig03_synthetic_check(res: FigureResult) -> None:
    data = res.values()
    for mib in _FIG03_SIZES_MIB:
        # incast is CC-bound: every LB within ~35% of ECMP
        spread = [data[("incast", mib, lb)] for lb in ALL_LBS]
        assert max(spread) / min(spread) < 1.35
        # permutation/tornado: REPS strictly beats ECMP, matches/beats OPS
        for pattern in ("permutation", "tornado"):
            assert data[(pattern, mib, "reps")] < \
                data[(pattern, mib, "ecmp")]
            assert data[(pattern, mib, "reps")] <= \
                data[(pattern, mib, "ops")] * 1.05
    # tornado: Adaptive RoCE matches REPS (its ideal scenario)
    t16 = {lb: data[("tornado", 16, lb)] for lb in ALL_LBS}
    assert abs(t16["adaptive_roce"] - t16["reps"]) / t16["reps"] < 0.15
    # permutation: REPS at least matches Adaptive RoCE (local optima are
    # not globally optimal there — Sec. 4.3.1)
    p16 = {lb: data[("permutation", 16, lb)] for lb in ALL_LBS}
    assert p16["reps"] <= p16["adaptive_roce"] * 1.05


register(FigureSpec(
    fig_id="fig03_synthetic", figure="Fig. 3 (left)",
    title="Fig 3 (left): speedup vs ECMP, symmetric network",
    build=_fig03_synthetic_build, table=_fig03_synthetic_table,
    check=_fig03_synthetic_check,
    tags=("sim", "baseline")))


def _fig03_traces_build() -> Dict[tuple, SweepTask]:
    tasks = {}
    for load in _FIG03_LOADS:
        workload = WorkloadSpec(kind="trace", pattern="websearch",
                                load=load, duration_us=100.0)
        for lb in CORE_LBS:
            tasks[(load, lb)] = task(lb, small_topo(), workload, seed=3,
                                     max_us=5_000_000.0)
    return tasks


def _fig03_traces_table(res: FigureResult) -> TableDoc:
    rows = [(f"{int(load * 100)}%", lb, round(res.value((load, lb)), 1))
            for load in _FIG03_LOADS for lb in CORE_LBS]
    return (["load", "lb", "avg_fct_us"], rows, [])


def _fig03_traces_check(res: FigureResult) -> None:
    for load in _FIG03_LOADS:
        data = {lb: res.value((load, lb)) for lb in CORE_LBS}
        if load < 0.9:
            # low/medium load: the paper shows all LBs bunched together
            assert max(data.values()) <= min(data.values()) * 1.5
        else:
            # at 100% load per-packet spraying pulls ahead of ECMP
            assert data["reps"] <= data["ecmp"]
        # REPS stays near the best at any load
        assert data["reps"] <= min(data.values()) * 1.15


register(FigureSpec(
    fig_id="fig03_traces", figure="Fig. 3 (mid)",
    title="Fig 3 (mid): DC traces avg FCT vs load, symmetric network",
    build=_fig03_traces_build, metric="avg_fct_us",
    table=_fig03_traces_table, check=_fig03_traces_check,
    tags=("sim", "baseline", "traces")))


_FIG03_COLLECTIVES = (("alltoall", 4), ("alltoall", 8),
                      ("ring_allreduce", 0), ("butterfly_allreduce", 0))


def _fig03_collectives_build() -> Dict[tuple, SweepTask]:
    tasks = {}
    for kind, n_par in _FIG03_COLLECTIVES:
        workload = WorkloadSpec(kind="collective", pattern=kind,
                                msg_bytes=msg(4), n_parallel=n_par or 8)
        key = kind if not n_par else f"{kind}(n={n_par})"
        for lb in CORE_LBS:
            tasks[(key, lb)] = task(lb, small_topo(), workload, seed=3,
                                    max_us=20_000_000.0)
    return tasks


def _fig03_collectives_table(res: FigureResult) -> TableDoc:
    kinds = sorted({k for k, _ in res.keys()})
    rows = [[k] + [round(res.value((k, lb)), 1) for lb in CORE_LBS]
            for k in kinds]
    return (["collective"] + CORE_LBS, rows, [])


def _fig03_collectives_check(res: FigureResult) -> None:
    kinds = sorted({k for k, _ in res.keys()})
    for k in kinds:
        vals = {lb: res.value((k, lb)) for lb in CORE_LBS}
        if "ring" in k:
            # ring AllReduce: no congestion accumulates; all LBs similar
            assert max(vals.values()) / min(vals.values()) < 1.4
        # REPS leads or ties every collective
        assert vals["reps"] <= min(vals.values()) * 1.12


register(FigureSpec(
    fig_id="fig03_collectives", figure="Fig. 3 (right)",
    title="Fig 3 (right): collective runtimes (us)",
    build=_fig03_collectives_build, metric="finish_us",
    table=_fig03_collectives_table, check=_fig03_collectives_check,
    tags=("sim", "baseline", "collectives")))


# ----------------------------------------------------------------------
# Fig. 4 — asymmetric topology microscopic view
# ----------------------------------------------------------------------
_FIG04_DEGRADE = FailureSpec.make("degrade_cables", indices=(0,),
                                  gbps=200.0)


def _fig04_build() -> Dict[str, SweepTask]:
    return {lb: task(lb, scaled_topo(), synthetic("permutation", msg(32)),
                     seed=5, failure=_FIG04_DEGRADE,
                     telemetry_bucket_us=10.0, probes=("uplink_share",))
            for lb in ("ops", "reps")}


def _fig04_table(res: FigureResult) -> TableDoc:
    rows = [(lb, round(res.value(lb, "max_fct_us"), 1),
             round(res.value(lb, "slow_uplink_share"), 2),
             int(res.value(lb, "total_drops")))
            for lb in res.keys()]
    return (["lb", "max_fct_us", "slow_link_share", "drops"], rows, [])


def _fig04_check(res: FigureResult) -> None:
    # paper factor ~1.75x; require a clear win
    assert res.value("reps", "max_fct_us") < \
        0.75 * res.value("ops", "max_fct_us")
    # OPS uses the slow link as much as the others; REPS skews away
    assert 0.8 < res.value("ops", "slow_uplink_share") < 1.2
    assert res.value("reps", "slow_uplink_share") < 0.8


register(FigureSpec(
    fig_id="fig04", figure="Fig. 4",
    title="Fig 4: asymmetric micro (paper: OPS 1400us capped by slow "
          "link; REPS 799us, skews off it)",
    build=_fig04_build, table=_fig04_table, check=_fig04_check,
    tags=("sim", "asymmetry", "telemetry")))


# ----------------------------------------------------------------------
# Fig. 5 — macro comparison with degraded uplinks
# ----------------------------------------------------------------------
#: 3% of uplinks in the paper's 1024-node tree; in a 16-uplink testbed
#: one downgraded cable (~6%) is the closest integer equivalent
_FIG05_DEGRADE = FailureSpec.make("degrade_fraction", fraction=0.05,
                                  gbps=200.0, seed=11)


def _fig05_synthetic_build() -> Dict[tuple, SweepTask]:
    tasks = {}
    for pattern in ("permutation", "tornado"):
        workload = synthetic(pattern, msg(8))
        for lb in ALL_LBS:
            tasks[(pattern, lb)] = task(lb, small_topo(), workload,
                                        seed=5, failure=_FIG05_DEGRADE)
    return tasks


def _fig05_synthetic_table(res: FigureResult) -> TableDoc:
    rows = []
    for pattern in ("permutation", "tornado"):
        base = res.value((pattern, "ecmp"))
        rows.append([f"{pattern} 8MiB"] +
                    [round(base / res.value((pattern, lb)), 2)
                     for lb in ALL_LBS])
    return (["workload"] + ALL_LBS, rows, [])


def _fig05_synthetic_check(res: FigureResult) -> None:
    for pattern in ("permutation", "tornado"):
        vals = {lb: res.value((pattern, lb)) for lb in ALL_LBS}
        assert vals["reps"] < vals["ecmp"]
        assert vals["reps"] < vals["ops"]
        # REPS within 10% of the best adaptive alternative
        best_other = min(v for lb, v in vals.items() if lb != "reps")
        assert vals["reps"] <= best_other * 1.10


register(FigureSpec(
    fig_id="fig05_synthetic", figure="Fig. 5 (left)",
    title="Fig 5 (left): speedup vs ECMP, 200G-degraded uplinks",
    build=_fig05_synthetic_build, table=_fig05_synthetic_table,
    check=_fig05_synthetic_check,
    tags=("sim", "asymmetry")))


def _fig05_traces_build() -> Dict[str, SweepTask]:
    workload = WorkloadSpec(kind="trace", pattern="websearch",
                            load=1.0, duration_us=100.0)
    return {lb: task(lb, small_topo(), workload, seed=5,
                     failure=_FIG05_DEGRADE, max_us=10_000_000.0)
            for lb in CORE_LBS}


def _fig05_traces_table(res: FigureResult) -> TableDoc:
    rows = [(lb, round(res.value(lb), 1)) for lb in res.keys()]
    return (["lb", "avg_fct_us"], rows, [])


def _fig05_traces_check(res: FigureResult) -> None:
    data = res.values()
    assert data["reps"] <= data["ecmp"]
    assert data["reps"] <= min(data.values()) * 1.15


register(FigureSpec(
    fig_id="fig05_traces", figure="Fig. 5 (mid)",
    title="Fig 5 (mid): DC traces 100% load, degraded",
    build=_fig05_traces_build, metric="avg_fct_us",
    table=_fig05_traces_table, check=_fig05_traces_check,
    tags=("sim", "asymmetry", "traces")))


def _fig05_collectives_build() -> Dict[tuple, SweepTask]:
    tasks = {}
    for kind in ("ring_allreduce", "alltoall"):
        workload = WorkloadSpec(kind="collective", pattern=kind,
                                msg_bytes=msg(4), n_parallel=8)
        for lb in CORE_LBS:
            tasks[(kind, lb)] = task(lb, small_topo(), workload, seed=5,
                                     failure=_FIG05_DEGRADE,
                                     max_us=20_000_000.0)
    return tasks


def _fig05_collectives_table(res: FigureResult) -> TableDoc:
    kinds = sorted({k for k, _ in res.keys()})
    rows = [[k] + [round(res.value((k, lb)), 1) for lb in CORE_LBS]
            for k in kinds]
    return (["collective"] + CORE_LBS, rows, [])


def _fig05_collectives_check(res: FigureResult) -> None:
    for k in sorted({k for k, _ in res.keys()}):
        vals = {lb: res.value((k, lb)) for lb in CORE_LBS}
        assert vals["reps"] <= min(vals.values()) * 1.10


register(FigureSpec(
    fig_id="fig05_collectives", figure="Fig. 5 (right)",
    title="Fig 5 (right): collective runtimes (us), degraded",
    build=_fig05_collectives_build, metric="finish_us",
    table=_fig05_collectives_table, check=_fig05_collectives_check,
    tags=("sim", "asymmetry", "collectives")))


# ----------------------------------------------------------------------
# Fig. 6 — REPS coexisting with ECMP background traffic
# ----------------------------------------------------------------------
def _fig06_build() -> Dict[str, SweepTask]:
    workload = WorkloadSpec(kind="mixed", pattern="permutation",
                            msg_bytes=msg(8), background_lb="ecmp",
                            background_fraction=0.1)
    return {lb: task(lb, small_topo(), workload, seed=7)
            for lb in ("ops", "reps", "ecmp")}


def _fig06_table(res: FigureResult) -> TableDoc:
    rows = [(lb, round(res.value(lb, "max_fct_us"), 1),
             round(res.value(lb, "bg_max_fct_us"), 1))
            for lb in res.keys()]
    return (["main_lb", "main_max_fct_us", "background_max_fct_us"],
            rows, [])


def _fig06_check(res: FigureResult) -> None:
    # REPS main traffic beats an all-ECMP world and at least ties OPS
    assert res.value("reps", "max_fct_us") < \
        res.value("ecmp", "max_fct_us")
    assert res.value("reps", "max_fct_us") <= \
        res.value("ops", "max_fct_us") * 1.05
    # the ECMP background is not worse off under REPS than under OPS
    assert res.value("reps", "bg_max_fct_us") <= \
        res.value("ops", "bg_max_fct_us") * 1.10


register(FigureSpec(
    fig_id="fig06", figure="Fig. 6",
    title="Fig 6: 90% main traffic + 10% ECMP background (paper: REPS "
          "shifts away from ECMP paths, both sides win)",
    build=_fig06_build, table=_fig06_table, check=_fig06_check,
    tags=("sim", "baseline", "mixed")))
