"""Sec. 4.3.3 / 4.4 / Appendix C.3 figure specs: failure mitigation.

Fig. 7 (transient failures), Fig. 8 (persistent failure modes), Fig. 9
(extreme failures vs the oracle), Figs. 10/11 (FPGA-testbed
substitution), Fig. 22 (incremental uplink failures).

Every failure here is a declarative :class:`FailureSpec` — timed cable
schedules included — so the whole matrix serializes across the process
pool and into the artifact content keys.
"""

from __future__ import annotations

from typing import Dict

from ..harness.report import cdf_points
from ..harness.sweep import FailureSpec, SweepTask
from ..sim.topology import TopologyParams
from ._shared import msg, scaled_topo, small_topo, synthetic, task, \
    testbed_topo
from .registry import FigureResult, FigureSpec, TableDoc, register

# ----------------------------------------------------------------------
# Fig. 7 — two transient uplink failures during a 64 MiB permutation
# ----------------------------------------------------------------------
#: failure 1: 100 us starting at t=100 us; failure 2: 200 us at t=350 us
_FIG07_SCHEDULE = FailureSpec.make(
    "fail_cable_schedule",
    events=((0, 100.0, 100.0), (1, 350.0, 200.0)))


def _fig07_build() -> Dict[str, SweepTask]:
    return {lb: task(lb, scaled_topo(), synthetic("permutation", msg(64)),
                     seed=5, failure=_FIG07_SCHEDULE,
                     probes=("freeze_entries",), max_us=20_000_000.0)
            for lb in ("ops", "reps")}


def _fig07_table(res: FigureResult) -> TableDoc:
    rows = [(lb, round(res.value(lb, "max_fct_us"), 1),
             int(res.value(lb, "total_drops")),
             int(res.value(lb, "retransmissions")),
             int(res.value(lb, "freeze_entries")))
            for lb in res.keys()]
    return (["lb", "max_fct_us", "drops", "retx", "freeze_entries"],
            rows, [])


def _fig07_check(res: FigureResult) -> None:
    assert res.value("reps", "max_fct_us") < \
        0.75 * res.value("ops", "max_fct_us")
    assert res.value("ops", "total_drops") >= \
        2.0 * res.value("reps", "total_drops")
    # both workloads recover fully once the failures clear
    for lb in res.keys():
        assert res.value(lb, "flows_completed") == \
            res.value(lb, "flows_total")


register(FigureSpec(
    fig_id="fig07", figure="Fig. 7",
    title="Fig 7: two transient cable failures (paper: REPS >35% "
          "faster, ~2.5x fewer drops)",
    build=_fig07_build, table=_fig07_table, check=_fig07_check,
    tags=("sim", "failures")))


# ----------------------------------------------------------------------
# Fig. 8 — speedup vs OPS under eight persistent failure modes
# ----------------------------------------------------------------------
_FIG08_LBS = ["ops", "plb", "bitmap", "mprdma", "reps"]
_FAIL_AT_US = 30.0


def _fraction(fraction: float, seed: int, what: str = "cables"):
    return FailureSpec.make("fail_fraction", fraction=fraction,
                            at_us=_FAIL_AT_US, seed=seed, what=what)


FIG08_MODES: Dict[str, FailureSpec] = {
    "one_cable": _fraction(0.01, 3),
    "one_switch": _fraction(0.01, 3, "switches"),
    "one_switch_cable": FailureSpec.compose(
        _fraction(0.01, 3), _fraction(0.01, 3, "switches")),
    "5pct_cables": _fraction(0.13, 4),
    "5pct_switches": _fraction(0.13, 4, "switches"),
    "5pct_both": FailureSpec.compose(
        _fraction(0.13, 4), _fraction(0.13, 4, "switches")),
    "ber_cable_1pct": FailureSpec.make("ber", ber=0.01, seed=5),
    "ber_switch_1pct": FailureSpec.make("ber", ber=0.01,
                                        what="switches", seed=5),
}


def _fig08_permutation_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    return {(mode, lb): task(lb, small_topo(), workload, seed=5,
                             failure=spec, max_us=50_000_000.0)
            for mode, spec in FIG08_MODES.items()
            for lb in _FIG08_LBS}


def _fig08_permutation_table(res: FigureResult) -> TableDoc:
    rows = []
    for mode in FIG08_MODES:
        base = res.value((mode, "ops"))
        rows.append([mode] + [round(base / res.value((mode, lb)), 2)
                              for lb in _FIG08_LBS])
    return (["failure_mode"] + _FIG08_LBS, rows, [])


def _fig08_permutation_check(res: FigureResult) -> None:
    for mode in FIG08_MODES:
        vals = {lb: res.value((mode, lb)) for lb in _FIG08_LBS}
        # REPS at least matches OPS in every mode...
        assert vals["reps"] <= vals["ops"] * 1.05, mode
        # ... and everything completes despite the failures
        assert res.value((mode, "reps"), "flows_completed") == \
            res.value((mode, "reps"), "flows_total"), mode
    # hard failures (not BER) show a clear REPS win
    for mode in ("one_cable", "5pct_cables", "5pct_both"):
        assert res.value((mode, "reps")) < \
            0.8 * res.value((mode, "ops")), mode
    # the REPS advantage grows with the failure count (paper note)
    gain_one = res.value(("one_cable", "ops")) / \
        res.value(("one_cable", "reps"))
    gain_five = res.value(("5pct_cables", "ops")) / \
        res.value(("5pct_cables", "reps"))
    assert gain_five >= gain_one * 0.9


register(FigureSpec(
    fig_id="fig08_permutation", figure="Fig. 8 (left)",
    title="Fig 8 (left): speedup vs OPS, 8 MiB permutation",
    build=_fig08_permutation_build, table=_fig08_permutation_table,
    check=_fig08_permutation_check,
    tags=("sim", "failures")))


_FIG08_ALLREDUCE_MODES = ("one_cable", "5pct_cables")


def _fig08_allreduce_build() -> Dict[tuple, SweepTask]:
    from ..harness.sweep import WorkloadSpec
    workload = WorkloadSpec(kind="collective", pattern="ring_allreduce",
                            msg_bytes=msg(4))
    return {(mode, lb): task(lb, small_topo(), workload, seed=5,
                             failure=FIG08_MODES[mode],
                             max_us=50_000_000.0)
            for mode in _FIG08_ALLREDUCE_MODES
            for lb in ("ops", "reps")}


def _fig08_allreduce_table(res: FigureResult) -> TableDoc:
    rows = [[m, round(res.value((m, "ops")), 1),
             round(res.value((m, "reps")), 1),
             round(res.value((m, "ops")) / res.value((m, "reps")), 2)]
            for m in _FIG08_ALLREDUCE_MODES]
    return (["failure_mode", "ops", "reps", "speedup"], rows, [])


def _fig08_allreduce_check(res: FigureResult) -> None:
    for mode in _FIG08_ALLREDUCE_MODES:
        assert res.value((mode, "reps")) <= res.value((mode, "ops"))


register(FigureSpec(
    fig_id="fig08_allreduce", figure="Fig. 8 (right)",
    title="Fig 8 (right): ring AllReduce runtime (us) under failures",
    build=_fig08_allreduce_build, metric="finish_us",
    table=_fig08_allreduce_table, check=_fig08_allreduce_check,
    tags=("sim", "failures", "collectives")))


# ----------------------------------------------------------------------
# Fig. 9 — extreme failure sweep: 0-50% of cables failing
# ----------------------------------------------------------------------
_FIG09_FRACTIONS = (0.0, 0.13, 0.25, 0.5)
_FIG09_LBS = ("plb", "reps", "ideal")


def _fig09_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", msg(8))
    tasks = {}
    for fraction in _FIG09_FRACTIONS:
        spec = (FailureSpec.make("fail_fraction", fraction=fraction,
                                 at_us=30.0, seed=9)
                if fraction else None)
        for lb in _FIG09_LBS:
            tasks[(lb, fraction)] = task(lb, small_topo(), workload,
                                         seed=5, failure=spec,
                                         max_us=100_000_000.0)
    return tasks


def _fig09_table(res: FigureResult) -> TableDoc:
    rows = []
    for f in _FIG09_FRACTIONS:
        ideal = res.value(("ideal", f))
        plb = res.value(("plb", f))
        reps = res.value(("reps", f))
        rows.append([f"{int(f * 100)}%", round(plb, 1), round(reps, 1),
                     round(ideal, 1),
                     f"{(reps / ideal - 1) * 100:.0f}%",
                     f"{(plb / ideal - 1) * 100:.0f}%"])
    return (["failed", "plb_us", "reps_us", "ideal_us",
             "reps_slowdown", "plb_slowdown"], rows, [])


def _fig09_check(res: FigureResult) -> None:
    for f in _FIG09_FRACTIONS:
        ideal = res.value(("ideal", f))
        reps = res.value(("reps", f))
        plb = res.value(("plb", f))
        # REPS tracks the oracle closely (paper: 2-19% on a 1024-node
        # tree; our 8-uplink testbed has far less path diversity, so the
        # 50% point is allowed up to 3x); PLB does not track it at all
        assert reps <= ideal * (3.0 if f >= 0.5 else 1.5)
        assert reps <= plb
        # everything still completes
        assert res.value(("reps", f), "flows_completed") == \
            res.value(("reps", f), "flows_total")
    # at heavy failure rates the PLB gap is dramatic
    assert res.value(("plb", 0.5)) > 1.5 * res.value(("reps", 0.5))


register(FigureSpec(
    fig_id="fig09", figure="Fig. 9",
    title="Fig 9: extreme failures (paper: REPS within 2-19% of "
          "Theoretical Best up to 50% failed cables; PLB 186-304% "
          "behind)",
    build=_fig09_build, table=_fig09_table, check=_fig09_check,
    tags=("sim", "failures")))


# ----------------------------------------------------------------------
# Fig. 10 — FPGA testbed goodput (simulation substitution)
# ----------------------------------------------------------------------
_FIG10_DEGRADE = FailureSpec.make("degrade_cables", indices=(0,),
                                  gbps=200.0)


def _fig10_build() -> Dict[tuple, SweepTask]:
    workload = synthetic("permutation", 4 << 20)
    return {(lb, net): task(lb, testbed_topo(), workload, seed=7,
                            failure=_FIG10_DEGRADE if net == "asymmetric"
                            else None,
                            max_us=50_000_000.0)
            for lb in ("ops", "reps")
            for net in ("symmetric", "asymmetric")}


def _fig10_table(res: FigureResult) -> TableDoc:
    rows = [(lb, net, round(res.value((lb, net)), 1))
            for lb, net in res.keys()]
    return (["lb", "network", "avg_flow_goodput_gbps"], rows, [])


def _fig10_check(res: FigureResult) -> None:
    sym_ops = res.value(("ops", "symmetric"))
    sym_reps = res.value(("reps", "symmetric"))
    # (a) symmetric: both within ~25% of each other, both high
    assert abs(sym_ops - sym_reps) / sym_reps < 0.25
    assert sym_reps > 50.0
    # (b) asymmetric: REPS clearly ahead of OPS
    asy_ops = res.value(("ops", "asymmetric"))
    asy_reps = res.value(("reps", "asymmetric"))
    assert asy_reps > 1.2 * asy_ops
    # REPS loses little goodput to the asymmetry; OPS is capped hard
    assert asy_reps > 0.75 * sym_reps


register(FigureSpec(
    fig_id="fig10", figure="Fig. 10",
    title="Fig 10: FPGA-testbed goodput (sim substitute; 100G hosts, "
          "ideal share = ~100G sym)",
    build=_fig10_build, metric="avg_goodput_gbps",
    table=_fig10_table, check=_fig10_check,
    tags=("sim", "failures", "testbed")))


# ----------------------------------------------------------------------
# Fig. 11 — FPGA testbed: FCT distribution + link-failure drops
# ----------------------------------------------------------------------
def _fig11a_build() -> Dict[str, SweepTask]:
    workload = synthetic("permutation", 2 << 20)
    return {lb: task(lb, testbed_topo(), workload, seed=7,
                     failure=_FIG10_DEGRADE, max_us=50_000_000.0)
            for lb in ("ops", "reps")}


def _fig11a_table(res: FigureResult) -> TableDoc:
    rows = []
    for lb in res.keys():
        for v, p in cdf_points(res[lb].metrics["fct_us"], n_points=8):
            rows.append((lb, round(v, 1), round(p, 2)))
    return (["lb", "fct_us", "cdf"], rows, [])


def _fig11a_check(res: FigureResult) -> None:
    assert res.value("reps", "p50_fct_us") <= \
        res.value("ops", "p50_fct_us")
    assert res.value("reps", "max_fct_us") < \
        res.value("ops", "max_fct_us")


register(FigureSpec(
    fig_id="fig11a", figure="Fig. 11a",
    title="Fig 11a: FCT distribution, asymmetric testbed (paper: REPS "
          "CDF left of OPS)",
    build=_fig11a_build, table=_fig11a_table, check=_fig11a_check,
    tags=("sim", "failures", "testbed")))


#: a T0-T1 link goes down mid-run and stays down (the testbed's control
#: plane takes 100s of ms to recover)
_FIG11B_LINKDOWN = FailureSpec.make(
    "fail_cable_schedule", events=((0, 100.0, None),))


def _fig11b_build() -> Dict[str, SweepTask]:
    workload = synthetic("permutation", 8 << 20)
    return {lb: task(lb, testbed_topo(), workload, seed=7,
                     failure=_FIG11B_LINKDOWN, max_us=1_000_000.0)
            for lb in ("ops", "reps")}


def _fig11b_table(res: FigureResult) -> TableDoc:
    rows = [(lb, int(res.value(lb, "total_drops")),
             round(res.value(lb, "max_fct_us"), 1))
            for lb in res.keys()]
    return (["lb", "drops", "max_fct_us"], rows, [])


def _fig11b_check(res: FigureResult) -> None:
    assert res.value("reps", "flows_completed") == \
        res.value("reps", "flows_total")
    # the paper's 70x comes from 100s-of-ms exposure; even over our much
    # shorter run the factor must be large
    assert res.value("ops", "total_drops") > \
        2.5 * res.value("reps", "total_drops")


register(FigureSpec(
    fig_id="fig11b", figure="Fig. 11b",
    title="Fig 11b: packet drops after a persistent T0-T1 link failure "
          "(paper: REPS reduces drops by >70x at testbed timescales; "
          "shape = large factor)",
    build=_fig11b_build, table=_fig11b_table, check=_fig11b_check,
    tags=("sim", "failures", "testbed")))


# ----------------------------------------------------------------------
# Fig. 22 (Appendix C.3) — incremental persistent uplink failures
# ----------------------------------------------------------------------
#: a small ToR with 4 uplinks so "fail all but one" is one experiment;
#: all but the last uplink die permanently, staggered by 200 us
_FIG22_TOPO = dict(n_hosts=8, hosts_per_t0=4)
_FIG22_SCHEDULE = FailureSpec.make("fail_tor_uplinks", tor=0, keep=1,
                                   at_us=100.0, stagger_us=200.0)


def _fig22_build() -> Dict[str, SweepTask]:
    return {lb: task(lb, TopologyParams(**_FIG22_TOPO),
                     synthetic("permutation", msg(32)), seed=5,
                     failure=_FIG22_SCHEDULE,
                     probes=("freeze_entries",), max_us=200_000_000.0)
            for lb in ("ops", "reps")}


def _fig22_table(res: FigureResult) -> TableDoc:
    rows = [(lb, round(res.value(lb, "max_fct_us"), 1),
             int(res.value(lb, "total_drops")),
             int(res.value(lb, "retransmissions")),
             int(res.value(lb, "freeze_entries")))
            for lb in res.keys()]
    return (["lb", "max_fct_us", "drops", "retx", "freeze_entries"],
            rows, [])


def _fig22_check(res: FigureResult) -> None:
    assert res.value("reps", "flows_completed") == \
        res.value("reps", "flows_total")
    # a dramatic win — the paper reports ~40x; require >3x at our scale
    assert res.value("ops", "max_fct_us") > \
        3.0 * res.value("reps", "max_fct_us")
    assert res.value("ops", "total_drops") > \
        2.0 * res.value("reps", "total_drops")
    # freezing engaged, and REPS kept probing (frozen reuse happened)
    assert res.value("reps", "freeze_entries") > 0


register(FigureSpec(
    fig_id="fig22", figure="Fig. 22",
    title="Fig 22: incremental persistent failures, 3 of 4 uplinks die "
          "(paper: OPS ~40x worse)",
    build=_fig22_build, table=_fig22_table, check=_fig22_check,
    tags=("sim", "failures")))
