"""Fig. 6 — REPS coexisting with ECMP background traffic.

Paper: REPS shifts its own traffic away from the ECMP-loaded paths;
both traffic classes win.

The scenario matrix, report table and shape checks are declared in the
``fig06`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig06_mixed_traffic(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig06"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
