"""Fig. 6 — REPS coexisting with ECMP background traffic.

10% of flows are legacy ECMP traffic (an incremental-deployment story).
Paper: REPS shifts its own traffic away from the ECMP-loaded paths, which
(1) protects REPS flows and (2) leaves the background ECMP flows no worse
than they'd be among other ECMP traffic.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.harness import run_mixed_traffic


def _run(main_lb: str):
    s = scenario(main_lb, small_topo(), seed=7)
    return run_mixed_traffic(s, "permutation", msg(8),
                             background_lb="ecmp",
                             background_fraction=0.1)


def test_fig06_mixed_traffic(benchmark):
    results = benchmark.pedantic(
        lambda: {lb: _run(lb) for lb in ("ops", "reps", "ecmp")},
        rounds=1, iterations=1)

    rows = []
    for lb, (main, bg) in results.items():
        rows.append((lb, round(main.max_fct_us, 1),
                     round(bg.max_fct_us, 1)))
    report("fig06", "Fig 6: 90% main traffic + 10% ECMP background "
           "(paper: REPS shifts away from ECMP paths, both sides win)",
           ["main_lb", "main_max_fct_us", "background_max_fct_us"], rows)

    reps_main, reps_bg = results["reps"]
    ops_main, ops_bg = results["ops"]
    ecmp_main, ecmp_bg = results["ecmp"]
    # REPS main traffic beats an all-ECMP world and at least ties OPS
    assert reps_main.max_fct_us < ecmp_main.max_fct_us
    assert reps_main.max_fct_us <= ops_main.max_fct_us * 1.05
    # the ECMP background is not worse off under REPS than under OPS
    assert reps_bg.max_fct_us <= ops_bg.max_fct_us * 1.10
