"""Cross-policy arena — RepFlow, PRIME and Sprinklers head-to-head.

The paper plots REPS against OPS/ECMP-style baselines only; the arena
(:mod:`repro.scenarios.arena`) re-targets a figure's canonical ``reps``
cells onto the full head-to-head set, so every competitor faces exactly
the scenario the paper measured REPS on.  This benchmark runs the
arena variant of the Fig. 2 tornado micro — the smallest figure with a
pivot cell — and asserts that every policy finished every cell.

The full arena (`every` derivable figure × policy) runs through
``repro figures run --all --policies reps,ecmp,repflow,prime,sprinklers``;
this file keeps one timed, check-gated sample of it in the benchmark
suite.
"""

from __future__ import annotations

from _common import bench_report, bench_workers, _figure_store

from repro.scenarios import DEFAULT_POLICIES, arena_spec, get_figure
from repro.scenarios.registry import run_figure


def test_arena_fig02(benchmark):
    spec = arena_spec(get_figure("fig02"), DEFAULT_POLICIES)
    assert spec is not None, "fig02 lost its reps pivot cell"
    result = benchmark.pedantic(
        lambda: run_figure(spec, workers=bench_workers(),
                           store=_figure_store()),
        rounds=1, iterations=1)
    bench_report(result)
    result.check()
