"""Fig. 19 (Appendix A) — forcing freezing mode without any failure.

Paper: forced freezing performs comparably to standard REPS, and
both finish slightly faster than OPS.

The scenario matrix, report table and shape checks are declared in the
``fig19`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig19_forced_freezing(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig19"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
