"""Fig. 19 (Appendix A) — forcing freezing mode without any failure.

Paper: a 16 MiB permutation where REPS is forced into freezing mode at
t = 50 us performs comparably to standard REPS (freezing merely shrinks
the effective EVS, which Sec. 4.5.2 shows is fine) — and both finish
slightly faster than OPS.
"""

from __future__ import annotations

from _common import msg, report, scaled_topo, scenario

from repro.harness import run_synthetic

FORCE_AT_US = 50.0


def _run(lb: str, force: bool = False):
    s = scenario(lb, scaled_topo(), seed=3, max_us=50_000_000.0)
    net = s.network()
    from repro.workloads.synthetic import permutation
    pairs = permutation(s.topo.n_hosts, seed=2, cross_tor_only=True,
                        hosts_per_t0=s.topo.hosts_per_t0)
    fids = [net.add_flow(src, dst, msg(16)) for src, dst in pairs]
    if force:
        us = 1_000_000
        for fid in fids:
            lb_obj = net.flows[fid].sender.lb
            net.engine.at(int(FORCE_AT_US * us), lb_obj.force_freeze,
                          int(FORCE_AT_US * us))
    return net.run(max_us=50_000_000.0)


def test_fig19_forced_freezing(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "ops": _run("ops"),
            "reps": _run("reps"),
            "reps_forced": _run("reps", force=True),
        }, rounds=1, iterations=1)

    rows = [(name, round(m.max_fct_us, 1), m.total_drops, m.ecn_marks)
            for name, m in results.items()]
    report("fig19", "Fig 19: forced freezing after 50us "
           "(paper: comparable to standard REPS, both ahead of OPS)",
           ["variant", "max_fct_us", "drops", "ecn_marks"], rows)

    reps = results["reps"].max_fct_us
    forced = results["reps_forced"].max_fct_us
    ops = results["ops"].max_fct_us
    # forced freezing costs only minor instability
    assert forced <= reps * 1.10
    # both REPS variants complete at least as fast as OPS
    assert forced <= ops * 1.02
    assert reps <= ops * 1.02
