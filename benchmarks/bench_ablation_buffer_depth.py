"""Ablation — REPS circular-buffer depth (Sec. 3.1 / Theorem 5.1).

Sweeps the depth on a bursty scenario and under failures: the
paper's depth-8 choice is near-optimal while state stays ~25 bytes.

The scenario matrix, report table and shape checks are declared in the
``ablation_buffer_depth`` spec of :mod:`repro.scenarios`; this wrapper
executes it through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_ablation_buffer_depth(benchmark):
    result = benchmark.pedantic(
        lambda: bench_figure("ablation_buffer_depth"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
