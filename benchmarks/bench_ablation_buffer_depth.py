"""Ablation — REPS circular-buffer depth (Sec. 3.1 / Theorem 5.1).

The paper fixes the buffer at 8 entries "based on empirical evidence and
the bounds derived from Theorem 5.1".  This ablation sweeps the depth on
a bursty scenario (ACKs arrive in bursts whenever downstream queues
drain) and under failures: too-shallow buffers forget good entropies
that arrive back-to-back; beyond ~8 the returns vanish while the
footprint keeps growing.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.core.footprint import compute_footprint
from repro.core.reps import RepsConfig
from repro.harness import fail_fraction_hook, run_synthetic

DEPTHS = (1, 2, 4, 8, 16, 32)


def _run(depth: int, failures: bool):
    hook = fail_fraction_hook(0.13, 30.0, seed=4) if failures else None
    s = scenario("reps", small_topo(), seed=5, failures=hook,
                 reps=RepsConfig(buffer_size=depth),
                 ack_coalesce=4, max_us=50_000_000.0)
    return run_synthetic(s, "permutation", msg(8)).metrics


def test_ablation_buffer_depth(benchmark):
    data = benchmark.pedantic(
        lambda: {(d, f): _run(d, f)
                 for d in DEPTHS for f in (False, True)},
        rounds=1, iterations=1)

    rows = []
    for d in DEPTHS:
        fp = compute_footprint(RepsConfig(buffer_size=d))
        rows.append((d, fp.total_bytes,
                     round(data[(d, False)].max_fct_us, 1),
                     round(data[(d, True)].max_fct_us, 1)))
    report("ablation_buffer_depth",
           "Ablation: REPS buffer depth (paper picks 8)",
           ["depth", "state_bytes", "healthy_max_fct_us",
            "failures_max_fct_us"], rows)

    # every depth still completes the workload
    for key, m in data.items():
        assert m.flows_completed == m.flows_total, key
    # the paper's depth-8 choice is within 10% of the best depth in both
    # scenarios — deeper buffers buy nothing
    for failures in (False, True):
        best = min(data[(d, failures)].max_fct_us for d in DEPTHS)
        assert data[(8, failures)].max_fct_us <= best * 1.10
    # and the state stays ~25 bytes (the paper's headline)
    assert compute_footprint(RepsConfig(buffer_size=8)).total_bytes == 25
