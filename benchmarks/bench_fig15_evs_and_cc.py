"""Fig. 15 — EVS-size sensitivity and CC-algorithm sensitivity.

(left) 8 MiB permutation with 32 / 256 / 64K EVs: REPS works equally well
with 256 and 64K EVs and is only ~8% slower with 32; OPS is 21% / 64%
slower with 256 / 32 EVs vs 64K.
(right) REPS >= OPS under DCTCP, EQDS and the internal CC alike.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.harness import run_synthetic

EVS_SIZES = (32, 256, 65536)
CCS = ("dctcp", "eqds", "internal")


def _run(lb: str, evs: int = 65536, cc: str = "dctcp"):
    s = scenario(lb, small_topo(), seed=5, evs_size=evs, cc=cc,
                 max_us=50_000_000.0)
    return run_synthetic(s, "permutation", msg(8)).metrics


def test_fig15_evs_sizes(benchmark):
    data = benchmark.pedantic(
        lambda: {(lb, evs): _run(lb, evs=evs)
                 for evs in EVS_SIZES for lb in ("ops", "reps")},
        rounds=1, iterations=1)
    rows = [[evs, round(data[("ops", evs)].max_fct_us, 1),
             round(data[("reps", evs)].max_fct_us, 1)]
            for evs in EVS_SIZES]
    report("fig15_evs", "Fig 15 (left): EVS-size sensitivity "
           "(paper: REPS fine at 256, ~8% off at 32; OPS 21%/64% slower)",
           ["evs_size", "ops_max_fct_us", "reps_max_fct_us"], rows)

    reps64k = data[("reps", 65536)].max_fct_us
    ops64k = data[("ops", 65536)].max_fct_us
    # REPS with 256 EVs ~ REPS with 64K EVs
    assert data[("reps", 256)].max_fct_us <= reps64k * 1.10
    # REPS with only 32 EVs stays within ~15%
    assert data[("reps", 32)].max_fct_us <= reps64k * 1.20
    # OPS degrades much more with a tiny EVS
    assert data[("ops", 32)].max_fct_us > ops64k * 1.25
    # headline: REPS@32 EVs performs like OPS@64K
    assert data[("reps", 32)].max_fct_us <= ops64k * 1.10


def test_fig15_cc_algorithms(benchmark):
    data = benchmark.pedantic(
        lambda: {(lb, cc): _run(lb, cc=cc)
                 for cc in CCS for lb in ("ops", "reps")},
        rounds=1, iterations=1)
    rows = [[cc, round(data[("ops", cc)].max_fct_us, 1),
             round(data[("reps", cc)].max_fct_us, 1)] for cc in CCS]
    report("fig15_cc", "Fig 15 (right): CC sensitivity "
           "(paper: REPS superior under every CC)",
           ["cc", "ops_max_fct_us", "reps_max_fct_us"], rows)

    for cc in CCS:
        assert data[("reps", cc)].max_fct_us <= \
            data[("ops", cc)].max_fct_us * 1.05, cc
