"""Fig. 15 — EVS-size sensitivity and CC-algorithm sensitivity.

Paper: REPS works equally well with 256 and 64K EVs (~8% off at
32); REPS >= OPS under DCTCP, EQDS and the internal CC alike.

The scenario matrix, report table and shape checks are declared in the
``fig15_evs`` / ``fig15_cc`` specs of :mod:`repro.scenarios`; this
wrapper executes them through the sweep harness and asserts the paper's
claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig15_evs_sizes(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig15_evs"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()


def test_fig15_cc_algorithms(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig15_cc"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
