"""Fig. 16 — topology scaling x EVS size (tornado).

Paper: from 128 to 8192 nodes, REPS holds near-ideal completion for all
EVS sizes down to 64 (slight regression at 16); OPS runs up to 2.4x
slower with 16 EVs and trends upward with topology size.

Scaled substitution: the Python simulator sweeps 16..64 hosts (with
uplink counts growing alongside) rather than 128..8192; the claim under
test — REPS's EVS requirement does not grow with the topology while
OPS's does — is preserved.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from _common import msg, report, run_matrix, sweep_task

from repro.harness import WorkloadSpec
from repro.sim.topology import TopologyParams

TOPOS = {
    16: TopologyParams(n_hosts=16, hosts_per_t0=8),
    32: TopologyParams(n_hosts=32, hosts_per_t0=8),
    64: TopologyParams(n_hosts=64, hosts_per_t0=16),
}
EVS_SIZES = (16, 64, 65536)


def run_scaling_matrix(
    topos: Mapping[int, TopologyParams] = TOPOS,
    evs_sizes: Sequence[int] = EVS_SIZES,
    lbs: Sequence[str] = ("ops", "reps"),
    msg_bytes: Optional[int] = None,
    workers: Optional[int] = None,
    name: str = "fig16",
) -> Dict[tuple, object]:
    """The figure's (lb, hosts, evs) matrix through the sweep harness.

    Parameterized so the tier-1 smoke test can run a tiny instance of
    the exact same wiring.  Returns ``(lb, n_hosts, evs) ->
    TaskResult``.
    """
    workload = WorkloadSpec(kind="synthetic", pattern="tornado",
                            msg_bytes=msg_bytes or msg(8))
    tasks = {(lb, n, evs): sweep_task(lb, topo, workload, seed=5,
                                      evs_size=evs, max_us=50_000_000.0)
             for n, topo in topos.items() for evs in evs_sizes
             for lb in lbs}
    return run_matrix(name, tasks, workers=workers)


def test_fig16_topology_scaling(benchmark):
    results = benchmark.pedantic(run_scaling_matrix, rounds=1,
                                 iterations=1)
    # value() restores JSON null back to inf for runs that starved out
    data = {key: {"max_fct_us": res.value("max_fct_us")}
            for key, res in results.items()}

    rows = []
    for n in TOPOS:
        for evs in EVS_SIZES:
            rows.append([n, evs,
                         round(data[("ops", n, evs)]["max_fct_us"], 1),
                         round(data[("reps", n, evs)]["max_fct_us"], 1)])
    report("fig16", "Fig 16: topology scaling x EVS size "
           "(paper: REPS flat; OPS needs a large EVS, worsens with size)",
           ["hosts", "evs_size", "ops_max_fct_us", "reps_max_fct_us"],
           rows)

    for n in TOPOS:
        reps_full = data[("reps", n, 65536)]["max_fct_us"]
        # REPS with 64 EVs ~ full EVS at every scale
        assert data[("reps", n, 64)]["max_fct_us"] <= reps_full * 1.15, n
        # REPS with 64 EVs beats OPS with the full 16-bit EVS (headline)
        assert data[("reps", n, 64)]["max_fct_us"] <= \
            data[("ops", n, 65536)]["max_fct_us"] * 1.05, n
    # OPS with 16 EVs degrades well beyond OPS with 64K at the largest
    n = max(TOPOS)
    assert data[("ops", n, 16)]["max_fct_us"] > \
        1.3 * data[("ops", n, 65536)]["max_fct_us"]
