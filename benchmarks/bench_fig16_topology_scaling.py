"""Fig. 16 — topology scaling x EVS size (tornado).

Paper: REPS's EVS requirement does not grow with the topology while
OPS's does (up to 2.4x slower with 16 EVs).

The scenario matrix, report table and shape checks are declared in the
``fig16`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig16_topology_scaling(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig16"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
