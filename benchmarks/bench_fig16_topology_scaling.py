"""Fig. 16 — topology scaling x EVS size (tornado).

Paper: from 128 to 8192 nodes, REPS holds near-ideal completion for all
EVS sizes down to 64 (slight regression at 16); OPS runs up to 2.4x
slower with 16 EVs and trends upward with topology size.

Scaled substitution: the Python simulator sweeps 16..64 hosts (with
uplink counts growing alongside) rather than 128..8192; the claim under
test — REPS's EVS requirement does not grow with the topology while
OPS's does — is preserved.
"""

from __future__ import annotations

from _common import msg, report, scenario

from repro.harness import run_synthetic
from repro.sim.topology import TopologyParams

TOPOS = {
    16: TopologyParams(n_hosts=16, hosts_per_t0=8),
    32: TopologyParams(n_hosts=32, hosts_per_t0=8),
    64: TopologyParams(n_hosts=64, hosts_per_t0=16),
}
EVS_SIZES = (16, 64, 65536)


def _run(lb: str, n_hosts: int, evs: int):
    s = scenario(lb, TOPOS[n_hosts], seed=5, evs_size=evs,
                 max_us=50_000_000.0)
    return run_synthetic(s, "tornado", msg(8)).metrics


def test_fig16_topology_scaling(benchmark):
    data = benchmark.pedantic(
        lambda: {(lb, n, evs): _run(lb, n, evs)
                 for n in TOPOS for evs in EVS_SIZES
                 for lb in ("ops", "reps")},
        rounds=1, iterations=1)

    rows = []
    for n in TOPOS:
        for evs in EVS_SIZES:
            rows.append([n, evs,
                         round(data[("ops", n, evs)].max_fct_us, 1),
                         round(data[("reps", n, evs)].max_fct_us, 1)])
    report("fig16", "Fig 16: topology scaling x EVS size "
           "(paper: REPS flat; OPS needs a large EVS, worsens with size)",
           ["hosts", "evs_size", "ops_max_fct_us", "reps_max_fct_us"],
           rows)

    for n in TOPOS:
        reps_full = data[("reps", n, 65536)].max_fct_us
        # REPS with 64 EVs ~ full EVS at every scale
        assert data[("reps", n, 64)].max_fct_us <= reps_full * 1.15, n
        # REPS with 64 EVs beats OPS with the full 16-bit EVS (headline)
        assert data[("reps", n, 64)].max_fct_us <= \
            data[("ops", n, 65536)].max_fct_us * 1.05, n
    # OPS with 16 EVs degrades well beyond OPS with 64K at the largest
    n = max(TOPOS)
    assert data[("ops", n, 16)].max_fct_us > \
        1.3 * data[("ops", n, 65536)].max_fct_us
