"""Fig. 9 — extreme failure sweep: 0-50% of cables failing.

Paper: REPS stays within ~2-19% of the theoretical-best oracle
across the sweep; PLB lags 186-304% behind.

The scenario matrix, report table and shape checks are declared in the
``fig09`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig09_extreme_failures(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig09"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
