"""Fig. 9 — extreme failure sweep: 0-50% of cables failing.

Paper: REPS stays within ~2-19% of the theoretical-best (oracle) load
balancer across the sweep, even at 50% failed cables, while PLB lags
186-304% behind the oracle.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.harness import fail_fraction_hook, run_synthetic

FRACTIONS = (0.0, 0.13, 0.25, 0.5)
LBS = ("plb", "reps", "ideal")


def _run(lb: str, fraction: float):
    hook = fail_fraction_hook(fraction, 30.0, seed=9) if fraction else None
    s = scenario(lb, small_topo(), seed=5, failures=hook,
                 max_us=100_000_000.0)
    return run_synthetic(s, "permutation", msg(8)).metrics


def test_fig09_extreme_failures(benchmark):
    data = benchmark.pedantic(
        lambda: {(lb, f): _run(lb, f)
                 for f in FRACTIONS for lb in LBS},
        rounds=1, iterations=1)

    rows = []
    for f in FRACTIONS:
        ideal = data[("ideal", f)].max_fct_us
        rows.append([f"{int(f * 100)}%",
                     round(data[("plb", f)].max_fct_us, 1),
                     round(data[("reps", f)].max_fct_us, 1),
                     round(ideal, 1),
                     f"{(data[('reps', f)].max_fct_us / ideal - 1) * 100:.0f}%",
                     f"{(data[('plb', f)].max_fct_us / ideal - 1) * 100:.0f}%"])
    report("fig09", "Fig 9: extreme failures (paper: REPS within 2-19% of "
           "Theoretical Best up to 50% failed cables; PLB 186-304% behind)",
           ["failed", "plb_us", "reps_us", "ideal_us",
            "reps_slowdown", "plb_slowdown"], rows)

    for f in FRACTIONS:
        ideal = data[("ideal", f)].max_fct_us
        reps = data[("reps", f)].max_fct_us
        plb = data[("plb", f)].max_fct_us
        # REPS tracks the oracle closely (paper: 2-19% on a 1024-node
        # tree; our 8-uplink testbed has far less path diversity, so the
        # 50% point is allowed up to 3x); PLB does not track it at all
        assert reps <= ideal * (3.0 if f >= 0.5 else 1.5)
        assert reps <= plb
        # everything still completes
        assert data[("reps", f)].flows_completed == \
            data[("reps", f)].flows_total
    # at heavy failure rates the PLB gap is dramatic
    assert data[("plb", 0.5)].max_fct_us > \
        1.5 * data[("reps", 0.5)].max_fct_us
