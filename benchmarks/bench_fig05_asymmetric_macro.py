"""Fig. 5 — macro comparison with 3% of ToR uplinks downgraded to 200G.

Paper shapes: REPS up to 5x over ECMP and ~10% over the second-best
(usually BitMap) on synthetics; larger gaps on DC traces at 100% load
(25% over second best, 10x over ECMP); AllReduce ~30% over second best.
"""

from __future__ import annotations

from _common import ALL_LBS, CORE_LBS, msg, report, run_matrix, \
    small_topo, sweep_task

from repro.harness import FailureSpec, WorkloadSpec

#: 3% of uplinks in the paper's 1024-node tree; in a 16-uplink testbed
#: one downgraded cable (~6%) is the closest integer equivalent
DEGRADE = FailureSpec.make("degrade_fraction", fraction=0.05, gbps=200.0,
                           seed=11)


def test_fig05_synthetic(benchmark):
    def run():
        tasks = {}
        for pattern in ("permutation", "tornado"):
            workload = WorkloadSpec(kind="synthetic", pattern=pattern,
                                    msg_bytes=msg(8))
            for lb in ALL_LBS:
                tasks[(pattern, lb)] = sweep_task(
                    lb, small_topo(), workload, seed=5, failure=DEGRADE)
        results = run_matrix("fig05_synthetic", tasks)
        return {key: res.value("max_fct_us")
                for key, res in results.items()}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for pattern in ("permutation", "tornado"):
        base = data[(pattern, "ecmp")]
        rows.append([f"{pattern} 8MiB"] +
                    [round(base / data[(pattern, lb)], 2)
                     for lb in ALL_LBS])
    report("fig05_synthetic",
           "Fig 5 (left): speedup vs ECMP, 200G-degraded uplinks",
           ["workload"] + ALL_LBS, rows)

    for pattern in ("permutation", "tornado"):
        vals = {lb: data[(pattern, lb)] for lb in ALL_LBS}
        assert vals["reps"] < vals["ecmp"]
        assert vals["reps"] < vals["ops"]
        # REPS within 10% of the best adaptive alternative
        best_other = min(v for lb, v in vals.items() if lb != "reps")
        assert vals["reps"] <= best_other * 1.10


def test_fig05_dc_traces(benchmark):
    def run():
        workload = WorkloadSpec(kind="trace", pattern="websearch",
                                load=1.0, duration_us=100.0)
        tasks = {lb: sweep_task(lb, small_topo(), workload, seed=5,
                                failure=DEGRADE, max_us=10_000_000.0)
                 for lb in CORE_LBS}
        results = run_matrix("fig05_traces", tasks)
        return {lb: res.value("avg_fct_us") for lb, res in results.items()}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig05_traces", "Fig 5 (mid): DC traces 100% load, degraded",
           ["lb", "avg_fct_us"],
           [(lb, round(v, 1)) for lb, v in data.items()])
    assert data["reps"] <= data["ecmp"]
    assert data["reps"] <= min(data.values()) * 1.15


def test_fig05_collectives(benchmark):
    def run():
        tasks = {}
        for kind in ("ring_allreduce", "alltoall"):
            workload = WorkloadSpec(kind="collective", pattern=kind,
                                    msg_bytes=msg(4), n_parallel=8)
            for lb in CORE_LBS:
                tasks[(kind, lb)] = sweep_task(
                    lb, small_topo(), workload, seed=5, failure=DEGRADE,
                    max_us=20_000_000.0)
        results = run_matrix("fig05_collectives", tasks)
        return {key: res.value("finish_us") for key, res in results.items()}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    kinds = sorted({k for k, _ in data})
    report("fig05_collectives",
           "Fig 5 (right): collective runtimes (us), degraded",
           ["collective"] + CORE_LBS,
           [[k] + [round(data[(k, lb)], 1) for lb in CORE_LBS]
            for k in kinds])
    for k in kinds:
        vals = {lb: data[(k, lb)] for lb in CORE_LBS}
        assert vals["reps"] <= min(vals.values()) * 1.10
