"""Fig. 5 — macro comparison with 3% of ToR uplinks downgraded to 200G.

Paper shapes: REPS up to 5x over ECMP and ~10% over the second-best
on synthetics; larger gaps on DC traces at 100% load.

The scenario matrix, report table and shape checks are declared in the
``fig05_synthetic`` / ``fig05_traces`` / ``fig05_collectives`` specs of
:mod:`repro.scenarios`; this wrapper executes them through the sweep
harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig05_synthetic(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig05_synthetic"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()


def test_fig05_dc_traces(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig05_traces"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()


def test_fig05_collectives(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig05_collectives"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
