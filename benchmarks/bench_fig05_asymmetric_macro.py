"""Fig. 5 — macro comparison with 3% of ToR uplinks downgraded to 200G.

Paper shapes: REPS up to 5x over ECMP and ~10% over the second-best
(usually BitMap) on synthetics; larger gaps on DC traces at 100% load
(25% over second best, 10x over ECMP); AllReduce ~30% over second best.
"""

from __future__ import annotations

from _common import ALL_LBS, CORE_LBS, msg, report, scenario, small_topo

from repro.harness import (
    degrade_fraction_hook,
    run_collective,
    run_synthetic,
    run_trace,
)

#: 3% of uplinks in the paper's 1024-node tree; in a 16-uplink testbed
#: one downgraded cable (~6%) is the closest integer equivalent
DEGRADE = degrade_fraction_hook(0.05, 200.0, seed=11)


def test_fig05_synthetic(benchmark):
    def run():
        out = {}
        for pattern in ("permutation", "tornado"):
            for lb in ALL_LBS:
                s = scenario(lb, small_topo(), seed=5, failures=DEGRADE)
                res = run_synthetic(s, pattern, msg(8))
                out[(pattern, lb)] = res.metrics.max_fct_us
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for pattern in ("permutation", "tornado"):
        base = data[(pattern, "ecmp")]
        rows.append([f"{pattern} 8MiB"] +
                    [round(base / data[(pattern, lb)], 2)
                     for lb in ALL_LBS])
    report("fig05_synthetic",
           "Fig 5 (left): speedup vs ECMP, 200G-degraded uplinks",
           ["workload"] + ALL_LBS, rows)

    for pattern in ("permutation", "tornado"):
        vals = {lb: data[(pattern, lb)] for lb in ALL_LBS}
        assert vals["reps"] < vals["ecmp"]
        assert vals["reps"] < vals["ops"]
        # REPS within 10% of the best adaptive alternative
        best_other = min(v for lb, v in vals.items() if lb != "reps")
        assert vals["reps"] <= best_other * 1.10


def test_fig05_dc_traces(benchmark):
    def run():
        out = {}
        for lb in CORE_LBS:
            s = scenario(lb, small_topo(), seed=5, failures=DEGRADE,
                         max_us=10_000_000.0)
            res = run_trace(s, load=1.0, duration_us=100.0)
            out[lb] = res.metrics.avg_fct_us
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig05_traces", "Fig 5 (mid): DC traces 100% load, degraded",
           ["lb", "avg_fct_us"],
           [(lb, round(v, 1)) for lb, v in data.items()])
    assert data["reps"] <= data["ecmp"]
    assert data["reps"] <= min(data.values()) * 1.15


def test_fig05_collectives(benchmark):
    def run():
        out = {}
        for kind in ("ring_allreduce", "alltoall"):
            for lb in CORE_LBS:
                s = scenario(lb, small_topo(), seed=5, failures=DEGRADE,
                             max_us=20_000_000.0)
                res = run_collective(s, kind, msg(4), n_parallel=8)
                out[(kind, lb)] = res.collective.finish_us
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    kinds = sorted({k for k, _ in data})
    report("fig05_collectives",
           "Fig 5 (right): collective runtimes (us), degraded",
           ["collective"] + CORE_LBS,
           [[k] + [round(data[(k, lb)], 1) for lb in CORE_LBS]
            for k in kinds])
    for k in kinds:
        vals = {lb: data[(k, lb)] for lb in CORE_LBS}
        assert vals["reps"] <= min(vals.values()) * 1.10
