"""Fig. 22 (Appendix C.3) — incremental persistent uplink failures.

All but one of a ToR's uplinks die in 200 us steps.  Paper: REPS
freezes and rides the surviving link; OPS collapses to ~40x slower.

The scenario matrix, report table and shape checks are declared in the
``fig22`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig22_incremental_failures(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig22"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
