"""Fig. 22 (Appendix C.3) — incremental persistent uplink failures.

All but one of a ToR's uplinks die in 200 us steps.  Paper: REPS enters
freezing at the first failure, probes occasionally (tiny spikes on the
dead ports), and rides the surviving link; OPS collapses to ~40x slower
under continuous timeouts and retransmissions.
"""

from __future__ import annotations

from _common import msg, report, scenario

from repro.harness import run_synthetic
from repro.sim.network import Network
from repro.sim.topology import TopologyParams

#: a small ToR with 4 uplinks so "fail all but one" is one experiment
TOPO = TopologyParams(n_hosts=8, hosts_per_t0=4)


def _failures(net: Network) -> None:
    us = 1_000_000
    t0_name = net.tree.t0s[0].name
    uplinks = [c for c in net.tree.t0_uplink_cables()
               if c.name.startswith(f"{t0_name}<->")]
    # fail all but the last uplink, staggered by 200 us
    for i, cable in enumerate(uplinks[:-1]):
        net.failures.fail_cable(cable, at_ps=(100 + 200 * i) * us)


def _run(lb: str):
    s = scenario(lb, TOPO, seed=5, failures=_failures,
                 max_us=200_000_000.0)
    return run_synthetic(s, "permutation", msg(32))


def test_fig22_incremental_failures(benchmark):
    results = benchmark.pedantic(
        lambda: {lb: _run(lb) for lb in ("ops", "reps")},
        rounds=1, iterations=1)

    rows = []
    for lb, res in results.items():
        m = res.metrics
        freezes = sum(getattr(r.sender.lb, "stats_freeze_entries", 0)
                      for r in res.network.flows.values())
        rows.append((lb, round(m.max_fct_us, 1), m.total_drops,
                     m.retransmissions, freezes))
    report("fig22", "Fig 22: incremental persistent failures, 3 of 4 "
           "uplinks die (paper: OPS ~40x worse)",
           ["lb", "max_fct_us", "drops", "retx", "freeze_entries"], rows)

    ops = results["ops"].metrics
    reps = results["reps"].metrics
    assert reps.flows_completed == reps.flows_total
    # a dramatic win — the paper reports ~40x; require >3x at our scale
    assert ops.max_fct_us > 3.0 * reps.max_fct_us
    assert ops.total_drops > 2.0 * reps.total_drops
    # freezing engaged, and REPS kept probing (frozen reuse happened)
    freezes = sum(getattr(r.sender.lb, "stats_freeze_entries", 0)
                  for r in results["reps"].network.flows.values())
    assert freezes > 0
