"""Fig. 3 — symmetric-network macro comparison.

Three panels: synthetics as speedup over ECMP, DC traces vs load,
and AI collectives.  Paper shapes: incast is CC-bound; REPS leads or
ties everywhere; per-packet beats flowlet/PLB granularity.

The scenario matrix, report table and shape checks are declared in the
``fig03_synthetic`` / ``fig03_traces`` / ``fig03_collectives`` specs of
:mod:`repro.scenarios`; this wrapper executes them through the sweep
harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig03_synthetic(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig03_synthetic"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()


def test_fig03_dc_traces(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig03_traces"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()


def test_fig03_collectives(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig03_collectives"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
