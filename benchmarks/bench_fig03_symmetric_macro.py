"""Fig. 3 — symmetric-network macro comparison.

Three panels:
- synthetic benchmarks (incast 8:1, permutation, tornado x 4/8/16 MiB) as
  speedup over ECMP,
- DC traces: average FCT vs load level,
- AI collectives: runtimes for AllToAll(n) and ring/butterfly AllReduce.

Paper shapes: incast is CC-bound (all LBs equal); permutation/tornado
punish ECMP (up to 6x) and coarse-grained LBs; REPS leads or ties
everywhere; Adaptive RoCE ties REPS on tornado; per-packet beats
flowlet/PLB granularity; at 100% trace load REPS holds ~5% over OPS.
"""

from __future__ import annotations

import pytest
from _common import ALL_LBS, CORE_LBS, msg, report, run_matrix, small_topo, \
    sweep_task

from repro.harness import WorkloadSpec

SIZES_MIB = (4, 8, 16)


def _synthetic_matrix():
    tasks = {}
    for pattern, fan in (("incast", 8), ("permutation", 0), ("tornado", 0)):
        for mib in SIZES_MIB:
            # incast has only fan-in flows and its CC-bound shape
            # needs the real message sizes; the scaled sizes keep the
            # all-pairs patterns fast
            size = mib << 20 if pattern == "incast" else msg(mib)
            workload = WorkloadSpec(kind="synthetic", pattern=pattern,
                                    msg_bytes=size, fan_in=fan or 8)
            for lb in ALL_LBS:
                tasks[(pattern, mib, lb)] = sweep_task(
                    lb, small_topo(), workload, seed=3)
    results = run_matrix("fig03_synthetic", tasks)
    return {key: res.value("max_fct_us") for key, res in results.items()}


def test_fig03_synthetic(benchmark):
    data = benchmark.pedantic(_synthetic_matrix, rounds=1, iterations=1)
    rows = []
    for pattern in ("incast", "permutation", "tornado"):
        for mib in SIZES_MIB:
            base = data[(pattern, mib, "ecmp")]
            row = [f"{pattern[0].upper()}. {mib}MiB"]
            row += [round(base / data[(pattern, mib, lb)], 2)
                    for lb in ALL_LBS]
            rows.append(row)
    report("fig03_synthetic",
           "Fig 3 (left): speedup vs ECMP, symmetric network",
           ["workload"] + ALL_LBS, rows)

    for mib in SIZES_MIB:
        # incast is CC-bound: every LB within ~35% of ECMP
        spread = [data[("incast", mib, lb)] for lb in ALL_LBS]
        assert max(spread) / min(spread) < 1.35
        # permutation/tornado: REPS strictly beats ECMP, matches/beats OPS
        for pattern in ("permutation", "tornado"):
            assert data[(pattern, mib, "reps")] < \
                data[(pattern, mib, "ecmp")]
            assert data[(pattern, mib, "reps")] <= \
                data[(pattern, mib, "ops")] * 1.05
    # tornado: Adaptive RoCE matches REPS (its ideal scenario)
    t16 = {lb: data[("tornado", 16, lb)] for lb in ALL_LBS}
    assert abs(t16["adaptive_roce"] - t16["reps"]) / t16["reps"] < 0.15
    # permutation: REPS at least matches Adaptive RoCE (local optima are
    # not globally optimal there — Sec. 4.3.1)
    p16 = {lb: data[("permutation", 16, lb)] for lb in ALL_LBS}
    assert p16["reps"] <= p16["adaptive_roce"] * 1.05


@pytest.mark.parametrize("load", [0.4, 0.7, 1.0])
def test_fig03_dc_traces(benchmark, load):
    def run():
        workload = WorkloadSpec(kind="trace", pattern="websearch",
                                load=load, duration_us=100.0)
        tasks = {lb: sweep_task(lb, small_topo(), workload, seed=3,
                                max_us=5_000_000.0)
                 for lb in CORE_LBS}
        results = run_matrix(f"fig03_traces_load{int(load * 100)}", tasks)
        return {lb: res.value("avg_fct_us") for lb, res in results.items()}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"fig03_traces_load{int(load * 100)}",
           f"Fig 3 (mid): DC traces avg FCT at {int(load * 100)}% load",
           ["lb", "avg_fct_us"],
           [(lb, round(v, 1)) for lb, v in data.items()])
    if load < 0.9:
        # low/medium load: the paper shows all LBs bunched together
        assert max(data.values()) <= min(data.values()) * 1.5
    else:
        # at 100% load per-packet spraying pulls ahead of per-flow ECMP
        assert data["reps"] <= data["ecmp"]
    # REPS stays near the best at any load
    assert data["reps"] <= min(data.values()) * 1.15


def test_fig03_collectives(benchmark):
    def run():
        tasks = {}
        for kind, n_par in (("alltoall", 4), ("alltoall", 8),
                            ("ring_allreduce", 0),
                            ("butterfly_allreduce", 0)):
            workload = WorkloadSpec(kind="collective", pattern=kind,
                                    msg_bytes=msg(4),
                                    n_parallel=n_par or 8)
            key = kind if not n_par else f"{kind}(n={n_par})"
            for lb in CORE_LBS:
                tasks[(key, lb)] = sweep_task(
                    lb, small_topo(), workload, seed=3,
                    max_us=20_000_000.0)
        results = run_matrix("fig03_collectives", tasks)
        return {key: res.value("finish_us") for key, res in results.items()}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    kinds = sorted({k for k, _ in data})
    rows = [[k] + [round(data[(k, lb)], 1) for lb in CORE_LBS]
            for k in kinds]
    report("fig03_collectives",
           "Fig 3 (right): collective runtimes (us)",
           ["collective"] + CORE_LBS, rows)

    for k in kinds:
        vals = {lb: data[(k, lb)] for lb in CORE_LBS}
        if "ring" in k:
            # ring AllReduce: no congestion accumulates; all LBs similar
            assert max(vals.values()) / min(vals.values()) < 1.4
        # REPS leads or ties every collective
        assert vals["reps"] <= min(vals.values()) * 1.12
