"""Ablation — oversubscription sweep (Sec. 4.1 runs 1:1 to 4:1).

With fewer ToR uplinks per host the uplink contention rises; REPS's
advantage over OPS should persist (or grow) as the fabric gets tighter,
and ECMP's collision penalty should worsen.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.harness import run_synthetic

RATIOS = (1, 2, 4)


def _run(lb: str, oversub: int):
    topo = small_topo(oversubscription=oversub)
    s = scenario(lb, topo, seed=5, max_us=50_000_000.0)
    return run_synthetic(s, "permutation", msg(8)).metrics


def test_ablation_oversubscription(benchmark):
    data = benchmark.pedantic(
        lambda: {(lb, r): _run(lb, r)
                 for r in RATIOS for lb in ("ecmp", "ops", "reps")},
        rounds=1, iterations=1)

    rows = []
    for r in RATIOS:
        rows.append((f"{r}:1",
                     round(data[("ecmp", r)].max_fct_us, 1),
                     round(data[("ops", r)].max_fct_us, 1),
                     round(data[("reps", r)].max_fct_us, 1)))
    report("ablation_oversubscription",
           "Ablation: oversubscription 1:1 .. 4:1 (8 MiB permutation)",
           ["oversub", "ecmp_us", "ops_us", "reps_us"], rows)

    for r in RATIOS:
        # REPS keeps its edge at every oversubscription level
        assert data[("reps", r)].max_fct_us <= \
            data[("ops", r)].max_fct_us * 1.05, r
        assert data[("reps", r)].max_fct_us < \
            data[("ecmp", r)].max_fct_us, r
    # tighter fabrics take longer (sanity of the sweep itself)
    assert data[("reps", 4)].max_fct_us > data[("reps", 1)].max_fct_us
