"""Ablation — oversubscription sweep (Sec. 4.1 runs 1:1 to 4:1).

REPS's advantage over OPS persists as the fabric gets tighter, and
ECMP's collision penalty worsens.

The scenario matrix, report table and shape checks are declared in the
``ablation_oversubscription`` spec of :mod:`repro.scenarios`; this
wrapper executes it through the sweep harness and asserts the paper's
claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_ablation_oversubscription(benchmark):
    result = benchmark.pedantic(
        lambda: bench_figure("ablation_oversubscription"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
