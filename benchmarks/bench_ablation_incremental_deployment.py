"""Ablation — incremental deployment: ECMP-traffic fraction sweep.

Fig. 6 fixes the legacy (ECMP) share at 10%; this ablation sweeps it
from 0% to 75% to quantify how REPS's benefit to *both* traffic classes
evolves during a staged rollout (Sec. 4.3.2's deployment story).
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.harness import run_mixed_traffic

FRACTIONS = (0.0, 0.25, 0.5, 0.75)


def _run(frac: float):
    s = scenario("reps", small_topo(), seed=7, max_us=50_000_000.0)
    if frac == 0.0:
        from repro.harness import run_synthetic
        res = run_synthetic(s, "permutation", msg(8))
        return res.metrics, None
    return run_mixed_traffic(s, "permutation", msg(8),
                             background_lb="ecmp",
                             background_fraction=frac)


def test_ablation_incremental_deployment(benchmark):
    data = benchmark.pedantic(
        lambda: {f: _run(f) for f in FRACTIONS},
        rounds=1, iterations=1)

    rows = []
    for f, (main, bg) in data.items():
        rows.append((f"{int(f * 100)}%",
                     round(main.max_fct_us, 1),
                     round(bg.max_fct_us, 1) if bg else "-"))
    report("ablation_incremental",
           "Ablation: legacy-ECMP share during incremental deployment",
           ["ecmp_share", "reps_traffic_max_fct_us",
            "ecmp_traffic_max_fct_us"], rows)

    pure = data[0.0][0].max_fct_us
    for f in FRACTIONS[1:]:
        main, bg = data[f]
        assert main.flows_completed == main.flows_total
        # REPS traffic degrades gracefully as legacy share grows, never
        # catastrophically (stays within ~4x of an all-REPS fabric even
        # at 75% legacy traffic)
        assert main.max_fct_us < 4.0 * pure, f
