"""Ablation — incremental deployment: ECMP-traffic fraction sweep.

Sweeps the legacy share from 0% to 75% to quantify how REPS's
benefit evolves during a staged rollout (Sec. 4.3.2).

The scenario matrix, report table and shape checks are declared in the
``ablation_incremental`` spec of :mod:`repro.scenarios`; this wrapper
executes it through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_ablation_incremental_deployment(benchmark):
    result = benchmark.pedantic(
        lambda: bench_figure("ablation_incremental"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
