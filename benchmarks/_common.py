"""Shared helpers for the per-figure benchmarks.

Every benchmark regenerates one table/figure of the paper: it runs the
scenario matrix, prints a paper-vs-measured report (also written to
``benchmarks/results/<name>.txt``) and asserts the paper's *shape* claims
— orderings and rough factors, not absolute numbers (see DESIGN.md).

Run ``REPRO_BENCH_SCALE=full pytest benchmarks/ --benchmark-only`` for
larger, closer-to-paper runs.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.harness import current_scale, format_table
from repro.harness.runner import Scenario
from repro.harness.sweep import (
    ResultStore,
    SweepResults,
    SweepTask,
    make_task,
    run_sweep,
)
from repro.sim.topology import TopologyParams

#: the full Sec. 4.1 baseline suite, in the paper's legend order
ALL_LBS = ["ecmp", "ops", "flowlet", "bitmap", "mprdma", "plb",
           "mptcp", "adaptive_roce", "reps"]

#: cheaper subset for the wide sweeps (traces, collectives)
CORE_LBS = ["ecmp", "ops", "plb", "mprdma", "reps"]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, title: str, headers: Sequence[str],
           rows: Iterable[Sequence[object]],
           notes: Sequence[str] = ()) -> None:
    """Print the figure's table and persist it under benchmarks/results."""
    table = format_table(title, headers, rows)
    body = table + ("\n" + "\n".join(notes) if notes else "") + "\n"
    print("\n" + body)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(body)


def small_topo(**overrides) -> TopologyParams:
    """A matrix-friendly topology: 16 hosts, 8 uplinks, 1:1."""
    params = dict(n_hosts=16, hosts_per_t0=8)
    params.update(overrides)
    return TopologyParams(**params)


def scaled_topo(**overrides) -> TopologyParams:
    """The scale-controlled topology for single-scenario figures."""
    return current_scale().topo(**overrides)


def msg(paper_mib: float) -> int:
    return current_scale().msg_bytes(paper_mib)


def scenario(lb: str, topo: TopologyParams, **kw) -> Scenario:
    kw.setdefault("max_us", 2_000_000.0)
    return Scenario(lb=lb, topo=topo, **kw)


def sweep_task(lb: str, topo: TopologyParams, workload, *, seed: int,
               failure=None, **kw) -> SweepTask:
    """A sweep task with the benchmarks' default time budget."""
    kw.setdefault("max_us", 2_000_000.0)
    return make_task(lb, topo, workload, seed=seed, failure=failure, **kw)


def bench_workers() -> int:
    """Worker processes for benchmark matrices (``REPRO_BENCH_WORKERS``,
    default serial so pytest-benchmark timings stay comparable)."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


def run_matrix(name: str, tasks: Mapping[object, SweepTask],
               workers: Optional[int] = None) -> Dict[object, object]:
    """Route a benchmark's scenario matrix through the sweep harness.

    ``tasks`` maps the benchmark's own keys (e.g. ``(pattern, mib,
    lb)``) to sweep tasks; the result maps the same keys to
    :class:`~repro.harness.sweep.TaskResult`.  With
    ``REPRO_BENCH_CACHE=1`` results persist under
    ``benchmarks/results/sweeps/<name>`` and re-runs skip finished
    tasks.
    """
    store = None
    if os.environ.get("REPRO_BENCH_CACHE"):
        store = ResultStore(os.path.join(RESULTS_DIR, "sweeps", name))
    results: SweepResults = run_sweep(
        list(tasks.values()),
        workers=bench_workers() if workers is None else workers,
        store=store)
    return {key: results[task] for key, task in tasks.items()}


def fct_table(results: Dict[str, object], metric: str = "max_fct_us"):
    """Rows of (lb, fct, speedup-vs-first-entry)."""
    rows = []
    base = None
    for lb, res in results.items():
        val = getattr(res.metrics, metric)
        if base is None:
            base = val
        rows.append((lb, round(val, 1),
                     round(base / val, 2) if val else float("inf")))
    return rows
