"""Shared helpers for the per-figure benchmarks.

Every benchmark regenerates one table/figure of the paper by executing
its :class:`repro.scenarios.FigureSpec` through the sweep harness:
:func:`bench_figure` runs the registered matrix (parallel workers via
``REPRO_BENCH_WORKERS``, execution backend via ``REPRO_BACKEND`` —
serial / process / batched / shard, cached artifacts via
``REPRO_BENCH_CACHE=1``),
:func:`bench_report` prints the figure's paper-vs-measured table (also
written to ``benchmarks/results/<fig_id>.txt``), and
``FigureResult.check()`` asserts the paper's *shape* claims — orderings
and rough factors, not absolute numbers (see DESIGN.md).

Run ``REPRO_BENCH_SCALE=full pytest benchmarks/ --benchmark-only`` for
larger, closer-to-paper runs.
"""

from __future__ import annotations

import os
from typing import Iterable, Mapping, Optional, Sequence

from repro.harness import format_table
from repro.harness.campaign import shared_store
from repro.harness.store import open_store
from repro.harness.sweep import ResultStore, SweepResults, SweepTask, \
    run_sweep
from repro.scenarios import FigureResult, get_figure, run_figure
# one vocabulary for benches and specs: re-export, don't re-implement
from repro.scenarios._shared import (  # noqa: F401  (re-exports)
    ALL_LBS,
    CORE_LBS,
    msg,
    scaled_topo,
    small_topo,
    task as sweep_task,
)

__all__ = [
    "ALL_LBS", "CORE_LBS", "RESULTS_DIR", "bench_figure", "bench_report",
    "bench_workers", "msg", "report", "run_matrix",
    "scaled_topo", "small_topo", "sweep_task",
]

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, title: str, headers: Sequence[str],
           rows: Iterable[Sequence[object]],
           notes: Sequence[str] = ()) -> None:
    """Print the figure's table and persist it under benchmarks/results."""
    table = format_table(title, headers, rows)
    body = table + ("\n" + "\n".join(notes) if notes else "") + "\n"
    print("\n" + body)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(body)


def bench_workers() -> int:
    """Worker processes for benchmark matrices (``REPRO_BENCH_WORKERS``,
    default serial so pytest-benchmark timings stay comparable)."""
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))


# NOTE: benchmarks select their execution backend through the same
# ``$REPRO_BACKEND`` resolution every run_sweep/run_figure call
# performs (repro.harness.backends.resolve_backend) — there is
# deliberately no local helper, so the resolution rule lives in
# exactly one place.


def _store(name: str) -> Optional[ResultStore]:
    if os.environ.get("REPRO_BENCH_CACHE"):
        try:
            return open_store(os.path.join(RESULTS_DIR, "sweeps", name))
        except ValueError as exc:
            # malformed $REPRO_STORE: fail like the CLI does, not with
            # a traceback from inside a benchmark run
            raise SystemExit(f"benchmarks: {exc}")
    return None


def _figure_store() -> Optional[ResultStore]:
    """Registered figures cache into the campaign's shared store, so
    bench runs and `repro figures run --all` dedup against the same
    content-keyed artifacts.  (Single-figure `repro figures run <id>`
    deliberately keeps per-figure store subdirs: its `--prune`
    keep-set would otherwise delete other figures' artifacts.)"""
    if os.environ.get("REPRO_BENCH_CACHE"):
        try:
            return shared_store(os.path.join(RESULTS_DIR, "sweeps"))
        except ValueError as exc:
            raise SystemExit(f"benchmarks: {exc}")
    return None


def bench_figure(fig_id: str,
                 workers: Optional[int] = None) -> FigureResult:
    """Execute a registered figure's matrix through the sweep harness."""
    return run_figure(get_figure(fig_id),
                      workers=bench_workers() if workers is None
                      else workers,
                      store=_figure_store())


def bench_report(result: FigureResult) -> None:
    """Print + persist a figure's declared table."""
    headers, rows, notes = result.table_doc()
    report(result.spec.fig_id, result.spec.title, headers, rows, notes)


def run_matrix(name: str, tasks: Mapping[object, SweepTask],
               workers: Optional[int] = None) -> dict:
    """Route a hand-built scenario matrix through the sweep harness.

    ``tasks`` maps the caller's own keys to sweep tasks; the result maps
    the same keys to :class:`~repro.harness.sweep.TaskResult`.  The
    registry path (:func:`bench_figure`) supersedes this for registered
    figures; it remains for ad-hoc matrices and the smoke tests.
    """
    results: SweepResults = run_sweep(
        list(tasks.values()),
        workers=bench_workers() if workers is None else workers,
        store=_store(name))
    return {key: results[task] for key, task in tasks.items()}
