"""Core perf micro-benchmarks — the simulator's hot-path speed.

Unlike the per-figure benchmarks this one measures the *simulator
itself*: the five scenarios of :mod:`repro.harness.perf` (full-stack
spray / incast+trim / RTO-under-failure packet runs, plus the
scheduler-only event-chain and timer-storm workloads).  The table
reports throughput and, when a committed ``perf.json`` is present,
the drift against it — informational here; the hard gate is
``repro perf trend perf.json <fresh>`` in CI.

``REPRO_BENCH_SCALE`` picks the operating point: ``smoke`` runs at
scale 1 (seconds, CI wiring check), ``quick`` at the committed record's
scale, ``full`` at 4x that.
"""

from __future__ import annotations

import os

from _common import report
from repro.harness.perf import (
    QUICK_SCALE,
    diff_perf,
    load_record,
    run_perf,
    scenario_names,
)

_SCALES = {"smoke": 1, "quick": QUICK_SCALE, "full": 4 * QUICK_SCALE}

PERF_JSON = os.path.join(os.path.dirname(__file__), os.pardir, "perf.json")


def _scale() -> int:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    try:
        return _SCALES[name]
    except KeyError:
        raise SystemExit(f"REPRO_BENCH_SCALE must be one of "
                         f"{sorted(_SCALES)}, got {name!r}") from None


def test_perf_core(benchmark):
    scale = _scale()
    record = benchmark.pedantic(lambda: run_perf(scale=scale, repeats=1),
                                rounds=1, iterations=1)
    rows = []
    for name in scenario_names():
        sc = record["scenarios"][name]
        if sc["kind"] == "network":
            rate = f"{sc['pkts_per_s']:,.0f} pkts/s"
        else:
            rate = f"{sc['units_per_s']:,.0f} units/s"
        rows.append((name, sc["kind"], rate, f"{sc['wall_s']:.3f}s"))
    notes = []
    if os.path.exists(PERF_JSON):
        committed = load_record(PERF_JSON)
        diff = diff_perf(committed, record)
        if diff.mismatches and committed.get("scale") == scale:
            # deterministic counters are simulation outputs: drift here
            # means the simulator changed behind the committed record
            raise AssertionError("perf counters drifted from perf.json:\n"
                                 + "\n".join(diff.mismatches))
        notes.extend(f"note: {line}" for line in
                     diff.regressions + diff.improvements)
    report("perf_core", f"simulator core perf (scale {scale})",
           ("scenario", "kind", "throughput", "wall"), rows, notes)
