"""Fig. 2 — tornado microscopic view: OPS vs REPS port telemetry.

Paper: OPS shows ~15% port-utilization swings and queues crossing
Kmin; REPS converges with every uplink queue below Kmin and ~4%
faster completion.

The scenario matrix, report table and shape checks are declared in the
``fig02`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig02_tornado_micro(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig02"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
