"""Fig. 2 — tornado microscopic view: OPS vs REPS port telemetry.

Paper: with a 16 MiB tornado, OPS shows port-utilization swings of ~15%
around line rate and queues that repeatedly cross Kmin (sometimes Kmax);
REPS converges so every uplink queue stays below Kmin while all ports sit
at the line rate.  Completion is ~4% faster for REPS; the headline
difference is queue stability.

This figure needs a long-enough telemetry trace, so the 16 MiB message is
used at every scale (one OPS + one REPS run).
"""

from __future__ import annotations

from _common import report, scaled_topo, scenario

from repro.harness import run_synthetic

MSG = 16 << 20


def _run(lb: str):
    s = scenario(lb, scaled_topo(), telemetry_bucket_us=10.0, seed=3)
    return run_synthetic(s, "tornado", MSG)


def _series_stats(res):
    rec = res.recorder
    return {
        "steady_queue_kb": rec.max_queue_kb(0.3, 0.9),
        "util_spread_gbps": rec.utilization_spread(),
        "ecn_marks": res.metrics.ecn_marks,
        "max_fct_us": res.metrics.max_fct_us,
    }


def test_fig02_tornado_micro(benchmark):
    results = benchmark.pedantic(
        lambda: {lb: _run(lb) for lb in ("ops", "reps")},
        rounds=1, iterations=1)
    stats = {lb: _series_stats(res) for lb, res in results.items()}
    kmin_kb = results["ops"].network.tree.queue_capacity() * 0.2 / 1024

    rows = [(lb,
             round(st["max_fct_us"], 1),
             round(st["steady_queue_kb"], 1),
             round(st["util_spread_gbps"], 1),
             st["ecn_marks"])
            for lb, st in stats.items()]
    report("fig02", "Fig 2: tornado micro (paper: REPS queues < Kmin, "
           "~4% faster; OPS queues cross Kmin)",
           ["lb", "max_fct_us", "steady_queue_KB", "util_spread_Gbps",
            "ecn_marks"], rows,
           notes=[f"Kmin = {kmin_kb:.0f} KB"])

    # shape: after convergence REPS holds every uplink queue around/below
    # Kmin while OPS keeps colliding well past it
    assert stats["reps"]["steady_queue_kb"] <= kmin_kb * 1.2
    assert stats["ops"]["steady_queue_kb"] > \
        1.5 * stats["reps"]["steady_queue_kb"]
    # REPS completes at least as fast (paper: ~4% faster)
    assert stats["reps"]["max_fct_us"] <= stats["ops"]["max_fct_us"] * 1.02
    # port utilization swings: OPS steady spread well above REPS's
    assert stats["reps"]["util_spread_gbps"] < \
        stats["ops"]["util_spread_gbps"]
    # ECN marks: REPS near zero, OPS abundant
    assert stats["reps"]["ecn_marks"] < stats["ops"]["ecn_marks"] / 10
