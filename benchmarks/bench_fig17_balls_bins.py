"""Fig. 17 — batched balls-into-bins at lambda = 0.99, 1000 rounds.

Paper: the average max queue grows over the run, and grows *faster* with
more output ports (4 -> 128 ports sweep) — oblivious spraying builds
unbounded queues at high injection rates.
"""

from __future__ import annotations

from _common import report

from repro.models.balls_bins import average_max_load_curve

PORTS = (4, 8, 16, 32, 64, 128)
ROUNDS = 1000


def test_fig17_balls_into_bins(benchmark):
    curves = benchmark.pedantic(
        lambda: {n: average_max_load_curve(n, ROUNDS, lam=0.99,
                                           repeats=3, seed=17)
                 for n in PORTS},
        rounds=1, iterations=1)

    rows = []
    for n, curve in curves.items():
        rows.append((n, round(curve[99], 1), round(curve[499], 1),
                     round(curve[-1], 1)))
    report("fig17", "Fig 17: batched balls-into-bins, lam=0.99 "
           "(paper: queues grow; more ports grow faster)",
           ["ports", "round_100", "round_500", "round_1000"], rows)

    for n, curve in curves.items():
        # queues grow over the run
        assert curve[-1] > curve[99]
    # overall trend: more ports -> larger final max queue (adjacent
    # points may jitter at 3 repeats; the endpoints must not)
    finals = [curves[n][-1] for n in PORTS]
    assert finals[-1] > 2 * finals[0]
    assert max(finals[-2:]) >= max(finals[:2])
