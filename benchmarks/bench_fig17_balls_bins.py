"""Fig. 17 — batched balls-into-bins at lambda = 0.99, 1000 rounds.

Paper: the average max queue grows over the run, faster with more
output ports — oblivious spraying builds unbounded queues.

The scenario matrix, report table and shape checks are declared in the
``fig17`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig17_balls_into_bins(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig17"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
