"""Fig. 20 (Appendix C.1) — recycled balls-into-bins with coalescing.

Paper: recycling every 2nd/4th ACK barely exceeds tau; 8:1 is worse
but still clearly better than OPS.

The scenario matrix, report table and shape checks are declared in the
``fig20`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig20_bins_coalescing(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig20"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
