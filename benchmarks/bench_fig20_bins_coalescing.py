"""Fig. 20 (Appendix C.1) — recycled balls-into-bins with coalescing.

Paper: recycling every 2nd/4th ACK barely exceeds tau; an 8:1 ratio is
worse but still clearly better than OPS over 2000 rounds.
"""

from __future__ import annotations

import random

from _common import report

from repro.models.balls_bins import batched_balls_into_bins
from repro.models.recycled import RecycledParams, recycled_balls_into_bins

N, TAU, B = 8, 10, 6
ROUNDS = 2000
RATIOS = (2, 4, 8)


def test_fig20_bins_coalescing(benchmark):
    def run():
        out = {}
        for k in RATIOS:
            out[k] = recycled_balls_into_bins(
                RecycledParams(n_bins=N, tau=TAU, b=B, coalesce=k),
                ROUNDS, rng=random.Random(20))
        out["ops"] = batched_balls_into_bins(N, ROUNDS, lam=1.0,
                                             rng=random.Random(20))
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    def tail_avg(trace):
        return sum(trace.max_load[-300:]) / 300

    rows = [(f"recycle 1/{k}", round(tail_avg(data[k]), 1),
             max(data[k].max_load[-300:])) for k in RATIOS]
    rows.append(("OPS", round(tail_avg(data["ops"]), 1),
                 max(data["ops"].max_load[-300:])))
    report("fig20", f"Fig 20: recycled bins under ACK coalescing "
           f"(n={N}, tau={TAU})",
           ["model", "tail_avg_max_queue", "tail_peak"], rows,
           notes=[f"tau = {TAU}"])

    # 2:1 and 4:1 stay far below the OPS queue level
    assert tail_avg(data[2]) < 0.35 * tail_avg(data["ops"])
    assert tail_avg(data[4]) < 0.5 * tail_avg(data["ops"])
    # 8:1 degrades but still clearly beats OPS (paper: "still slightly
    # more advantageous than OPS")
    assert tail_avg(data[8]) < 0.6 * tail_avg(data["ops"])
    # monotone degradation with the coalescing ratio
    assert tail_avg(data[2]) <= tail_avg(data[4]) + 1e-9
    assert tail_avg(data[4]) <= tail_avg(data[8]) + 1e-9
