"""Fig. 11 — FPGA testbed: FCT distribution (asymmetric) + drops on a
link failure, reproduced in simulation (substitution per DESIGN.md).

(a) asymmetric network FCT distribution: REPS's CDF sits left of OPS's
    (most messages complete faster) with a shorter tail.
(b) a T0-T1 link goes down mid-run and stays down (the testbed's control
    plane takes 100s of ms to recover): REPS's freezing keeps drop counts
    far below OPS's.
"""

from __future__ import annotations

from _common import report, scenario

from repro.harness import cdf_points, degrade_cables_hook, fail_cables_hook
from repro.harness.runner import run_synthetic
from repro.sim.topology import TopologyParams


def _testbed_topo() -> TopologyParams:
    return TopologyParams(n_hosts=16, hosts_per_t0=8, oversubscription=4,
                          link_gbps=400.0, host_link_gbps=100.0,
                          mtu_bytes=8192)


def _run_fct(lb: str):
    s = scenario(lb, _testbed_topo(), seed=7,
                 failures=degrade_cables_hook([0], 200.0),
                 max_us=50_000_000.0)
    return run_synthetic(s, "permutation", 2 << 20)


def _run_linkdown(lb: str):
    s = scenario(lb, _testbed_topo(), seed=7,
                 failures=fail_cables_hook([0], at_us=100.0),
                 max_us=1_000_000.0)
    return run_synthetic(s, "permutation", 8 << 20)


def test_fig11a_fct_distribution(benchmark):
    results = benchmark.pedantic(
        lambda: {lb: _run_fct(lb) for lb in ("ops", "reps")},
        rounds=1, iterations=1)
    cdfs = {lb: cdf_points(res.metrics.fct_us, n_points=8)
            for lb, res in results.items()}
    rows = []
    for lb, pts in cdfs.items():
        for v, p in pts:
            rows.append((lb, round(v, 1), round(p, 2)))
    report("fig11a", "Fig 11a: FCT distribution, asymmetric testbed "
           "(paper: REPS CDF left of OPS)",
           ["lb", "fct_us", "cdf"], rows)

    reps_m = results["reps"].metrics
    ops_m = results["ops"].metrics
    assert reps_m.p50_fct_us <= ops_m.p50_fct_us
    assert reps_m.max_fct_us < ops_m.max_fct_us


def test_fig11b_link_failure_drops(benchmark):
    results = benchmark.pedantic(
        lambda: {lb: _run_linkdown(lb) for lb in ("ops", "reps")},
        rounds=1, iterations=1)
    rows = [(lb, res.metrics.total_drops, round(res.metrics.max_fct_us, 1))
            for lb, res in results.items()]
    report("fig11b", "Fig 11b: packet drops after a persistent T0-T1 "
           "link failure (paper: REPS reduces drops by >70x at testbed "
           "timescales; shape = large factor)",
           ["lb", "drops", "max_fct_us"], rows)

    reps_m = results["reps"].metrics
    ops_m = results["ops"].metrics
    assert reps_m.flows_completed == reps_m.flows_total
    # the paper's 70x comes from 100s-of-ms exposure; even over our much
    # shorter run the factor must be large
    assert ops_m.total_drops > 2.5 * reps_m.total_drops
