"""Fig. 11 — FPGA testbed: FCT distribution (asymmetric) + drops on a
persistent link failure, reproduced in simulation.

Paper: REPS's CDF sits left of OPS's; freezing keeps drop counts far
below OPS's while the control plane recovers.

The scenario matrix, report table and shape checks are declared in the
``fig11a`` / ``fig11b`` specs of :mod:`repro.scenarios`; this wrapper
executes them through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig11a_fct_distribution(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig11a"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()


def test_fig11b_link_failure_drops(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig11b"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
