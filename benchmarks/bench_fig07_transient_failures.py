"""Fig. 7 — two transient uplink failures during a 64 MiB permutation.

Paper: OPS keeps spraying into the dead paths; REPS freezes within
one RTO, completes >35% faster and drops ~2.5x fewer packets.

The scenario matrix, report table and shape checks are declared in the
``fig07`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig07_transient_failures(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig07"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
