"""Fig. 7 — two transient uplink failures during a 64 MiB permutation.

Failure 1: 100 us starting at t=100 us; failure 2: 200 us at t=350 us.
Paper: OPS keeps spraying into the dead paths (CC throttles everything);
REPS freezes within one RTO, avoids them entirely, completes >35% faster
and drops ~2.5x fewer packets.
"""

from __future__ import annotations

from _common import msg, report, scaled_topo, scenario

from repro.harness import run_synthetic
from repro.sim.network import Network


def _failures(net: Network) -> None:
    us = 1_000_000
    cables = net.tree.t0_uplink_cables()
    net.failures.fail_cable(cables[0], at_ps=100 * us, duration_ps=100 * us)
    net.failures.fail_cable(cables[1], at_ps=350 * us, duration_ps=200 * us)


def _run(lb: str):
    s = scenario(lb, scaled_topo(), seed=5, failures=_failures,
                 max_us=20_000_000.0)
    return run_synthetic(s, "permutation", msg(64))


def test_fig07_transient_failures(benchmark):
    results = benchmark.pedantic(
        lambda: {lb: _run(lb) for lb in ("ops", "reps")},
        rounds=1, iterations=1)

    rows = []
    stats = {}
    for lb, res in results.items():
        m = res.metrics
        freezes = sum(getattr(r.sender.lb, "stats_freeze_entries", 0)
                      for r in res.network.flows.values())
        stats[lb] = m
        rows.append((lb, round(m.max_fct_us, 1), m.total_drops,
                     m.retransmissions, freezes))
    report("fig07", "Fig 7: two transient cable failures "
           "(paper: REPS >35% faster, ~2.5x fewer drops)",
           ["lb", "max_fct_us", "drops", "retx", "freeze_entries"], rows)

    assert stats["reps"].max_fct_us < 0.75 * stats["ops"].max_fct_us
    assert stats["ops"].total_drops >= 2.0 * stats["reps"].total_drops
    # both workloads recover fully once the failures clear
    for m in stats.values():
        assert m.flows_completed == m.flows_total
