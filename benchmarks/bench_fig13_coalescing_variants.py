"""Fig. 13 — REPS variants for heavy (16:1) ACK coalescing.

Paper: at a 16:1 ACK ratio, the Carry-EVs variant (coalesced ACKs return
every covered entropy) and the Reuse-EVs variant (each cached entropy is
good for n sends) recover most of standard REPS's edge across symmetric,
asymmetric and failure scenarios.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.harness import (
    degrade_cables_hook,
    fail_fraction_hook,
    run_synthetic,
)
from repro.core.reps import RepsConfig

RATIO = 16

SCENARIOS = {
    "symmetric": None,
    "asymmetric": degrade_cables_hook([0], 200.0),
    "failures": fail_fraction_hook(0.13, 30.0, seed=4),
}

VARIANTS = {
    "ops": dict(lb="ops"),
    "reps": dict(lb="reps"),
    "reps+carry": dict(lb="reps", carry_evs=True),
    "reps+reuse": dict(lb="reps",
                       reps=RepsConfig(ev_lifespan=RATIO // 2)),
}


def _run(variant: str, scenario_name: str):
    kw = dict(VARIANTS[variant])
    lb = kw.pop("lb")
    s = scenario(lb, small_topo(), seed=5, ack_coalesce=RATIO,
                 failures=SCENARIOS[scenario_name],
                 max_us=50_000_000.0, **kw)
    return run_synthetic(s, "permutation", msg(8)).metrics


def test_fig13_coalescing_variants(benchmark):
    data = benchmark.pedantic(
        lambda: {(v, sc): _run(v, sc)
                 for sc in SCENARIOS for v in VARIANTS},
        rounds=1, iterations=1)

    rows = [[sc] + [round(data[(v, sc)].max_fct_us, 1) for v in VARIANTS]
            for sc in SCENARIOS]
    report("fig13", "Fig 13: REPS coalescing variants at 16:1 "
           "(paper: Carry/Reuse EVs are the preferred variants)",
           ["scenario"] + list(VARIANTS), rows)

    for sc in ("asymmetric", "failures"):
        base = data[("reps", sc)].max_fct_us
        ops = data[("ops", sc)].max_fct_us
        carry = data[("reps+carry", sc)].max_fct_us
        reuse = data[("reps+reuse", sc)].max_fct_us
        # the variants at least match plain REPS under coalescing...
        assert carry <= base * 1.05, sc
        assert reuse <= base * 1.10, sc
        # ...and beat OPS where adaptivity matters
        assert min(carry, reuse) < ops, sc
