"""Fig. 13 — REPS variants for heavy (16:1) ACK coalescing.

Paper: the Carry-EVs and Reuse-EVs variants recover most of standard
REPS's edge across symmetric, asymmetric and failure scenarios.

The scenario matrix, report table and shape checks are declared in the
``fig13`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig13_coalescing_variants(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig13"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
