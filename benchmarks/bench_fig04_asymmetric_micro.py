"""Fig. 4 — asymmetric topology microscopic view.

One ToR uplink degraded 400 -> 200 Gbps while n flows push 32 MiB each.
Paper: OPS keeps choosing all ports equally and is capped by the slow
link (1400 us completion); REPS converges to use the slow uplink less
often, finishing in 799 us (~1.75x faster) with more stable queues.
"""

from __future__ import annotations

from _common import msg, report, scaled_topo, scenario

from repro.harness import degrade_cables_hook, run_synthetic


def _run(lb: str):
    s = scenario(lb, scaled_topo(), seed=5,
                 failures=degrade_cables_hook([0], 200.0),
                 telemetry_bucket_us=10.0)
    return run_synthetic(s, "permutation", msg(32))


def test_fig04_asymmetric_micro(benchmark):
    results = benchmark.pedantic(
        lambda: {lb: _run(lb) for lb in ("ops", "reps")},
        rounds=1, iterations=1)

    rows = []
    stats = {}
    for lb, res in results.items():
        t0 = res.network.tree.t0s[0]
        slow_port = t0.up_ports[0]
        other = [p.stats.bytes_tx for p in t0.up_ports if p is not slow_port]
        share = slow_port.stats.bytes_tx / (sum(other) / len(other))
        stats[lb] = {"fct": res.metrics.max_fct_us, "slow_share": share,
                     "drops": res.metrics.total_drops}
        rows.append((lb, round(res.metrics.max_fct_us, 1),
                     round(share, 2), res.metrics.total_drops))
    report("fig04", "Fig 4: asymmetric micro (paper: OPS 1400us capped by "
           "slow link; REPS 799us, skews off it)",
           ["lb", "max_fct_us", "slow_link_share", "drops"], rows)

    # paper factor ~1.75x; require a clear win
    assert stats["reps"]["fct"] < 0.75 * stats["ops"]["fct"]
    # OPS uses the slow link as much as the others; REPS skews away
    assert 0.8 < stats["ops"]["slow_share"] < 1.2
    assert stats["reps"]["slow_share"] < 0.8
