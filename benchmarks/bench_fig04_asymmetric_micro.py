"""Fig. 4 — asymmetric topology microscopic view.

One ToR uplink degraded 400 -> 200 Gbps.  Paper: OPS is capped by
the slow link (1400 us); REPS skews off it and finishes in 799 us.

The scenario matrix, report table and shape checks are declared in the
``fig04`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig04_asymmetric_micro(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig04"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
