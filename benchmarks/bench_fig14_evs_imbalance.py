"""Fig. 14 — expected EV load imbalance at a 32-uplink switch.

Balls-into-bins sweep of EVS size 2^5..2^16, for 1 and 32 active flows.
Paper numbers (average imbalance): 1 flow: 2.92 at 2^5 down to 0.05 at
2^16; 32 flows: 0.35 down to 0.01.  Key thresholds: <2^8 EVs leaves >10%
imbalance even with 32 flows, while 2^16 guarantees <1-5%.
"""

from __future__ import annotations

from _common import report

from repro.models.imbalance import imbalance_sweep

EXPONENTS = (5, 6, 8, 10, 12, 14, 16)

#: paper-reported averages for the matching exponents (Fig. 14a/b)
PAPER_1FLOW = {5: 2.92, 6: 1.82, 8: 0.82, 10: 0.37, 12: 0.20,
               14: 0.10, 16: 0.05}
PAPER_32FLOW = {5: 0.35, 6: 0.27, 8: 0.13, 10: 0.07, 12: 0.03,
                14: 0.02, 16: 0.01}


def test_fig14_evs_imbalance(benchmark):
    def run():
        one = imbalance_sweep(evs_exponents=EXPONENTS, n_uplinks=32,
                              n_flows=1, repeats=40, seed=14)
        many = imbalance_sweep(evs_exponents=EXPONENTS, n_uplinks=32,
                               n_flows=32, repeats=6, seed=14)
        return one, many

    one, many = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for e, s1, s32 in zip(EXPONENTS, one, many):
        rows.append((f"2^{e}",
                     PAPER_1FLOW[e], round(s1.average, 3),
                     PAPER_32FLOW[e], round(s32.average, 3)))
    report("fig14", "Fig 14: load imbalance vs EVS size, 32 uplinks "
           "(paper vs measured)",
           ["EVS", "paper_1flow", "ours_1flow",
            "paper_32flow", "ours_32flow"], rows)

    for e, s1, s32 in zip(EXPONENTS, one, many):
        # within ~2x of the paper's reported average at every point
        assert 0.4 * PAPER_1FLOW[e] < s1.average < 2.5 * PAPER_1FLOW[e]
        assert s32.average < s1.average + 1e-9
    # headline thresholds
    assert one[EXPONENTS.index(16)].average < 0.10
    assert many[EXPONENTS.index(8)].average > 0.05
    # monotone decrease overall
    avgs = [s.average for s in one]
    assert avgs[0] > avgs[-1] * 10
