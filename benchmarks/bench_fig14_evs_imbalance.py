"""Fig. 14 — expected EV load imbalance at a 32-uplink switch.

Balls-into-bins sweep of EVS size 2^5..2^16 for 1 and 32 flows,
checked against the paper's reported averages.

The scenario matrix, report table and shape checks are declared in the
``fig14`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig14_evs_imbalance(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig14"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
