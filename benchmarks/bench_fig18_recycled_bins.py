"""Fig. 18 — recycled vs oblivious balls-into-bins, n = 5.

Paper: over 200 rounds OPS's max queue keeps growing (unbounded), while
the recycled model converges and keeps all queues at/below the threshold
tau — the theoretical core of REPS (Theorem 5.1).
"""

from __future__ import annotations

import random

from _common import report

from repro.models.balls_bins import batched_balls_into_bins
from repro.models.recycled import RecycledParams, recycled_balls_into_bins

N, TAU, B = 5, 8, 4
ROUNDS = 2000  # paper plots 200; the longer run shows full convergence


def test_fig18_recycled_vs_ops(benchmark):
    def run():
        ops = batched_balls_into_bins(N, ROUNDS, lam=1.0,
                                      rng=random.Random(18))
        rec = recycled_balls_into_bins(
            RecycledParams(n_bins=N, tau=TAU, b=B), ROUNDS,
            rng=random.Random(18))
        return ops, rec

    ops, rec = benchmark.pedantic(run, rounds=1, iterations=1)

    checkpoints = (49, 99, 199, 499, ROUNDS - 1)
    rows = [(r + 1, ops.max_load[r], rec.max_load[r])
            for r in checkpoints]
    report("fig18", f"Fig 18: balls-into-bins n={N}, tau={TAU} "
           "(paper: OPS unbounded, recycled <= tau)",
           ["round", "ops_max_queue", "recycled_max_queue"], rows)

    # OPS diverges...
    assert ops.max_load[-1] > ops.max_load[99]
    assert ops.max_load[-1] > 2 * TAU
    # ...recycling converges to tau and stays there
    assert max(rec.max_load[-100:]) <= TAU + 1
    assert rec.remembered_fraction[-1] == 1.0
