"""Fig. 18 — recycled vs oblivious balls-into-bins, n = 5.

Paper: OPS's max queue keeps growing while the recycled model
converges to tau — the theoretical core of REPS (Theorem 5.1).

The scenario matrix, report table and shape checks are declared in the
``fig18`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig18_recycled_vs_ops(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig18"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
