"""Fig. 21 (Appendix C.2) — 3-tier fat tree, symmetric synthetic suite.

Paper: REPS performs comparably to the 2-tier topology — a single EV
steering two up-hops poses no intrinsic problem.
"""

from __future__ import annotations

from _common import ALL_LBS, msg, report, scenario

from repro.harness import run_synthetic
from repro.sim.topology import TopologyParams

THREE_TIER = TopologyParams(n_hosts=32, hosts_per_t0=4, tiers=3,
                            oversubscription=2, t0s_per_pod=2,
                            t2s_per_t1=2)


def test_fig21_three_tier(benchmark):
    def run():
        out = {}
        for pattern in ("permutation", "tornado"):
            for lb in ALL_LBS:
                s = scenario(lb, THREE_TIER, seed=5, max_us=50_000_000.0)
                res = run_synthetic(s, pattern, msg(8))
                out[(pattern, lb)] = res.metrics
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for pattern in ("permutation", "tornado"):
        base = data[(pattern, "ecmp")].max_fct_us
        rows.append([f"{pattern} 8MiB"] +
                    [round(base / data[(pattern, lb)].max_fct_us, 2)
                     for lb in ALL_LBS])
    report("fig21", "Fig 21: 3-tier fat tree, speedup vs ECMP "
           "(paper: comparable to the 2-tier results)",
           ["workload"] + ALL_LBS, rows)

    for pattern in ("permutation", "tornado"):
        vals = {lb: data[(pattern, lb)].max_fct_us for lb in ALL_LBS}
        assert vals["reps"] < vals["ecmp"], pattern
        assert vals["reps"] <= vals["ops"] * 1.05, pattern
        assert data[(pattern, "reps")].flows_completed == \
            data[(pattern, "reps")].flows_total
