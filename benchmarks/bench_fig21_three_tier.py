"""Fig. 21 (Appendix C.2) — 3-tier fat tree, symmetric synthetic suite.

Paper: REPS performs comparably to the 2-tier topology — a single EV
steering two up-hops poses no intrinsic problem.

The scenario matrix, report table and shape checks are declared in the
``fig21`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig21_three_tier(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig21"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
