"""Fig. 23 (Appendix C.4) — the freezing-mode ablation.

Three scenarios x {REPS, REPS-without-freezing, OPS}.  Paper: without
failures the two REPS variants are identical; with 1% cable failures
freezing is worth ~25%, and REPS stays competitive even without it.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.core.reps import RepsConfig
from repro.harness import (
    degrade_cables_hook,
    fail_fraction_hook,
    run_synthetic,
)

SCENARIOS = {
    "symmetric": None,
    "asymmetric": degrade_cables_hook([0], 200.0),
    "failures": fail_fraction_hook(0.13, 30.0, seed=4),
}

VARIANTS = {
    "reps": None,
    "reps_no_freezing": RepsConfig(freezing_enabled=False),
}


def _run(lb: str, sc: str, reps_cfg=None):
    s = scenario(lb, small_topo(), seed=5, reps=reps_cfg,
                 failures=SCENARIOS[sc], max_us=50_000_000.0)
    return run_synthetic(s, "permutation", msg(8)).metrics


def test_fig23_freezing_ablation(benchmark):
    def run():
        out = {}
        for sc in SCENARIOS:
            out[("reps", sc)] = _run("reps", sc)
            out[("reps_no_freezing", sc)] = _run(
                "reps", sc, VARIANTS["reps_no_freezing"])
            out[("ops", sc)] = _run("ops", sc)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    variants = ("reps", "reps_no_freezing", "ops")
    rows = [[sc] + [round(data[(v, sc)].max_fct_us, 1) for v in variants]
            for sc in SCENARIOS]
    report("fig23", "Fig 23: freezing-mode ablation "
           "(paper: ~25% gain under failures, none needed otherwise)",
           ["scenario"] + list(variants), rows)

    # no failures: freezing changes nothing measurable
    for sc in ("symmetric", "asymmetric"):
        a = data[("reps", sc)].max_fct_us
        b = data[("reps_no_freezing", sc)].max_fct_us
        assert abs(a - b) / a < 0.10, sc
    # failures: freezing helps; no-freezing REPS still beats OPS
    f = {v: data[(v, "failures")].max_fct_us for v in variants}
    assert f["reps"] <= f["reps_no_freezing"] * 1.05
    assert f["reps_no_freezing"] < f["ops"]
