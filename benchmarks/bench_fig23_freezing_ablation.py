"""Fig. 23 (Appendix C.4) — the freezing-mode ablation.

Paper: without failures the REPS variants are identical; with 1%
cable failures freezing is worth ~25%.

The scenario matrix, report table and shape checks are declared in the
``fig23`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig23_freezing_ablation(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig23"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
