"""Fig. 8 — speedup vs OPS under eight persistent failure modes.

Paper: REPS dominates OPS in every mode (up to 70x); gains increase
with the number of failures; BER drops do not hurt REPS.

The scenario matrix, report table and shape checks are declared in the
``fig08_permutation`` / ``fig08_allreduce`` specs of
:mod:`repro.scenarios`; this wrapper executes them through the sweep
harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig08_permutation(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig08_permutation"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()


def test_fig08_ring_allreduce(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig08_allreduce"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
