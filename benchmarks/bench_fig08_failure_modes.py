"""Fig. 8 — speedup vs OPS under eight persistent failure modes.

Modes: one failed cable / switch / both, 5% failed cables / switches /
both, 1% BER on a cable, 1% BER on a switch.  Paper: REPS dominates OPS
in every mode (up to 70x on synthetic); gains *increase* with the number
of failures; random (BER) drops do not hurt REPS; MPRDMA stays decent via
self-clocking; PLB/Flowlet lag.

Run on an 8 MiB permutation plus a ring AllReduce.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.harness import (
    ber_hook,
    fail_fraction_hook,
    run_collective,
    run_synthetic,
)
from repro.sim.network import Network

LBS = ["ops", "plb", "bitmap", "mprdma", "reps"]
FAIL_AT_US = 30.0


def _one_cable(net: Network) -> None:
    fail_fraction_hook(0.01, FAIL_AT_US, seed=3)(net)


def _one_switch(net: Network) -> None:
    fail_fraction_hook(0.01, FAIL_AT_US, seed=3, what="switches")(net)


def _one_both(net: Network) -> None:
    _one_cable(net)
    _one_switch(net)


def _five_pct_cables(net: Network) -> None:
    fail_fraction_hook(0.13, FAIL_AT_US, seed=4)(net)


def _five_pct_switches(net: Network) -> None:
    fail_fraction_hook(0.13, FAIL_AT_US, seed=4, what="switches")(net)


def _five_pct_both(net: Network) -> None:
    _five_pct_cables(net)
    _five_pct_switches(net)


MODES = {
    "one_cable": _one_cable,
    "one_switch": _one_switch,
    "one_switch_cable": _one_both,
    "5pct_cables": _five_pct_cables,
    "5pct_switches": _five_pct_switches,
    "5pct_both": _five_pct_both,
    "ber_cable_1pct": ber_hook(0.01, seed=5),
    "ber_switch_1pct": ber_hook(0.01, what="switches", seed=5),
}


def test_fig08_permutation(benchmark):
    def run():
        out = {}
        for mode, hook in MODES.items():
            for lb in LBS:
                s = scenario(lb, small_topo(), seed=5, failures=hook,
                             max_us=50_000_000.0)
                res = run_synthetic(s, "permutation", msg(8))
                out[(mode, lb)] = res.metrics
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mode in MODES:
        base = data[(mode, "ops")].max_fct_us
        rows.append([mode] + [round(base / data[(mode, lb)].max_fct_us, 2)
                              for lb in LBS])
    report("fig08_permutation",
           "Fig 8 (left): speedup vs OPS, 8 MiB permutation",
           ["failure_mode"] + LBS, rows)

    for mode in MODES:
        vals = {lb: data[(mode, lb)].max_fct_us for lb in LBS}
        # REPS at least matches OPS in every mode...
        assert vals["reps"] <= vals["ops"] * 1.05, mode
        # ... and everything completes despite the failures
        assert data[(mode, "reps")].flows_completed == \
            data[(mode, "reps")].flows_total, mode
    # hard failures (not BER) show a clear REPS win
    for mode in ("one_cable", "5pct_cables", "5pct_both"):
        vals = {lb: data[(mode, lb)].max_fct_us for lb in LBS}
        assert vals["reps"] < 0.8 * vals["ops"], mode
    # the REPS advantage grows with the failure count (paper note)
    gain_one = data[("one_cable", "ops")].max_fct_us / \
        data[("one_cable", "reps")].max_fct_us
    gain_five = data[("5pct_cables", "ops")].max_fct_us / \
        data[("5pct_cables", "reps")].max_fct_us
    assert gain_five >= gain_one * 0.9


def test_fig08_ring_allreduce(benchmark):
    modes = ("one_cable", "5pct_cables")

    def run():
        out = {}
        for mode in modes:
            for lb in ("ops", "reps"):
                s = scenario(lb, small_topo(), seed=5,
                             failures=MODES[mode], max_us=50_000_000.0)
                res = run_collective(s, "ring_allreduce", msg(4))
                out[(mode, lb)] = res.collective.finish_us
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig08_allreduce",
           "Fig 8 (right): ring AllReduce runtime (us) under failures",
           ["failure_mode", "ops", "reps", "speedup"],
           [[m, round(data[(m, "ops")], 1), round(data[(m, "reps")], 1),
             round(data[(m, "ops")] / data[(m, "reps")], 2)]
            for m in modes])
    for mode in modes:
        assert data[(mode, "reps")] <= data[(mode, "ops")]
