"""Table 1 — per-connection memory footprint of REPS.

Recomputed from the live configuration: 74 bits (~10 B) with a
1-element buffer, 193 bits (~25 B) with the default 8 elements.

The scenario matrix, report table and shape checks are declared in the
``table1`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_table1_footprint(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("table1"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
