"""Table 1 — per-connection memory footprint of REPS.

Recomputed from the live configuration: 74 bits (~10 B) with a 1-element
buffer, 193 bits (~25 B) with the default 8-element buffer.  The sweep
also shows the Sec. 3.3 note that a small EVS saves a byte per element,
and contrasts with the BitMap baseline's 64 Kib-per-connection cost.
"""

from __future__ import annotations

from _common import report

from repro.core.footprint import compute_footprint
from repro.core.reps import RepsConfig

#: Table 1 reference values: buffer elements -> (bits, bytes)
PAPER = {1: (74, 10), 8: (193, 25)}


def test_table1_footprint(benchmark):
    def run():
        out = {}
        for elements in (1, 2, 4, 8, 16):
            out[elements] = compute_footprint(
                RepsConfig(buffer_size=elements))
        return out

    footprints = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for elements, fp in footprints.items():
        paper_bits, paper_bytes = PAPER.get(elements, ("-", "-"))
        rows.append((elements, paper_bits, fp.total_bits,
                     paper_bytes, fp.total_bytes))
    bitmap_bits = 65536  # 1 bit per EV for a 16-bit EVS (Sec. 3.3)
    report("table1", "Table 1: REPS per-connection footprint "
           "(paper vs recomputed)",
           ["buffer_elems", "paper_bits", "ours_bits",
            "paper_bytes", "ours_bytes"], rows,
           notes=[f"BitMap strawman: {bitmap_bits} bits/connection "
                  f"(= {bitmap_bits // 8 // 1024} KiB); "
                  "MPTCP: 368 extra bytes for 8 subflows [45]"])

    assert footprints[1].total_bits == 74
    assert footprints[1].total_bytes == 10
    assert footprints[8].total_bits == 193
    assert footprints[8].total_bytes == 25
    # small EVS shaves a byte per element (Sec. 3.3)
    small = compute_footprint(RepsConfig(evs_size=256))
    assert compute_footprint(RepsConfig()).total_bits - small.total_bits \
        == 8 * 8
    # REPS is orders of magnitude below per-EV state
    assert footprints[8].total_bits * 100 < bitmap_bits
