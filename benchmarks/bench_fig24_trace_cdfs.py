"""Fig. 24 (Appendix D) — flow-size CDFs of the datacenter traces.

Paper: WebSearch is mostly sub-100 KB flows with a multi-MB tail;
Facebook is dominated by far smaller flows.

The scenario matrix, report table and shape checks are declared in the
``fig24`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig24_trace_cdfs(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig24"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
