"""Fig. 24 (Appendix D) — flow-size CDFs of the datacenter traces.

Paper: the WebSearch distribution has mostly sub-100 KB flows with a
multi-MB tail; the Facebook distribution is dominated by far smaller
flows.  The bench regenerates both CDFs from the samplers and checks
their relative placement.
"""

from __future__ import annotations

import random

from _common import report

from repro.workloads.traces import (
    FACEBOOK_CDF,
    WEBSEARCH_CDF,
    empirical_cdf,
    sample_flow_size,
)

SAMPLES = 20_000
PROBES = (0.25, 0.5, 0.75, 0.9, 0.99)


def _quantiles(cdf_def):
    rng = random.Random(24)
    sizes = sorted(sample_flow_size(cdf_def, rng)
                   for _ in range(SAMPLES))
    return {p: sizes[int(p * (SAMPLES - 1))] for p in PROBES}


def test_fig24_trace_cdfs(benchmark):
    data = benchmark.pedantic(
        lambda: {"websearch": _quantiles(WEBSEARCH_CDF),
                 "facebook": _quantiles(FACEBOOK_CDF)},
        rounds=1, iterations=1)

    rows = [[f"p{int(p * 100)}",
             data["facebook"][p], data["websearch"][p]]
            for p in PROBES]
    report("fig24", "Fig 24: trace flow-size quantiles (bytes)",
           ["quantile", "facebook", "websearch"], rows)

    ws, fb = data["websearch"], data["facebook"]
    # WebSearch: most flows < 100 KB, tail in the MBs
    assert ws[0.5] < 100_000
    assert ws[0.99] > 1_000_000
    # Facebook flows sit left of WebSearch at every quantile
    for p in PROBES:
        assert fb[p] <= ws[p]
    # the empirical CDF helper reproduces a monotone curve
    rng = random.Random(7)
    pts = empirical_cdf([sample_flow_size(WEBSEARCH_CDF, rng)
                         for _ in range(500)])
    probs = [q for _, q in pts]
    assert probs == sorted(probs) and probs[-1] == 1.0
