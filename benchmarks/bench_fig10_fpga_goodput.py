"""Fig. 10 — FPGA testbed goodput, reproduced in simulation
(substitution per DESIGN.md).

Paper: symmetric networks leave little room; with one degraded spine
link OPS is capped at ~50% while REPS nears the ideal fair share.

The scenario matrix, report table and shape checks are declared in the
``fig10`` spec of :mod:`repro.scenarios`; this wrapper executes it
through the sweep harness and asserts the paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig10_fpga_goodput(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig10"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
