"""Fig. 10 — FPGA testbed goodput, reproduced in simulation.

Substitution (DESIGN.md): the FPGA testbed (100G NICs, 8 KiB MTU, two T0s
under a T1 spine, ring AllReduce traffic) is modelled by the simulator at
the same specs.

(a) symmetric: REPS ~= OPS ~= ideal share (healthy symmetric networks
    leave little room; the paper's setup-1 quirks are switch-internal).
(b) asymmetric (one 400->200G spine link): OPS flows get capped by the
    slow path at ~50% utilization; REPS reaches within ~5-15% of the
    ideal fair share.
"""

from __future__ import annotations

from _common import report, scenario

from repro.harness import degrade_cables_hook, run_synthetic
from repro.sim.topology import TopologyParams


def _testbed_topo() -> TopologyParams:
    # the Sec. 4.4.2 testbed: two T0s with 8 100G endpoints each and "a
    # total of 4 links to a pair of T1 switches" = 2 x 400G uplinks per
    # T0 (1:1 bandwidth, 8 KiB MTU)
    return TopologyParams(n_hosts=16, hosts_per_t0=8, oversubscription=4,
                          link_gbps=400.0, host_link_gbps=100.0,
                          mtu_bytes=8192)


def _run(lb: str, asymmetric: bool):
    hook = degrade_cables_hook([0], 200.0) if asymmetric else None
    s = scenario(lb, _testbed_topo(), seed=7, failures=hook,
                 max_us=50_000_000.0)
    return run_synthetic(s, "permutation", 4 << 20)


def test_fig10_fpga_goodput(benchmark):
    results = benchmark.pedantic(
        lambda: {(lb, asym): _run(lb, asym)
                 for lb in ("ops", "reps") for asym in (False, True)},
        rounds=1, iterations=1)

    goodputs = {k: res.metrics.avg_goodput_gbps
                for k, res in results.items()}
    rows = [(lb, "asymmetric" if asym else "symmetric",
             round(gp, 1)) for (lb, asym), gp in goodputs.items()]
    report("fig10", "Fig 10: FPGA-testbed goodput (sim substitute; "
           "100G hosts, ideal share = ~100G sym)",
           ["lb", "network", "avg_flow_goodput_gbps"], rows)

    # (a) symmetric: both within ~25% of each other, both high
    sym_ops, sym_reps = goodputs[("ops", False)], goodputs[("reps", False)]
    assert abs(sym_ops - sym_reps) / sym_reps < 0.25
    assert sym_reps > 50.0
    # (b) asymmetric: REPS clearly ahead of OPS
    asy_ops, asy_reps = goodputs[("ops", True)], goodputs[("reps", True)]
    assert asy_reps > 1.2 * asy_ops
    # REPS loses little goodput to the asymmetry; OPS is capped hard
    assert asy_reps > 0.75 * sym_reps
