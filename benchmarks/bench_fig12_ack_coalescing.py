"""Fig. 12 — ACK coalescing ratios, healthy and with 5% cable failures.

Paper: without failures, REPS holds its edge over OPS up to 8:1
coalescing and loses it at 16:1 (~equal, ~230 us); with 5% network
failures REPS remains ~5x faster even at 16:1.
"""

from __future__ import annotations

from _common import msg, report, scenario, small_topo

from repro.harness import fail_fraction_hook, run_synthetic

RATIOS = (1, 2, 4, 8, 16)


def _run(lb: str, ratio: int, failures: bool):
    hook = fail_fraction_hook(0.13, 30.0, seed=4) if failures else None
    s = scenario(lb, small_topo(), seed=5, ack_coalesce=ratio,
                 failures=hook, max_us=50_000_000.0)
    return run_synthetic(s, "permutation", msg(8)).metrics


def test_fig12_no_failures(benchmark):
    data = benchmark.pedantic(
        lambda: {(lb, r): _run(lb, r, False)
                 for r in RATIOS for lb in ("ops", "reps")},
        rounds=1, iterations=1)
    rows = [[f"{r}:1", round(data[("ops", r)].max_fct_us, 1),
             round(data[("reps", r)].max_fct_us, 1)] for r in RATIOS]
    report("fig12_healthy",
           "Fig 12 (left): ACK coalescing, no failures "
           "(paper: REPS ahead through 8:1, parity at 16:1)",
           ["ratio", "ops_max_fct_us", "reps_max_fct_us"], rows)

    for r in (1, 2, 4, 8):
        assert data[("reps", r)].max_fct_us <= \
            data[("ops", r)].max_fct_us * 1.05, f"ratio {r}:1"
    # at 16:1 REPS falls back to roughly OPS behaviour (parity +-15%)
    assert data[("reps", 16)].max_fct_us <= \
        data[("ops", 16)].max_fct_us * 1.15


def test_fig12_with_failures(benchmark):
    data = benchmark.pedantic(
        lambda: {(lb, r): _run(lb, r, True)
                 for r in (1, 4, 16) for lb in ("ops", "reps")},
        rounds=1, iterations=1)
    rows = [[f"{r}:1", round(data[("ops", r)].max_fct_us, 1),
             round(data[("reps", r)].max_fct_us, 1),
             round(data[("ops", r)].max_fct_us
                   / data[("reps", r)].max_fct_us, 2)]
            for r in (1, 4, 16)]
    report("fig12_failures",
           "Fig 12 (right): ACK coalescing with 5% failed cables "
           "(paper: REPS ~5x faster even at 16:1)",
           ["ratio", "ops_max_fct_us", "reps_max_fct_us", "speedup"], rows)

    for r in (1, 4, 16):
        assert data[("reps", r)].max_fct_us < \
            0.8 * data[("ops", r)].max_fct_us, f"ratio {r}:1"
