"""Fig. 12 — ACK coalescing ratios, healthy and with 5% cable failures.

Paper: REPS holds its edge up to 8:1 and loses it at 16:1 when
healthy; with failures it stays ~5x faster even at 16:1.

The scenario matrix, report table and shape checks are declared in the
``fig12_healthy`` / ``fig12_failures`` specs of :mod:`repro.scenarios`;
this wrapper executes them through the sweep harness and asserts the
paper's claims.
"""

from __future__ import annotations

from _common import bench_figure, bench_report


def test_fig12_no_failures(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig12_healthy"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()


def test_fig12_with_failures(benchmark):
    result = benchmark.pedantic(lambda: bench_figure("fig12_failures"),
                                rounds=1, iterations=1)
    bench_report(result)
    result.check()
