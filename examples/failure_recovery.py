#!/usr/bin/env python3
"""Failure recovery: watch REPS's freezing mode dodge a link failure.

A ToR uplink dies for 300 us in the middle of a permutation.  The script
prints a timeline of per-port throughput around the failure window plus
the drop/retransmission accounting, for OPS and for REPS.

REPS enters freezing mode within one RTO of the failure (Sec. 3.2),
stops exploring random entropies (which could map to the dead link) and
recycles only recently-ACKed, healthy paths.

Run:  python examples/failure_recovery.py
"""

from __future__ import annotations

from repro import Network, NetworkConfig, TopologyParams
from repro.workloads import permutation

US = 1_000_000
FAIL_AT_US, FAIL_FOR_US = 60.0, 300.0


def run(lb: str) -> None:
    topo = TopologyParams(n_hosts=16, hosts_per_t0=8)
    net = Network(NetworkConfig(topo=topo, lb=lb, seed=11))
    failed_cable = net.tree.t0_uplink_cables()[0]
    net.failures.fail_cable(failed_cable,
                            at_ps=int(FAIL_AT_US * US),
                            duration_ps=int(FAIL_FOR_US * US))
    recorder = net.record_ports(net.tree.t0s[0].up_ports, bucket_us=40.0)
    for src, dst in permutation(16, seed=3, cross_tor_only=True,
                                hosts_per_t0=8):
        net.add_flow(src, dst, 4 << 20)
    metrics = net.run(max_us=1_000_000)

    freezes = sum(getattr(rec.sender.lb, "stats_freeze_entries", 0)
                  for rec in net.flows.values())
    failed_port = failed_cable.a_port

    print(f"\n=== {lb.upper()} ===")
    print(f"completed {metrics.flows_completed}/{metrics.flows_total} "
          f"in {metrics.max_fct_us:.0f} us | drops {metrics.total_drops} "
          f"| retransmissions {metrics.retransmissions} "
          f"| freezing entries {freezes}")
    print(f"{'t (us)':>8}  {'failed-port Gbps':>17}  "
          f"{'healthy ports avg Gbps':>23}")
    for i, t in enumerate(recorder.times_us):
        dead = recorder.util_gbps[failed_port.name][i]
        others = [recorder.util_gbps[p.name][i]
                  for p in net.tree.t0s[0].up_ports if p is not failed_port]
        marker = ""
        if FAIL_AT_US <= t <= FAIL_AT_US + FAIL_FOR_US + 40:
            marker = "  <- link down"
        print(f"{t:8.0f}  {dead:17.1f}  "
              f"{sum(others) / len(others):23.1f}{marker}")
    # the same telemetry as a Fig-7-style sparkline panel
    from repro.harness import render_port_series
    print("\nper-uplink utilization (sparklines, full scale 400 Gbps):")
    print(render_port_series(recorder.times_us, recorder.util_gbps,
                             max_value=400.0))


def main() -> None:
    print("One ToR uplink fails at "
          f"t={FAIL_AT_US:.0f}us for {FAIL_FOR_US:.0f}us "
          "(ECMP routing keeps hashing onto it — the control plane "
          "needs ~10ms to react; REPS needs one RTO).")
    for lb in ("ops", "reps"):
        run(lb)
    print("\nExpected shape (paper Fig. 7): OPS keeps sending into the "
          "dead link (utilization stays >0 before drops), ~2.5x more "
          "drops; REPS freezes, drains the dead port to 0 and finishes "
          ">35% faster.")


if __name__ == "__main__":
    main()
