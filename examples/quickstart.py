#!/usr/bin/env python3
"""Quickstart: REPS vs OPS vs ECMP on a permutation workload.

Builds a 32-host, 2-tier fat tree (400G links, 4 KiB MTU — the paper's
Sec. 4.1 setup, scaled down), runs the same cross-ToR permutation under
three load balancers and prints the completion times.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Network, NetworkConfig, TopologyParams
from repro.workloads import permutation

N_HOSTS = 32
HOSTS_PER_T0 = 8
MESSAGE = 2 << 20  # 2 MiB per flow


def run(lb: str) -> str:
    cfg = NetworkConfig(
        topo=TopologyParams(n_hosts=N_HOSTS, hosts_per_t0=HOSTS_PER_T0),
        lb=lb,
        seed=42,
    )
    net = Network(cfg)
    pairs = permutation(N_HOSTS, seed=7, cross_tor_only=True,
                        hosts_per_t0=HOSTS_PER_T0)
    for src, dst in pairs:
        net.add_flow(src, dst, MESSAGE)
    metrics = net.run(max_us=100_000)
    return (f"{lb:8s}  max FCT {metrics.max_fct_us:8.1f} us   "
            f"avg FCT {metrics.avg_fct_us:8.1f} us   "
            f"drops {metrics.total_drops:4d}   "
            f"ECN marks {metrics.ecn_marks:5d}")


def main() -> None:
    print(f"{N_HOSTS}-host fat tree, {MESSAGE >> 20} MiB cross-ToR "
          f"permutation, {len(permutation(N_HOSTS, seed=7))} flows\n")
    for lb in ("ecmp", "ops", "reps"):
        print(run(lb))
    print("\nExpected shape (paper Sec. 4.3.1): ECMP suffers hash "
          "collisions; REPS matches or slightly beats OPS with far "
          "fewer ECN marks (stable, sub-Kmin queues).")


if __name__ == "__main__":
    main()
