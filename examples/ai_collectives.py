#!/usr/bin/env python3
"""AI collectives: ring/butterfly AllReduce and AllToAll under REPS.

Reproduces the Fig. 3 right-panel comparison at example scale: three
collective algorithms, each under ECMP / OPS / REPS, with the ring laid
out spine-heavy like the paper's FPGA baseline (every hop crosses T1).

Run:  python examples/ai_collectives.py
"""

from __future__ import annotations

from repro import Network, NetworkConfig, TopologyParams
from repro.workloads import (
    AllToAll,
    ButterflyAllReduce,
    RingAllReduce,
    spine_heavy_ring,
)

N_HOSTS, HOSTS_PER_T0 = 16, 4
MESSAGE = 4 << 20  # 4 MiB AllReduce / AllToAll payload


def run(kind: str, lb: str) -> float:
    topo = TopologyParams(n_hosts=N_HOSTS, hosts_per_t0=HOSTS_PER_T0)
    net = Network(NetworkConfig(topo=topo, lb=lb, seed=33))
    if kind == "ring":
        coll = RingAllReduce(net, MESSAGE,
                             order=spine_heavy_ring(N_HOSTS, HOSTS_PER_T0))
    elif kind == "butterfly":
        coll = ButterflyAllReduce(net, MESSAGE)
    else:
        coll = AllToAll(net, MESSAGE, n_parallel=4)
    coll.install()
    net.run(max_us=10_000_000)
    assert coll.done, f"{kind}/{lb} did not complete"
    return coll.finish_us


def main() -> None:
    print(f"{N_HOSTS} hosts, {MESSAGE >> 20} MiB collectives "
          "(ring laid out across the spine, Sec. 4.2)\n")
    print(f"{'collective':<12} {'ecmp':>10} {'ops':>10} {'reps':>10}")
    for kind in ("ring", "butterfly", "alltoall"):
        times = [run(kind, lb) for lb in ("ecmp", "ops", "reps")]
        print(f"{kind:<12} " + " ".join(f"{t:9.0f}us" for t in times))
    print("\nExpected shape (paper Fig. 3): the ring AllReduce is "
          "insensitive to the load balancer (no congestion accumulates "
          "on a ring); AllToAll and butterfly favour per-packet adaptive "
          "spraying, with REPS leading or tying.")


if __name__ == "__main__":
    main()
