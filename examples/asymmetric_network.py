#!/usr/bin/env python3
"""Asymmetric network: REPS adapts its path mix to link capacities.

One ToR uplink is degraded from 400 to 200 Gbps (the paper's Fig. 4
scenario).  OPS keeps spraying uniformly and gets capped by the slow
link; REPS's entropy recycling naturally skews traffic toward the
fast links in proportion to the capacity that returns clean ACKs.

Run:  python examples/asymmetric_network.py
"""

from __future__ import annotations

from repro import Network, NetworkConfig, TopologyParams
from repro.workloads import permutation

SLOW_GBPS = 200.0


def run(lb: str) -> None:
    topo = TopologyParams(n_hosts=16, hosts_per_t0=8)
    net = Network(NetworkConfig(topo=topo, lb=lb, seed=21))
    slow_cable = net.tree.t0_uplink_cables()[0]
    net.failures.degrade_cable(slow_cable, SLOW_GBPS)
    for src, dst in permutation(16, seed=5, cross_tor_only=True,
                                hosts_per_t0=8):
        net.add_flow(src, dst, 4 << 20)
    metrics = net.run(max_us=500_000)

    t0 = net.tree.t0s[0]
    print(f"\n=== {lb.upper()} ===  max FCT {metrics.max_fct_us:.0f} us, "
          f"drops {metrics.total_drops}, ECN marks {metrics.ecn_marks}")
    total = sum(p.stats.bytes_tx for p in t0.up_ports) or 1
    for p in t0.up_ports:
        share = p.stats.bytes_tx / total * 100
        rate = int(p.rate_gbps)
        bar = "#" * int(share * 2)
        tagline = " <- degraded to 200G" if p.cable is slow_cable else ""
        print(f"  uplink {p.name:14s} {rate:3d}G  {share:5.1f}%  "
              f"{bar}{tagline}")


def main() -> None:
    print("Fig. 4 scenario: one of 8 ToR uplinks degraded to 200 Gbps.")
    for lb in ("ops", "reps"):
        run(lb)
    print("\nExpected shape: OPS splits bytes ~evenly (~12.5% each) and "
          "stalls on the slow link (paper: 1400us vs 799us); REPS sends "
          "roughly half as much down the 200G link and finishes ~1.75x "
          "faster.")


if __name__ == "__main__":
    main()
