#!/usr/bin/env python3
"""ACK coalescing: standard REPS vs the Carry-EVs / Reuse-EVs variants.

At a 16:1 ACK coalescing ratio REPS receives one entropy back per 16
packets and loses most of its adaptivity (Fig. 12).  Two variants
recover it (Fig. 13):

- Carry EVs: coalesced ACKs return *all* covered (EV, ECN) pairs;
- Reuse EVs: each cached entropy may be reused several times.

The script compares the variants on an asymmetric network where
adaptivity actually matters.

Run:  python examples/ack_coalescing.py
"""

from __future__ import annotations

from repro import Network, NetworkConfig, RepsConfig, TopologyParams
from repro.workloads import permutation

RATIO = 16


def run(label: str, lb: str, *, carry: bool = False,
        lifespan: int = 1) -> None:
    topo = TopologyParams(n_hosts=16, hosts_per_t0=8)
    cfg = NetworkConfig(
        topo=topo, lb=lb, seed=13,
        ack_coalesce=RATIO, carry_evs=carry,
        reps=RepsConfig(ev_lifespan=lifespan) if lifespan > 1 else None,
    )
    net = Network(cfg)
    net.failures.degrade_cable(net.tree.t0_uplink_cables()[0], 200.0)
    for src, dst in permutation(16, seed=5, cross_tor_only=True,
                                hosts_per_t0=8):
        net.add_flow(src, dst, 4 << 20)
    m = net.run(max_us=1_000_000)
    print(f"{label:<22} max FCT {m.max_fct_us:8.1f} us   "
          f"ECN marks {m.ecn_marks:5d}")


def main() -> None:
    print(f"Asymmetric network (one 200G uplink), {RATIO}:1 ACK "
          "coalescing:\n")
    run("OPS", "ops")
    run("REPS (standard)", "reps")
    run("REPS + Carry EVs", "reps", carry=True)
    run("REPS + Reuse EVs", "reps", lifespan=RATIO // 2)
    print("\nExpected shape (paper Fig. 13): standard REPS degrades to "
          "~OPS at 16:1; Carry/Reuse EVs restore most of the adaptive "
          "advantage.")


if __name__ == "__main__":
    main()
