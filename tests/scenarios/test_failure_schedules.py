"""Declarative failure schedules: store round-trips, equivalence with
the old callable-based hooks, and process-pool safety.

These are the guarantees that let Figs. 7/8/11b/19/22 run through the
sweep harness: a `FailureSpec` schedule must produce byte-identical
simulations to the hand-written hook it replaced, serialize stably into
content keys and artifacts, and behave the same on 1 or N workers.
"""

from __future__ import annotations

import json

from repro.harness.runner import Scenario, run_synthetic
from repro.harness.sweep import (
    FailureSpec,
    ResultStore,
    WorkloadSpec,
    _jsonify,
    _metrics_doc,
    execute_task,
    make_task,
    run_sweep,
    task_key,
)
from repro.sim.topology import TopologyParams

TOPO = {"n_hosts": 8, "hosts_per_t0": 4}
MSG = 128 * 1024
WORKLOAD = WorkloadSpec(kind="synthetic", pattern="permutation",
                        msg_bytes=MSG)
MAX_US = 20_000_000.0

#: the Fig. 7 shape at tiny scale: two transient failures mid-run
SCHEDULE = FailureSpec.make(
    "fail_cable_schedule", events=((0, 5.0, 10.0), (1, 12.0, 15.0)))


def _spec_metrics(lb: str, failure: FailureSpec) -> dict:
    task = make_task(lb, TOPO, WORKLOAD, seed=5, failure=failure,
                     max_us=MAX_US)
    return execute_task(task)["metrics"]


def _callable_metrics(lb: str, hook) -> dict:
    scenario = Scenario(lb=lb, topo=TopologyParams(**TOPO), seed=5,
                        failures=hook, max_us=MAX_US)
    res = run_synthetic(scenario, "permutation", MSG)
    return _metrics_doc(res.metrics)


class TestCallableEquivalence:
    def test_schedule_matches_fig07_style_hook(self):
        """The declarative schedule is byte-identical to the Fig. 7
        bench's original hand-written failure function."""
        us = 1_000_000

        def hook(net):
            cables = net.tree.t0_uplink_cables()
            net.failures.fail_cable(cables[0], at_ps=5 * us,
                                    duration_ps=10 * us)
            net.failures.fail_cable(cables[1], at_ps=12 * us,
                                    duration_ps=15 * us)

        for lb in ("ops", "reps"):
            assert _spec_metrics(lb, SCHEDULE) == \
                _callable_metrics(lb, hook), lb

    def test_compose_matches_fig08_style_sequential_hooks(self):
        """compose(cables, switches) == applying both hooks in order
        (the Fig. 8 'one_switch_cable' / '5pct_both' modes)."""
        from repro.harness.runner import fail_fraction_hook
        cables = FailureSpec.make("fail_fraction", fraction=0.3,
                                  at_us=5.0, seed=3)
        switches = FailureSpec.make("fail_fraction", fraction=0.3,
                                    at_us=5.0, seed=3, what="switches")
        composed = FailureSpec.compose(cables, switches)

        def hook(net):
            fail_fraction_hook(0.3, 5.0, seed=3)(net)
            fail_fraction_hook(0.3, 5.0, seed=3, what="switches")(net)

        assert _spec_metrics("reps", composed) == \
            _callable_metrics("reps", hook)

    def test_tor_uplinks_matches_fig22_style_hook(self):
        """fail_tor_uplinks == the Fig. 22 bench's staggered loop over
        one ToR's uplink cables."""
        spec = FailureSpec.make("fail_tor_uplinks", tor=0, keep=1,
                                at_us=5.0, stagger_us=10.0)
        us = 1_000_000

        def hook(net):
            t0_name = net.tree.t0s[0].name
            uplinks = [c for c in net.tree.t0_uplink_cables()
                       if c.name.startswith(f"{t0_name}<->")]
            for i, cable in enumerate(uplinks[:-1]):
                net.failures.fail_cable(cable, at_ps=(5 + 10 * i) * us)

        assert _spec_metrics("reps", spec) == \
            _callable_metrics("reps", hook)

    def test_force_freeze_matches_fig19_style_intervention(self):
        """The force_freeze spec == scheduling force_freeze on every
        flow LB mid-run (the Fig. 19 bench's manual loop)."""
        spec = FailureSpec.make("force_freeze", at_us=5.0)
        us = 1_000_000

        def hook(net):
            def freeze():
                for rec in net.flows.values():
                    rec.sender.lb.force_freeze(5 * us)
            net.engine.at(5 * us, freeze)

        with_spec = _spec_metrics("reps", spec)
        assert with_spec == _callable_metrics("reps", hook)
        # and it is a real intervention, not a no-op
        assert with_spec != _spec_metrics("reps", None)


class TestStoreRoundTrip:
    def test_schedule_task_payload_roundtrips(self, tmp_path):
        store = ResultStore(str(tmp_path))
        task = make_task("reps", TOPO, WORKLOAD, seed=5,
                         failure=SCHEDULE, probes=("freeze_entries",),
                         max_us=MAX_US)
        payload = execute_task(task)
        store.put(task_key(task), payload)
        assert store.get(task_key(task)) == \
            json.loads(json.dumps(payload))

    def test_schedule_spec_jsonifies_deterministically(self):
        doc = _jsonify(SCHEDULE)
        blob = json.dumps(doc, sort_keys=True)
        assert json.loads(blob) == doc
        assert "fail_cable_schedule" in blob

    def test_composed_spec_jsonifies(self):
        spec = FailureSpec.compose(
            SCHEDULE, FailureSpec.make("ber", ber=0.01, seed=5))
        doc = _jsonify(spec)
        blob = json.dumps(doc, sort_keys=True)
        assert json.loads(blob) == doc
        # sub-specs keep their kinds in the serialized form
        assert "fail_cable_schedule" in blob and "ber" in blob

    def test_key_stable_for_equal_schedules(self):
        a = make_task("reps", TOPO, WORKLOAD, seed=5, failure=SCHEDULE,
                      max_us=MAX_US)
        b = make_task(
            "reps", TOPO, WORKLOAD, seed=5, max_us=MAX_US,
            failure=FailureSpec.make(
                "fail_cable_schedule",
                events=[[0, 5.0, 10.0], [1, 12.0, 15.0]]))
        assert task_key(a) == task_key(b)
        # a different schedule is a different campaign cell
        c = make_task(
            "reps", TOPO, WORKLOAD, seed=5, max_us=MAX_US,
            failure=FailureSpec.make("fail_cable_schedule",
                                     events=((0, 5.0, 10.0),)))
        assert task_key(a) != task_key(c)


class TestPoolSafety:
    def test_schedule_serial_equals_parallel(self):
        """Declarative schedules + probes execute identically on one
        worker and across a process pool."""
        tasks = [make_task(lb, TOPO, WORKLOAD, seed=seed,
                           failure=SCHEDULE, probes=("freeze_entries",),
                           max_us=MAX_US)
                 for lb in ("ops", "reps") for seed in (1, 2)]
        serial = run_sweep(tasks, workers=1)
        parallel = run_sweep(tasks, workers=2)
        for s, p in zip(serial, parallel):
            assert s.task == p.task
            assert s.metrics == p.metrics
            assert s.extra == p.extra
