"""Arena derivation: cross-policy variants of the figure catalogue."""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness.sweep import task_key
from repro.lb import available
from repro.scenarios import (
    DEFAULT_POLICIES,
    arena_spec,
    arena_specs,
    figure_ids,
    get_figure,
)
from repro.scenarios.arena import ARENA_HORIZON_US, DEFAULT_PIVOT

POLICIES = ("reps", "ecmp", "prime")


class TestDerivation:
    def test_default_policies_are_registered(self):
        assert set(DEFAULT_POLICIES) <= set(available())
        assert DEFAULT_POLICIES[0] == DEFAULT_PIVOT

    def test_derived_spec_identity(self):
        base = get_figure("fig02")
        spec = arena_spec(base, POLICIES)
        assert spec is not None
        assert spec.fig_id == "arena_fig02"
        assert spec.figure == "Arena"
        assert "arena" in spec.tags
        assert spec.metric == base.metric
        assert not spec.policy_axis  # no arena-of-arena

    def test_matrix_covers_every_policy(self):
        base = get_figure("fig02")
        matrix = arena_spec(base, POLICIES).build()
        pivot_cells = [k for k, t in base.build().items()
                       if t.lb == DEFAULT_PIVOT
                       and t.workload.kind != "model"]
        assert len(matrix) == len(POLICIES) * len(pivot_cells)
        for (policy, key), task in matrix.items():
            assert policy in POLICIES
            assert task.lb == policy

    def test_pivot_cells_bit_identical_to_base(self):
        # the shared-store dedup depends on the pivot's arena tasks
        # hashing to the same content keys as the base figure's
        base = get_figure("fig02")
        base_keys = {task_key(t) for t in base.build().values()
                     if t.lb == DEFAULT_PIVOT}
        arena_keys = {task_key(t)
                      for (p, _), t in arena_spec(base, POLICIES)
                      .build().items() if p == DEFAULT_PIVOT}
        assert arena_keys == base_keys

    def test_competitor_horizons_capped(self):
        # fig08_allreduce declares a 50 s horizon; competitors must
        # not inherit it (a DNF policy would simulate all of it)
        matrix = arena_spec(get_figure("fig08_allreduce"),
                            POLICIES).build()
        for (policy, _), task in matrix.items():
            max_us = dict(task.scenario).get("max_us")
            if policy == DEFAULT_PIVOT:
                assert max_us > ARENA_HORIZON_US  # untouched
            else:
                assert max_us == ARENA_HORIZON_US

    def test_small_horizons_not_raised(self):
        # capping is a ceiling, never a floor: a base cell already at
        # or under the horizon keeps its own max_us
        base = get_figure("fig07")
        base_matrix = base.build()
        for (policy, key), task in arena_spec(base,
                                              POLICIES).build().items():
            if policy == DEFAULT_PIVOT:
                continue
            base_max = dict(base_matrix[key].scenario).get("max_us")
            want = (base_max if base_max is not None
                    and base_max <= ARENA_HORIZON_US
                    else ARENA_HORIZON_US)
            assert dict(task.scenario)["max_us"] == want

    def test_policies_deduped_stably(self):
        spec = arena_spec(get_figure("fig02"),
                          ("reps", "ecmp", "reps", "ecmp"))
        policies = sorted({k[0] for k in spec.build()})
        assert policies == ["ecmp", "reps"]


class TestSkips:
    def test_no_pivot_cell_no_spec(self):
        # analytic model figures have no simulated reps cell
        assert arena_spec(get_figure("fig24"), POLICIES) is None

    def test_timeseries_skipped(self):
        assert arena_spec(get_figure("fig02_timeseries"),
                          POLICIES) is None

    def test_policy_axis_opt_out(self):
        opted_out = dataclasses.replace(get_figure("fig02"),
                                        policy_axis=False)
        assert arena_spec(opted_out, POLICIES) is None

    def test_arena_specs_walks_registry_in_order(self):
        specs = arena_specs(POLICIES)
        assert specs, "no arena figures derivable from the catalogue"
        ids = [s.fig_id for s in specs]
        in_registry_order = [f"arena_{fid}" for fid in figure_ids()
                             if f"arena_{fid}" in set(ids)]
        assert ids == in_registry_order


@pytest.mark.parametrize("fig_id", ["fig02", "fig07"])
def test_arena_matrices_are_deterministic(fig_id):
    spec = arena_spec(get_figure(fig_id), POLICIES)
    a = {k: task_key(t) for k, t in spec.build().items()}
    b = {k: task_key(t) for k, t in spec.build().items()}
    assert a == b
