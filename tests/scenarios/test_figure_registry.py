"""Figure registry: catalogue completeness, spec wiring, execution."""

from __future__ import annotations

import pytest

from repro.harness.sweep import SweepTask, task_key
from repro.scenarios import (
    REGISTRY,
    FigureSpec,
    figure_ids,
    get_figure,
    register,
    run_figure,
)

#: every bench-backed figure that must be in the catalogue
EXPECTED_IDS = {
    "fig02", "fig03_synthetic", "fig03_traces", "fig03_collectives",
    "fig04", "fig05_synthetic", "fig05_traces", "fig05_collectives",
    "fig06", "fig07", "fig08_permutation", "fig08_allreduce", "fig09",
    "fig10", "fig11a", "fig11b", "fig12_healthy", "fig12_failures",
    "fig13", "fig14", "fig15_evs", "fig15_cc", "fig16", "fig17",
    "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
    "ablation_buffer_depth", "ablation_incremental",
    "ablation_oversubscription", "table1",
}


class TestCatalogue:
    def test_all_paper_figures_registered(self):
        assert EXPECTED_IDS <= set(figure_ids())

    def test_ids_unique_and_ordered(self):
        ids = figure_ids()
        assert len(ids) == len(set(ids))

    def test_duplicate_registration_rejected(self):
        spec = get_figure("fig07")
        with pytest.raises(ValueError, match="duplicate"):
            register(spec)

    def test_unknown_id_helpful_error(self):
        with pytest.raises(KeyError, match="repro figures list"):
            get_figure("fig99")


class TestSpecWiring:
    @pytest.mark.parametrize("fig_id", sorted(EXPECTED_IDS))
    def test_matrix_builds(self, fig_id):
        """Every spec expands to a non-empty matrix of distinct,
        hashable sweep tasks (no execution)."""
        spec = REGISTRY[fig_id]
        tasks = spec.build()
        assert tasks, fig_id
        assert all(isinstance(t, SweepTask) for t in tasks.values())
        keys = {task_key(t) for t in tasks.values()}
        assert len(keys) == len(tasks), f"{fig_id}: duplicate tasks"

    @pytest.mark.parametrize("fig_id", sorted(EXPECTED_IDS))
    def test_spec_declares_report_and_check(self, fig_id):
        spec = REGISTRY[fig_id]
        assert spec.table is not None, fig_id
        assert spec.check is not None, fig_id
        assert spec.title and spec.figure


class TestExecution:
    def test_model_figure_end_to_end(self, tmp_path):
        from repro.harness.sweep import ResultStore
        store = ResultStore(str(tmp_path))
        result = run_figure("table1", store=store)
        result.check()
        assert result.value(8, "total_bytes") == 25
        headers, rows, notes = result.table_doc()
        assert "buffer_elems" in headers
        assert len(rows) == len(result)
        # cached re-run returns identical values
        again = run_figure("table1", store=store)
        assert again.sweep.cached == len(again)
        assert again.values() == result.values()

    def test_default_table_doc(self):
        spec = FigureSpec(
            fig_id="__tmp__", figure="-", title="tmp",
            build=lambda: {8: get_figure("table1").build()[8]},
            metric="total_bits")
        result = run_figure(spec)
        headers, rows, _notes = result.table_doc()
        assert headers == ["scenario", "total_bits"]
        assert rows == [("8", 193.0)]
        result.check()  # no check declared -> no-op

    def test_run_figure_accepts_spec_or_id(self):
        by_id = run_figure("fig24")
        by_spec = run_figure(get_figure("fig24"))
        assert by_id.values() == by_spec.values()

    def test_sim_figure_tiny_instance(self):
        """A tiny fig16-style matrix through the registry helper: the
        benchmark wiring minus the full-size cost."""
        from repro.scenarios.sensitivity import fig16_tasks
        from repro.sim.topology import TopologyParams
        tasks = fig16_tasks(
            topos={8: TopologyParams(n_hosts=8, hosts_per_t0=4)},
            evs_sizes=(64,), lbs=("ops", "reps"),
            msg_bytes=128 * 1024)
        from repro.harness.sweep import run_sweep
        results = run_sweep(list(tasks.values()))
        for key, task in tasks.items():
            res = results[task]
            assert res.metrics["flows_completed"] == \
                res.metrics["flows_total"] > 0, key
            assert dict(res.task.scenario)["evs_size"] == 64
