"""Per-algorithm behaviour of the baseline load balancers."""

from __future__ import annotations

import random

from repro.lb import LbContext, make_lb
from repro.lb.bitmap import BitmapLb
from repro.lb.mptcp import SUBFLOWS

RTT = 8_000_000


def ctx(seed=1, evs=65536) -> LbContext:
    return LbContext(rng=random.Random(seed), evs_size=evs, rtt_ps=RTT)


class TestEcmp:
    def test_static_ev(self):
        lb = make_lb("ecmp", ctx())
        evs = {lb.next_entropy(i) for i in range(100)}
        assert len(evs) == 1

    def test_ignores_feedback(self):
        lb = make_lb("ecmp", ctx())
        ev = lb.next_entropy(0)
        lb.on_ack(ev, ecn=True, now=1)
        lb.on_timeout(ev, now=2)
        assert lb.next_entropy(3) == ev


class TestOps:
    def test_sprays_uniformly(self):
        lb = make_lb("ops", ctx(evs=16))
        from collections import Counter
        counts = Counter(lb.next_entropy(0) for _ in range(16_000))
        assert len(counts) == 16
        assert all(700 < c < 1300 for c in counts.values())


class TestPlb:
    def test_keeps_ev_while_clean(self):
        lb = make_lb("plb", ctx())
        ev0 = lb.next_entropy(0)
        for i in range(200):
            lb.on_ack(ev0, ecn=False, now=i * RTT)
        assert lb.next_entropy(10 * RTT) == ev0

    def test_repaths_after_congested_round(self):
        lb = make_lb("plb", ctx())
        ev0 = lb.next_entropy(0)
        # a full RTT of fully-marked ACKs = one congested round
        for i in range(20):
            lb.on_ack(ev0, ecn=True, now=i * RTT // 10)
        assert lb.next_entropy(3 * RTT) != ev0

    def test_repaths_on_timeout(self):
        lb = make_lb("plb", ctx())
        ev0 = lb.next_entropy(0)
        lb.on_timeout(ev0, now=RTT)
        assert lb.next_entropy(RTT + 1) != ev0


class TestFlowlet:
    def test_back_to_back_keeps_ev(self):
        lb = make_lb("flowlet", ctx())
        evs = {lb.next_entropy(now) for now in range(0, RTT, RTT // 100)}
        assert len(evs) == 1

    def test_gap_opens_new_flowlet(self):
        lb = make_lb("flowlet", ctx())
        ev0 = lb.next_entropy(0)
        # a gap > RTT/2 re-rolls the entropy (repeat until it differs —
        # random draws can repeat, that is allowed behaviour)
        evs = set()
        now = 0
        for _ in range(20):
            now += RTT  # > gap
            evs.add(lb.next_entropy(now))
        assert len(evs) > 1


class TestMprdma:
    def test_clean_ack_grants_same_ev(self):
        lb = make_lb("mprdma", ctx())
        lb.on_ack(123, ecn=False, now=0)
        assert lb.next_entropy(1) == 123

    def test_single_credit_only(self):
        """No entropy caching: a burst of good ACKs leaves one credit."""
        lb = make_lb("mprdma", ctx())
        for ev in (1, 2, 3):
            lb.on_ack(ev, ecn=False, now=0)
        assert lb.next_entropy(1) == 3
        # second send has no credit: random exploration
        assert lb._granted_ev is None  # noqa: SLF001

    def test_ecn_ack_clears_credit(self):
        lb = make_lb("mprdma", ctx())
        lb.on_ack(7, ecn=False, now=0)
        lb.on_ack(8, ecn=True, now=1)
        assert lb._granted_ev is None  # noqa: SLF001


class TestMptcp:
    def test_uses_exactly_eight_subflows(self):
        lb = make_lb("mptcp", ctx())
        evs = {lb.next_entropy(i) for i in range(1000)}
        assert len(evs) <= SUBFLOWS

    def test_congested_subflow_weighted_down(self):
        lb = make_lb("mptcp", ctx())
        target = lb.next_entropy(0)
        for _ in range(50):
            lb.on_ack(target, ecn=True, now=0)
        from collections import Counter
        counts = Counter(lb.next_entropy(i) for i in range(800))
        others = [c for ev, c in counts.items() if ev != target]
        assert counts[target] < min(others)

    def test_timeout_repaths_subflow(self):
        lb = make_lb("mptcp", ctx())
        target = lb.next_entropy(0)
        before = set(lb._evs)  # noqa: SLF001
        lb.on_timeout(target, now=RTT)
        after = set(lb._evs)  # noqa: SLF001
        assert target not in after
        assert len(after) == SUBFLOWS
        assert before != after


class TestBitmap:
    def test_avoids_marked_evs(self):
        lb = make_lb("bitmap", ctx(evs=16))
        for ev in range(8):
            lb.on_ack(ev, ecn=True, now=0)
        draws = {lb.next_entropy(1) for _ in range(200)}
        assert draws <= set(range(8, 16))

    def test_clean_ack_unmarks(self):
        lb = make_lb("bitmap", ctx(evs=16))
        lb.on_ack(3, ecn=True, now=0)
        lb.on_ack(3, ecn=False, now=1)
        assert 3 not in lb._congested  # noqa: SLF001

    def test_aging_clears_marks(self):
        lb = make_lb("bitmap", ctx(evs=16))
        lb.on_ack(3, ecn=True, now=0)
        lb.next_entropy(100 * RTT)  # far beyond the aging interval
        assert not lb._congested  # noqa: SLF001

    def test_saturation_resets(self):
        lb = make_lb("bitmap", ctx(evs=8))
        for ev in range(8):
            lb.on_timeout(ev, now=0)
        ev = lb.next_entropy(1)
        assert 0 <= ev < 8

    def test_table_capped_for_large_evs(self):
        lb = make_lb("bitmap", ctx(evs=65536))
        assert isinstance(lb, BitmapLb)
        draws = {lb.next_entropy(0) for _ in range(2000)}
        assert max(draws) < 256  # per-EV state forces a small table
