"""Policy-conformance suite: the contract every registered LB must pass.

"Add a policy" means "pass this file".  Each test parametrizes over the
**full** LB registry (``repro.lb.available()``), so a newly registered
policy — and previously under-tested ones like ``bitmap`` and
``mprdma`` — is held to the same invariants automatically:

1. **Packet conservation / no silent drops** — on a lossless fabric
   every flow completes, every receiver sees every byte exactly once,
   and no drop/retransmission counter moves.
2. **Bounded reordering where promised** —
   :data:`repro.lb.ORDERING_PROMISE_FOR_LB` policies deliver in the
   order their construction guarantees (per-flow FIFO for single-path
   policies, per-stripe FIFO for Sprinklers), verified against the
   actual arrival stream under cross-ToR contention.
3. **Determinism / byte-identical artifacts** — the same tasks produce
   byte-identical stored artifacts on all four execution backends
   (serial, process, batched, shard).
4. **Failure-schedule survival** — declarative cable and ToR-uplink
   :class:`~repro.harness.sweep.FailureSpec` schedules (the Fig. 7 /
   Fig. 22 shapes) never leave a policy unable to finish its flows.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.lb import (
    ORDERING_PROMISE_FOR_LB,
    REPLICATION_FOR_LB,
    available,
)
from repro.harness.backends import (
    BatchedBackend,
    ProcessBackend,
    SerialBackend,
    ShardBackend,
)
from repro.harness.sweep import (
    FailureSpec,
    ResultStore,
    WorkloadSpec,
    execute_task,
    make_task,
    run_sweep,
)
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams

POLICIES = available()

#: 8 hosts / 2 ToRs: the smallest fabric with real multipath
TOPO = {"n_hosts": 8, "hosts_per_t0": 4}
MSG_BYTES = 48 * 1024  # below the RepFlow threshold: replication active


def _pairs(n_hosts: int, hosts_per_t0: int):
    """Cross-ToR permutation: host i -> its mirror on the other ToR."""
    return [(i, (i + hosts_per_t0) % n_hosts) for i in range(n_hosts)]


def _run_traced(lb: str, *, seed: int = 5, rto_us: float = 1000.0):
    """Run a cross-ToR permutation; record data arrivals per flow."""
    topo = TopologyParams(n_hosts=TOPO["n_hosts"],
                          hosts_per_t0=TOPO["hosts_per_t0"])
    net = Network(NetworkConfig(topo=topo, lb=lb, seed=seed,
                                rto_us=rto_us))
    arrivals = {}  # flow_id -> [(seq, ev)] in arrival order
    for host in net.tree.hosts:
        inner = host.dispatch

        def dispatch(pkt, _inner=inner):
            if not (pkt.is_ack or pkt.is_nack or pkt.trimmed):
                arrivals.setdefault(pkt.flow_id, []).append(
                    (pkt.seq, pkt.ev))
            _inner(pkt)
        host.dispatch = dispatch
    for src, dst in _pairs(topo.n_hosts, topo.hosts_per_t0):
        net.add_flow(src, dst, MSG_BYTES)
    metrics = net.run(max_us=100_000.0)
    return net, metrics, arrivals


class TestConservation:
    """Invariant 1: lossless runs conserve every packet, loudly."""

    @pytest.mark.parametrize("lb", POLICIES)
    def test_no_silent_drops(self, lb):
        net, metrics, arrivals = _run_traced(lb)
        assert metrics.flows_completed == metrics.flows_total, \
            f"{lb}: {metrics.flows_completed}/{metrics.flows_total} done"
        assert metrics.total_drops == 0, \
            f"{lb}: dropped {metrics.total_drops} on a lossless run"
        assert metrics.retransmissions == 0 and metrics.timeouts == 0, \
            f"{lb}: spurious loss recovery on a lossless run"
        replicated = lb in REPLICATION_FOR_LB
        for flow_id, rec in net.flows.items():
            if replicated:
                # the losing copy is cancelled mid-flight; only the
                # winning copy's receiver must have the full message
                continue
            assert len(rec.receiver.received) == rec.sender.n_pkts, \
                f"{lb}: flow {flow_id} delivered incompletely"
            assert rec.receiver.bytes_received == rec.sender.size_bytes
            # dedup counter never fired: each packet arrived once
            assert len(arrivals[flow_id]) == rec.sender.n_pkts, \
                f"{lb}: flow {flow_id} saw duplicate/extra arrivals"

    @pytest.mark.parametrize("lb", sorted(REPLICATION_FOR_LB))
    def test_replicated_winner_is_complete(self, lb):
        net, metrics, _ = _run_traced(lb)
        primaries = {fid: rec for fid, rec in net.flows.items()
                     if rec.replica_of is None}
        by_primary = {fid: [rec] for fid, rec in primaries.items()}
        for rec in net.flows.values():
            if rec.replica_of is not None:
                by_primary[rec.replica_of].append(rec)
        for fid, copies in by_primary.items():
            assert len(copies) == REPLICATION_FOR_LB[lb].copies
            assert any(r.receiver.complete for r in copies), \
                f"{lb}: logical flow {fid} has no completely received copy"
            assert copies[0].sender.fct_ps() is not None


class TestOrdering:
    """Invariant 2: policies keep the delivery order they promise."""

    @pytest.mark.parametrize(
        "lb", sorted(ORDERING_PROMISE_FOR_LB))
    def test_ordering_promise_held(self, lb):
        promise = ORDERING_PROMISE_FOR_LB[lb]
        _, metrics, arrivals = _run_traced(lb)
        assert metrics.retransmissions == 0  # order claim needs lossless
        for flow_id, events in arrivals.items():
            if promise == "flow_fifo":
                seqs = [seq for seq, _ in events]
                assert seqs == sorted(seqs), \
                    f"{lb}: flow {flow_id} reordered ({promise})"
            elif promise == "stripe_fifo":
                by_ev = {}
                for seq, ev in events:
                    by_ev.setdefault(ev, []).append(seq)
                for ev, seqs in by_ev.items():
                    assert seqs == sorted(seqs), \
                        f"{lb}: flow {flow_id} EV {ev} reordered " \
                        f"within a stripe"
            else:  # pragma: no cover - registry typo guard
                pytest.fail(f"unknown ordering promise {promise!r}")

    def test_every_promise_names_a_registered_policy(self):
        assert set(ORDERING_PROMISE_FOR_LB) <= set(POLICIES)
        assert set(REPLICATION_FOR_LB) <= set(POLICIES)


class TestBackendDeterminism:
    """Invariant 3: byte-identical artifacts on every backend."""

    BACKENDS = [ProcessBackend(workers=2),
                BatchedBackend(workers=2, batch_size=2),
                ShardBackend(n_shards=2)]
    IDS = ["process", "batched", "shard"]

    @staticmethod
    def _grid(lb):
        workload = WorkloadSpec(kind="synthetic", pattern="permutation",
                                msg_bytes=MSG_BYTES)
        return [make_task(lb, TOPO, workload, seed=seed,
                          max_us=100_000.0) for seed in (3, 11)]

    @staticmethod
    def _snapshot(store):
        out = {}
        for key in store.keys():
            with open(os.path.join(store.root, f"{key}.json")) as fh:
                out[key] = fh.read()
        return out

    @pytest.mark.parametrize("lb", POLICIES)
    def test_all_backends_byte_identical(self, lb, tmp_path):
        grid = self._grid(lb)
        ref_store = ResultStore(str(tmp_path / "serial"))
        run_sweep(grid, store=ref_store, backend=SerialBackend())
        reference = self._snapshot(ref_store)
        assert len(reference) == len(grid)
        for backend, name in zip(self.BACKENDS, self.IDS):
            store = ResultStore(str(tmp_path / name))
            run_sweep(grid, store=store, backend=backend)
            assert self._snapshot(store) == reference, \
                f"{lb}: {name} backend artifacts diverge from serial"

    @pytest.mark.parametrize("lb", POLICIES)
    def test_fixed_seed_reruns_identical(self, lb):
        grid = self._grid(lb)
        a = [json.dumps(execute_task(t), sort_keys=True) for t in grid]
        b = [json.dumps(execute_task(t), sort_keys=True) for t in grid]
        assert a == b


#: the Fig. 7-shaped transient cable schedule and the Fig. 22-shaped
#: incremental ToR-uplink die-off, both declarative (content-keyable)
FAILURE_SCHEDULES = {
    "cable_schedule": FailureSpec.make(
        "fail_cable_schedule",
        events=((0, 20.0, 300.0), (1, 150.0, 300.0))),
    "tor_uplinks": FailureSpec.make(
        "fail_tor_uplinks", tor=0, keep=1, at_us=30.0, stagger_us=80.0),
}


class TestFailureSurvival:
    """Invariant 4: declared failure schedules are always survivable."""

    @pytest.mark.parametrize("lb", POLICIES)
    @pytest.mark.parametrize("schedule", sorted(FAILURE_SCHEDULES))
    def test_flows_complete_under_schedule(self, lb, schedule):
        workload = WorkloadSpec(kind="synthetic", pattern="permutation",
                                msg_bytes=MSG_BYTES)
        task = make_task(lb, TOPO, workload, seed=9,
                         failure=FAILURE_SCHEDULES[schedule],
                         max_us=20_000.0)
        payload = execute_task(task)
        metrics = payload["metrics"]
        assert metrics["flows_completed"] == metrics["flows_total"], \
            (f"{lb} did not survive the {schedule} schedule: "
             f"{metrics['flows_completed']}/{metrics['flows_total']} "
             f"flows completed")
