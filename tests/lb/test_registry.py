"""Load-balancer registry and shared interface."""

from __future__ import annotations

import random

import pytest

from repro.core.reps import RepsSender
from repro.lb import LbContext, available, make_lb

ALL_LBS = ["reps", "ops", "ecmp", "plb", "mprdma", "flowlet",
           "mptcp", "bitmap", "adaptive_roce", "ideal",
           "repflow", "prime", "sprinklers"]


def ctx(seed=1, evs=65536) -> LbContext:
    return LbContext(rng=random.Random(seed), evs_size=evs)


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        assert set(ALL_LBS) <= set(available())

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_lb("hula", ctx())

    def test_reps_factory_builds_core_sender(self):
        lb = make_lb("reps", ctx())
        assert isinstance(lb, RepsSender)

    def test_reps_inherits_evs_size(self):
        lb = make_lb("reps", ctx(evs=128))
        assert lb.config.evs_size == 128


class TestSharedInterface:
    @pytest.mark.parametrize("name", ALL_LBS)
    def test_entropy_in_range(self, name):
        lb = make_lb(name, ctx(evs=512))
        for now in range(0, 200_000_000, 1_000_000):
            assert 0 <= lb.next_entropy(now) < 512

    @pytest.mark.parametrize("name", ALL_LBS)
    def test_feedback_hooks_never_raise(self, name):
        lb = make_lb(name, ctx())
        now = 0
        for i in range(100):
            now += 1_000_000
            ev = lb.next_entropy(now)
            lb.on_ack(ev, ecn=(i % 3 == 0), now=now)
            if i % 7 == 0:
                lb.on_nack(ev, now)
            if i % 11 == 0:
                lb.on_timeout(ev, now)

    @pytest.mark.parametrize("name", ALL_LBS)
    def test_deterministic_under_seed(self, name):
        a = make_lb(name, ctx(seed=5))
        b = make_lb(name, ctx(seed=5))
        seq_a = [a.next_entropy(i * 1_000_000) for i in range(50)]
        seq_b = [b.next_entropy(i * 1_000_000) for i in range(50)]
        assert seq_a == seq_b
