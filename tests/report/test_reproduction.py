"""Report generator: REPRODUCTION.md / campaign.json structure."""

from __future__ import annotations

import json

import pytest

from repro.harness.campaign import run_campaign
from repro.harness.sweep import ResultStore
from repro.report import (
    campaign_doc,
    collect_provenance,
    render_reproduction,
    write_campaign_report,
)

from helpers import stub_registry, stub_spec

#: provenance keys every report header must state
PROVENANCE_FIELDS = ("generated_at", "git_sha", "simulator_version",
                     "schema_version", "scale", "python", "platform")


def small_campaign(tmp_path, extra_specs=()):
    def boom():
        raise RuntimeError("matrix exploded")
    specs = stub_registry() + list(extra_specs) \
        + [stub_spec("stub_bad", build=boom)]
    return run_campaign(specs, store=ResultStore(str(tmp_path)))


class TestProvenance:
    def test_collects_every_field(self):
        prov = collect_provenance()
        for field in PROVENANCE_FIELDS:
            assert prov[field] not in ("", None), field
        assert prov["scale"] in ("smoke", "quick", "full")
        assert len(prov["simulator_version"]) == 16

    def test_git_sha_present_in_a_repo(self):
        # the test suite runs from a git checkout
        prov = collect_provenance()
        assert prov["git_sha"] != ""


class TestRenderReproduction:
    def test_one_badged_section_per_figure(self, tmp_path):
        campaign = small_campaign(tmp_path)
        text = render_reproduction(campaign)
        for outcome in campaign:
            assert f"## {outcome.fig_id} — " in text
        assert "`[PASS]`" in text and "`[WARN]`" in text
        assert "`[ERROR]`" in text

    def test_provenance_header(self, tmp_path):
        campaign = small_campaign(tmp_path)
        prov = collect_provenance()
        text = render_reproduction(campaign, prov)
        assert text.startswith("# REPS reproduction report")
        assert "## Provenance" in text
        assert prov["git_sha"] in text
        assert prov["simulator_version"] in text
        assert "campaign wall time" in text
        assert "distinct seeds" in text
        assert "| execution backend | `serial` |" in text

    def test_backend_and_shard_identity_in_provenance(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert collect_provenance()["backend"] == "serial"
        assert collect_provenance(backend="batched")["backend"] == \
            "batched"
        monkeypatch.setenv("REPRO_SHARD", "1/4")
        prov = collect_provenance(backend="process")
        assert prov["shard"] == "1/4"
        campaign = small_campaign(tmp_path)
        text = render_reproduction(campaign, prov)
        assert "| execution backend | `process` (shard `1/4`) |" in text

    def test_summary_table_and_chart(self, tmp_path):
        campaign = small_campaign(tmp_path)
        text = render_reproduction(campaign)
        assert "## Campaign summary" in text
        # a measured figure renders a markdown table and an ASCII chart
        assert "| total_bits |" in text or "total_bits" in text
        assert "```text" in text
        # the crashed figure carries its traceback
        assert "matrix exploded" in text

    def test_partial_campaign_is_labelled(self, tmp_path):
        campaign = run_campaign([stub_spec("stub_a")],
                                store=ResultStore(str(tmp_path)))
        text = render_reproduction(campaign)
        assert "**Partial campaign**" in text
        assert "Every registered paper figure" not in text

    def test_crashing_table_renderer_is_fail_soft(self, tmp_path):
        def bad_table(result):
            raise KeyError("axis missing at this scale")
        spec = stub_spec("stub_t")
        object.__setattr__(spec, "table", bad_table)
        campaign = run_campaign([spec] + stub_registry(),
                                store=ResultStore(str(tmp_path)))
        text = render_reproduction(campaign)  # must not raise
        assert "Table renderer failed:" in text
        assert "axis missing at this scale" in text
        doc = campaign_doc(campaign)
        by_id = {f["fig_id"]: f for f in doc["figures"]}
        assert by_id["stub_t"]["table"] is None
        assert "axis missing" in by_id["stub_t"]["error"]
        # the healthy figures still render their tables
        assert by_id["stub_a"]["table"] is not None

    def test_chart_uses_one_column_for_every_row(self):
        from repro.report.reproduction import _chart_column
        # the baseline row has a non-numeric cell in the chosen
        # column: it is skipped, never charted from another column
        header, items = _chart_column(
            ["lb", "speedup", "fct"],
            [["ecmp", "—", 100.0], ["ops", 1.5, 60.0],
             ["reps", 2.0, 50.0]])
        assert header == "speedup"
        assert items == [("ops", 1.5), ("reps", 2.0)]
        header, items = _chart_column(["lb", "note"], [["ecmp", "x"]])
        assert header is None and items == []

    def test_crashed_check_still_reports_measured_table(self, tmp_path):
        def check_crash(result):
            raise KeyError("axis missing at smoke scale")
        campaign = run_campaign(
            [stub_spec("stub_ck", check=check_crash)],
            store=ResultStore(str(tmp_path)))
        assert campaign["stub_ck"].status == "error"
        text = render_reproduction(campaign)
        assert "Shape check crashed (measured results below):" in text
        assert "Figure did not execute" not in text
        assert "| total_bits |" in text or "total_bits" in text
        doc = campaign_doc(campaign)
        assert doc["figures"][0]["table"] is not None

    def test_divergence_called_out(self, tmp_path):
        def check_bad(result):
            assert False, "factor off by 2x"
        campaign = run_campaign(
            [stub_spec("stub_div", check=check_bad)],
            store=ResultStore(str(tmp_path)))
        text = render_reproduction(campaign)
        assert "**Diverges from the paper:** factor off by 2x" in text


def ts_spec(fig_id="stub_ts"):
    """A tiny *real* time-series figure: two fast sim tasks with the
    windowed probes attached."""
    from repro.harness.sweep import WorkloadSpec, make_task
    from repro.scenarios import FigureSpec

    def build():
        workload = WorkloadSpec(kind="synthetic", pattern="tornado",
                                msg_bytes=2 << 20)
        return {lb: make_task(lb, {"n_hosts": 8, "hosts_per_t0": 4},
                              workload, seed=1, telemetry_bucket_us=5.0,
                              probes=("goodput_series",),
                              max_us=2_000_000.0)
                for lb in ("ops", "reps")}
    return FigureSpec(
        fig_id=fig_id, figure="Stub TS", title=f"stub {fig_id}",
        build=build, metric="goodput_gbps", metric_kind="timeseries",
        tags=("stub", "timeseries"))


class TestTimeseriesReport:
    @pytest.fixture(scope="class")
    def ts_campaign(self, tmp_path_factory):
        return run_campaign(
            [ts_spec()],
            store=ResultStore(str(tmp_path_factory.mktemp("ts"))))

    def test_sparkline_panel_replaces_bar_chart(self, ts_campaign):
        text = render_reproduction(ts_campaign)
        assert "goodput_gbps per window" in text
        assert "full scale =" in text
        # one sparkline row per matrix key
        assert "\nops" in text and "\nreps" in text

    def test_campaign_json_carries_series_arrays(self, ts_campaign):
        doc = campaign_doc(ts_campaign)
        fig = doc["figures"][0]
        assert fig["metric_kind"] == "timeseries"
        assert sorted(fig["series"]) == ["ops", "reps"]
        for row in fig["series"].values():
            assert set(row) == {"t_us", "goodput_gbps"}
            assert len(row["t_us"]) == len(row["goodput_gbps"]) > 3
        json.dumps(doc)  # arrays stay JSON-serializable

    def test_scalar_figures_carry_no_series(self, tmp_path):
        campaign = run_campaign([stub_spec("stub_scalar")],
                                store=ResultStore(str(tmp_path)))
        doc = campaign_doc(campaign)
        fig = doc["figures"][0]
        assert fig["metric_kind"] == "scalar"
        assert "series" not in fig


class TestCampaignJson:
    def test_document_structure(self, tmp_path):
        campaign = small_campaign(tmp_path)
        doc = campaign_doc(campaign)
        assert doc["schema"] == 1
        for field in PROVENANCE_FIELDS:
            assert field in doc["provenance"]
        summary = doc["summary"]
        assert summary["figures"] == len(campaign)
        assert summary["pass"] == 2 and summary["error"] == 1
        assert summary["tasks"] == campaign.tasks
        assert summary["store"] == str(tmp_path)
        by_id = {f["fig_id"]: f for f in doc["figures"]}
        assert by_id["stub_a"]["status"] == "pass"
        assert by_id["stub_a"]["table"]["headers"]
        assert by_id["stub_a"]["tags"] == ["stub"]
        assert by_id["stub_bad"]["table"] is None
        assert "matrix exploded" in by_id["stub_bad"]["error"]

    def test_json_serializable_with_inf_sanitized(self, tmp_path):
        campaign = small_campaign(tmp_path)
        # smuggle a non-finite value into a table row
        outcome = campaign["stub_a"]
        headers, rows, notes = outcome.result.table_doc()
        spec = outcome.spec
        object.__setattr__(
            spec, "table",
            lambda res: (headers, [[r[0], float("inf")] for r in rows],
                         notes))
        doc = campaign_doc(campaign)
        blob = json.dumps(doc)  # must not raise / emit Infinity
        assert "Infinity" not in blob

    def test_write_campaign_report(self, tmp_path):
        campaign = small_campaign(tmp_path / "store")
        report = tmp_path / "out" / "REPRODUCTION.md"
        record = tmp_path / "out" / "campaign.json"
        paths = write_campaign_report(
            campaign, report_path=str(report), json_path=str(record))
        assert paths == (str(report), str(record))
        text = report.read_text()
        doc = json.loads(record.read_text())
        # one provenance snapshot feeds both artifacts
        assert doc["provenance"]["git_sha"] in text
        assert doc["provenance"]["generated_at"] in text
