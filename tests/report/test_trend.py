"""Campaign trend tracking: record diffs and the regression gate."""

from __future__ import annotations

import json
import math

import pytest

from repro.report import diff_campaigns, load_record, render_trend


def record(**figures):
    """A minimal campaign.json-shaped record: fig_id -> (status, rows)."""
    return {
        "schema": 1,
        "figures": [
            {"fig_id": fig_id, "status": status,
             "table": {"headers": ["lb", "max_fct_us", "drops"],
                       "rows": rows, "notes": []}}
            for fig_id, (status, rows) in figures.items()
        ],
    }


BASE = record(
    fig07=("pass", [["ecmp", 100.0, 4], ["reps", 50.0, 0]]),
    fig08=("fail", [["reps", 75.0, 1]]),
)


class TestDiff:
    def test_identical_records_are_clean(self):
        report = diff_campaigns(BASE, json.loads(json.dumps(BASE)))
        assert report.clean
        assert not any(f.changed for f in report.figures)

    def test_badge_regression_detected(self):
        new = record(
            fig07=("fail", [["ecmp", 100.0, 4], ["reps", 50.0, 0]]),
            fig08=("fail", [["reps", 75.0, 1]]))
        report = diff_campaigns(BASE, new)
        (fig,) = [f for f in report.figures if f.fig_id == "fig07"]
        assert fig.regressed and not fig.improved
        assert any("badge pass → fail" in r
                   for r in report.regressions())

    def test_badge_improvement_is_benign(self):
        new = record(
            fig07=("pass", [["ecmp", 100.0, 4], ["reps", 50.0, 0]]),
            fig08=("pass", [["reps", 75.0, 1]]))
        report = diff_campaigns(BASE, new)
        assert report.clean
        (fig,) = [f for f in report.figures if f.fig_id == "fig08"]
        assert fig.improved

    def test_metric_drift_beyond_tolerance(self):
        new = record(
            fig07=("pass", [["ecmp", 110.0, 4], ["reps", 50.0, 0]]),
            fig08=("fail", [["reps", 75.0, 1]]))
        exact = diff_campaigns(BASE, new)
        assert not exact.clean
        (drift,) = [d for f in exact.figures for d in f.drifts]
        assert (drift.row, drift.column) == ("ecmp", "max_fct_us")
        assert drift.rel == pytest.approx(0.1)
        # a 20% tolerance swallows the 10% drift
        loose = diff_campaigns(BASE, new, tol=0.2)
        assert loose.clean

    def test_drift_from_zero_is_infinite(self):
        new = record(
            fig07=("pass", [["ecmp", 100.0, 4], ["reps", 50.0, 3]]),
            fig08=("fail", [["reps", 75.0, 1]]))
        report = diff_campaigns(BASE, new, tol=10.0)
        (drift,) = [d for f in report.figures for d in f.drifts]
        assert math.isinf(drift.rel)  # 0 -> 3 drops: no tolerance fits

    def test_removed_figure_is_regression_added_is_not(self):
        only_seven = record(
            fig07=("pass", [["ecmp", 100.0, 4], ["reps", 50.0, 0]]))
        report = diff_campaigns(BASE, only_seven)
        assert report.removed == ["fig08"]
        assert any("fig08 removed" in r for r in report.regressions())
        grown = diff_campaigns(only_seven, BASE)
        assert grown.added == ["fig08"]
        assert grown.clean

    def test_vanished_row_is_regression_new_row_is_not(self):
        new = record(
            fig07=("pass", [["ecmp", 100.0, 4], ["ops", 60.0, 2]]),
            fig08=("fail", [["reps", 75.0, 1]]))
        report = diff_campaigns(BASE, new)
        (fig,) = [f for f in report.figures if f.fig_id == "fig07"]
        assert fig.vanished_rows == ["reps"]
        assert fig.new_rows == ["ops"]
        assert any("row 'reps' vanished" in r
                   for r in report.regressions())

    def test_missing_tables_compare_clean(self):
        old = {"figures": [{"fig_id": "x", "status": "error",
                            "table": None}]}
        report = diff_campaigns(old, json.loads(json.dumps(old)))
        assert report.clean

    def test_categorical_cells_form_row_identity(self):
        """Non-numeric cells are the row's identity, not a metric: a
        baseline marker turning into a number reads as a coverage
        change (row replaced), never as silent numeric drift."""
        old = record(fig07=("pass", [["ecmp", "—", 4]]))
        new = record(fig07=("pass", [["ecmp", 5.0, 4]]))
        report = diff_campaigns(old, new)
        (fig,) = report.figures
        assert fig.vanished_rows == ["ecmp · —"]
        assert fig.new_rows == ["ecmp"]
        assert not report.clean

    def test_duplicate_first_column_rows_all_compared(self):
        """Regression (code review): rows were keyed by first cell
        only, so load-level tables with one row per lb (fig03/fig10/
        fig11a/fig16 shape) shadowed every row but the last and their
        regressions passed the --strict gate unseen."""
        def rec(ecmp_fct, reps_fct, rows_extra=()):
            rows = [["40%", "ecmp", ecmp_fct], ["40%", "reps", reps_fct]]
            rows += [list(r) for r in rows_extra]
            return {"figures": [{"fig_id": "fig03", "status": "pass",
                                 "table": {"headers":
                                           ["load", "lb", "avg_fct_us"],
                                           "rows": rows, "notes": []}}]}
        # drift in the *first* duplicate-label row must be visible
        report = diff_campaigns(rec(100.0, 50.0), rec(9999.0, 50.0))
        (drift,) = [d for f in report.figures for d in f.drifts]
        assert drift.row == "40% · ecmp"
        assert not report.clean
        # deleting one of the duplicate-label rows must be visible
        gone = rec(100.0, 50.0)
        gone["figures"][0]["table"]["rows"] = \
            [["40%", "reps", 50.0]]
        report = diff_campaigns(rec(100.0, 50.0), gone)
        (fig,) = report.figures
        assert fig.vanished_rows == ["40% · ecmp"]
        assert not report.clean

    def test_fully_identical_labels_get_occurrence_suffix(self):
        old = record(fig07=("pass", [["reps", 10.0, 0],
                                     ["reps", 20.0, 0]]))
        new = record(fig07=("pass", [["reps", 10.0, 0],
                                     ["reps", 99.0, 0]]))
        report = diff_campaigns(old, new)
        (drift,) = [d for f in report.figures for d in f.drifts]
        assert drift.row == "reps #2"
        assert drift.old == 20.0 and drift.new == 99.0

    def test_appeared_column_is_visible_but_benign(self):
        new = record(
            fig07=("pass", [["ecmp", 100.0, 4, 7.5],
                            ["reps", 50.0, 0, 3.5]]),
            fig08=("fail", [["reps", 75.0, 1]]))
        for fig in new["figures"]:
            if fig["fig_id"] == "fig07":
                fig["table"]["headers"] = \
                    ["lb", "max_fct_us", "drops", "p99_fct_us"]
        report = diff_campaigns(BASE, new)
        assert report.clean  # a new measurement is not a regression
        (fig,) = [f for f in report.figures if f.fig_id == "fig07"]
        assert fig.changed
        assert {d.column for d in fig.new_cells} == {"p99_fct_us"}
        text = render_trend(report)
        assert "[NEW] fig07: 'ecmp' gained p99_fct_us=7.5" in text

    def test_vanished_column_is_regression(self):
        """Regression (code review): a removed/renamed metric column
        was silently skipped — lost measurement coverage must gate."""
        new = json.loads(json.dumps(BASE))
        for fig in new["figures"]:
            fig["table"]["headers"] = ["lb", "latency_us", "drops"]
        report = diff_campaigns(BASE, new, tol=100.0)  # tol can't hide it
        assert not report.clean
        drifts = [d for f in report.figures for d in f.drifts]
        assert all(d.new is None and d.column == "max_fct_us"
                   for d in drifts)
        assert any("vanished (was 100.0)" in d.describe()
                   for d in drifts)


def series_record(status="pass", goodput=(10.0, 2.0, 9.5, 10.0),
                  extra_series=None, rows=None):
    """A record with one time-series figure (table + series arrays)."""
    doc = record(fig02_ts=(status, rows or [["reps", 42.0, 0]]))
    fig = doc["figures"][0]
    fig["series"] = {"reps": {"goodput_gbps": list(goodput)}}
    if extra_series:
        fig["series"]["reps"].update(extra_series)
    return doc


class TestSeriesGating:
    """Time-series drift gates on summary statistics, not elements."""

    def test_identical_series_are_clean(self):
        report = diff_campaigns(series_record(), series_record())
        assert report.clean

    def test_stat_drift_is_a_regression(self):
        report = diff_campaigns(
            series_record(goodput=(10.0, 2.0, 9.5, 10.0)),
            series_record(goodput=(10.0, 2.0, 9.5, 5.0)))
        assert not report.clean
        described = " ".join(report.regressions())
        # mean and last moved; they surface as pseudo-cells
        assert "goodput_gbps[mean]" in described
        assert "goodput_gbps[last]" in described

    def test_sample_count_change_is_visible(self):
        report = diff_campaigns(
            series_record(goodput=(10.0, 2.0, 9.5, 10.0)),
            series_record(goodput=(10.0, 2.0, 9.5)))
        assert any("goodput_gbps[n]" in r for r in report.regressions())

    def test_tolerance_applies_to_stats(self):
        old = series_record(goodput=(10.0, 10.0))
        new = series_record(goodput=(10.1, 10.1))
        assert not diff_campaigns(old, new).clean
        assert diff_campaigns(old, new, tol=0.02).clean

    def test_vanished_series_is_a_regression(self):
        old = series_record(extra_series={"queue_kb": [1.0, 2.0]})
        new = series_record()
        report = diff_campaigns(old, new)
        assert any("queue_kb[mean]" in r and "vanished" in r
                   for r in report.regressions())

    def test_added_series_is_benign_but_visible(self):
        old = series_record()
        new = series_record(extra_series={"queue_kb": [1.0, 2.0]})
        report = diff_campaigns(old, new)
        assert report.clean
        rendered = render_trend(report)
        assert "[NEW]" in rendered and "queue_kb" in rendered

    def test_series_only_row_counts_for_coverage(self):
        old = series_record()
        old["figures"][0]["series"]["ops"] = {"goodput_gbps": [1.0]}
        new = series_record()
        report = diff_campaigns(old, new)
        assert any("row 'ops' vanished" in r
                   for r in report.regressions())

    def test_none_samples_are_skipped_in_stats(self):
        old = series_record(goodput=(10.0, None, 9.0))
        new = series_record(goodput=(10.0, None, 9.0))
        assert diff_campaigns(old, new).clean


class TestRender:
    def test_clean_report_renders_summary(self):
        text = render_trend(diff_campaigns(BASE, BASE))
        assert "no figure changed" in text
        assert "0 regression(s)" in text

    def test_regressions_are_called_out(self):
        new = record(
            fig07=("error", [["ecmp", 200.0, 4], ["reps", 50.0, 0]]),
            fig08=("fail", [["reps", 75.0, 1]]))
        text = render_trend(diff_campaigns(BASE, new))
        assert "[REGRESSION]" in text
        assert "pass → error" in text
        assert "100.0%" in text  # 100 -> 200 drift magnitude


class TestLoadRecord:
    def test_rejects_non_campaign_json(self, tmp_path):
        path = tmp_path / "not-a-record.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="figures"):
            load_record(str(path))

    def test_rejects_structurally_malformed_records(self, tmp_path):
        """Regression (code review): truncated/hand-edited records
        must fail load_record's one clean error, not traceback from
        deep inside the diff."""
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"figures": {}}))
        with pytest.raises(ValueError, match="no 'figures' array"):
            load_record(str(path))
        path.write_text(json.dumps({"figures": [{"status": "pass"}]}))
        with pytest.raises(ValueError, match="no 'fig_id'"):
            load_record(str(path))
        path.write_text(json.dumps(
            {"figures": [{"fig_id": "x", "table": {"rows": 7}}]}))
        with pytest.raises(ValueError, match="malformed 'table'"):
            load_record(str(path))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_record(str(tmp_path / "nope.json"))

    def test_roundtrips_real_shape(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(BASE))
        assert load_record(str(path))["figures"][0]["fig_id"] == "fig07"
