"""Generated docs/figures pages: determinism, content, drift check."""

from __future__ import annotations

import os

from repro.report import (
    docs_drift,
    render_figure_page,
    render_index,
    write_figure_docs,
)
from repro.report.figure_docs import matrix_summary
from repro.scenarios import REGISTRY, figure_ids, get_figure

from helpers import stub_registry


class TestRenderPage:
    def test_sim_figure_page_states_the_matrix(self):
        page = render_figure_page(get_figure("fig07"))
        assert "# `fig07` — Fig. 7" in page
        assert "`max_fct_us`" in page
        assert "sim, failures" in page
        assert "fail_cable_schedule" in page
        assert "repro figures run fig07" in page
        assert "GENERATED" in page.splitlines()[0]

    def test_model_figure_page(self):
        page = render_figure_page(get_figure("table1"))
        assert "`total_bits`" in page
        assert "model" in page

    def test_pages_independent_of_caller_scale(self, monkeypatch):
        baseline = render_figure_page(get_figure("fig03_synthetic"))
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert render_figure_page(get_figure("fig03_synthetic")) \
            == baseline
        # the pinned scale is restored afterwards
        assert os.environ["REPRO_BENCH_SCALE"] == "smoke"

    def test_index_links_every_figure(self):
        index = render_index()
        for fig_id in figure_ids():
            assert f"[`{fig_id}`]({fig_id}.md)" in index


class TestMatrixSummary:
    def test_digest_of_probed_failure_matrix(self):
        spec = get_figure("fig07")
        summary = matrix_summary(spec.build().values())
        assert summary["lbs"] == ["ops", "reps"]
        assert summary["probes"] == ["freeze_entries"]
        assert summary["failures"]
        assert summary["tasks"] == len(spec.build())

    def test_model_tasks_have_no_topology(self):
        summary = matrix_summary(get_figure("table1").build().values())
        assert summary["topologies"] == []
        assert summary["lbs"] == ["model"]


class TestWriteAndDrift:
    def test_write_then_check_is_clean(self, tmp_path):
        written = write_figure_docs(str(tmp_path))
        assert len(written) == len(REGISTRY) + 1  # pages + index
        assert docs_drift(str(tmp_path)) == {}

    def test_stub_specs_roundtrip(self, tmp_path):
        specs = stub_registry()
        write_figure_docs(str(tmp_path), specs)
        assert sorted(os.listdir(tmp_path)) == \
            ["index.md", "stub_a.md", "stub_b.md", "stub_c.md"]
        assert docs_drift(str(tmp_path), specs) == {}

    def test_regenerating_clears_stale_generated_pages(self, tmp_path):
        """Renaming a spec leaves its old generated page behind; the
        next write removes it (so `repro docs figures` actually clears
        'extra' drift) without touching hand-written markdown."""
        specs = stub_registry()
        write_figure_docs(str(tmp_path), specs)
        write_figure_docs(str(tmp_path), specs[:2])  # stub_c "removed"
        assert not (tmp_path / "stub_c.md").exists()
        handwritten = tmp_path / "NOTES.md"
        handwritten.write_text("keep me\n")
        write_figure_docs(str(tmp_path), specs)
        assert handwritten.read_text() == "keep me\n"
        drift = docs_drift(str(tmp_path), specs)
        assert drift == {"NOTES.md": "extra"}

    def test_drift_detects_stale_missing_extra(self, tmp_path):
        specs = stub_registry()
        write_figure_docs(str(tmp_path), specs)
        (tmp_path / "stub_a.md").write_text("hand edited\n")
        (tmp_path / "stub_b.md").unlink()
        (tmp_path / "stub_zzz.md").write_text("orphan\n")
        drift = docs_drift(str(tmp_path), specs)
        assert drift == {"stub_a.md": "stale", "stub_b.md": "missing",
                         "stub_zzz.md": "extra"}

    def test_missing_directory_reports_everything_missing(self, tmp_path):
        specs = stub_registry()
        drift = docs_drift(str(tmp_path / "nope"), specs)
        assert set(drift.values()) == {"missing"}
        assert len(drift) == 4
