"""Tier-1 smoke coverage of the benchmark -> sweep wiring.

Imports a real figure benchmark and drives its matrix at tiny scale
through the sweep harness, so a refactor that breaks the benchmark
plumbing fails the fast suite instead of only the (slow) benchmark run.
"""

from __future__ import annotations

import importlib
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                         "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))


@pytest.fixture(autouse=True)
def no_bench_cache(monkeypatch):
    """Keep the smoke run hermetic: no artifact reads/writes."""
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)


def test_fig16_matrix_through_sweep_tiny():
    bench = importlib.import_module("bench_fig16_topology_scaling")
    from repro.sim.topology import TopologyParams

    topos = {8: TopologyParams(n_hosts=8, hosts_per_t0=4)}
    results = bench.run_scaling_matrix(
        topos=topos, evs_sizes=(64,), lbs=("ops", "reps"),
        msg_bytes=128 * 1024, workers=1, name="smoke_fig16")
    assert set(results) == {("ops", 8, 64), ("reps", 8, 64)}
    for key, res in results.items():
        assert res.metrics["flows_completed"] == \
            res.metrics["flows_total"] > 0, key
        assert res.value("max_fct_us") < float("inf")
        # the evs axis really reached the scenario
        assert dict(res.task.scenario)["evs_size"] == 64


def test_common_run_matrix_parallel_matches_serial():
    _common = importlib.import_module("_common")
    from repro.harness import WorkloadSpec

    workload = WorkloadSpec(kind="synthetic", pattern="tornado",
                            msg_bytes=128 * 1024)
    def build():
        return {(lb, s): _common.sweep_task(
                    lb, _common.small_topo(n_hosts=8, hosts_per_t0=4),
                    workload, seed=s)
                for lb in ("ops", "reps") for s in (1, 2)}

    serial = _common.run_matrix("smoke_serial", build(), workers=1)
    parallel = _common.run_matrix("smoke_parallel", build(), workers=2)
    for key in serial:
        assert serial[key].metrics == parallel[key].metrics
