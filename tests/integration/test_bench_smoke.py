"""Tier-1 smoke coverage of the benchmark -> registry -> sweep wiring.

Drives real figure specs at tiny scale through the same path the
benchmarks use, so a refactor that breaks the figure plumbing fails the
fast suite instead of only the (slow) benchmark run.
"""

from __future__ import annotations

import importlib
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                         "benchmarks")
sys.path.insert(0, os.path.abspath(BENCH_DIR))


@pytest.fixture(autouse=True)
def no_bench_cache(monkeypatch):
    """Keep the smoke run hermetic: no artifact reads/writes."""
    monkeypatch.delenv("REPRO_BENCH_CACHE", raising=False)
    monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)


def test_fig16_matrix_through_registry_tiny():
    from repro.harness.sweep import run_sweep
    from repro.scenarios.sensitivity import fig16_tasks
    from repro.sim.topology import TopologyParams

    tasks = fig16_tasks(
        topos={8: TopologyParams(n_hosts=8, hosts_per_t0=4)},
        evs_sizes=(64,), lbs=("ops", "reps"), msg_bytes=128 * 1024)
    assert set(tasks) == {("ops", 8, 64), ("reps", 8, 64)}
    results = run_sweep(list(tasks.values()))
    for key, task in tasks.items():
        res = results[task]
        assert res.metrics["flows_completed"] == \
            res.metrics["flows_total"] > 0, key
        assert res.value("max_fct_us") < float("inf")
        # the evs axis really reached the scenario
        assert dict(res.task.scenario)["evs_size"] == 64


def test_failure_figure_end_to_end_at_smoke_scale(monkeypatch):
    """fig11b (declarative link-down schedule) holds its paper shape
    even at smoke scale — the full bench path minus the cost."""
    monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
    _common = importlib.import_module("_common")
    result = _common.bench_figure("fig11b", workers=1)
    result.check()
    assert result.value("ops", "total_drops") > \
        result.value("reps", "total_drops")


def test_bench_figure_reports_and_persists(tmp_path, monkeypatch):
    _common = importlib.import_module("_common")
    monkeypatch.setattr(_common, "RESULTS_DIR", str(tmp_path))
    result = _common.bench_figure("table1")
    _common.bench_report(result)
    out = tmp_path / "table1.txt"
    assert out.exists()
    assert "buffer_elems" in out.read_text()


def test_bench_figure_honours_cache_env(tmp_path, monkeypatch):
    _common = importlib.import_module("_common")
    monkeypatch.setattr(_common, "RESULTS_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_BENCH_CACHE", "1")
    first = _common.bench_figure("table1")
    assert first.sweep.executed == len(first)
    again = _common.bench_figure("table1")
    assert again.sweep.cached == len(again)
    # registered figures share the campaign store (cross-figure dedup)
    assert (tmp_path / "sweeps" / "campaign").is_dir()


def test_common_run_matrix_parallel_matches_serial():
    _common = importlib.import_module("_common")
    from repro.harness import WorkloadSpec

    workload = WorkloadSpec(kind="synthetic", pattern="tornado",
                            msg_bytes=128 * 1024)

    def build():
        return {(lb, s): _common.sweep_task(
                    lb, _common.small_topo(n_hosts=8, hosts_per_t0=4),
                    workload, seed=s)
                for lb in ("ops", "reps") for s in (1, 2)}

    serial = _common.run_matrix("smoke_serial", build(), workers=1)
    parallel = _common.run_matrix("smoke_parallel", build(), workers=2)
    for key in serial:
        assert serial[key].metrics == parallel[key].metrics
