"""fig02_timeseries end-to-end: recovery curve through the pipeline.

Runs the registered figure at smoke scale on a v2 store and asserts
the ISSUE-5 acceptance bar: the paper-shape check holds, the series
arrays travel the store intact, and a re-run is fully cached.
"""

from __future__ import annotations

import pytest

from repro.harness.store import ColumnarStore
from repro.scenarios import get_figure
from repro.scenarios.registry import run_figure
from repro.scenarios.timeseries import FAIL_AT_US, window_mean


@pytest.fixture(scope="module")
def smoke_scale():
    import os
    prev = os.environ.get("REPRO_BENCH_SCALE")
    os.environ["REPRO_BENCH_SCALE"] = "smoke"
    yield
    if prev is None:
        os.environ.pop("REPRO_BENCH_SCALE", None)
    else:
        os.environ["REPRO_BENCH_SCALE"] = prev


@pytest.fixture(scope="module")
def figure(smoke_scale, tmp_path_factory):
    store = ColumnarStore(str(tmp_path_factory.mktemp("fig02ts")))
    result = run_figure(get_figure("fig02_timeseries"), store=store)
    return store, result


class TestFig02Timeseries:
    def test_paper_shape_check_holds(self, figure):
        _store, result = figure
        result.check()  # raises AssertionError on divergence

    def test_recovery_curve_shape(self, figure):
        """The REPS trajectory itself: full goodput before the
        failure, most of it retained through the outage."""
        _store, result = figure
        t = result.series("reps", "t_us")
        goodput = result.series("reps", "goodput_gbps")
        assert len(t) == len(goodput) >= 5
        pre = window_mean(t, goodput, 0.0, FAIL_AT_US)
        during = window_mean(t, goodput, FAIL_AT_US, FAIL_AT_US + 400)
        assert pre > 0 and during > 0.4 * pre

    def test_table_is_numeric(self, figure):
        _store, result = figure
        headers, rows, notes = result.table_doc()
        assert headers[0] == "lb" and len(rows) == 2
        for row in rows:
            assert all(isinstance(cell, (int, float))
                       for cell in row[1:])
        assert notes

    def test_rerun_fully_cached_with_identical_series(self, figure):
        store, result = figure
        again = run_figure(get_figure("fig02_timeseries"),
                           store=ColumnarStore(store.root))
        assert again.sweep.executed == 0
        assert again.all_series() == result.all_series()
