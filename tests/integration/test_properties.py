"""End-to-end property tests: delivery and conservation invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams


@st.composite
def _random_runs(draw):
    hosts_per_t0 = draw(st.sampled_from([2, 4]))
    n_t0 = draw(st.integers(2, 3))
    n_hosts = hosts_per_t0 * n_t0
    lb = draw(st.sampled_from(["reps", "ops", "ecmp", "mprdma", "plb"]))
    n_flows = draw(st.integers(1, 6))
    rng = random.Random(draw(st.integers(0, 2 ** 16)))
    flows = []
    for _ in range(n_flows):
        src = rng.randrange(n_hosts)
        dst = rng.randrange(n_hosts - 1)
        if dst >= src:
            dst += 1
        flows.append((src, dst, rng.randrange(1, 64 * 1024)))
    return n_hosts, hosts_per_t0, lb, flows, draw(st.integers(1, 99))


class TestDeliveryProperties:
    @given(run=_random_runs())
    @settings(max_examples=25, deadline=None)
    def test_every_flow_completes_exactly(self, run):
        """Any random small topology + flow set: every flow completes and
        the receiver holds exactly the flow's bytes, once."""
        n_hosts, hosts_per_t0, lb, flows, seed = run
        topo = TopologyParams(n_hosts=n_hosts, hosts_per_t0=hosts_per_t0)
        net = Network(NetworkConfig(topo=topo, lb=lb, seed=seed))
        fids = [net.add_flow(s, d, b) for s, d, b in flows]
        m = net.run(max_us=100_000)
        assert m.flows_completed == len(flows)
        for fid, (_, _, size) in zip(fids, flows):
            rec = net.flows[fid].receiver
            assert rec.bytes_received == size
            assert rec.complete

    @given(run=_random_runs())
    @settings(max_examples=15, deadline=None)
    def test_packet_conservation(self, run):
        """Sent = acked-new + retransmitted; fabric drops are bounded by
        retransmissions (every drop eventually triggers a resend)."""
        n_hosts, hosts_per_t0, lb, flows, seed = run
        topo = TopologyParams(n_hosts=n_hosts, hosts_per_t0=hosts_per_t0)
        net = Network(NetworkConfig(topo=topo, lb=lb, seed=seed))
        for s, d, b in flows:
            net.add_flow(s, d, b)
        m = net.run(max_us=100_000)
        assert m.flows_completed == len(flows)
        total_pkts = sum(r.sender.n_pkts for r in net.flows.values())
        assert m.pkts_sent >= total_pkts
        assert m.pkts_sent <= total_pkts + m.retransmissions

    @given(seed=st.integers(0, 1000),
           lb=st.sampled_from(["reps", "ops"]))
    @settings(max_examples=10, deadline=None)
    def test_transient_failure_never_wedges(self, seed, lb):
        """A transient uplink failure mid-run never leaves a flow stuck:
        retransmission + (for REPS) freezing always recover."""
        topo = TopologyParams(n_hosts=8, hosts_per_t0=4)
        net = Network(NetworkConfig(topo=topo, lb=lb, seed=seed))
        rng = random.Random(seed)
        cable = rng.choice(net.tree.t0_uplink_cables())
        at = rng.randrange(10, 60) * 1_000_000
        net.failures.fail_cable(cable, at_ps=at,
                                duration_ps=100 * 1_000_000)
        for src in range(4):
            net.add_flow(src, 4 + src, 256 * 1024)
        m = net.run(max_us=5_000_000)
        assert m.flows_completed == 4
