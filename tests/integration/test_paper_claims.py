"""End-to-end shape checks of the paper's headline claims.

These are the claims the benchmarks reproduce at figure granularity; the
versions here are deliberately small/fast (seconds for the whole module)
and assert only orderings with generous margins, so they are stable under
any seed drift.
"""

from __future__ import annotations

import pytest

from repro.core.reps import RepsConfig
from repro.harness import Scenario, fail_cables_hook, run_synthetic
from repro.sim.network import Network, NetworkConfig
from repro.sim.topology import TopologyParams
from repro.workloads import permutation, tornado

US = 1_000_000


def topo(**kw) -> TopologyParams:
    kw.setdefault("n_hosts", 16)
    kw.setdefault("hosts_per_t0", 8)
    return TopologyParams(**kw)


def run_pattern(lb, pattern="tornado", mb=2, seed=3, reps=None,
                failures=None, **topo_kw):
    s = Scenario(lb=lb, topo=topo(**topo_kw), seed=seed, reps=reps,
                 max_us=500_000.0, failures=failures)
    return run_synthetic(s, pattern, mb << 20)


class TestSymmetric:
    """Sec. 4.3.1: healthy symmetric network."""

    def test_reps_beats_ecmp_heavily(self):
        reps = run_pattern("reps").metrics
        ecmp = run_pattern("ecmp").metrics
        assert ecmp.max_fct_us > 1.5 * reps.max_fct_us

    def test_reps_at_least_matches_ops(self):
        reps = run_pattern("reps").metrics
        ops = run_pattern("ops").metrics
        assert reps.max_fct_us <= ops.max_fct_us * 1.05

    def test_reps_keeps_queues_below_kmin(self):
        """Fig. 2: REPS converges with all uplink queues under Kmin,
        hence (near-)zero ECN marks; OPS keeps colliding."""
        reps = run_pattern("reps").metrics
        ops = run_pattern("ops").metrics
        assert reps.ecn_marks <= ops.ecn_marks
        assert reps.ecn_marks < 50

    def test_no_drops_in_healthy_network(self):
        for lb in ("reps", "ops"):
            m = run_pattern(lb).metrics
            assert m.total_drops == 0


class TestAsymmetric:
    """Sec. 4.3.2: one uplink degraded to half rate."""

    def _run(self, lb):
        s = Scenario(lb=lb, topo=topo(), seed=5, max_us=500_000.0)
        res_net = s.network()
        cable = res_net.tree.t0_uplink_cables()[0]
        res_net.failures.degrade_cable(cable, 200.0)
        for src, dst in permutation(16, seed=2, cross_tor_only=True,
                                    hosts_per_t0=8):
            res_net.add_flow(src, dst, 2 << 20)
        return res_net.run(max_us=500_000.0)

    def test_reps_routes_around_slow_link(self):
        reps = self._run("reps")
        ops = self._run("ops")
        assert reps.max_fct_us < 0.75 * ops.max_fct_us

    def test_reps_skews_traffic_off_slow_link(self):
        s = Scenario(lb="reps", topo=topo(), seed=5, max_us=500_000.0)
        net = s.network()
        cables = net.tree.t0_uplink_cables()
        slow = cables[0]
        net.failures.degrade_cable(slow, 200.0)
        for src, dst in permutation(16, seed=2, cross_tor_only=True,
                                    hosts_per_t0=8):
            net.add_flow(src, dst, 2 << 20)
        net.run(max_us=500_000.0)
        t0 = net.tree.t0s[0]
        slow_port = next(p for p in t0.up_ports if p.cable is slow)
        other_bytes = [p.stats.bytes_tx for p in t0.up_ports
                       if p is not slow_port]
        avg_other = sum(other_bytes) / len(other_bytes)
        assert slow_port.stats.bytes_tx < 0.8 * avg_other


class TestFailures:
    """Sec. 4.3.3: transient cable failure mid-run."""

    def _metrics(self, lb, reps_cfg=None):
        hook = fail_cables_hook([0], at_us=50.0, duration_us=300.0)
        return run_pattern(lb, pattern="permutation", mb=4, seed=5,
                           reps=reps_cfg, failures=hook).metrics

    def test_reps_much_faster_than_ops_under_failure(self):
        reps = self._metrics("reps")
        ops = self._metrics("ops")
        assert reps.max_fct_us < 0.7 * ops.max_fct_us

    def test_reps_drops_far_fewer_packets(self):
        """Paper: >= 2.5x fewer drops in the Fig. 7 scenario."""
        reps = self._metrics("reps")
        ops = self._metrics("ops")
        assert ops.total_drops > 2.5 * reps.total_drops > 0

    def test_freezing_mode_engages(self):
        hook = fail_cables_hook([0], at_us=50.0, duration_us=300.0)
        s = Scenario(lb="reps", topo=topo(), seed=5, max_us=500_000.0,
                     failures=hook)
        net = s.network()
        for src, dst in permutation(16, seed=2, cross_tor_only=True,
                                    hosts_per_t0=8):
            net.add_flow(src, dst, 4 << 20)
        net.run(max_us=500_000.0)
        freezes = sum(r.sender.lb.stats_freeze_entries
                      for r in net.flows.values())
        assert freezes > 0

    def test_freezing_beats_no_freezing(self):
        """Appendix C.4: freezing is worth ~25% under failures, and
        REPS-without-freezing still beats OPS."""
        frozen = self._metrics("reps")
        unfrozen = self._metrics(
            "reps", RepsConfig(freezing_enabled=False))
        ops = self._metrics("ops")
        assert frozen.max_fct_us <= unfrozen.max_fct_us * 1.1
        assert unfrozen.max_fct_us < ops.max_fct_us

    def test_recovery_after_failure_ends(self):
        """Flows complete after the failure window without lingering."""
        m = self._metrics("reps")
        assert m.flows_completed == m.flows_total


class TestEvsSizes:
    """Sec. 4.5.2: REPS works with a tiny EVS, OPS needs a large one."""

    def _run(self, lb, evs):
        s = Scenario(lb=lb, topo=topo(), evs_size=evs, seed=3,
                     max_us=500_000.0)
        return run_synthetic(s, "permutation", 2 << 20).metrics

    def test_reps_fine_with_256_evs(self):
        small = self._run("reps", 256)
        large = self._run("reps", 65536)
        assert small.max_fct_us <= large.max_fct_us * 1.15

    def test_ops_suffers_with_tiny_evs(self):
        small = self._run("ops", 16)
        large = self._run("ops", 65536)
        assert small.max_fct_us > large.max_fct_us * 1.05


class TestCcAgnostic:
    """Sec. 4.5.3: REPS helps every CC."""

    @pytest.mark.parametrize("cc", ["dctcp", "eqds", "internal"])
    def test_reps_never_worse_than_ops(self, cc):
        def run(lb):
            s = Scenario(lb=lb, topo=topo(), cc=cc, seed=3,
                         max_us=500_000.0)
            return run_synthetic(s, "permutation", 2 << 20).metrics

        reps, ops = run("reps"), run("ops")
        assert reps.max_fct_us <= ops.max_fct_us * 1.10
