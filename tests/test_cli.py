"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestRun:
    def test_basic_run(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25", "--seed", "2")
        assert code == 0
        assert "reps:" in out
        assert "flows 8/8" in out

    def test_tornado_pattern(self, capsys):
        code, out = run_cli(
            capsys, "run", "--pattern", "tornado", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0

    def test_incast_pattern(self, capsys):
        code, out = run_cli(
            capsys, "run", "--pattern", "incast", "--fan-in", "4",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0

    def test_failure_injection_flags(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.5",
            "--fail-uplink", "0", "--fail-at", "10", "--fail-for", "100")
        assert code == 0

    def test_degrade_flags(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25",
            "--degrade-uplink", "0", "--degrade-gbps", "200")
        assert code == 0

    def test_unfinished_run_fails(self, capsys):
        # permanent blackhole of every uplink + tiny time budget
        code, out = run_cli(
            capsys, "run", "--lb", "ecmp", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "4",
            "--max-us", "50")
        assert code == 1


class TestCompare:
    def test_compare_table(self, capsys):
        code, out = run_cli(
            capsys, "compare", "--lbs", "ops,reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0
        assert "ops" in out and "reps" in out
        assert "max_fct_us" in out


class TestSweep:
    def sweep(self, capsys, tmp_path, *extra):
        return run_cli(
            capsys, "sweep", "--lbs", "ops,reps", "--pattern", "tornado",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.125",
            "--seeds", "1,2", "--results-dir", str(tmp_path), *extra)

    def test_aggregated_table(self, capsys, tmp_path):
        code, out = self.sweep(capsys, tmp_path)
        assert code == 0
        assert "max_fct_us" in out
        assert "2 executed" not in out  # 4 tasks: 2 lbs x 2 seeds
        assert "4 executed, 0 from cache" in out

    def test_rerun_hits_cache(self, capsys, tmp_path):
        self.sweep(capsys, tmp_path)
        code, out = self.sweep(capsys, tmp_path)
        assert code == 0
        assert "0 executed, 4 from cache" in out

    def test_fresh_ignores_cache(self, capsys, tmp_path):
        self.sweep(capsys, tmp_path)
        code, out = self.sweep(capsys, tmp_path, "--fresh")
        assert code == 0
        assert "4 executed, 0 from cache" in out

    def test_workers_flag(self, capsys, tmp_path):
        code, out = self.sweep(capsys, tmp_path, "--workers", "2")
        assert code == 0
        assert "2 worker(s)" in out

    def test_root_seed_spawning(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "sweep", "--lbs", "reps", "--pattern", "tornado",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.125",
            "--root-seed", "9", "--n-seeds", "3",
            "--results-dir", str(tmp_path))
        assert code == 0
        assert "3 to run" in out


class TestFootprint:
    def test_table1_defaults(self, capsys):
        code, out = run_cli(capsys, "footprint")
        assert code == 0
        assert "193 bits" in out
        assert "25 bytes" in out

    def test_single_element(self, capsys):
        code, out = run_cli(capsys, "footprint", "--buffer", "1")
        assert code == 0
        assert "74 bits" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_pattern(self):
        with pytest.raises(SystemExit):
            main(["run", "--pattern", "gather"])
