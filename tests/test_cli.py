"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestRun:
    def test_basic_run(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25", "--seed", "2")
        assert code == 0
        assert "reps:" in out
        assert "flows 8/8" in out

    def test_tornado_pattern(self, capsys):
        code, out = run_cli(
            capsys, "run", "--pattern", "tornado", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0

    def test_incast_pattern(self, capsys):
        code, out = run_cli(
            capsys, "run", "--pattern", "incast", "--fan-in", "4",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0

    def test_failure_injection_flags(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.5",
            "--fail-uplink", "0", "--fail-at", "10", "--fail-for", "100")
        assert code == 0

    def test_degrade_flags(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25",
            "--degrade-uplink", "0", "--degrade-gbps", "200")
        assert code == 0

    def test_unfinished_run_fails(self, capsys):
        # permanent blackhole of every uplink + tiny time budget
        code, out = run_cli(
            capsys, "run", "--lb", "ecmp", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "4",
            "--max-us", "50")
        assert code == 1


class TestCompare:
    def test_compare_table(self, capsys):
        code, out = run_cli(
            capsys, "compare", "--lbs", "ops,reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0
        assert "ops" in out and "reps" in out
        assert "max_fct_us" in out


class TestSweep:
    def sweep(self, capsys, tmp_path, *extra):
        return run_cli(
            capsys, "sweep", "--lbs", "ops,reps", "--pattern", "tornado",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.125",
            "--seeds", "1,2", "--results-dir", str(tmp_path), *extra)

    def test_aggregated_table(self, capsys, tmp_path):
        code, out = self.sweep(capsys, tmp_path)
        assert code == 0
        assert "max_fct_us" in out
        assert "2 executed" not in out  # 4 tasks: 2 lbs x 2 seeds
        assert "4 executed, 0 from cache" in out

    def test_rerun_hits_cache(self, capsys, tmp_path):
        self.sweep(capsys, tmp_path)
        code, out = self.sweep(capsys, tmp_path)
        assert code == 0
        assert "0 executed, 4 from cache" in out

    def test_fresh_ignores_cache(self, capsys, tmp_path):
        self.sweep(capsys, tmp_path)
        code, out = self.sweep(capsys, tmp_path, "--fresh")
        assert code == 0
        assert "4 executed, 0 from cache" in out

    def test_workers_flag(self, capsys, tmp_path):
        code, out = self.sweep(capsys, tmp_path, "--workers", "2")
        assert code == 0
        assert "2 worker(s)" in out

    def test_root_seed_spawning(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "sweep", "--lbs", "reps", "--pattern", "tornado",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.125",
            "--root-seed", "9", "--n-seeds", "3",
            "--results-dir", str(tmp_path))
        assert code == 0
        assert "3 to run" in out


class TestFigures:
    def test_list_enumerates_registry(self, capsys):
        from repro.scenarios import figure_ids
        code, out = run_cli(capsys, "figures", "list")
        assert code == 0
        for fig_id in figure_ids():
            assert fig_id in out

    def test_run_model_figure(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "figures", "run", "table1",
            "--results-dir", str(tmp_path))
        assert code == 0
        assert "buffer_elems" in out
        assert "5 executed, 0 from cache" in out
        assert "[OK ] table1" in out

    def test_run_hits_cache_on_rerun(self, capsys, tmp_path):
        run_cli(capsys, "figures", "run", "table1",
                "--results-dir", str(tmp_path))
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--results-dir", str(tmp_path))
        assert code == 0
        assert "0 executed, 5 from cache" in out

    def test_fresh_ignores_cache(self, capsys, tmp_path):
        run_cli(capsys, "figures", "run", "table1",
                "--results-dir", str(tmp_path))
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--fresh", "--results-dir", str(tmp_path))
        assert code == 0
        assert "5 executed, 0 from cache" in out

    def test_prune_drops_stale_artifacts(self, capsys, tmp_path):
        import json
        import os
        run_cli(capsys, "figures", "run", "table1",
                "--results-dir", str(tmp_path))
        stale = os.path.join(str(tmp_path), "table1", "feedface.json")
        with open(stale, "w") as fh:
            json.dump({"schema": 0}, fh)
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--prune", "--results-dir", str(tmp_path))
        assert code == 0
        assert "pruned 1 stale artifact(s)" in out
        assert not os.path.exists(stale)

    def test_no_cache_runs_without_store(self, capsys, tmp_path):
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--no-cache",
                            "--results-dir", str(tmp_path))
        assert code == 0
        assert not list(tmp_path.iterdir())

    def test_failed_check_sets_exit_code(self, capsys, tmp_path,
                                         monkeypatch):
        from repro.scenarios import registry

        def boom(result):
            raise AssertionError("shape off")
        spec = registry.get_figure("table1")
        monkeypatch.setitem(
            registry.REGISTRY, "table1",
            type(spec)(**{**spec.__dict__, "check": boom}))
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--no-cache",
                            "--results-dir", str(tmp_path))
        assert code == 1
        assert "[DIVERGES] table1" in out

    def test_no_check_skips_assertions(self, capsys, tmp_path,
                                       monkeypatch):
        from repro.scenarios import registry

        def boom(result):
            raise AssertionError("shape off")
        spec = registry.get_figure("table1")
        monkeypatch.setitem(
            registry.REGISTRY, "table1",
            type(spec)(**{**spec.__dict__, "check": boom}))
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--no-check", "--no-cache",
                            "--results-dir", str(tmp_path))
        assert code == 0

    def test_unknown_figure_id_fails_before_any_run(self, capsys,
                                                    tmp_path):
        """Ids resolve up front: a typo in the last id must not cost a
        full run of the earlier figures (and exits cleanly)."""
        with pytest.raises(SystemExit, match="figures list"):
            run_cli(capsys, "figures", "run", "table1", "fig99",
                    "--results-dir", str(tmp_path))
        assert not (tmp_path / "table1").exists()

    def test_workers_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "2")
        code, out = run_cli(capsys, "figures", "run", "fig24",
                            "--results-dir", str(tmp_path))
        assert code == 0
        assert "2 worker(s)" in out

    def test_malformed_workers_env_leaves_other_commands_alone(
            self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "lots")
        code, out = run_cli(capsys, "footprint")
        assert code == 0


class TestFootprint:
    def test_table1_defaults(self, capsys):
        code, out = run_cli(capsys, "footprint")
        assert code == 0
        assert "193 bits" in out
        assert "25 bytes" in out

    def test_single_element(self, capsys):
        code, out = run_cli(capsys, "footprint", "--buffer", "1")
        assert code == 0
        assert "74 bits" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_pattern(self):
        with pytest.raises(SystemExit):
            main(["run", "--pattern", "gather"])
