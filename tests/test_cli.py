"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _clean_harness_env():
    """CLI paths (``--scale``, ``shard run``) export harness env vars
    for their worker trees; start every test without them and scrub
    whatever the test exported afterwards (monkeypatch.delenv cannot:
    it only undoes changes it made itself, not the CLI's)."""
    import os
    keys = ("REPRO_BENCH_SCALE", "REPRO_SHARD", "REPRO_BACKEND",
            "REPRO_STORE")
    saved = {key: os.environ.pop(key, None) for key in keys}
    yield
    for key, value in saved.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestRun:
    def test_basic_run(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25", "--seed", "2")
        assert code == 0
        assert "reps:" in out
        assert "flows 8/8" in out

    def test_tornado_pattern(self, capsys):
        code, out = run_cli(
            capsys, "run", "--pattern", "tornado", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0

    def test_incast_pattern(self, capsys):
        code, out = run_cli(
            capsys, "run", "--pattern", "incast", "--fan-in", "4",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0

    def test_failure_injection_flags(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.5",
            "--fail-uplink", "0", "--fail-at", "10", "--fail-for", "100")
        assert code == 0

    def test_degrade_flags(self, capsys):
        code, out = run_cli(
            capsys, "run", "--lb", "reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25",
            "--degrade-uplink", "0", "--degrade-gbps", "200")
        assert code == 0

    def test_unfinished_run_fails(self, capsys):
        # permanent blackhole of every uplink + tiny time budget
        code, out = run_cli(
            capsys, "run", "--lb", "ecmp", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "4",
            "--max-us", "50")
        assert code == 1


class TestCompare:
    def test_compare_table(self, capsys):
        code, out = run_cli(
            capsys, "compare", "--lbs", "ops,reps", "--hosts", "8",
            "--hosts-per-t0", "4", "--mib", "0.25")
        assert code == 0
        assert "ops" in out and "reps" in out
        assert "max_fct_us" in out


class TestSweep:
    def sweep(self, capsys, tmp_path, *extra):
        return run_cli(
            capsys, "sweep", "--lbs", "ops,reps", "--pattern", "tornado",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.125",
            "--seeds", "1,2", "--results-dir", str(tmp_path), *extra)

    def test_aggregated_table(self, capsys, tmp_path):
        code, out = self.sweep(capsys, tmp_path)
        assert code == 0
        assert "max_fct_us" in out
        assert "2 executed" not in out  # 4 tasks: 2 lbs x 2 seeds
        assert "4 executed, 0 from cache" in out

    def test_rerun_hits_cache(self, capsys, tmp_path):
        self.sweep(capsys, tmp_path)
        code, out = self.sweep(capsys, tmp_path)
        assert code == 0
        assert "0 executed, 4 from cache" in out

    def test_fresh_ignores_cache(self, capsys, tmp_path):
        self.sweep(capsys, tmp_path)
        code, out = self.sweep(capsys, tmp_path, "--fresh")
        assert code == 0
        assert "4 executed, 0 from cache" in out

    def test_workers_flag(self, capsys, tmp_path):
        code, out = self.sweep(capsys, tmp_path, "--workers", "2")
        assert code == 0
        assert "2 worker(s)" in out
        assert "[process backend]" in out

    def test_backend_flag(self, capsys, tmp_path):
        code, out = self.sweep(capsys, tmp_path, "--backend", "batched")
        assert code == 0
        assert "[batched backend]" in out

    def test_backend_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "shard")
        code, out = self.sweep(capsys, tmp_path)
        assert code == 0
        assert "[shard backend]" in out

    def test_unknown_backend_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            self.sweep(capsys, tmp_path, "--backend", "quantum")

    def test_bad_backend_env_fails_cleanly(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "quantum")
        with pytest.raises(SystemExit, match="not a known backend"):
            self.sweep(capsys, tmp_path)

    def test_root_seed_spawning(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "sweep", "--lbs", "reps", "--pattern", "tornado",
            "--hosts", "8", "--hosts-per-t0", "4", "--mib", "0.125",
            "--root-seed", "9", "--n-seeds", "3",
            "--results-dir", str(tmp_path))
        assert code == 0
        assert "3 to run" in out


class TestFigures:
    def test_list_enumerates_registry(self, capsys):
        from repro.scenarios import figure_ids
        code, out = run_cli(capsys, "figures", "list")
        assert code == 0
        for fig_id in figure_ids():
            assert fig_id in out

    def test_run_model_figure(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "figures", "run", "table1",
            "--results-dir", str(tmp_path))
        assert code == 0
        assert "buffer_elems" in out
        assert "5 executed, 0 from cache" in out
        assert "[OK ] table1" in out

    def test_run_hits_cache_on_rerun(self, capsys, tmp_path):
        run_cli(capsys, "figures", "run", "table1",
                "--results-dir", str(tmp_path))
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--results-dir", str(tmp_path))
        assert code == 0
        assert "0 executed, 5 from cache" in out

    def test_fresh_ignores_cache(self, capsys, tmp_path):
        run_cli(capsys, "figures", "run", "table1",
                "--results-dir", str(tmp_path))
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--fresh", "--results-dir", str(tmp_path))
        assert code == 0
        assert "5 executed, 0 from cache" in out

    def test_prune_drops_stale_artifacts(self, capsys, tmp_path):
        import json
        import os
        run_cli(capsys, "figures", "run", "table1",
                "--results-dir", str(tmp_path))
        stale = os.path.join(str(tmp_path), "table1", "feedface.json")
        with open(stale, "w") as fh:
            json.dump({"schema": 0}, fh)
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--prune", "--results-dir", str(tmp_path))
        assert code == 0
        assert "pruned 1 stale artifact(s)" in out
        assert not os.path.exists(stale)

    def test_no_cache_runs_without_store(self, capsys, tmp_path):
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--no-cache",
                            "--results-dir", str(tmp_path))
        assert code == 0
        assert not list(tmp_path.iterdir())

    def test_failed_check_sets_exit_code(self, capsys, tmp_path,
                                         monkeypatch):
        from repro.scenarios import registry

        def boom(result):
            raise AssertionError("shape off")
        spec = registry.get_figure("table1")
        monkeypatch.setitem(
            registry.REGISTRY, "table1",
            type(spec)(**{**spec.__dict__, "check": boom}))
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--no-cache",
                            "--results-dir", str(tmp_path))
        assert code == 1
        assert "[DIVERGES] table1" in out

    def test_no_check_skips_assertions(self, capsys, tmp_path,
                                       monkeypatch):
        from repro.scenarios import registry

        def boom(result):
            raise AssertionError("shape off")
        spec = registry.get_figure("table1")
        monkeypatch.setitem(
            registry.REGISTRY, "table1",
            type(spec)(**{**spec.__dict__, "check": boom}))
        code, out = run_cli(capsys, "figures", "run", "table1",
                            "--no-check", "--no-cache",
                            "--results-dir", str(tmp_path))
        assert code == 0

    def test_unknown_figure_id_fails_before_any_run(self, capsys,
                                                    tmp_path):
        """Ids resolve up front: a typo in the last id must not cost a
        full run of the earlier figures (and exits cleanly)."""
        with pytest.raises(SystemExit, match="figures list"):
            run_cli(capsys, "figures", "run", "table1", "fig99",
                    "--results-dir", str(tmp_path))
        assert not (tmp_path / "table1").exists()

    def test_workers_env_default(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "2")
        code, out = run_cli(capsys, "figures", "run", "fig24",
                            "--results-dir", str(tmp_path))
        assert code == 0
        assert "2 worker(s)" in out

    def test_malformed_workers_env_leaves_other_commands_alone(
            self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "lots")
        code, out = run_cli(capsys, "footprint")
        assert code == 0


class TestFiguresCampaign:
    """`figures run --all`: campaign mode over the model figures
    (cheap) with report/record emission."""

    def campaign(self, capsys, tmp_path, *extra):
        return run_cli(
            capsys, "figures", "run", "--only", "table1,fig24",
            "--results-dir", str(tmp_path / "store"),
            "--report", str(tmp_path / "REPRODUCTION.md"),
            "--json", str(tmp_path / "campaign.json"), *extra)

    def test_campaign_emits_report_and_record(self, capsys, tmp_path):
        import json
        code, out = self.campaign(capsys, tmp_path)
        assert code == 0
        assert "campaign done" in out
        text = (tmp_path / "REPRODUCTION.md").read_text()
        assert "## table1 — Table 1 `[PASS]`" in text
        assert "## fig24 — Fig. 24 `[PASS]`" in text
        assert "## Provenance" in text
        doc = json.loads((tmp_path / "campaign.json").read_text())
        assert doc["summary"]["figures"] == 2
        assert {f["fig_id"] for f in doc["figures"]} == \
            {"table1", "fig24"}

    def test_campaign_rerun_hits_shared_store(self, capsys, tmp_path):
        self.campaign(capsys, tmp_path)
        code, out = self.campaign(capsys, tmp_path)
        assert code == 0
        assert "7 tasks (0 executed, 7 cached)" in out

    def test_ids_act_as_only_filter_with_all(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "figures", "run", "table1", "--all",
            "--results-dir", str(tmp_path / "store"),
            "--report", str(tmp_path / "R.md"),
            "--json", str(tmp_path / "c.json"))
        assert code == 0
        assert "campaign: 1 figure(s)" in out

    def test_tag_filter_composes_with_only(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "figures", "run", "--tag", "analytic",
            "--only", "table1",
            "--results-dir", str(tmp_path / "store"),
            "--report", str(tmp_path / "R.md"),
            "--json", str(tmp_path / "c.json"))
        assert code == 0
        assert "campaign: 1 figure(s)" in out

    def test_empty_selection_fails_cleanly(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="selected no figures"):
            run_cli(capsys, "figures", "run", "--tag", "analytic",
                    "--skip", "fig14,fig17,fig18,fig20,fig24,table1",
                    "--results-dir", str(tmp_path))

    def test_unknown_filter_id_fails_cleanly(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="figures list"):
            run_cli(capsys, "figures", "run", "--only", "fig99",
                    "--results-dir", str(tmp_path))

    def test_run_without_ids_or_all_fails(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="--all"):
            run_cli(capsys, "figures", "run",
                    "--results-dir", str(tmp_path))

    def test_divergence_is_soft_unless_strict(self, capsys, tmp_path,
                                              monkeypatch):
        from repro.scenarios import registry

        def boom(result):
            raise AssertionError("shape off")
        spec = registry.get_figure("table1")
        monkeypatch.setitem(
            registry.REGISTRY, "table1",
            type(spec)(**{**spec.__dict__, "check": boom}))
        code, _out = self.campaign(capsys, tmp_path)
        assert code == 0  # fail badge, but the campaign completed
        text = (tmp_path / "REPRODUCTION.md").read_text()
        assert "`[FAIL]`" in text
        assert "shape off" in text
        code, _out = self.campaign(capsys, tmp_path, "--strict")
        assert code == 1

    def test_campaign_only_flags_rejected_in_single_mode(
            self, capsys, tmp_path):
        for flags in (["--strict"], ["--prune-stale"],
                      ["--figure-jobs", "2"],
                      ["--report", str(tmp_path / "R.md")]):
            with pytest.raises(SystemExit, match="campaign mode"):
                run_cli(capsys, "figures", "run", "table1",
                        "--results-dir", str(tmp_path), *flags)

    def test_prune_stale_needs_a_store(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="drop --no-cache"):
            run_cli(capsys, "figures", "run", "--only", "table1",
                    "--no-cache", "--prune-stale",
                    "--results-dir", str(tmp_path))

    def test_prune_rejected_in_campaign_mode(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="prune-stale"):
            run_cli(capsys, "figures", "run", "--only", "table1",
                    "--prune", "--results-dir", str(tmp_path))

    def test_prune_stale_flag(self, capsys, tmp_path):
        import json
        import os
        self.campaign(capsys, tmp_path)
        stale = os.path.join(str(tmp_path / "store"), "campaign",
                             "feedface.json")
        with open(stale, "w") as fh:
            json.dump({"schema": 2, "sim": "0" * 16, "metrics": {},
                       "task": {"label": "ghost", "seed": 1}}, fh)
        code, _out = self.campaign(capsys, tmp_path, "--prune-stale")
        assert code == 0
        assert not os.path.exists(stale)

    def test_scale_flag_sets_bench_scale(self, capsys, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        code, _out = self.campaign(capsys, tmp_path, "--scale", "smoke")
        assert code == 0
        text = (tmp_path / "REPRODUCTION.md").read_text()
        assert "| bench scale | `smoke` |" in text


class TestShard:
    """`repro shard plan | run | merge`: the multi-host campaign flow
    rehearsed over the (cheap) model figures."""

    SELECTION = "table1,fig24"

    def plan(self, capsys, tmp_path, *extra):
        return run_cli(
            capsys, "shard", "plan", "--shards", "2",
            "--only", self.SELECTION, "--scale", "smoke",
            "--out", str(tmp_path / "plan"), *extra)

    def full_flow(self, capsys, tmp_path):
        self.plan(capsys, tmp_path)
        for i in (0, 1):
            code, out = run_cli(
                capsys, "shard", "run",
                str(tmp_path / "plan" / f"shard-{i}.json"),
                "--store", str(tmp_path / f"shard-{i}"))
            assert code == 0
        return run_cli(
            capsys, "shard", "merge",
            "--into", str(tmp_path / "merged" / "campaign"),
            str(tmp_path / "shard-0"), str(tmp_path / "shard-1"))

    def test_plan_is_deterministic(self, capsys, tmp_path):
        code, out = self.plan(capsys, tmp_path)
        assert code == 0
        assert "7 task(s) from 2 figure(s) into 2 shard(s)" in out
        first = [(tmp_path / "plan" / f"shard-{i}.json").read_text()
                 for i in (0, 1)]
        self.plan(capsys, tmp_path)
        again = [(tmp_path / "plan" / f"shard-{i}.json").read_text()
                 for i in (0, 1)]
        assert first == again

    def test_shard_then_merge_reproduces_single_host_run(
            self, capsys, tmp_path):
        import json
        code, out = self.full_flow(capsys, tmp_path)
        assert code == 0
        assert "7 artifact(s) (7 newly merged)" in out
        # the merged store serves a whole campaign without executing
        code, out = run_cli(
            capsys, "figures", "run", "--only", self.SELECTION,
            "--scale", "smoke",
            "--results-dir", str(tmp_path / "merged"),
            "--report", str(tmp_path / "R-sharded.md"),
            "--json", str(tmp_path / "c-sharded.json"))
        assert code == 0
        assert "7 tasks (0 executed, 7 cached)" in out
        # and its tables match a from-scratch single-host campaign
        code, _ = run_cli(
            capsys, "figures", "run", "--only", self.SELECTION,
            "--scale", "smoke",
            "--results-dir", str(tmp_path / "single"),
            "--report", str(tmp_path / "R-single.md"),
            "--json", str(tmp_path / "c-single.json"))
        assert code == 0
        sharded = json.loads((tmp_path / "c-sharded.json").read_text())
        single = json.loads((tmp_path / "c-single.json").read_text())
        assert [f["table"] for f in sharded["figures"]] == \
            [f["table"] for f in single["figures"]]
        assert [f["status"] for f in sharded["figures"]] == \
            [f["status"] for f in single["figures"]]

    def test_merge_reads_v2_sources_under_json_policy(self, capsys,
                                                      tmp_path):
        """Regression (code review): columnar shard stores merged
        with $REPRO_STORE=json must not silently merge 0 artifacts."""
        import os
        self.plan(capsys, tmp_path)
        for i in (0, 1):
            code, _ = run_cli(
                capsys, "shard", "run",
                str(tmp_path / "plan" / f"shard-{i}.json"),
                "--store", str(tmp_path / f"shard-{i}"))
            assert code == 0
        os.environ["REPRO_STORE"] = "json"  # autouse fixture scrubs it
        code, out = run_cli(
            capsys, "shard", "merge",
            "--into", str(tmp_path / "merged-v1"),
            str(tmp_path / "shard-0"), str(tmp_path / "shard-1"))
        assert code == 0
        assert "7 artifact(s) (7 newly merged)" in out

    def test_merge_is_idempotent(self, capsys, tmp_path):
        self.full_flow(capsys, tmp_path)
        code, out = run_cli(
            capsys, "shard", "merge",
            "--into", str(tmp_path / "merged" / "campaign"),
            str(tmp_path / "shard-0"), str(tmp_path / "shard-1"))
        assert code == 0
        assert "(0 newly merged)" in out

    def test_merged_manifest_records_shard_origin(self, capsys,
                                                  tmp_path):
        from repro.harness.store import open_store
        self.full_flow(capsys, tmp_path)
        manifest = open_store(
            str(tmp_path / "merged" / "campaign")).manifest()
        assert len(manifest) == 7
        assert {e["origin"] for e in manifest.values()} == \
            {"shard-0/2", "shard-1/2"}

    def test_empty_shard_still_merges(self, capsys, tmp_path):
        """Regression (code review): more shards than tasks left the
        empty shard's store uncreated, so merging every planned shard
        store failed."""
        run_cli(capsys, "shard", "plan", "--shards", "8",
                "--only", "table1", "--scale", "smoke",
                "--out", str(tmp_path / "plan"))
        stores = []
        for i in range(8):
            code, _ = run_cli(
                capsys, "shard", "run",
                str(tmp_path / "plan" / f"shard-{i}.json"),
                "--store", str(tmp_path / f"s{i}"))
            assert code == 0
            stores.append(str(tmp_path / f"s{i}"))
        code, out = run_cli(capsys, "shard", "merge",
                            "--into", str(tmp_path / "m"), *stores)
        assert code == 0
        assert "5 artifact(s) (5 newly merged)" in out

    def test_run_refuses_simulator_drift(self, capsys, tmp_path):
        import json
        self.plan(capsys, tmp_path)
        path = tmp_path / "plan" / "shard-0.json"
        manifest = json.loads(path.read_text())
        manifest["sim"] = "0" * 16
        path.write_text(json.dumps(manifest))
        with pytest.raises(SystemExit, match="does not match"):
            run_cli(capsys, "shard", "run", str(path),
                    "--store", str(tmp_path / "s"))

    def test_run_refuses_non_manifest_json(self, capsys, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("{\"keys\": []}")
        with pytest.raises(SystemExit, match="not a repro shard"):
            run_cli(capsys, "shard", "run", str(path),
                    "--store", str(tmp_path / "s"))

    def test_merge_rejects_missing_source(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="not a.*store"):
            run_cli(capsys, "shard", "merge",
                    "--into", str(tmp_path / "m"),
                    str(tmp_path / "ghost"))

    def test_plan_rejects_empty_selection(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="selected no figures"):
            run_cli(capsys, "shard", "plan", "--only", "table1",
                    "--skip", "table1",
                    "--out", str(tmp_path / "plan"))

    def test_plan_rejects_unknown_figure(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="figures list"):
            run_cli(capsys, "shard", "plan", "--only", "fig99",
                    "--out", str(tmp_path / "plan"))

    def test_run_scopes_shard_identity(self, capsys, tmp_path):
        """Regression (ISSUE 10): `shard run` exports $REPRO_SHARD /
        $REPRO_BENCH_SCALE only for the duration of the run.  It used
        to leave both behind, so a later in-process run (tests, the
        orchestrator) inherited a stale shard identity and scale in
        its provenance header."""
        import os

        from repro.harness.store import open_store
        from repro.report import collect_provenance
        self.plan(capsys, tmp_path)
        assert "REPRO_SHARD" not in os.environ
        assert "REPRO_BENCH_SCALE" not in os.environ
        code, _ = run_cli(
            capsys, "shard", "run",
            str(tmp_path / "plan" / "shard-1.json"),
            "--store", str(tmp_path / "s1"))
        assert code == 0
        # the run itself saw the identity: the store records it
        manifest = open_store(str(tmp_path / "s1")).manifest()
        assert {e["origin"] for e in manifest.values()} == {"shard-1/2"}
        # ...but nothing leaked into this process
        assert "REPRO_SHARD" not in os.environ
        assert "REPRO_BENCH_SCALE" not in os.environ
        assert collect_provenance()["shard"] == ""
        # and a value that existed before the run is restored, not
        # clobbered
        os.environ["REPRO_BENCH_SCALE"] = "full"
        os.environ["REPRO_SHARD"] = "9/9"
        run_cli(capsys, "shard", "run",
                str(tmp_path / "plan" / "shard-0.json"),
                "--store", str(tmp_path / "s0"))
        assert os.environ["REPRO_BENCH_SCALE"] == "full"
        assert os.environ["REPRO_SHARD"] == "9/9"

    def test_merge_rejects_non_store_directory(self, capsys, tmp_path):
        """Regression (ISSUE 10): a directory that exists but is not a
        store used to surface a raw traceback mid-merge; now it fails
        cleanly, naming the bad source, before anything merges."""
        bogus = tmp_path / "not-a-store"
        bogus.mkdir()
        (bogus / "README.txt").write_text("just some directory\n")
        with pytest.raises(SystemExit, match="not-a-store is not a"):
            run_cli(capsys, "shard", "merge",
                    "--into", str(tmp_path / "m"), str(bogus))
        # pre-flight validation: nothing was merged into the dest
        assert not (tmp_path / "m").exists() or \
            not list((tmp_path / "m").iterdir())

    def test_merge_validates_before_merging(self, capsys, tmp_path):
        """A bad source anywhere in the list fails the merge before
        source 0 lands — no half-merged destination."""
        import os
        self.plan(capsys, tmp_path)
        code, _ = run_cli(
            capsys, "shard", "run",
            str(tmp_path / "plan" / "shard-0.json"),
            "--store", str(tmp_path / "shard-0"))
        assert code == 0
        bogus = tmp_path / "junk"
        bogus.mkdir()
        (bogus / "data.bin").write_text("x")
        with pytest.raises(SystemExit, match="junk is not a"):
            run_cli(capsys, "shard", "merge",
                    "--into", str(tmp_path / "m"),
                    str(tmp_path / "shard-0"), str(bogus))
        dest = tmp_path / "m"
        assert not dest.exists() or not os.listdir(dest)

    def test_merge_failure_names_source_and_reports_progress(
            self, capsys, tmp_path):
        """A source that passes pre-flight but blows up mid-merge
        produces a summary of what landed, not a traceback."""
        from unittest import mock

        from repro.harness.store import ColumnarStore
        self.plan(capsys, tmp_path)
        for i in (0, 1):
            code, _ = run_cli(
                capsys, "shard", "run",
                str(tmp_path / "plan" / f"shard-{i}.json"),
                "--store", str(tmp_path / f"shard-{i}"))
            assert code == 0
        real = ColumnarStore.merge_from
        calls = {"n": 0}

        def flaky(self, source):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("disk on fire")
            return real(self, source)

        with mock.patch.object(ColumnarStore, "merge_from", flaky):
            with pytest.raises(SystemExit) as err:
                run_cli(capsys, "shard", "merge",
                        "--into", str(tmp_path / "m"),
                        str(tmp_path / "shard-0"),
                        str(tmp_path / "shard-1"))
        message = str(err.value)
        assert "shard-1 failed" in message
        assert "merged 1/2 source(s)" in message
        assert "disk on fire" in message
        # the partial merge is safe: re-running the same command
        # completes the destination
        code, out = run_cli(capsys, "shard", "merge",
                            "--into", str(tmp_path / "m"),
                            str(tmp_path / "shard-0"),
                            str(tmp_path / "shard-1"))
        assert code == 0
        assert "7 artifact(s)" in out

    def test_drift_refusal_runs_nothing(self, capsys, tmp_path):
        """Backfill (ISSUE 5): the simulator-drift refusal must fire
        before any task executes — no store directory, no artifacts,
        no $REPRO_SHARD export."""
        import json
        import os
        self.plan(capsys, tmp_path)
        path = tmp_path / "plan" / "shard-0.json"
        manifest = json.loads(path.read_text())
        manifest["sim"] = "f" * 16
        path.write_text(json.dumps(manifest))
        with pytest.raises(SystemExit, match="re-plan"):
            run_cli(capsys, "shard", "run", str(path),
                    "--store", str(tmp_path / "never"))
        assert not (tmp_path / "never").exists()
        assert "REPRO_SHARD" not in os.environ


class TestOrchestrate:
    """`repro orchestrate`: the elastic campaign, end-to-end with real
    subprocess workers."""

    SELECTION = "table1,fig24"

    def test_chaos_kill_recovers_and_matches_single_host(
            self, capsys, tmp_path, monkeypatch):
        """The ISSUE 10 acceptance drill: SIGKILL one worker mid-shard;
        the campaign completes via retry, its record matches a
        single-host run, and the orchestrator's environment is
        untouched afterwards."""
        import json
        import os

        # hold workers mid-shard long enough for the drill to fire
        monkeypatch.setenv("REPRO_WORKER_THROTTLE_S", "0.4")
        code, out = run_cli(
            capsys, "orchestrate", "--scale", "smoke",
            "--only", self.SELECTION, "--fan-out", "2",
            "--chaos-kill", "1", "--heartbeat-timeout", "60",
            "--results-dir", str(tmp_path / "orch"),
            "--work-dir", str(tmp_path / "work"),
            "--report", str(tmp_path / "R-orch.md"),
            "--json", str(tmp_path / "c-orch.json"),
            "--html", str(tmp_path / "status.html"))
        assert code == 0
        assert "1 chaos kill(s)" in out
        assert "1 retry" in out
        assert "4 merged" in out
        # a killed worker costs only its shard's remainder — the final
        # render executes nothing
        assert "7 tasks (0 executed, 7 cached)" in out
        # the acceptance contract: nothing leaked into this process
        assert "REPRO_SHARD" not in os.environ
        assert "REPRO_BENCH_SCALE" not in os.environ
        page = (tmp_path / "status.html").read_text()
        assert "complete" in page
        monkeypatch.delenv("REPRO_WORKER_THROTTLE_S")
        code, _ = run_cli(
            capsys, "figures", "run", "--only", self.SELECTION,
            "--scale", "smoke",
            "--results-dir", str(tmp_path / "single"),
            "--report", str(tmp_path / "R-single.md"),
            "--json", str(tmp_path / "c-single.json"))
        assert code == 0
        orch = json.loads((tmp_path / "c-orch.json").read_text())
        single = json.loads((tmp_path / "c-single.json").read_text())
        assert [f["table"] for f in orch["figures"]] == \
            [f["table"] for f in single["figures"]]
        assert [f["status"] for f in orch["figures"]] == \
            [f["status"] for f in single["figures"]]

    def test_rerun_is_fully_cached(self, capsys, tmp_path):
        """Shards of a warm campaign store execute nothing."""
        for _ in range(2):
            code, out = run_cli(
                capsys, "orchestrate", "--scale", "smoke",
                "--only", "table1", "--fan-out", "2",
                "--results-dir", str(tmp_path / "orch"),
                "--work-dir", str(tmp_path / "work"),
                "--report", str(tmp_path / "R.md"),
                "--json", str(tmp_path / "c.json"))
            assert code == 0
        assert "5 tasks (0 executed, 5 cached)" in out
        # the second plan ran against a warm store: the balancer had
        # wall-time history to weigh shards with
        assert "warm wall-time history" in out

    def test_rejects_empty_selection(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="selected no figures"):
            run_cli(capsys, "orchestrate", "--only", "table1",
                    "--skip", "table1",
                    "--results-dir", str(tmp_path / "r"))

    def test_ssh_runner_needs_hosts(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="needs --ssh-hosts"):
            run_cli(capsys, "orchestrate", "--runner", "ssh",
                    "--results-dir", str(tmp_path / "r"))

    def test_ssh_hosts_require_ssh_runner(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="only applies"):
            run_cli(capsys, "orchestrate", "--ssh-hosts", "h1",
                    "--results-dir", str(tmp_path / "r"))


class TestStore:
    """`repro store compact | inspect | verify` + the $REPRO_STORE
    format policy."""

    def campaign_store(self, capsys, tmp_path, env=None):
        import os
        # the autouse _clean_harness_env fixture scrubs these keys
        # after the test, so plain assignment is safe here
        os.environ.update(env or {})
        try:
            code, _ = run_cli(
                capsys, "figures", "run", "--only", "table1",
                "--scale", "smoke",
                "--results-dir", str(tmp_path / "results"),
                "--report", str(tmp_path / "R.md"),
                "--json", str(tmp_path / "c.json"))
        finally:
            for key in (env or {}):
                os.environ.pop(key, None)
        assert code == 0
        return str(tmp_path / "results" / "campaign")

    def test_inspect_and_verify_columnar_store(self, capsys, tmp_path):
        root = self.campaign_store(capsys, tmp_path)
        code, out = run_cli(capsys, "store", "inspect", root)
        assert code == 0
        assert "segment records" in out
        code, out = run_cli(capsys, "store", "verify", root)
        assert code == 0
        assert "store verify: OK" in out

    def test_compact_migrates_a_json_store(self, capsys, tmp_path):
        """The v1 -> v2 migration: campaign on a JSON store, compact,
        then a default (columnar) re-run is fully cached."""
        import os
        root = self.campaign_store(capsys, tmp_path,
                                   env={"REPRO_STORE": "json"})
        json_files = [n for n in os.listdir(root)
                      if n.endswith(".json") and n != "manifest.json"]
        assert json_files  # the JSON store really wrote per-task files
        code, out = run_cli(capsys, "store", "compact", root)
        assert code == 0
        assert f"{len(json_files)} JSON artifact(s) absorbed" in out
        assert [n for n in os.listdir(root) if n.endswith(".json")] == \
            ["manifest.json"]
        code, out = run_cli(
            capsys, "figures", "run", "--only", "table1",
            "--scale", "smoke",
            "--results-dir", str(tmp_path / "results"),
            "--report", str(tmp_path / "R2.md"),
            "--json", str(tmp_path / "c2.json"))
        assert code == 0
        assert "(0 executed" in out

    def test_verify_flags_corruption(self, capsys, tmp_path):
        import os
        root = self.campaign_store(capsys, tmp_path)
        seg = os.path.join(root, "store.seg")
        with open(seg, "r+b") as fh:
            fh.seek(os.path.getsize(seg) - 4)
            fh.write(b"\xff\xff\xff\xff")
        code, out = run_cli(capsys, "store", "verify", root)
        assert code == 1
        assert "store verify: FAILED" in out

    def test_compact_refuses_under_json_policy(self, capsys, tmp_path,
                                               monkeypatch):
        """Regression (code review): compacting while $REPRO_STORE=json
        is pinned would make the whole cache invisible to the very
        pipeline that's pinned to the legacy format."""
        root = self.campaign_store(capsys, tmp_path,
                                   env={"REPRO_STORE": "json"})
        monkeypatch.setenv("REPRO_STORE", "json")
        with pytest.raises(SystemExit, match="unset it first"):
            run_cli(capsys, "store", "compact", root)

    def test_store_commands_reject_missing_dir(self, capsys, tmp_path):
        for command in ("compact", "inspect", "verify"):
            with pytest.raises(SystemExit, match="store directory"):
                run_cli(capsys, "store", command,
                        str(tmp_path / "ghost"))

    def test_bad_store_env_fails_cleanly(self, capsys, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "parquet")
        with pytest.raises(SystemExit, match="REPRO_STORE"):
            run_cli(capsys, "sweep", "--lbs", "reps",
                    "--pattern", "tornado", "--mib", "0.25",
                    "--hosts", "8", "--hosts-per-t0", "4",
                    "--seeds", "1", "--name", "x",
                    "--results-dir", str(tmp_path))


class TestFiguresTrend:
    def records(self, capsys, tmp_path):
        run_cli(capsys, "figures", "run", "--only", "table1",
                "--results-dir", str(tmp_path / "store"),
                "--report", str(tmp_path / "R.md"),
                "--json", str(tmp_path / "old.json"))
        return tmp_path / "old.json"

    def test_identical_records_pass_strict(self, capsys, tmp_path):
        old = self.records(capsys, tmp_path)
        code, out = run_cli(capsys, "figures", "trend", str(old),
                            str(old), "--strict")
        assert code == 0
        assert "no figure changed" in out

    def test_strict_fails_on_badge_regression(self, capsys, tmp_path):
        import json
        old = self.records(capsys, tmp_path)
        doc = json.loads(old.read_text())
        doc["figures"][0]["status"] = "error"
        new = tmp_path / "new.json"
        new.write_text(json.dumps(doc))
        code, out = run_cli(capsys, "figures", "trend", str(old),
                            str(new))
        assert code == 0  # informational without --strict
        assert "[REGRESSION]" in out
        code, out = run_cli(capsys, "figures", "trend", str(old),
                            str(new), "--strict")
        assert code == 1

    def test_tolerance_gates_metric_drift(self, capsys, tmp_path):
        import json
        old = self.records(capsys, tmp_path)
        doc = json.loads(old.read_text())
        row = doc["figures"][0]["table"]["rows"][0]
        row[1] = round(row[1] * 1.05, 2)  # 5% drift
        new = tmp_path / "new.json"
        new.write_text(json.dumps(doc))
        code, _ = run_cli(capsys, "figures", "trend", str(old),
                          str(new), "--strict")
        assert code == 1
        code, _ = run_cli(capsys, "figures", "trend", str(old),
                          str(new), "--strict", "--tol", "0.10")
        assert code == 0

    def test_rejects_non_record_input(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        with pytest.raises(SystemExit, match="not a campaign.json"):
            run_cli(capsys, "figures", "trend", str(bogus), str(bogus))


class TestDocs:
    def test_generate_then_check_clean(self, capsys, tmp_path):
        code, out = run_cli(capsys, "docs", "figures",
                            "--out", str(tmp_path))
        assert code == 0
        from repro.scenarios import REGISTRY
        assert f"wrote {len(REGISTRY) + 1} page(s)" in out
        code, out = run_cli(capsys, "docs", "figures",
                            "--out", str(tmp_path), "--check")
        assert code == 0
        assert "matches the registry" in out

    def test_check_flags_drift(self, capsys, tmp_path):
        run_cli(capsys, "docs", "figures", "--out", str(tmp_path))
        (tmp_path / "fig07.md").write_text("hand edited\n")
        code, out = run_cli(capsys, "docs", "figures",
                            "--out", str(tmp_path), "--check")
        assert code == 1
        assert "[DRIFT]" in out and "fig07.md: stale" in out


class TestFootprint:
    def test_table1_defaults(self, capsys):
        code, out = run_cli(capsys, "footprint")
        assert code == 0
        assert "193 bits" in out
        assert "25 bytes" in out

    def test_single_element(self, capsys):
        code, out = run_cli(capsys, "footprint", "--buffer", "1")
        assert code == 0
        assert "74 bits" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_pattern(self):
        with pytest.raises(SystemExit):
            main(["run", "--pattern", "gather"])
