"""Trace workload generation (Appendix D distributions)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.traces import (
    FACEBOOK_CDF,
    WEBSEARCH_CDF,
    empirical_cdf,
    generate_trace_flows,
    mean_flow_size,
    sample_flow_size,
)


class TestCdfSampling:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_property_samples_within_support(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            s = sample_flow_size(WEBSEARCH_CDF, rng)
            assert 1 <= s <= WEBSEARCH_CDF[-1][0]

    def test_websearch_mostly_small_flows(self):
        """Paper: 'the majority of flows are quite small (<100 KB)'."""
        rng = random.Random(0)
        sizes = [sample_flow_size(WEBSEARCH_CDF, rng) for _ in range(5000)]
        small = sum(1 for s in sizes if s < 100_000)
        assert small / len(sizes) > 0.6

    def test_facebook_smaller_than_websearch(self):
        rng = random.Random(0)
        fb = sorted(sample_flow_size(FACEBOOK_CDF, rng)
                    for _ in range(5000))
        rng = random.Random(0)
        ws = sorted(sample_flow_size(WEBSEARCH_CDF, rng)
                    for _ in range(5000))
        assert fb[len(fb) // 2] < ws[len(ws) // 2]

    def test_mean_between_extremes(self):
        m = mean_flow_size(WEBSEARCH_CDF)
        assert 10_000 < m < 5_000_000


class TestFlowGeneration:
    def test_load_scales_flow_count(self):
        low = generate_trace_flows(n_hosts=8, load=0.4, duration_us=200,
                                   host_gbps=400, seed=1)
        high = generate_trace_flows(n_hosts=8, load=1.0, duration_us=200,
                                    host_gbps=400, seed=1)
        assert len(high) > len(low) > 0

    def test_offered_load_close_to_target(self):
        load = 0.6
        duration = 2000.0
        flows = generate_trace_flows(n_hosts=8, load=load,
                                     duration_us=duration,
                                     host_gbps=400, seed=2)
        offered = sum(f.size_bytes for f in flows) / 8  # per host
        capacity = 400 * 1000 / 8 * duration  # bytes per host
        assert offered / capacity == pytest.approx(load, rel=0.25)

    def test_flows_sorted_and_valid(self):
        flows = generate_trace_flows(n_hosts=8, load=0.5, duration_us=100,
                                     host_gbps=400, seed=3)
        assert all(0 <= f.start_us < 100 for f in flows)
        assert all(f.src != f.dst for f in flows)
        starts = [f.start_us for f in flows]
        assert starts == sorted(starts)

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            generate_trace_flows(n_hosts=8, load=0, duration_us=10,
                                 host_gbps=400)

    def test_unknown_trace_rejected(self):
        with pytest.raises(KeyError):
            generate_trace_flows(n_hosts=8, load=0.5, duration_us=10,
                                 host_gbps=400, trace="bing")


class TestEmpiricalCdf:
    def test_cdf_monotone_to_one(self):
        points = empirical_cdf([5, 1, 3, 2, 4])
        values = [v for v, _ in points]
        probs = [p for _, p in points]
        assert values == sorted(values)
        assert probs[-1] == 1.0
        assert all(p1 <= p2 for p1, p2 in zip(probs, probs[1:]))

    def test_empty_ok(self):
        assert empirical_cdf([]) == []
