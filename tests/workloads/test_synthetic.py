"""Synthetic pattern generators."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.synthetic import incast, permutation, tornado


class TestIncast:
    def test_fan_in_count(self):
        pairs = incast(16, 8, receiver=0)
        assert len(pairs) == 8
        assert all(d == 0 for _, d in pairs)

    def test_senders_unique_and_not_receiver(self):
        pairs = incast(16, 8, receiver=3)
        srcs = [s for s, _ in pairs]
        assert len(set(srcs)) == 8
        assert 3 not in srcs

    def test_random_selection_with_seed(self):
        a = incast(32, 8, seed=1)
        b = incast(32, 8, seed=1)
        assert a == b

    def test_invalid_fan_in(self):
        with pytest.raises(ValueError):
            incast(8, 8)
        with pytest.raises(ValueError):
            incast(8, 0)


class TestPermutation:
    @given(seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_each_sends_and_receives_once(self, seed):
        pairs = permutation(16, seed=seed)
        srcs = [s for s, _ in pairs]
        dsts = [d for _, d in pairs]
        assert sorted(srcs) == list(range(16))
        assert sorted(dsts) == list(range(16))
        assert all(s != d for s, d in pairs)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_property_cross_tor_spans_tors(self, seed):
        pairs = permutation(16, seed=seed, cross_tor_only=True,
                            hosts_per_t0=4)
        assert all(s // 4 != d // 4 for s, d in pairs)
        assert sorted(s for s, _ in pairs) == list(range(16))
        assert sorted(d for _, d in pairs) == list(range(16))

    def test_cross_tor_requires_params(self):
        with pytest.raises(ValueError):
            permutation(16, cross_tor_only=True)
        with pytest.raises(ValueError):
            permutation(8, cross_tor_only=True, hosts_per_t0=8)


class TestTornado:
    def test_twin_mapping(self):
        """Paper: with 128 nodes, node 0 sends to 64 and vice versa."""
        pairs = dict(tornado(128))
        assert pairs[0] == 64
        assert pairs[64] == 0
        assert pairs[1] == 65

    def test_every_node_participates(self):
        pairs = tornado(16)
        assert sorted(s for s, _ in pairs) == list(range(16))
        assert sorted(d for _, d in pairs) == list(range(16))

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError):
            tornado(7)

    def test_all_pairs_cross_halves(self):
        for s, d in tornado(32):
            assert (s < 16) != (d < 16)
