"""Collective schedulers: dependency-driven flow generation."""

from __future__ import annotations

import pytest

from repro.workloads.collectives import (
    AllToAll,
    ButterflyAllReduce,
    RingAllReduce,
    spine_heavy_ring,
)

from helpers import small_network


class TestSpineHeavyRing:
    def test_consecutive_hosts_cross_tors(self):
        order = spine_heavy_ring(16, 4)
        assert sorted(order) == list(range(16))
        for a, b in zip(order, order[1:]):
            assert a // 4 != b // 4

    def test_single_tor_falls_back(self):
        assert spine_heavy_ring(4, 4) == [0, 1, 2, 3]


class TestRingAllReduce:
    def test_completes_with_expected_flow_count(self):
        net = small_network()
        ring = RingAllReduce(net, 1 << 20)
        ring.install()
        net.run(max_us=100_000)
        assert ring.done
        n = 8
        assert ring.flows_issued == n * 2 * (n - 1)

    def test_chunk_is_message_over_n(self):
        net = small_network()
        ring = RingAllReduce(net, 8 << 20)
        assert ring.chunk == (8 << 20) // 8

    def test_custom_order(self):
        net = small_network()
        ring = RingAllReduce(net, 1 << 20, order=spine_heavy_ring(8, 4))
        ring.install()
        net.run(max_us=100_000)
        assert ring.done

    def test_rejects_tiny_ring(self):
        net = small_network()
        with pytest.raises(ValueError):
            RingAllReduce(net, 1024, order=[0])

    def test_finish_time_recorded(self):
        net = small_network()
        ring = RingAllReduce(net, 1 << 20)
        ring.install()
        net.run(max_us=100_000)
        assert ring.finish_us is not None and ring.finish_us > 0


class TestButterflyAllReduce:
    def test_completes_in_log_rounds(self):
        net = small_network()
        bf = ButterflyAllReduce(net, 1 << 20)
        bf.install()
        net.run(max_us=100_000)
        assert bf.done
        assert bf.rounds == 3  # log2(8)
        assert bf.flows_issued == 8 * 3

    def test_rejects_non_power_of_two(self):
        net = small_network(n_hosts=12, hosts_per_t0=4)
        with pytest.raises(ValueError):
            ButterflyAllReduce(net, 1024)

    def test_subset_of_hosts(self):
        net = small_network()
        bf = ButterflyAllReduce(net, 256 * 1024, hosts=[0, 2, 4, 6])
        bf.install()
        net.run(max_us=100_000)
        assert bf.done
        assert bf.flows_issued == 4 * 2


class TestAllToAll:
    def test_completes_all_pairs(self):
        net = small_network()
        a2a = AllToAll(net, 1 << 20, n_parallel=4)
        a2a.install()
        net.run(max_us=100_000)
        assert a2a.done
        assert a2a.flows_issued == 8 * 7

    def test_window_limits_concurrency(self):
        net = small_network()
        a2a = AllToAll(net, 1 << 20, n_parallel=2)
        a2a.install()
        # immediately after install, each node has exactly 2 flows
        assert a2a.flows_issued == 8 * 2
        net.run(max_us=100_000)
        assert a2a.done

    def test_bytes_split_across_peers(self):
        net = small_network()
        a2a = AllToAll(net, 7 << 20, n_parallel=4)
        assert a2a.bytes_per_pair == (7 << 20) // 7

    def test_rejects_bad_params(self):
        net = small_network()
        with pytest.raises(ValueError):
            AllToAll(net, 1024, n_parallel=0)
