"""Store v3: codec properties, mmap, locking, migration, scheduling.

The acceptance bar (ISSUE 7): the v3 segment format round-trips
canonically byte-identical payloads (dictionary sentinels, ``-0.0``,
scaled decimals and full-precision floats included), reads v2 frames
forever, heals torn tails, remaps its mmap view across appends, holds
an advisory lock on appends (with a lockless fallback), migrates v2
stores through ``compact``, and the wall-time-driven scheduler stays
a pure, stable, fail-soft reordering.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import struct

import pytest

from repro.harness.backends.schedule import (
    longest_first,
    wall_time_by_label,
)
from repro.harness.store import (
    BLOCK_MAGIC,
    BLOCK_MAGIC_V3,
    FILE_MAGIC,
    FILE_MAGIC_V3,
    LOCK_ENV,
    MMAP_ENV,
    ColumnarStore,
    _compress_v3,
    _decompress_v3,
    _dict_pack,
    _dict_unpack,
    _hex_key_blob,
    _meta_keys,
    _pack_array_v3,
    _read_uvarint,
    _unpack_array_v3,
    _unzigzag,
    _uvarint,
    _zigzag,
    decode_frame_v3,
    encode_frame_v3,
)
from repro.harness.sweep import SCHEMA_VERSION


def canon(doc) -> str:
    return json.dumps(doc, sort_keys=True)


def batch(n: int, start: int = 0):
    """Deterministic payloads exercising every v3 column encoding."""
    out = []
    for i in range(start, start + n):
        key = f"{i:024x}"
        out.append((key, {
            "schema": SCHEMA_VERSION, "sim": "b" * 16, "key": key,
            "task": {"label": f"fig/{'reps' if i % 2 else 'ops'}",
                     "seed": i},
            "metrics": {
                "makespan_us": 1000.0 + i,        # scaled decimal
                "flows": 8, "drops": 0,            # varint ints
                "good_gbps": 1.0 / (i + 3),        # full-precision
                "fcts": [100.25 + j for j in range(6)],   # scaled arr
                "pkts": [i * 10 + j for j in range(6)],   # int arr
                "raw": [1.0 / (j + i + 2) for j in range(6)],  # split
            },
        }))
    return out


# ----------------------------------------------------------------------
# codec properties
# ----------------------------------------------------------------------
class TestV3Codec:
    @pytest.mark.parametrize("seed", [3, 11, 2026])
    def test_frame_roundtrip_is_canonical(self, seed):
        rng = random.Random(seed)
        records = batch(40)
        rng.shuffle(records)
        entries = [{"label": p["task"]["label"], "wall_s": 0.25,
                    "bytes": 10} for _, p in records]
        frame, _info = encode_frame_v3(records, entries)
        back, back_entries = decode_frame_v3(frame)
        assert [k for k, _ in back] == [k for k, _ in records]
        for (_, orig), (_, dec) in zip(records, back):
            assert canon(orig) == canon(dec)
        assert back_entries == entries

    def test_dict_sentinels_escape_adversarial_strings(self):
        # payload strings colliding with the \x00r/\x00e sentinels
        # must survive the dictionary substitution byte-identically
        evil = ["\x00r", "\x00e", "\x00r0", "\x00e\x00r", "plain",
                "plain", "plain"]
        payload = {"key": "f" * 24, "metrics": {"names": evil,
                                                "alias": "plain"}}
        frame, _ = encode_frame_v3([("f" * 24, payload)])
        (_, back), = decode_frame_v3(frame)[0]
        assert canon(back) == canon(payload)

    def test_dict_pack_unpack_inverse(self):
        table = ["alpha", "beta"]
        index = {name: i for i, name in enumerate(table)}
        doc = {"a": "alpha", "b": ["beta", "gamma", "\x00r"],
               "c": {"d": "alpha"}}
        packed = _dict_pack(doc, index)
        assert _dict_unpack(packed, table) == doc

    def test_negative_zero_is_preserved(self):
        payload = {"key": "e" * 24,
                   "metrics": {"z": -0.0, "arr": [-0.0, 1.5, 2.5],
                               "mix": [0.0, -0.0]}}
        frame, _ = encode_frame_v3([("e" * 24, payload)])
        (_, back), = decode_frame_v3(frame)[0]
        assert canon(back) == canon(payload)  # "-0.0" stays "-0.0"

    @pytest.mark.parametrize("seed", [5, 17])
    def test_array_codec_roundtrip(self, seed):
        rng = random.Random(seed)
        cases = [
            [rng.randint(-10**9, 10**9) for _ in range(50)],
            [round(rng.uniform(0, 5000), 5) for _ in range(50)],
            [rng.uniform(-1e9, 1e9) for _ in range(50)],
            [rng.choice([1, 2.5, -7, 0.125]) for _ in range(30)],
            [], [0], [-0.25],
        ]
        for elems in cases:
            buf = bytearray()
            _pack_array_v3(buf, elems)
            back, off = _unpack_array_v3(bytes(buf), 0)
            assert off == len(buf)
            assert canon(back) == canon(elems)

    def test_uvarint_and_zigzag_roundtrip(self):
        rng = random.Random(29)
        values = [0, 1, 127, 128, 2**32, 2**63 - 1] + \
            [rng.randint(0, 2**62) for _ in range(200)]
        buf = bytearray()
        for v in values:
            _uvarint(buf, v)
        off = 0
        for v in values:
            got, off = _read_uvarint(bytes(buf), off)
            assert got == v
        assert off == len(buf)
        for v in [0, 1, -1, 2**40, -(2**40)]:
            assert _unzigzag(_zigzag(v)) == v

    def test_hex_key_blob_roundtrip_and_rejection(self):
        keys = [f"{i:024x}" for i in range(32)]
        klen, blob = _hex_key_blob(keys)
        assert klen == 24 and len(blob) == 32 * 12
        import base64
        meta = {"kx": [klen, base64.b64encode(blob).decode()], "t": []}
        assert _meta_keys(len(keys), meta) == keys
        assert _hex_key_blob(["not-hex!"]) is None
        assert _hex_key_blob(["ab", "abcd"]) is None  # ragged lengths
        assert _hex_key_blob(["AB" * 12]) is None     # not canonical

    def test_adaptive_compression_is_self_describing(self):
        for raw in (b"", b"x", b"abc" * 5000, os.urandom(256)):
            assert _decompress_v3(_compress_v3(raw)) == raw


# ----------------------------------------------------------------------
# mmap view lifecycle
# ----------------------------------------------------------------------
class TestMmapView:
    def test_view_remaps_after_append(self, tmp_path):
        store = ColumnarStore(str(tmp_path))
        store.put_many(batch(8))
        assert store.get(f"{0:024x}") is not None
        first_len = store._view_len
        store.put_many(batch(8, start=8))
        assert store.get(f"{12:024x}") is not None
        if store._view is not None:  # mmap platform
            assert store._view_len > first_len > 0

    def test_disabled_mmap_reads_same_bytes(self, tmp_path,
                                            monkeypatch):
        root = str(tmp_path)
        ColumnarStore(root).put_many(batch(10))
        warm = {k: canon(ColumnarStore(root).get(k))
                for k, _ in batch(10)}
        monkeypatch.setenv(MMAP_ENV, "0")
        cold = ColumnarStore(root)
        assert cold._view is None or cold._view_len == 0
        for key, payload in batch(10):
            assert canon(cold.get(key)) == warm[key] == canon(payload)


# ----------------------------------------------------------------------
# torn tails and the v2 <-> v3 matrix
# ----------------------------------------------------------------------
class TestTornTailAndMatrix:
    def test_v3_torn_tail_self_heals(self, tmp_path):
        root = str(tmp_path)
        store = ColumnarStore(root)
        store.put_many(batch(6))
        store.put_many(batch(6, start=6))          # second frame
        seg = os.path.join(root, ColumnarStore.SEGMENT)
        size = os.path.getsize(seg)
        with open(seg, "r+b") as fh:               # tear frame two
            fh.truncate(size - 11)
        torn = ColumnarStore(root)
        assert len(torn) == 6                      # prefix still served
        assert canon(torn.get(f"{3:024x}")) == canon(batch(6)[3][1])
        torn.put(f"{99:024x}", dict(batch(1)[0][1], key=f"{99:024x}"))
        healed = ColumnarStore(root)
        assert len(healed) == 7
        assert healed.verify()["ok"]

    def test_v2_writer_v3_reader_matrix(self, tmp_path):
        root = str(tmp_path)
        v2 = ColumnarStore(root, segment_format=2)
        v2.put_many(batch(5))
        seg = os.path.join(root, ColumnarStore.SEGMENT)
        blob = open(seg, "rb").read()
        assert blob.startswith(FILE_MAGIC) and BLOCK_MAGIC in blob
        v3 = ColumnarStore(root)                   # default writer: v3
        for key, payload in batch(5):
            assert canon(v3.get(key)) == canon(payload)
        v3.put_many(batch(5, start=5))             # appends BLK2
        blob = open(seg, "rb").read()
        assert blob.startswith(FILE_MAGIC)         # header unchanged
        assert BLOCK_MAGIC in blob and BLOCK_MAGIC_V3 in blob
        mixed = ColumnarStore(root)                # cold: both formats
        assert len(mixed) == 10
        for key, payload in batch(10):
            assert canon(mixed.get(key)) == canon(payload)
        fmt = mixed.stats()["format"]
        assert fmt["v2_blocks"] >= 1 and fmt["v3_blocks"] >= 1

    def test_compact_migrates_v2_store_to_v3(self, tmp_path):
        root = str(tmp_path)
        ColumnarStore(root, segment_format=2).put_many(batch(12))
        store = ColumnarStore(root)
        store.compact()
        blob = open(os.path.join(root, ColumnarStore.SEGMENT),
                    "rb").read()
        assert blob.startswith(FILE_MAGIC_V3)
        assert BLOCK_MAGIC_V3 in blob and BLOCK_MAGIC not in blob
        back = ColumnarStore(root)
        assert len(back) == 12
        for key, payload in batch(12):
            assert canon(back.get(key)) == canon(payload)


# ----------------------------------------------------------------------
# advisory locking
# ----------------------------------------------------------------------
def _locked_append(args):
    root, i = args
    store = ColumnarStore(root)
    key = f"{i:024x}"
    store.put(key, {"schema": SCHEMA_VERSION, "sim": "b" * 16,
                    "key": key, "task": {"label": "lk"}, "i": i})
    return key


class TestAppendLocking:
    def test_concurrent_appends_all_survive(self, tmp_path):
        root = str(tmp_path)
        ColumnarStore(root).put_many(batch(2))
        with multiprocessing.Pool(4) as pool:
            keys = pool.map(_locked_append,
                            [(root, 100 + i) for i in range(12)])
        store = ColumnarStore(root)
        assert store.verify()["ok"]
        for key in keys:
            assert store.get(key)["i"] == int(key, 16)

    def test_lockless_fallback_still_appends(self, tmp_path,
                                             monkeypatch):
        import repro.harness.store as store_mod
        monkeypatch.setattr(store_mod, "fcntl", None)
        store = ColumnarStore(str(tmp_path))
        store.put_many(batch(4))
        assert len(ColumnarStore(str(tmp_path))) == 4

    def test_lock_env_disables_flock(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LOCK_ENV, "0")
        store = ColumnarStore(str(tmp_path))
        store.put_many(batch(4))
        assert not store._flock(0)                 # env wins
        assert len(ColumnarStore(str(tmp_path))) == 4


# ----------------------------------------------------------------------
# wall-time-driven scheduling
# ----------------------------------------------------------------------
class _FakeTask:
    def __init__(self, label):
        self.label = label


class _FakeStore:
    def __init__(self, entries):
        self._entries = entries

    def manifest(self):
        return self._entries


class _BrokenStore:
    def manifest(self):
        raise RuntimeError("no manifest for you")


def _pending(*labels):
    return [(f"k{i}", _FakeTask(label))
            for i, label in enumerate(labels)]


class TestSchedule:
    STORE = _FakeStore({
        "a1": {"label": "slow", "wall_s": 9.0},
        "a2": {"label": "slow", "wall_s": 11.0},
        "b1": {"label": "fast", "wall_s": 1.0},
        "c1": {"label": "untimed"},
    })

    def test_mean_wall_per_label(self):
        assert wall_time_by_label(self.STORE) == \
            {"slow": 10.0, "fast": 1.0}

    def test_longest_expected_first_and_stable(self):
        pending = _pending("fast", "slow", "fast", "slow")
        ordered = longest_first(pending, self.STORE)
        assert [t.label for _, t in ordered] == \
            ["slow", "slow", "fast", "fast"]
        # stable: ties keep submission order; pure: same multiset
        assert [k for k, _ in ordered] == ["k1", "k3", "k0", "k2"]
        assert sorted(ordered) == sorted(pending)

    def test_unseen_label_gets_overall_mean(self):
        ordered = longest_first(
            _pending("fast", "novel", "slow"), self.STORE)
        # observation-weighted default (9+11+1)/3 = 7.0: novel slots
        # between slow and fast
        assert [t.label for _, t in ordered] == \
            ["slow", "novel", "fast"]

    def test_no_history_and_failures_keep_order(self):
        pending = _pending("b", "a")
        assert longest_first(pending, None) == pending
        assert longest_first(pending, _FakeStore({})) == pending
        assert longest_first(pending, _BrokenStore()) == pending
        assert wall_time_by_label(_BrokenStore()) == {}
