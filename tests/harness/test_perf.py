"""Perf micro-benchmark harness and the ``perf.json`` trend gate."""

from __future__ import annotations

import json

import pytest

from repro.harness.perf import (
    DETERMINISTIC_FIELDS,
    SCHEMA,
    diff_perf,
    load_record,
    render_diff,
    render_record,
    run_perf,
    run_scenario,
    scenario_names,
)


def _record(**overrides):
    base = {
        "schema": SCHEMA,
        "sim": "deadbeefdeadbeef",
        "scale": 1,
        "repeats": 1,
        "scenarios": {
            "core_spray": {
                "kind": "network", "pkts": 100, "events": 1000,
                "flows_completed": 4, "sim_time_us": 12.5,
                "wall_s": 0.1, "pkts_per_s": 1000.0,
                "events_per_s": 10000.0,
            },
            "engine_chain": {
                "kind": "engine", "events": 500, "units": 500,
                "wall_s": 0.05, "units_per_s": 10000.0,
            },
        },
    }
    base.update(overrides)
    return base


def _mutated(path, value):
    rec = _record()
    rec = json.loads(json.dumps(rec))  # deep copy
    node = rec
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] = value
    return rec


class TestRunPerf:
    def test_smoke_capture_has_all_scenarios(self):
        record = run_perf(scale=1, repeats=1)
        assert record["schema"] == SCHEMA
        assert set(record["scenarios"]) == set(scenario_names())
        for sc in record["scenarios"].values():
            assert sc["wall_s"] > 0
            assert sc["kind"] in ("network", "engine", "store")

    def test_network_scenarios_complete_their_flows(self):
        for name in ("core_spray", "incast_trim", "rto_failure"):
            sc = run_scenario(name, scale=1, repeats=1)
            assert sc["flows_completed"] > 0, name
            assert sc["pkts"] > 0, name

    def test_capture_is_deterministic_across_runs(self):
        a = run_perf(scale=1, repeats=1)
        b = run_perf(scale=1, repeats=1)
        for name in scenario_names():
            for key in DETERMINISTIC_FIELDS:
                if key in a["scenarios"][name]:
                    assert a["scenarios"][name][key] == \
                        b["scenarios"][name][key], (name, key)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown perf scenario"):
            run_scenario("nope", scale=1)


class TestDiffPerf:
    def test_identical_records_are_clean(self):
        diff = diff_perf(_record(), _record())
        assert diff.clean
        assert not diff.improvements

    def test_deterministic_drift_is_a_mismatch(self):
        new = _mutated(("scenarios", "core_spray", "pkts"), 101)
        diff = diff_perf(_record(), new)
        assert not diff.clean
        assert any("core_spray.pkts" in m for m in diff.mismatches)

    def test_throughput_within_band_is_clean(self):
        new = _mutated(("scenarios", "core_spray", "pkts_per_s"), 900.0)
        assert diff_perf(_record(), new, tol=0.25).clean

    def test_throughput_below_band_is_a_regression(self):
        new = _mutated(("scenarios", "core_spray", "pkts_per_s"), 500.0)
        diff = diff_perf(_record(), new, tol=0.25)
        assert not diff.clean
        assert any("pkts_per_s" in r for r in diff.regressions)

    def test_throughput_above_band_is_an_improvement(self):
        new = _mutated(("scenarios", "engine_chain", "units_per_s"),
                       20000.0)
        diff = diff_perf(_record(), new, tol=0.25)
        assert diff.clean  # faster is never a failure
        assert diff.improvements

    def test_missing_scenario_is_a_mismatch(self):
        new = _record()
        del new["scenarios"]["engine_chain"]
        diff = diff_perf(_record(), new)
        assert any("engine_chain" in m for m in diff.mismatches)

    def test_scale_mismatch_skips_deterministic_gate(self):
        new = _mutated(("scenarios", "core_spray", "pkts"), 9999)
        new["scale"] = 2
        diff = diff_perf(_record(), new)
        assert diff.clean  # counters not comparable across scales
        assert any("scale differs" in n for n in diff.notes)

    def test_render_paths(self):
        rec = _record()
        rec["baseline"] = {"ref": "seed", "scenarios": {}}
        rec["speedup"] = {"core_spray": 1.32}
        text = render_record(rec)
        assert "core_spray" in text and "x1.32" in text
        diff = diff_perf(
            _record(), _mutated(("scenarios", "core_spray", "pkts"), 1))
        assert "[MISMATCH]" in render_diff(diff, 0.25)


class TestLoadRecord:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "perf.json"
        path.write_text(json.dumps(_record()))
        assert load_record(str(path))["scale"] == 1

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError, match="not a"):
            load_record(str(path))


class TestPerfCli:
    def _run(self, capsys, *argv):
        from repro.cli import main
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_perf_run_writes_record(self, capsys, tmp_path):
        out_path = tmp_path / "perf.json"
        code, out = self._run(capsys, "perf", "run", "--scale", "1",
                              "--repeats", "1", "--only", "engine_chain",
                              "--json", str(out_path))
        assert code == 0
        assert "engine_chain" in out
        assert load_record(str(out_path))["scale"] == 1

    def test_trend_clean_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "perf.json"
        path.write_text(json.dumps(_record()))
        code, out = self._run(capsys, "perf", "trend", str(path),
                              str(path), "--strict")
        assert code == 0
        assert "clean" in out

    def test_trend_mismatch_warns_without_strict(self, capsys, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_record()))
        new.write_text(json.dumps(
            _mutated(("scenarios", "core_spray", "events"), 7)))
        code, out = self._run(capsys, "perf", "trend", str(old), str(new))
        assert code == 0  # warn-only by default
        assert "[MISMATCH]" in out

    def test_trend_mismatch_fails_strict(self, capsys, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_record()))
        new.write_text(json.dumps(
            _mutated(("scenarios", "core_spray", "events"), 7)))
        code, _ = self._run(capsys, "perf", "trend", str(old), str(new),
                            "--strict")
        assert code == 1

    def test_trend_regression_fails_strict(self, capsys, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_record()))
        new.write_text(json.dumps(
            _mutated(("scenarios", "engine_chain", "units_per_s"),
                     100.0)))
        code, out = self._run(capsys, "perf", "trend", str(old),
                              str(new), "--strict")
        assert code == 1
        assert "[SLOWER]" in out
