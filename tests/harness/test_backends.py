"""Execution backends: equivalence, resolution, sharding, merging.

The acceptance bar for the backend layer: **every backend produces
byte-identical artifacts for the same grid**, so backend choice can
never invalidate a store and shard stores merge losslessly.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.backends import (
    BACKEND_ENV,
    BACKENDS,
    BatchedBackend,
    ProcessBackend,
    SerialBackend,
    ShardBackend,
    backend_names,
    make_backend,
    plan_manifests,
    resolve_backend,
    shard_partition,
)
from repro.harness.sweep import (
    ResultStore,
    WorkloadSpec,
    make_model_task,
    make_task,
    run_sweep,
    task_key,
)

TINY_TOPO = {"n_hosts": 8, "hosts_per_t0": 4}
TINY_WORKLOAD = WorkloadSpec(kind="synthetic", pattern="permutation",
                             msg_bytes=128 * 1024)


def mixed_grid():
    """Two real simulations + three analytic models: every executor
    path (sim, model) under every backend, still fast."""
    tasks = [make_task(lb, TINY_TOPO, TINY_WORKLOAD, seed=1,
                       max_us=2_000_000.0) for lb in ("ops", "reps")]
    tasks += [make_model_task("footprint", seed=1, buffer_size=b)
              for b in (1, 4, 8)]
    return tasks


def store_snapshot(store: ResultStore):
    """Artifact bytes by key (the manifest is timing-dependent)."""
    out = {}
    for key in store.keys():
        with open(os.path.join(store.root, f"{key}.json")) as fh:
            out[key] = fh.read()
    return out


class TestResolution:
    def test_default_is_serial_then_process(self):
        assert resolve_backend(None, workers=1).name == "serial"
        assert resolve_backend(None, workers=4).name == "process"

    def test_env_var_wins_over_worker_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "batched")
        backend = resolve_backend(None, workers=4)
        assert backend.name == "batched"
        assert backend.workers == 4

    def test_name_and_instance_pass_through(self):
        assert resolve_backend("shard").name == "shard"
        ready = SerialBackend()
        assert resolve_backend(ready) is ready

    def test_required_mp_context_applied_to_ready_instance(self):
        """Regression (code review): the threaded campaign runner
        forces spawn for fork safety; a ready pool-owning instance
        must not silently keep fork."""
        ready = ProcessBackend(workers=2)
        resolved = resolve_backend(ready, mp_context="spawn")
        assert resolved.mp_context == "spawn"
        assert ready.mp_context is None  # caller's object untouched
        # an instance that chose a context keeps it
        chosen = BatchedBackend(workers=2, mp_context="fork")
        assert resolve_backend(chosen, mp_context="spawn") is chosen
        # pool-less backends have no mp_context and pass through
        serial = SerialBackend()
        assert resolve_backend(serial, mp_context="spawn") is serial

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum")
        with pytest.raises(ValueError, match="batched"):
            resolve_backend("quantum")

    def test_registry_is_complete(self):
        assert backend_names() == ["batched", "process", "serial",
                                   "shard"]
        for name, cls in BACKENDS.items():
            assert cls.name == name


class TestEquivalence:
    """ISSUE acceptance: serial, process, batched and shard-then-merge
    runs of one grid yield identical key -> payload mappings and
    identical aggregate tables."""

    BACKENDS = [SerialBackend(),
                ProcessBackend(workers=2),
                BatchedBackend(workers=2, batch_size=2),
                ShardBackend(n_shards=2),
                ShardBackend(workers=2, n_shards=2)]
    IDS = ["serial", "process", "batched", "shard", "shard-pooled"]

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        store = ResultStore(str(tmp_path_factory.mktemp("ref")))
        results = run_sweep(mixed_grid(), store=store,
                            backend=SerialBackend())
        return store, results

    @pytest.mark.parametrize("backend", BACKENDS, ids=IDS)
    def test_identical_artifacts_and_aggregates(self, backend, tmp_path,
                                                reference):
        ref_store, ref_results = reference
        store = ResultStore(str(tmp_path))
        results = run_sweep(mixed_grid(), store=store, backend=backend)
        assert results.executed == len(mixed_grid())
        # byte-identical artifacts under identical content keys
        assert store_snapshot(store) == store_snapshot(ref_store)
        # identical task_key -> payload mappings
        assert {r.key: (r.metrics, r.extra) for r in results} == \
            {r.key: (r.metrics, r.extra) for r in ref_results}
        # identical aggregate tables (sim tasks aggregate the fct
        # metric; model tasks report through `extra` instead)
        from repro.harness.sweep import SweepResults

        def sim_table(res):
            sim_only = [r for r in res if r.task.lb != "model"]
            return SweepResults(sim_only).table("max_fct_us")

        assert sim_table(results) == sim_table(ref_results)

    @pytest.mark.parametrize("backend", BACKENDS[1:], ids=IDS[1:])
    def test_cache_hits_after_any_backend(self, backend, tmp_path):
        store = ResultStore(str(tmp_path))
        run_sweep(mixed_grid(), store=store, backend=backend)
        again = run_sweep(mixed_grid(), store=store,
                          backend=SerialBackend())
        assert again.executed == 0
        assert again.cached == len(mixed_grid())


class TestEquivalenceColumnar:
    """ISSUE 5 acceptance: all four backends stay byte-identical on
    the v2 (columnar) store — and v2 payload reads equal the JSON
    store's artifacts, so the formats are interchangeable."""

    BACKENDS = TestEquivalence.BACKENDS
    IDS = TestEquivalence.IDS

    @staticmethod
    def canon_snapshot(store):
        """Canonical payload bytes by key (the v2 spelling of
        ``store_snapshot`` — there are no per-task files to read)."""
        return {key: json.dumps(store.get(key), sort_keys=True)
                for key in store.keys()}

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        from repro.harness.store import ColumnarStore
        store = ColumnarStore(str(tmp_path_factory.mktemp("ref-v2")))
        run_sweep(mixed_grid(), store=store, backend=SerialBackend())
        return store

    @pytest.mark.parametrize("backend", BACKENDS, ids=IDS)
    def test_identical_payloads_on_v2(self, backend, tmp_path,
                                      reference):
        from repro.harness.store import ColumnarStore
        store = ColumnarStore(str(tmp_path))
        results = run_sweep(mixed_grid(), store=store, backend=backend)
        assert results.executed == len(mixed_grid())
        assert self.canon_snapshot(store) == \
            self.canon_snapshot(reference)
        assert store.verify()["ok"]

    @pytest.mark.parametrize("backend", BACKENDS[1:], ids=IDS[1:])
    def test_cache_hits_after_any_backend_on_v2(self, backend,
                                                tmp_path):
        from repro.harness.store import ColumnarStore
        store = ColumnarStore(str(tmp_path))
        run_sweep(mixed_grid(), store=store, backend=backend)
        again = run_sweep(mixed_grid(),
                          store=ColumnarStore(str(tmp_path)),
                          backend=SerialBackend())
        assert again.executed == 0
        assert again.cached == len(mixed_grid())

    def test_v2_reads_equal_json_artifacts(self, tmp_path, reference):
        json_store = ResultStore(str(tmp_path))
        run_sweep(mixed_grid(), store=json_store,
                  backend=SerialBackend())
        json_snapshot = {
            key: json.dumps(json_store.get(key), sort_keys=True)
            for key in json_store.keys()}
        assert json_snapshot == self.canon_snapshot(reference)


class TestAdaptiveScheduling:
    """ISSUE 7 acceptance: longest-expected-first dispatch is live on
    every parallel backend once the store carries wall-time history —
    and stays byte-identical to the serial reference."""

    BACKENDS = TestEquivalence.BACKENDS
    IDS = TestEquivalence.IDS

    @staticmethod
    def second_wave():
        """Same labels as ``mixed_grid`` at fresh seeds: the warm
        store's history applies, the keys still need executing."""
        tasks = [make_task(lb, TINY_TOPO, TINY_WORKLOAD, seed=2,
                           max_us=2_000_000.0) for lb in ("ops", "reps")]
        tasks += [make_model_task("footprint", seed=2, buffer_size=b)
                  for b in (1, 4, 8)]
        return tasks

    @pytest.fixture(scope="class")
    def warm(self, tmp_path_factory):
        """A store whose manifest carries recorded wall times."""
        from repro.harness.store import ColumnarStore
        store = ColumnarStore(str(tmp_path_factory.mktemp("warm")))
        run_sweep(mixed_grid(), store=store, backend=SerialBackend())
        return store

    def test_execution_accounting_rides_the_manifest(self, warm):
        entries = [warm.manifest()[task_key(t)] for t in mixed_grid()]
        for entry in entries:
            assert entry["wall_s"] >= 0
            assert entry["bytes"] > 0
        # accounting stays out of the payloads (byte-identity!)
        for task in mixed_grid():
            assert "wall_s" not in warm.get(task_key(task))

    def test_scheduler_reorders_from_recorded_history(self, warm):
        from repro.harness.backends.schedule import (
            longest_first, task_label, wall_time_by_label)
        by_label = wall_time_by_label(warm)
        sims = [task_label(t) for t in mixed_grid() if t.lb != "model"]
        assert all(label in by_label for label in sims)
        pending = [(task_key(t), t) for t in self.second_wave()]
        ordered = longest_first(pending, warm)
        assert sorted(ordered) == sorted(pending)  # pure reordering
        walls = [by_label.get(
            task_label(t), sum(by_label.values()) / len(by_label))
            for _, t in ordered]
        assert walls == sorted(walls, reverse=True)

    @pytest.mark.parametrize("backend", BACKENDS, ids=IDS)
    def test_warm_history_keeps_byte_identity(self, backend, tmp_path,
                                              warm):
        import shutil

        from repro.harness.store import ColumnarStore
        root = str(tmp_path / "store")
        shutil.copytree(warm.root, root)
        store = ColumnarStore(root)
        results = run_sweep(self.second_wave(), store=store,
                            backend=backend)
        assert results.executed == len(self.second_wave())
        snapshot = {r.key: json.dumps(store.get(r.key), sort_keys=True)
                    for r in results}
        # the serial run against the same warm history is the oracle
        ref_root = str(tmp_path / "ref")
        shutil.copytree(warm.root, ref_root)
        ref_store = ColumnarStore(ref_root)
        run_sweep(self.second_wave(), store=ref_store,
                  backend=SerialBackend())
        assert snapshot == {
            key: json.dumps(ref_store.get(key), sort_keys=True)
            for key in snapshot}


class TestBatched:
    def test_batches_cover_and_interleave(self):
        backend = BatchedBackend(workers=2, batch_size=2)
        pending = [(f"k{i}", None) for i in range(7)]
        batches = backend._batches(pending)
        assert sorted(k for b in batches for k, _ in b) == \
            sorted(k for k, _ in pending)
        assert max(len(b) for b in batches) - \
            min(len(b) for b in batches) <= 1

    def test_default_batch_count_caps_at_pending(self):
        backend = BatchedBackend(workers=8)
        batches = backend._batches([(f"k{i}", None) for i in range(3)])
        assert len(batches) == 3

    def test_put_many_matches_sequential_puts(self, tmp_path):
        tasks = [make_model_task("footprint", seed=1, buffer_size=b)
                 for b in (1, 2)]
        a = ResultStore(str(tmp_path / "a"))
        b = ResultStore(str(tmp_path / "b"))
        from repro.harness.sweep import execute_task
        pairs = [(task_key(t), execute_task(t)) for t in tasks]
        for key, payload in pairs:
            a.put(key, payload)
        b.put_many(pairs)
        assert store_snapshot(a) == store_snapshot(b)
        am, bm = a.manifest(), b.manifest()
        assert sorted(am) == sorted(bm)
        for key in am:
            assert {k: v for k, v in am[key].items()
                    if k != "written_at"} == \
                {k: v for k, v in bm[key].items() if k != "written_at"}


class TestShardPartition:
    def test_deterministic_and_order_independent(self):
        keys = [f"{i:04x}" for i in range(13)]
        assert shard_partition(keys, 3) == \
            shard_partition(list(reversed(keys)), 3)

    def test_disjoint_cover_balanced(self):
        keys = [f"{i:04x}" for i in range(13)]
        parts = shard_partition(keys, 4)
        flat = [k for part in parts for k in part]
        assert sorted(flat) == sorted(keys)
        assert len(flat) == len(set(flat))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_keys(self):
        parts = shard_partition(["a", "b"], 5)
        assert sum(len(p) for p in parts) == 2
        assert len(parts) == 5

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_partition(["a"], 0)
        with pytest.raises(ValueError, match="n_shards"):
            ShardBackend(n_shards=0)

    def test_manifests_record_grid_identity(self):
        from repro.harness.sweep import SCHEMA_VERSION, simulator_version
        manifests = plan_manifests(["table1"], ["aa", "bb", "cc"], 2,
                                   "smoke")
        assert [m["shard"] for m in manifests] == [0, 1]
        for m in manifests:
            assert m["sim"] == simulator_version()
            assert m["artifact_schema"] == SCHEMA_VERSION
            assert m["scale"] == "smoke"
            assert m["figures"] == ["table1"]
        assert sorted(manifests[0]["keys"] + manifests[1]["keys"]) == \
            ["aa", "bb", "cc"]


class TestStoreMerge:
    def tasks(self):
        return [make_model_task("footprint", seed=1, buffer_size=b)
                for b in (1, 2, 4)]

    def test_merge_unions_and_preserves_origin(self, tmp_path):
        t1, t2, t3 = self.tasks()
        a = ResultStore(str(tmp_path / "a"), origin="shard-0/2")
        b = ResultStore(str(tmp_path / "b"), origin="shard-1/2")
        run_sweep([t1, t2], store=a)
        run_sweep([t3], store=b)
        dest = ResultStore(str(tmp_path / "merged"))
        merged = dest.merge_from(a) + dest.merge_from(b)
        assert sorted(merged) == sorted(set(a.keys()) | set(b.keys()))
        manifest = dest.manifest()
        origins = {manifest[k].get("origin") for k in a.keys()}
        assert origins == {"shard-0/2"}
        assert manifest[task_key(t3)]["origin"] == "shard-1/2"

    def test_merge_is_idempotent(self, tmp_path):
        a = ResultStore(str(tmp_path / "a"))
        run_sweep(self.tasks(), store=a)
        dest = ResultStore(str(tmp_path / "merged"))
        assert len(dest.merge_from(a)) == 3
        assert dest.merge_from(a) == []
        assert len(dest) == 3

    def test_merged_store_serves_cache_hits(self, tmp_path):
        tasks = self.tasks()
        a = ResultStore(str(tmp_path / "a"))
        run_sweep(tasks, store=a)
        dest = ResultStore(str(tmp_path / "merged"))
        dest.merge_from(a)
        results = run_sweep(tasks, store=dest)
        assert results.executed == 0 and results.cached == 3

    def test_shard_backend_inherits_outer_store_origin(self, tmp_path):
        """Regression (code review): `repro shard run --backend shard`
        must not relabel the store's manifest with the backend's
        internal sub-shard identities."""
        from repro.harness.backends import ShardBackend
        store = ResultStore(str(tmp_path), origin="shard-3/4")
        run_sweep(self.tasks(), store=store,
                  backend=ShardBackend(n_shards=2))
        origins = {e.get("origin") for e in store.manifest().values()}
        assert origins == {"shard-3/4"}

    def test_stale_schema_artifacts_stay_behind(self, tmp_path):
        a = ResultStore(str(tmp_path / "a"))
        run_sweep(self.tasks()[:1], store=a)
        with open(os.path.join(a.root, "feedface.json"), "w") as fh:
            json.dump({"schema": 0}, fh)
        dest = ResultStore(str(tmp_path / "merged"))
        merged = dest.merge_from(a)
        assert len(merged) == 1
        assert "feedface" not in dest.keys()
