"""ASCII chart rendering and multi-seed statistics."""

from __future__ import annotations

import pytest

from repro.harness.ascii_charts import hbar, render_port_series, sparkline
from repro.harness.stats import Aggregate, compare, repeat


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_monotone_levels(self):
        s = sparkline([0, 50, 100], max_value=100)
        assert len(s) == 3
        assert s[0] < s[1] < s[2] or (s[0] == " " and s[2] == "@")

    def test_clamps_out_of_range(self):
        s = sparkline([-10, 1000], max_value=100)
        assert s[0] == " "
        assert s[1] == "@"

    def test_fixed_scale_comparable(self):
        a = sparkline([100], max_value=400)
        b = sparkline([400], max_value=400)
        assert a != b


class TestHbar:
    def test_full_and_empty(self):
        assert hbar(100, 100, width=10) == "#" * 10
        assert hbar(0, 100, width=10) == "." * 10

    def test_half(self):
        assert hbar(50, 100, width=10) == "#" * 5 + "." * 5

    def test_zero_scale(self):
        assert hbar(5, 0) == ""


class TestPanel:
    def test_renders_each_port(self):
        panel = render_port_series(
            [0.0, 20.0, 40.0],
            {"up0": [0, 200, 400], "up1": [400, 200, 0]},
            max_value=400.0)
        assert "up0" in panel and "up1" in panel
        assert "400" in panel

    def test_no_samples(self):
        assert "(no samples)" in render_port_series([], {})

    def test_from_real_recorder(self):
        from helpers import small_network
        net = small_network()
        rec = net.record_ports(net.tree.t0s[0].up_ports, bucket_us=5.0)
        net.add_flow(0, 4, 2 << 20)
        net.run(max_us=20_000)
        panel = render_port_series(rec.times_us, rec.util_gbps,
                                   max_value=400.0)
        assert len(panel.splitlines()) == 1 + len(rec.util_gbps)


class TestAggregate:
    def test_mean_and_bounds(self):
        a = Aggregate([1.0, 2.0, 3.0])
        assert a.mean == 2.0
        assert a.min == 1.0 and a.max == 3.0

    def test_single_sample_no_ci(self):
        a = Aggregate([5.0])
        assert a.ci95 == 0.0
        assert a.stdev == 0.0

    def test_ci_shrinks_with_agreement(self):
        tight = Aggregate([10.0, 10.1, 9.9])
        loose = Aggregate([5.0, 15.0, 10.0])
        assert tight.ci95 < loose.ci95

    def test_str(self):
        assert "n=2" in str(Aggregate([1.0, 2.0]))


class TestRepeat:
    def test_runs_each_seed(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return seed * 2.0

        agg = repeat(run, seeds=(3, 4, 5))
        assert seen == [3, 4, 5]
        assert agg.mean == 8.0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            repeat(lambda s: 1.0, seeds=())

    def test_compare_ratio(self):
        out = compare(lambda s: 10.0, lambda s: 5.0, seeds=(1, 2))
        assert out["ratio"].mean == 2.0

    def test_real_simulation_seed_robust(self):
        """REPS <= OPS on tornado across seeds (mean ratio <= 1)."""
        from helpers import small_network
        from repro.workloads import tornado

        def fct(lb, seed):
            net = small_network(lb=lb, seed=seed)
            for s, d in tornado(8):
                net.add_flow(s, d, 512 * 1024)
            return net.run(max_us=50_000).max_fct_us

        out = compare(lambda s: fct("reps", s), lambda s: fct("ops", s),
                      seeds=(1, 2, 3))
        assert out["ratio"].mean <= 1.02
